#!/usr/bin/env python
"""TCP health monitoring: the two stateful Fig. 2 queries side by side.

``outofseq`` (linear in state, mergeable — with the bounded-history
coefficients of footnote 4) and ``nonmt`` (not linear in state — the
backing store keeps per-epoch value segments and marks multi-epoch keys
invalid).  The example plants known anomalies and shows:

* both queries detect the planted retransmissions/reorderings;
* the linear query stays exact through cache evictions (with the
  exact-history merge extension);
* the non-linear query degrades gracefully — invalid keys are
  reported, and their per-epoch segments remain available.

Run:  python examples/tcp_health.py
"""

from repro import CacheGeometry, QueryEngine
from repro.traffic.datacenter import DatacenterConfig, DatacenterWorkload
from repro.traffic.tcpgen import (
    TcpAnomalyConfig,
    clean_sequence_table,
    inject_tcp_anomalies,
)

OUT_OF_SEQ = """
def outofseq ((lastseq, oos_count), (tcpseq, payload_len)):
    if lastseq + 1 != tcpseq:
        oos_count = oos_count + 1
    lastseq = tcpseq + payload_len

SELECT 5tuple, outofseq GROUPBY 5tuple WHERE proto == TCP
"""

NON_MONOTONIC = """
def nonmt ((maxseq, nm_count), tcpseq):
    if maxseq > tcpseq:
        nm_count = nm_count + 1
    maxseq = max(maxseq, tcpseq)

SELECT 5tuple, nonmt GROUPBY 5tuple WHERE proto == TCP
"""

#: Small cache ⇒ real eviction pressure on both queries.
GEOMETRY = CacheGeometry.set_associative(64, ways=8)


def main() -> None:
    workload = DatacenterWorkload(DatacenterConfig(
        n_flows=250, duration_ns=120_000_000, seed=5))
    table = workload.observation_table()
    clean_sequence_table(table)
    planted = inject_tcp_anomalies(table, TcpAnomalyConfig(
        retransmit_rate=0.02, reorder_rate=0.01, duplicate_rate=0.005))
    print(f"trace: {len(table)} packets; planted anomalies: {planted}\n")

    # -- linear-in-state: exact through evictions -----------------------
    oos = QueryEngine(OUT_OF_SEQ, geometry=GEOMETRY,
                      exact_history=True).run(
        table.records, with_ground_truth=True)
    truth = oos.ground_truth[oos.result_name].by_key()
    hw = oos.result.by_key()
    mism = sum(1 for k in truth
               if truth[k]["outofseq.oos_count"] != hw[k]["outofseq.oos_count"])
    total_oos = sum(r["outofseq.oos_count"] for r in oos.result)
    stats = oos.cache_stats[oos.result_name]
    print("outofseq (linear in state, merged on eviction):")
    print(f"  evictions: {stats.evictions} "
          f"({100 * stats.eviction_fraction:.1f}% of packets)")
    print(f"  out-of-sequence events: {total_oos}")
    print(f"  flows mismatching exact interpreter: {mism} (expect 0)\n")

    # -- not linear in state: validity accounting ------------------------
    nonmt = QueryEngine(NON_MONOTONIC, geometry=GEOMETRY).run(
        table.records, include_invalid=False)
    accuracy = nonmt.accuracy[nonmt.result_name]
    flagged = [r for r in nonmt.result if r["nonmt.nm_count"] > 0]
    print("nonmt (not linear in state, per-epoch value segments):")
    print(f"  valid keys: {100 * accuracy:.1f}% "
          "(invalid = evicted and reappeared, §3.2)")
    print(f"  flows with non-monotonic sequence numbers: {len(flagged)} "
          f"of {len(nonmt.result)} valid flows")
    worst = sorted(flagged, key=lambda r: -r["nonmt.nm_count"])[:5]
    for row in worst:
        print(f"    {row['srcip']:#x}:{row['srcport']}  "
              f"events={row['nonmt.nm_count']}")


if __name__ == "__main__":
    main()
