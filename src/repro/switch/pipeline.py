"""Switch pipeline model: executes a compiled program over a packet
stream (paper §3.1-3.2).

The pipeline mirrors a match-action architecture [Bosshart et al.,
SIGCOMM'13]: the parser extracts the configured fields, ``WHERE``
predicates run as match stages, per-packet ``SELECT`` stages mirror
matching records to the collection layer, and each ``GROUPBY`` stage
drives one split key-value store.

One :class:`SwitchPipeline` models one switch.  The telemetry runtime
(:mod:`repro.telemetry`) installs pipelines on the simulated network's
switches, streams observations through them, and evaluates the
program's software stages over the collected results.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping

from repro.core.errors import CompileError, InterpreterError
from repro.core.eval_expr import Numeric
from repro.core.interpreter import ResultTable, Row
from repro.core.plan import GroupByStage, SelectStage, SwitchProgram

from .alu import compile_predicate, compile_scalar
from .kvstore.cache import CacheGeometry, CacheStats
from .kvstore.split import SplitKeyValueStore
from .parser_model import ParserConfig, configure_parser

#: Default cache geometry: the paper's target configuration — 32 Mbit
#: at 128 bits/pair is 2^18 pairs, 8-way associative (§4).
DEFAULT_GEOMETRY = CacheGeometry.set_associative(1 << 18, ways=8)

GeometrySpec = CacheGeometry | Mapping[str, CacheGeometry]


class _SelectRunner:
    """Per-packet filter + projection stage."""

    def __init__(self, stage: SelectStage, params: Mapping[str, Numeric]):
        self.stage = stage
        self.predicate = compile_predicate(stage.where, params)
        self.extractors: list[tuple[str, Callable]] = [
            (col.name, compile_scalar(col.expr, params)) for col in stage.columns
        ]
        self.rows: list[Row] = []

    def process(self, record: object) -> None:
        if not self.predicate(record):
            return
        self.rows.append({name: fn(record) for name, fn in self.extractors})

    def result_table(self) -> ResultTable:
        return ResultTable(schema=self.stage.output, rows=self.rows)


class _GroupByRunner:
    """Match stage + split key-value store."""

    def __init__(self, stage: GroupByStage, geometry: CacheGeometry,
                 params: Mapping[str, Numeric], policy: str, seed: int,
                 refresh_interval: int | None = None):
        self.stage = stage
        self.predicate = compile_predicate(stage.where, params)
        self.store = SplitKeyValueStore(
            stage, geometry, params=params, policy=policy, seed=seed,
            refresh_interval=refresh_interval,
        )

    def process(self, record: object) -> None:
        if self.predicate(record):
            self.store.process(record)


class SwitchPipeline:
    """One switch running one compiled program.

    Args:
        program: Output of :func:`repro.core.compiler.compile_program`.
        params: Bindings for the program's free parameters.
        geometry: Cache geometry for every ``GROUPBY`` stage, or a
            per-query-name mapping.
        policy: Cache eviction policy.
        seed: Hash seed.
    """

    def __init__(
        self,
        program: SwitchProgram,
        params: Mapping[str, Numeric] | None = None,
        geometry: GeometrySpec = DEFAULT_GEOMETRY,
        policy: str = "lru",
        seed: int = 0,
        refresh_interval: int | None = None,
    ):
        self.program = program
        self.params = dict(params or {})
        missing = set(program.params) - set(self.params)
        if missing:
            raise InterpreterError(f"unbound query parameters: {sorted(missing)}")
        self.parser: ParserConfig = configure_parser(program.parse_fields)
        self._selects = [_SelectRunner(s, self.params) for s in program.select_stages]
        self._groupbys = [
            _GroupByRunner(s, self._geometry_for(s.query_name, geometry),
                           self.params, policy, seed,
                           refresh_interval=refresh_interval)
            for s in program.groupby_stages
        ]
        self.packets_seen = 0

    @staticmethod
    def _geometry_for(name: str, spec: GeometrySpec) -> CacheGeometry:
        if isinstance(spec, CacheGeometry):
            return spec
        if name not in spec:
            raise CompileError(f"no cache geometry supplied for stage {name!r}")
        return spec[name]

    # -- execution -----------------------------------------------------------

    def process(self, record: object) -> None:
        """Run one observation through every stage."""
        self.packets_seen += 1
        for select in self._selects:
            select.process(record)
        for groupby in self._groupbys:
            groupby.process(record)

    def run(self, records: Iterable[object]) -> "SwitchPipeline":
        process = self.process
        for record in records:
            process(record)
        return self

    def finalize(self) -> None:
        for groupby in self._groupbys:
            groupby.store.finalize()

    # -- results ---------------------------------------------------------------

    def results(self, include_invalid: bool = False) -> dict[str, ResultTable]:
        """On-switch stage outputs, keyed by query name.  ``GROUPBY``
        outputs come from the backing store (after a flush)."""
        self.finalize()
        out: dict[str, ResultTable] = {}
        for select in self._selects:
            out[select.stage.query_name] = select.result_table()
        for groupby in self._groupbys:
            out[groupby.stage.query_name] = groupby.store.result_table(
                include_invalid=include_invalid
            )
        return out

    def cache_stats(self) -> dict[str, CacheStats]:
        return {g.stage.query_name: g.store.stats for g in self._groupbys}

    def backing_writes(self) -> dict[str, int]:
        return {g.stage.query_name: g.store.backing.writes for g in self._groupbys}

    def store_for(self, query_name: str) -> SplitKeyValueStore:
        for groupby in self._groupbys:
            if groupby.stage.query_name == query_name:
                return groupby.store
        raise KeyError(query_name)
