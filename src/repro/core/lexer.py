"""Lexer for the performance query language.

Produces a flat token stream with Python-style ``NEWLINE`` / ``INDENT``
/ ``DEDENT`` tokens so that fold-function bodies can use indented
blocks exactly as the paper writes them::

    def outofseq ((lastseq, oos_count), (tcpseq, payload_len)):
        if lastseq + 1 != tcpseq:
            oos_count = oos_count + 1
        lastseq = tcpseq + payload_len

Three lexical conveniences from the paper are handled here:

* ``5tuple`` — an identifier that begins with a digit.  A digit run
  immediately followed by letters is re-examined: if the alphabetic
  suffix is a time unit (``ns``/``us``/``ms``/``s``) the token is a
  time literal normalised to nanoseconds (``1ms`` → ``1000000``);
  otherwise the whole run is an identifier token.
* *Line joining* — query clauses routinely wrap (Fig. 2), so a line
  whose first token is a clause keyword (``WHERE``, ``GROUPBY``,
  ``FROM``, ``JOIN``, ``ON``, ``AS``) or that follows a line ending in
  an operator, comma, or open bracket is treated as a continuation of
  the previous logical line.
* Comments start with ``#`` or ``//`` and run to end of line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from .errors import LexError
from .schema import TIME_UNITS_NS

# Token type names.
IDENT = "IDENT"
NUMBER = "NUMBER"
OP = "OP"
NEWLINE = "NEWLINE"
INDENT = "INDENT"
DEDENT = "DEDENT"
EOF = "EOF"

#: Keywords of the query language.  Clause keywords are recognised
#: case-insensitively (the paper uses upper case); the fold keywords are
#: lower case only, like Python.
CLAUSE_KEYWORDS = frozenset({"SELECT", "FROM", "WHERE", "GROUPBY", "JOIN", "ON", "AS"})
FOLD_KEYWORDS = frozenset({"def", "if", "then", "else", "and", "or", "not"})

#: Keywords that, at the start of a physical line, mark it as the
#: continuation of the previous logical line.
_CONTINUATION_KEYWORDS = frozenset({"FROM", "WHERE", "GROUPBY", "JOIN", "ON", "AS"})

_TWO_CHAR_OPS = ("==", "!=", "<=", ">=", "//")
_ONE_CHAR_OPS = "+-*/()=<>,.:*"


@dataclass(frozen=True)
class Token:
    """A single lexical token with source position (1-based)."""

    type: str
    value: str | int | float
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        if self.type != IDENT:
            return False
        if word in CLAUSE_KEYWORDS:
            return str(self.value).upper() == word
        return self.value == word


def _strip_comment(line: str) -> str:
    """Remove ``#`` and ``//`` comments, preserving earlier text."""
    cut = len(line)
    hash_pos = line.find("#")
    if hash_pos != -1:
        cut = min(cut, hash_pos)
    slash_pos = line.find("//")
    if slash_pos != -1:
        cut = min(cut, slash_pos)
    return line[:cut]


class Lexer:
    """Tokenises query-language source text.

    Usage::

        tokens = Lexer(source).tokens()
    """

    def __init__(self, source: str):
        self.source = source

    # -- line-level scanning -------------------------------------------------

    def tokens(self) -> list[Token]:
        """Lex the whole source, returning tokens ending in ``EOF``."""
        out: list[Token] = []
        indent_stack = [0]
        paren_depth = 0
        prev_logical_had_tokens = False

        for line_no, raw in enumerate(self.source.splitlines(), start=1):
            text = _strip_comment(raw)
            if not text.strip():
                continue
            indent = len(text) - len(text.lstrip(" \t"))
            line_tokens = list(self._scan_line(text, line_no))
            if not line_tokens:
                continue

            continuation = paren_depth > 0
            if not continuation and prev_logical_had_tokens and out:
                first = line_tokens[0]
                if first.type == IDENT and str(first.value).upper() in _CONTINUATION_KEYWORDS:
                    continuation = True
                last = out[-1]
                if last.type == OP and last.value in {"+", "-", "*", "/", ",", "(", "==", "!=", "<", "<=", ">", ">=", "="}:
                    continuation = True

            if not continuation:
                if prev_logical_had_tokens:
                    out.append(Token(NEWLINE, "\n", line_no, 1))
                if indent > indent_stack[-1]:
                    indent_stack.append(indent)
                    out.append(Token(INDENT, indent, line_no, 1))
                else:
                    while indent < indent_stack[-1]:
                        indent_stack.pop()
                        out.append(Token(DEDENT, indent, line_no, 1))
                    if indent != indent_stack[-1]:
                        raise LexError("inconsistent indentation", line_no, 1)

            out.extend(line_tokens)
            paren_depth += sum(1 for t in line_tokens if t.type == OP and t.value == "(")
            paren_depth -= sum(1 for t in line_tokens if t.type == OP and t.value == ")")
            if paren_depth < 0:
                raise LexError("unbalanced ')'", line_no, 1)
            prev_logical_had_tokens = True

        last_line = self.source.count("\n") + 1
        if prev_logical_had_tokens:
            out.append(Token(NEWLINE, "\n", last_line, 1))
        while indent_stack[-1] > 0:
            indent_stack.pop()
            out.append(Token(DEDENT, 0, last_line, 1))
        out.append(Token(EOF, "", last_line, 1))
        return out

    # -- character-level scanning --------------------------------------------

    def _scan_line(self, text: str, line_no: int) -> Iterator[Token]:
        i = 0
        n = len(text)
        while i < n:
            ch = text[i]
            if ch in " \t":
                i += 1
                continue
            col = i + 1
            if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
                token, i = self._scan_number_or_ident(text, i, line_no, col)
                yield token
                continue
            if ch.isalpha() or ch == "_":
                j = i
                while j < n and (text[j].isalnum() or text[j] == "_"):
                    j += 1
                yield Token(IDENT, text[i:j], line_no, col)
                i = j
                continue
            two = text[i:i + 2]
            if two in _TWO_CHAR_OPS and two != "//":
                yield Token(OP, two, line_no, col)
                i += 2
                continue
            if ch in _ONE_CHAR_OPS:
                yield Token(OP, ch, line_no, col)
                i += 1
                continue
            raise LexError(f"unexpected character {ch!r}", line_no, col)

    def _scan_number_or_ident(self, text: str, i: int, line_no: int, col: int) -> tuple[Token, int]:
        """Scan a token starting with a digit: a plain number, a
        time-suffixed literal, or a digit-leading identifier such as
        ``5tuple``."""
        n = len(text)
        j = i
        while j < n and (text[j].isalnum() or text[j] == "_"):
            j += 1
        # Possible fractional part (only if the alnum run is pure digits).
        run = text[i:j]
        if run.isdigit() and j < n and text[j] == "." and j + 1 < n and text[j + 1].isdigit():
            k = j + 1
            while k < n and text[k].isdigit():
                k += 1
            frac = text[i:k]
            # Optional exponent.
            if k < n and text[k] in "eE":
                m = k + 1
                if m < n and text[m] in "+-":
                    m += 1
                if m < n and text[m].isdigit():
                    while m < n and text[m].isdigit():
                        m += 1
                    return Token(NUMBER, float(text[i:m]), line_no, col), m
            return Token(NUMBER, float(frac), line_no, col), k
        if run.isdigit():
            return Token(NUMBER, int(run), line_no, col), j
        # Mixed digits+letters: split into leading digits and suffix.
        digits = 0
        while digits < len(run) and run[digits].isdigit():
            digits += 1
        suffix = run[digits:]
        if suffix in TIME_UNITS_NS:
            value = int(run[:digits]) * TIME_UNITS_NS[suffix]
            return Token(NUMBER, value, line_no, col), j
        # Identifier that begins with digits, e.g. ``5tuple``.
        return Token(IDENT, run, line_no, col), j


def tokenize(source: str) -> list[Token]:
    """Convenience wrapper: lex ``source`` to a token list."""
    return Lexer(source).tokens()
