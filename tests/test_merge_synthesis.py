"""Merge-synthesis unit tests: strategies, aux registers, merge math."""

import pytest

from repro.core.linearity import analyze_fold
from repro.core.merge_synthesis import (
    init_aux,
    merge_values,
    synthesize_merge,
    update_aux,
)
from repro.core.errors import LinearityError
from repro.core.parser import parse_program
from repro.core.semantics import resolve_program

from tests.conftest import make_record


def spec_for(source, exact_history=False):
    rp = resolve_program(parse_program(source))
    for query in rp.queries:
        if query.folds:
            return synthesize_merge(analyze_fold(query.folds[0]),
                                    exact_history=exact_history)
    raise AssertionError("no fold")


COUNT_SRC = "SELECT COUNT GROUPBY srcip"
EWMA_SRC = (
    "def ewma (e, (tin, tout)): e = (1 - alpha) * e + alpha * (tout - tin)\n"
    "SELECT 5tuple, ewma GROUPBY 5tuple"
)
NONMT_SRC = (
    "def nonmt ((maxseq, nm), tcpseq):\n"
    "    if maxseq > tcpseq: nm = nm + 1\n"
    "    maxseq = max(maxseq, tcpseq)\n"
    "SELECT 5tuple, nonmt GROUPBY 5tuple"
)
COUPLED_SRC = (
    "def f ((a, b), pkt_len):\n"
    "    a = a + b\n"
    "    b = b + pkt_len\n"
    "SELECT srcip, f GROUPBY srcip"
)


class TestStrategySelection:
    def test_count_is_additive(self):
        assert spec_for(COUNT_SRC).strategy == "additive"

    def test_ewma_is_scale(self):
        assert spec_for(EWMA_SRC).strategy == "scale"

    def test_coupled_is_matrix(self):
        assert spec_for(COUPLED_SRC).strategy == "matrix"

    def test_nonlinear_is_list(self):
        spec = spec_for(NONMT_SRC)
        assert spec.strategy == "list"
        assert not spec.mergeable
        assert not spec.exact


class TestAuxRegisters:
    def test_additive_needs_no_aux(self):
        assert spec_for(COUNT_SRC).aux_registers() == 0

    def test_scale_needs_one_register_per_var(self):
        assert spec_for(EWMA_SRC).aux_registers() == 1

    def test_matrix_needs_k_squared(self):
        assert spec_for(COUPLED_SRC).aux_registers() == 4

    def test_exact_history_adds_log_registers(self):
        source = (
            "def outofseq ((lastseq, oos), (tcpseq, payload_len)):\n"
            "    if lastseq + 1 != tcpseq: oos = oos + 1\n"
            "    lastseq = tcpseq + payload_len\n"
            "SELECT 5tuple, outofseq GROUPBY 5tuple"
        )
        plain = spec_for(source)
        exact = spec_for(source, exact_history=True)
        assert plain.aux_registers() == 0       # additive, no history log
        assert exact.aux_registers() > 0
        assert exact.exact and not plain.exact


class TestMergeMath:
    def test_additive_merge_adds_deltas(self):
        spec = spec_for(COUNT_SRC)
        merged = merge_values(
            spec,
            evicted={"COUNT": 5},
            aux=init_aux(spec),
            backing={"COUNT": 7},
            init_state={"COUNT": 0},
        )
        assert merged["COUNT"] == 12

    def test_merge_with_no_backing_returns_evicted(self):
        spec = spec_for(COUNT_SRC)
        merged = merge_values(spec, {"COUNT": 5}, init_aux(spec), None, {"COUNT": 0})
        assert merged == {"COUNT": 5}

    def test_scale_merge_matches_paper_formula(self):
        """s_correct = s_new + (1-alpha)^N (s_d - s_0) for the EWMA (§3.2)."""
        spec = spec_for(EWMA_SRC)
        alpha = 0.25
        params = {"alpha": alpha}
        aux = init_aux(spec)
        state = {"e": 0.0}
        lat_values = [100.0, 200.0, 50.0]
        for lat in lat_values:
            record = make_record(tin=0, tout=lat)
            update_aux(spec, aux, state, record, params)
            state = {"e": (1 - alpha) * state["e"] + alpha * lat}
        s_d = 40.0
        merged = merge_values(spec, state, aux, {"e": s_d}, {"e": 0.0}, params)
        expected = state["e"] + (1 - alpha) ** len(lat_values) * (s_d - 0.0)
        assert merged["e"] == pytest.approx(expected)

    def test_matrix_merge_composes(self):
        """Cross-coupled fold: merged value equals replaying all packets."""
        spec = spec_for(COUPLED_SRC)
        params = {}

        def step(state, x):
            return {"a": state["a"] + state["b"], "b": state["b"] + x}

        # "True" run: packets 1..6 in one pass.
        true_state = {"a": 0, "b": 0}
        for x in [1, 2, 3, 4, 5, 6]:
            true_state = step(true_state, x)

        # Split run: epoch 1 = packets 1-3 (evicted), epoch 2 = 4-6.
        def run_epoch(xs):
            aux = init_aux(spec)
            state = {"a": 0, "b": 0}
            for x in xs:
                record = make_record(pkt_len=x)
                update_aux(spec, aux, state, record, params)
                state = step(state, x)
            return state, aux

        first, aux1 = run_epoch([1, 2, 3])
        backing = merge_values(spec, first, aux1, None, {"a": 0, "b": 0}, params)
        second, aux2 = run_epoch([4, 5, 6])
        merged = merge_values(spec, second, aux2, backing, {"a": 0, "b": 0}, params)
        assert merged["a"] == pytest.approx(true_state["a"])
        assert merged["b"] == pytest.approx(true_state["b"])

    def test_merge_on_list_strategy_raises(self):
        spec = spec_for(NONMT_SRC)
        with pytest.raises(LinearityError):
            merge_values(spec, {}, {}, {}, {})


class TestPacketFieldCollection:
    def test_fields_collected_for_replay(self):
        spec = spec_for(EWMA_SRC)
        assert set(spec.packet_fields) == {"tin", "tout"}
