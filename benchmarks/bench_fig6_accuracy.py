"""FIG6 — accuracy of a non-linear-in-state query vs cache size.

Reproduces Fig. 6: for a query that cannot be merged (the paper's
``nonmt``-style fold), accuracy = % of keys with a single value segment
(valid keys), for 8-way caches of varying size and query windows of
1/3/5 minutes (expressed as fractions of the trace).

The paper's reference point: with a 32-Mbit cache, accuracy improves
from 74% (5-min window) to 84% (1-min window).
"""

from __future__ import annotations

import pytest

from repro.analysis.accuracy import (
    WINDOW_FRACTIONS,
    run_accuracy_sweep,
    shape_checks,
    _window_validity,
)
from repro.analysis.report import format_percent, format_table
from repro.switch.kvstore.cache import CacheGeometry
from repro.traffic.caida import CaidaTraceConfig, generate_key_stream

SCALE = 1.0 / 256.0
CAPACITIES = tuple(1 << e for e in range(16, 22))


@pytest.fixture(scope="module")
def sweep(report):
    data = run_accuracy_sweep(scale=SCALE, capacities=CAPACITIES)
    rows = []
    for paper_pairs in CAPACITIES:
        mbit = paper_pairs * 128 / (1 << 20)
        row = [f"{mbit:.0f}"]
        for window in ("1min", "3min", "5min"):
            match = [p for p in data.points
                     if p.window == window and p.paper_pairs == paper_pairs]
            row.append(format_percent(match[0].accuracy, digits=1))
        rows.append(row)
    table = format_table(
        ["Mbit", "1 min", "3 min", "5 min"],
        rows,
        title=f"Fig. 6 — accuracy (% valid keys) for a non-linear query, "
              f"8-way cache (trace scale {SCALE:.4g})",
    )
    at32 = {w: [p for p in data.points
                if p.window == w and p.paper_pairs == (1 << 18)][0].accuracy
            for w in ("1min", "5min")}
    summary = (
        "paper @ 32 Mbit: 74% (5-min) -> 84% (1-min)\n"
        f"ours  @ 32 Mbit: {format_percent(at32['5min'], 1)} (5-min) -> "
        f"{format_percent(at32['1min'], 1)} (1-min)\n"
        f"shape checks: {shape_checks(data) or 'all hold'}"
    )
    report("FIG6: non-linear query accuracy", table + "\n" + summary)
    return data


def test_fig6_shape_holds(sweep):
    assert shape_checks(sweep) == []


def test_fig6_shorter_windows_more_accurate_at_32mbit(sweep):
    """The paper's quoted comparison is 1-min vs 5-min (74% -> 84%);
    intermediate windows can wobble a little on the synthetic trace
    (prefix length-bias, see EXPERIMENTS.md)."""
    accs = {w: [p for p in sweep.points
                if p.window == w and p.paper_pairs == (1 << 18)][0].accuracy
            for w in WINDOW_FRACTIONS}
    assert accs["1min"] >= accs["5min"] - 0.01
    # The quoted gain is ~10pp; ours must be positive and material.
    assert accs["1min"] - accs["5min"] >= 0.03


def test_fig6_accuracy_band_plausible(sweep):
    """The 32-Mbit accuracies should land in the paper's band
    (tens-of-percent, not ~0 or exactly 1)."""
    for point in sweep.points:
        if point.paper_pairs == (1 << 18):
            assert 0.40 <= point.accuracy <= 1.0


@pytest.fixture(scope="module")
def window_keys():
    # Consumed natively (vector engine under the auto dispatch).
    return generate_key_stream(CaidaTraceConfig(scale=1 / 2048))


def test_window_validity_throughput(benchmark, window_keys, sweep):
    geometry = CacheGeometry.set_associative(1 << 10, ways=8)

    def run():
        return _window_validity(window_keys, geometry, seed=0)

    valid, total = benchmark.pedantic(run, rounds=3, iterations=1)
    assert 0 < valid <= total
