#!/usr/bin/env python
"""Quickstart: write a performance query, compile it, run it.

Walks the full co-design loop from the paper on a synthetic datacenter
workload:

1. write a declarative query (per-flow packet/byte counters, Fig. 2
   row 1);
2. inspect the compiled switch configuration — parser fields,
   match-action stage, key-value store layout, merge strategy — and
   the compile-time deployability report (stable diagnostic codes,
   see DIAGNOSTICS.md);
3. open a streaming :class:`TelemetrySession` and ingest the trace in
   batches, pulling a mid-stream result snapshot along the way (the
   way a live monitor would);
4. read final results from the backing store and check them against
   the exact reference interpreter.

Run:  python examples/quickstart.py
"""

from repro import CacheGeometry, QueryEngine
from repro.telemetry.results import compare_tables
from repro.traffic.datacenter import DatacenterConfig, DatacenterWorkload

QUERY = """
SELECT COUNT, SUM(pkt_len) GROUPBY srcip, dstip
"""


def main() -> None:
    # A ~1/10-second datacenter workload: 4 racks, heavy-tailed flows.
    workload = DatacenterWorkload(DatacenterConfig(
        n_flows=300, duration_ns=100_000_000, seed=1))
    table = workload.observation_table()
    print(f"trace: {len(table)} packet observations, "
          f"{table.unique_keys(('srcip', 'dstip'))} src-dst pairs\n")

    # Compile the query and show what would be installed on the switch.
    engine = QueryEngine(
        QUERY,
        # A deliberately small cache so evictions (and merges) happen:
        geometry=CacheGeometry.set_associative(64, ways=8),
    )
    print("switch configuration:")
    print(engine.describe_plan())
    print()

    # Deployability verdicts, decided before any packet flows: §3.2
    # mergeability, the §4 SRAM budget, engine/session compatibility.
    # Hard errors (RPR-E*) would make engine.open() raise; this query
    # only accrues the per-stage accounting and hygiene notes.
    print("deployability diagnostics:")
    print(engine.diagnostics_report.format())
    assert not engine.diagnostics_report.has_errors
    print()

    # Stream the observations through the modelled pipeline as a
    # telemetry session: ingest in batches, snapshot mid-stream, close
    # for the final report.  (engine.run(...) is exactly this, in one
    # call, for bounded traces.)
    session = engine.open(window=4096)
    records = table.records
    half = len(records) // 2
    session.ingest(records[:half])
    midway = session.results()
    print(f"mid-stream snapshot after {half} observations: "
          f"{len(midway.result)} flow pairs so far")
    session.ingest(records[half:])
    report = session.close()
    report.ground_truth = engine.run_exact(records)

    stats = report.cache_stats[report.result_name]
    print(f"cache: {stats.accesses} accesses, {stats.hits} hits, "
          f"{stats.evictions} evictions "
          f"({100 * stats.eviction_fraction:.1f}% of packets)")
    print(f"backing store writes: {report.backing_writes[report.result_name]}\n")

    # Results live in the backing store (§3.2) — top talkers by bytes:
    top = sorted(report.result.rows, key=lambda r: -r["SUM(pkt_len)"])[:5]
    print("top 5 src-dst pairs by bytes:")
    for row in top:
        print(f"  {row['srcip']:>10x} -> {row['dstip']:<10x}  "
              f"pkts={row['COUNT']:<6} bytes={row['SUM(pkt_len)']}")

    # The merge machinery makes the split store exact for linear folds:
    diff = compare_tables(report.result, report.ground_truth[report.result_name])
    print(f"\nvs exact interpreter: {diff.describe()}")
    assert diff.exact


if __name__ == "__main__":
    main()
