"""Built-in aggregation sugar: ``COUNT``, ``SUM``, ``AVG``, ``MAX``, ``MIN``.

The paper writes ``SELECT COUNT GROUPBY 5tuple`` and ``SUM(pkt_len)``
"for ease of illustration ... for fold functions that count unique
packets or sum up a packet field across packets" (Fig. 2 caption).
Semantic analysis rewrites these into ordinary :class:`FoldDef`
instances so the rest of the toolchain (linearity analysis, compiler,
interpreter, hardware model) sees only one aggregation mechanism.

Each sugar form expands to a fold over a synthetic packet parameter
``__arg0`` which the instantiation binds to the argument expression
(``COUNT`` takes no argument).  The generated folds:

``COUNT``    -> ``acc = acc + 1``                       (linear, A=1)
``SUM(e)``   -> ``acc = acc + e``                       (linear, A=1)
``AVG(e)``   -> ``sum = sum + e; cnt = cnt + 1``        (linear; read-time sum/cnt)
``MAX(e)``   -> ``acc = max(acc, e)``                   (not linear in state)
``MIN(e)``   -> ``acc = min(acc, e)``                   (not linear in state)

``MAX``/``MIN`` are deliberately non-linear examples: they exercise the
multi-value-list / invalid-key path of the backing store (§3.2, "merge
functions that are not linear in state").
"""

from __future__ import annotations

from .ast_nodes import Assign, BinOp, Call, Expr, FoldDef, Name, Number, format_expr

#: Names recognised as aggregation sugar inside SELECT lists.
AGGREGATE_SUGAR = frozenset({"COUNT", "SUM", "AVG", "MAX", "MIN"})

#: Synthetic packet-parameter name bound to the sugar argument.
ARG = "__arg0"


def sugar_column_name(func: str, arg: Expr | None) -> str:
    """Canonical result-column name for a sugar aggregation.

    The paper later refers to these columns by their surface syntax —
    ``R1.COUNT``, ``WHERE SUM(tout-tin) > L`` — so the name must be a
    deterministic function of the expression text.
    """
    if arg is None:
        return func
    return f"{func}({format_expr(arg)})"


def make_count_fold(name: str) -> FoldDef:
    """``COUNT``: one state variable incremented per record."""
    return FoldDef(
        name=name,
        state_params=(name,),
        packet_params=(),
        body=(Assign(name, BinOp("+", Name(name), Number(1))),),
    )


def make_sum_fold(name: str) -> FoldDef:
    """``SUM(e)``: accumulate the bound argument expression."""
    return FoldDef(
        name=name,
        state_params=(name,),
        packet_params=(ARG,),
        body=(Assign(name, BinOp("+", Name(name), Name(ARG))),),
    )


def make_avg_fold(name: str) -> FoldDef:
    """``AVG(e)``: sum and count; the ratio is computed at read time.

    State variables are ``<name>.sum`` spelled ``__sum``/``__cnt``
    internally; the resolver attaches a read-time expression dividing
    them.
    """
    sum_var = f"{name}__sum"
    cnt_var = f"{name}__cnt"
    return FoldDef(
        name=name,
        state_params=(sum_var, cnt_var),
        packet_params=(ARG,),
        body=(
            Assign(sum_var, BinOp("+", Name(sum_var), Name(ARG))),
            Assign(cnt_var, BinOp("+", Name(cnt_var), Number(1))),
        ),
    )


def make_max_fold(name: str) -> FoldDef:
    """``MAX(e)``: running maximum — intentionally not linear in state.

    State initialises to −∞ so the first packet's value wins (the
    hardware models this as an initialise-on-insert, §3.2).
    """
    return FoldDef(
        name=name,
        state_params=(name,),
        packet_params=(ARG,),
        body=(Assign(name, Call("max", (Name(name), Name(ARG)))),),
        inits={name: float("-inf")},
    )


def make_min_fold(name: str) -> FoldDef:
    """``MIN(e)``: running minimum — intentionally not linear in state."""
    return FoldDef(
        name=name,
        state_params=(name,),
        packet_params=(ARG,),
        body=(Assign(name, Call("min", (Name(name), Name(ARG)))),),
        inits={name: float("inf")},
    )


_FACTORIES = {
    "COUNT": make_count_fold,
    "SUM": make_sum_fold,
    "AVG": make_avg_fold,
    "MAX": make_max_fold,
    "MIN": make_min_fold,
}


def make_sugar_fold(func: str, column_name: str) -> FoldDef:
    """Build the fold definition for aggregation sugar ``func``.

    Args:
        func: One of :data:`AGGREGATE_SUGAR`.
        column_name: The result-column name (also used as the fold's
            internal name so diagnostics read naturally).

    Raises:
        KeyError: if ``func`` is not a known sugar form.
    """
    return _FACTORIES[func](column_name)
