"""The paper's software half: the performance query language.

Pipeline: text → :mod:`.lexer` → :mod:`.parser` → AST
(:mod:`.ast_nodes`) → :mod:`.semantics` (resolution + checks) →
:mod:`.linearity` (linear-in-state analysis) + :mod:`.merge_synthesis`
→ :mod:`.compiler` (switch configuration, :mod:`.plan`).
:mod:`.interpreter` evaluates resolved programs exactly.
"""

from .ast_nodes import Program, format_program
from .compiler import CompileOptions, compile_program
from .errors import (
    CompileError,
    InterpreterError,
    LexError,
    LinearityError,
    ParseError,
    QueryError,
    SemanticError,
)
from .interpreter import Interpreter, ResultTable, run_query
from .linearity import LinearityResult, analyze_fold, if_convert
from .merge_synthesis import MergeSpec, synthesize_merge
from .parser import parse_expression, parse_program, parse_query
from .semantics import ResolvedProgram, resolve_program

__all__ = [
    "CompileError",
    "CompileOptions",
    "Interpreter",
    "InterpreterError",
    "LexError",
    "LinearityError",
    "LinearityResult",
    "MergeSpec",
    "ParseError",
    "Program",
    "QueryError",
    "ResolvedProgram",
    "ResultTable",
    "SemanticError",
    "analyze_fold",
    "compile_program",
    "format_program",
    "if_convert",
    "parse_expression",
    "parse_program",
    "parse_query",
    "resolve_program",
    "run_query",
    "synthesize_merge",
]
