"""Periodic-refresh tests (§3.2: "keys can be periodically evicted to
ensure the backing store is fresh")."""

import pytest

from repro.core.compiler import compile_program
from repro.core.errors import HardwareError
from repro.core.interpreter import Interpreter
from repro.core.parser import parse_program
from repro.core.semantics import resolve_program
from repro.switch.kvstore.cache import CacheGeometry
from repro.switch.kvstore.split import SplitKeyValueStore
from repro.telemetry.results import compare_tables
from repro.telemetry.runtime import QueryEngine

from tests.conftest import synthetic_trace

COUNT = "SELECT COUNT GROUPBY srcip"
GEOM = CacheGeometry.set_associative(64, ways=8)


def build_store(source=COUNT, refresh_interval=None, geometry=GEOM):
    rp = resolve_program(parse_program(source))
    stage = compile_program(rp).groupby_stages[0]
    return rp, SplitKeyValueStore(stage, geometry,
                                  refresh_interval=refresh_interval)


class TestFreshness:
    def test_backing_store_fresh_mid_run(self):
        """After a refresh, the backing store reflects every processed
        packet — without waiting for end-of-run finalize."""
        trace = synthetic_trace(n_packets=1000, n_flows=20)
        rp, store = build_store(refresh_interval=100)
        counted = {}
        for i, record in enumerate(trace):
            store.process(record)
            counted[record.srcip] = counted.get(record.srcip, 0) + 1
            if (i + 1) % 100 == 0:
                # Freshness invariant: the backing store matches the
                # exact per-key counts at each refresh boundary.
                for key, expected in counted.items():
                    state = store.backing.value_of((key,), "COUNT")
                    assert state is not None and state["COUNT"] == expected

    def test_refresh_counted(self):
        trace = synthetic_trace(n_packets=500, n_flows=10)
        rp, store = build_store(refresh_interval=50)
        for record in trace:
            store.process(record)
        assert store.refreshes == 500 // 50

    def test_final_result_still_exact(self):
        trace = synthetic_trace(n_packets=2000, n_flows=50)
        rp, store = build_store(refresh_interval=37)  # awkward interval
        for record in trace:
            store.process(record)
        truth = Interpreter(rp).run_result(trace.records)
        diff = compare_tables(store.result_table(), truth)
        assert diff.exact, diff.describe()

    def test_invalid_interval_rejected(self):
        with pytest.raises(HardwareError):
            build_store(refresh_interval=0)


class TestCleanEntrySkipping:
    def test_idle_entries_not_rewritten(self):
        """Entries untouched since the last refresh must not produce
        backing-store writes (or spurious segments)."""
        trace = synthetic_trace(n_packets=300, n_flows=5)
        rp, store = build_store(refresh_interval=None,
                                geometry=CacheGeometry.fully_associative(16))
        for record in trace:
            store.process(record)
        store.refresh()
        writes_after_first = store.backing.writes
        store.refresh()  # nothing processed in between
        assert store.backing.writes == writes_after_first

    def test_nonlinear_validity_not_poisoned_by_idle_refresh(self):
        source = "SELECT MAX(tcpseq) GROUPBY srcip"
        trace = synthetic_trace(n_packets=200, n_flows=4)
        rp, store = build_store(source, refresh_interval=None,
                                geometry=CacheGeometry.fully_associative(16))
        for record in trace:
            store.process(record)
        store.refresh()
        store.refresh()  # idle — must not create a second segment
        store.finalize()
        for key in store.backing.keys():
            assert store.backing.is_valid(key)


class TestNonMergeableTradeoff:
    def test_refresh_invalidates_long_lived_nonlinear_keys(self):
        """For non-mergeable folds, refresh trades validity for
        freshness: keys spanning a refresh boundary become invalid."""
        source = "SELECT MAX(tcpseq) GROUPBY srcip"
        trace = synthetic_trace(n_packets=1000, n_flows=8)
        rp, store = build_store(source, refresh_interval=100,
                                geometry=CacheGeometry.fully_associative(64))
        for record in trace:
            store.process(record)
        store.finalize()
        # Every flow spans many refresh intervals here.
        assert store.backing.accuracy < 0.5
        # ... but each segment is still individually correct (§3.2):
        # segments per key = number of refreshes it was dirty in.
        for key in store.backing.keys():
            segments = store.backing.segments_of(key, "MAX(tcpseq)")
            assert len(segments) >= 2


class TestThroughEngine:
    def test_engine_passes_refresh_interval(self):
        trace = synthetic_trace(n_packets=1000, n_flows=30)
        engine = QueryEngine(COUNT, geometry=GEOM, refresh_interval=100)
        report = engine.run(trace.records, with_ground_truth=True)
        truth = report.ground_truth[report.result_name]
        assert compare_tables(report.result, truth).exact
        # Refresh inflates the write rate — the §3.2 freshness cost.
        plain = QueryEngine(COUNT, geometry=GEOM).run(trace.records)
        assert (report.backing_writes[report.result_name] >
                plain.backing_writes[plain.result_name])
