"""The programmable key-value store: split cache/backing design (§3.2).

:mod:`.cache` — n×m bucketed LRU SRAM cache (Fig. 4);
:mod:`.backing` — DRAM store with merge / value-list semantics;
:mod:`.split` — the combined engine for one ``GROUPBY`` stage (Fig. 3).
"""

from .backing import BackingStore, KeyEntry
from .sketch import CountMinSketch, SketchGeometry
from .cache import (
    CacheGeometry,
    CacheStats,
    Entry,
    KeyValueCache,
    mix_key,
    simulate_eviction_count,
    splitmix64,
)
from .split import CacheValue, SplitKeyValueStore

__all__ = [
    "BackingStore",
    "CacheGeometry",
    "CacheStats",
    "CacheValue",
    "CountMinSketch",
    "SketchGeometry",
    "Entry",
    "KeyEntry",
    "KeyValueCache",
    "SplitKeyValueStore",
    "mix_key",
    "simulate_eviction_count",
    "splitmix64",
]
