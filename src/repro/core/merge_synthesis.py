"""Merge-function synthesis for cache evictions (paper §3.2).

When the SRAM cache evicts a key, its value must be folded into the
backing store's value for that key.  For linear-in-state folds

    S = A·S + B

the correct merged value after ``N`` in-cache packets is

    S_correct = S_new + P · (S_backing − S_0),      P = A_N · ... · A_1

(the paper derives the EWMA special case ``P = (1−α)^N``).  This module
turns a :class:`~repro.core.linearity.LinearityResult` into an
executable :class:`MergeSpec` and provides the runtime operations the
hardware model invokes:

* :func:`init_aux` — auxiliary registers added to the cache value at
  key insertion (the running product ``P``, plus the optional
  first-``k``-packets log for exact history handling);
* :func:`update_aux` — per-packet auxiliary update (``P ← A(pkt)·P``),
  executed by the same ALU pass as the state update;
* :func:`merge_values` — the backing-store merge at eviction time.

Strategies
----------

``additive``   ``A ≡ I`` (counters, sums): no ``P`` register needed,
               merge is plain addition — the common fast path.
``scale``      ``A`` diagonal (EWMA): one product register per
               variable.
``matrix``     general ``A``: a ``k×k`` product matrix.
``list``       not linear in state: no merge; the backing store keeps a
               list of per-epoch values and marks multi-epoch keys
               invalid (§3.2, "Operations that are not linear in
               state").

History correction (beyond the paper)
-------------------------------------

When ``A``/``B`` reference history variables (footnote 4, e.g. the
``outofseq`` fold reads the previous packet's ``lastseq``), the first
packet after a (re)insertion evaluates them against freshly initialised
history — a small per-eviction error the paper accepts.  With
``exact_history`` enabled, the cache logs the packet fields consumed by
the first ``k`` packets of each epoch, together with a snapshot of the
state after those packets and a product ``P`` restricted to packets
``k+1..N``; the merge then *replays* the first ``k`` packets against
the true backing state and applies the affine composition to the rest,
recovering exactness (this is the mechanism the Marple follow-on paper
adopts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from .ast_nodes import ColumnRef, Expr, FieldRef, walk
from .errors import LinearityError
from .eval_expr import EvalContext, Numeric, evaluate
from .linearity import LinearityResult

AuxState = dict[str, object]
State = dict[str, Numeric]


@dataclass(frozen=True)
class MergeSpec:
    """Executable description of how to merge evicted values."""

    strategy: str                          # additive | scale | matrix | list
    order: tuple[str, ...]                 # mergeable variables, layout order
    history_vars: tuple[str, ...]
    history_depth: int                     # k (0 = coefficients are packet-pure)
    matrix: dict[tuple[str, str], Expr] = field(default_factory=dict)
    offset: dict[str, Expr] = field(default_factory=dict)
    update_exprs: dict[str, Expr] = field(default_factory=dict)
    packet_fields: tuple[str, ...] = ()    # fields to log for exact history
    exact_history: bool = False

    @property
    def mergeable(self) -> bool:
        return self.strategy != "list"

    @property
    def exact(self) -> bool:
        """True when merged backing values are exactly correct."""
        if self.strategy == "list":
            return False
        return self.history_depth == 0 or self.exact_history

    def aux_registers(self) -> int:
        """Number of extra value registers the cache entry carries,
        counted for the hardware value-layout model."""
        count = 0
        if self.strategy == "scale":
            count += len(self.order)
        elif self.strategy == "matrix":
            count += len(self.order) * len(self.order)
        if self.exact_history and self.history_depth > 0:
            count += self.history_depth * max(1, len(self.packet_fields))
            count += len(self.order) + len(self.history_vars)  # state snapshot
            count += 1  # packets-seen counter
        return count


def synthesize_merge(result: LinearityResult, exact_history: bool = False) -> MergeSpec:
    """Build the merge spec for an analysed fold."""
    fields = _packet_fields(result.update_exprs)
    if not result.linear:
        return MergeSpec(
            strategy="list",
            order=(),
            history_vars=tuple(result.history),
            history_depth=result.history_depth,
            update_exprs=result.update_exprs,
            packet_fields=fields,
        )
    if result.matrix_kind == "identity":
        strategy = "additive"
    elif result.matrix_kind == "diagonal":
        strategy = "scale"
    else:
        strategy = "matrix"
    return MergeSpec(
        strategy=strategy,
        order=result.order,
        history_vars=tuple(result.history),
        history_depth=result.history_depth,
        matrix=dict(result.matrix),
        offset=dict(result.offset),
        update_exprs=result.update_exprs,
        packet_fields=fields,
        exact_history=exact_history and result.history_depth > 0,
    )


def _packet_fields(update_exprs: Mapping[str, Expr]) -> tuple[str, ...]:
    names: list[str] = []
    for expr in update_exprs.values():
        for node in walk(expr):
            if isinstance(node, FieldRef) and node.name not in names:
                names.append(node.name)
            elif isinstance(node, ColumnRef) and node.table is None and node.name not in names:
                names.append(node.name)
    return tuple(names)


# ---------------------------------------------------------------------------
# Runtime: auxiliary registers
# ---------------------------------------------------------------------------


def init_aux(spec: MergeSpec) -> AuxState:
    """Fresh auxiliary registers for a newly inserted cache entry."""
    aux: AuxState = {}
    if spec.strategy == "scale":
        aux["P"] = {v: 1.0 for v in spec.order}
    elif spec.strategy == "matrix":
        aux["P"] = {
            (i, j): (1.0 if i == j else 0.0) for i in spec.order for j in spec.order
        }
    if spec.exact_history:
        aux["log"] = []            # field dicts of the first k packets
        aux["snapshot"] = None     # state after the first k packets
        aux["seen"] = 0
    return aux


def update_aux(spec: MergeSpec, aux: AuxState, pre_state: State,
               row: object, params: Mapping[str, Numeric]) -> None:
    """Per-packet auxiliary update, evaluated against *pre-update* state.

    Must be called before the state update is applied (the coefficient
    matrix ``A`` may read history variables' pre-values).
    """
    if spec.strategy == "list":
        return
    ctx = EvalContext(row=row, state=pre_state, params=params)

    in_replay_prefix = False
    if spec.exact_history:
        seen = aux["seen"]  # type: ignore[assignment]
        if seen < spec.history_depth:
            aux["log"].append(  # type: ignore[union-attr]
                {f: ctx.field(f) for f in spec.packet_fields}
            )
            in_replay_prefix = True
        aux["seen"] = seen + 1  # type: ignore[assignment]

    # The product P only covers packets *after* the replay prefix.
    if in_replay_prefix:
        return
    if spec.strategy == "scale":
        product: dict[str, float] = aux["P"]  # type: ignore[assignment]
        for var in spec.order:
            coeff = spec.matrix.get((var, var))
            a = evaluate(coeff, ctx) if coeff is not None else 0.0
            product[var] = a * product[var]
    elif spec.strategy == "matrix":
        product = aux["P"]  # type: ignore[assignment]
        step = {
            (i, j): (evaluate(spec.matrix[(i, j)], ctx) if (i, j) in spec.matrix else 0.0)
            for i in spec.order for j in spec.order
        }
        new_product = {}
        for i in spec.order:
            for j in spec.order:
                new_product[(i, j)] = sum(
                    step[(i, k)] * product[(k, j)] for k in spec.order
                )
        aux["P"] = new_product


def note_post_prefix_state(spec: MergeSpec, aux: AuxState, state: State) -> None:
    """Record the state snapshot right after the replay prefix completes
    (exact-history mode only); call after each state update."""
    if spec.exact_history and aux["snapshot"] is None and aux["seen"] >= spec.history_depth:
        aux["snapshot"] = dict(state)


# ---------------------------------------------------------------------------
# Runtime: the merge proper
# ---------------------------------------------------------------------------


def merge_values(
    spec: MergeSpec,
    evicted: State,
    aux: AuxState,
    backing: State | None,
    init_state: State,
    params: Mapping[str, Numeric] | None = None,
) -> State:
    """Merge an evicted cache value into the backing-store value.

    Args:
        spec: The fold's merge spec (must be mergeable).
        evicted: State of the evicted cache entry (after N packets).
        aux: The entry's auxiliary registers.
        backing: Current backing-store state for the key, or ``None``
            if the key has never been evicted before.
        init_state: The fold's initial state ``S_0``.
        params: Query-parameter bindings (needed only for exact-history
            replay).

    Returns:
        The new backing-store state.
    """
    if spec.strategy == "list":
        raise LinearityError(
            "merge_values called for a fold that is not linear in state; "
            "use the backing store's value-list path instead"
        )
    if backing is None:
        return dict(evicted)

    if spec.exact_history and aux.get("log"):
        return _merge_with_replay(spec, evicted, aux, backing, init_state, params or {})

    merged = dict(evicted)
    if spec.strategy == "additive":
        for var in spec.order:
            merged[var] = evicted[var] + (backing[var] - init_state[var])
    elif spec.strategy == "scale":
        product: dict[str, float] = aux["P"]  # type: ignore[assignment]
        for var in spec.order:
            merged[var] = evicted[var] + product[var] * (backing[var] - init_state[var])
    else:  # matrix
        product = aux["P"]  # type: ignore[assignment]
        delta = {v: backing[v] - init_state[v] for v in spec.order}
        for i in spec.order:
            correction = sum(product[(i, j)] * delta[j] for j in spec.order)
            merged[i] = evicted[i] + correction
    # History variables depend only on the most recent packets, which
    # the cache saw: take the evicted copy (already in ``merged``).
    return merged


def _merge_with_replay(
    spec: MergeSpec,
    evicted: State,
    aux: AuxState,
    backing: State,
    init_state: State,
    params: Mapping[str, Numeric],
) -> State:
    """Exact merge for history-dependent folds (see module docstring)."""
    log: list[dict[str, Numeric]] = aux["log"]  # type: ignore[assignment]
    # 1. Replay the first k packets against the *true* prior state.
    state = dict(backing)
    for row in log:
        ctx = EvalContext(row=row, state=state, params=params)
        state = {v: evaluate(expr, ctx) for v, expr in spec.update_exprs.items()}
    snapshot: State | None = aux.get("snapshot")  # type: ignore[assignment]
    if snapshot is None:
        # The epoch ended inside the replay prefix: the replayed state is
        # already exact.
        return state
    # 2. Affinely compose the remaining packets (k+1..N):
    #    S_N = P·S_k + C with C recoverable from the cache's own run.
    merged = dict(evicted)
    if spec.strategy == "additive":
        for var in spec.order:
            merged[var] = evicted[var] + (state[var] - snapshot[var])
    elif spec.strategy == "scale":
        product: dict[str, float] = aux["P"]  # type: ignore[assignment]
        for var in spec.order:
            merged[var] = evicted[var] + product[var] * (state[var] - snapshot[var])
    else:
        product = aux["P"]  # type: ignore[assignment]
        delta = {v: state[v] - snapshot[v] for v in spec.order}
        for i in spec.order:
            correction = sum(product[(i, j)] * delta[j] for j in spec.order)
            merged[i] = evicted[i] + correction
    return merged
