"""Output-queue model tests: FIFO service, drops, depth accounting."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.queues import Departure, Drop, OutputQueue


class TestService:
    def test_idle_queue_serves_immediately(self):
        queue = OutputQueue(qid=0, rate_gbps=10.0)
        fate = queue.offer(1000, pkt_len=1250)
        assert isinstance(fate, Departure)
        # 1250 B at 10 Gb/s = 1 us.
        assert fate.tout == 1000 + 1000
        assert fate.qin == 0

    def test_back_to_back_packets_queue_up(self):
        queue = OutputQueue(qid=0, rate_gbps=10.0)
        first = queue.offer(0, pkt_len=1250)
        second = queue.offer(0, pkt_len=1250)
        assert second.tout == first.tout + 1000
        assert second.qin == 1

    def test_queue_drains_when_idle(self):
        queue = OutputQueue(qid=0, rate_gbps=10.0)
        queue.offer(0, pkt_len=1250)
        fate = queue.offer(10_000, pkt_len=1250)  # long gap: idle again
        assert fate.qin == 0
        assert fate.tout == 10_000 + 1000

    def test_fifo_departures_monotonic(self):
        queue = OutputQueue(qid=0, rate_gbps=10.0)
        departures = [queue.offer(t * 10, pkt_len=500) for t in range(50)]
        touts = [d.tout for d in departures if isinstance(d, Departure)]
        assert touts == sorted(touts)


class TestDrops:
    def test_full_buffer_drops(self):
        queue = OutputQueue(qid=0, rate_gbps=1.0, buffer_packets=2)
        fates = [queue.offer(0, pkt_len=1500) for _ in range(5)]
        drops = [f for f in fates if isinstance(f, Drop)]
        assert len(drops) == 3
        assert queue.drops == 3

    def test_drop_has_infinite_tout(self):
        queue = OutputQueue(qid=0, rate_gbps=1.0, buffer_packets=1)
        queue.offer(0, pkt_len=1500)
        queue.offer(0, pkt_len=1500)
        fate = queue.offer(0, pkt_len=1500)
        assert isinstance(fate, Drop)
        assert math.isinf(fate.tout)

    def test_drop_records_depth(self):
        queue = OutputQueue(qid=0, rate_gbps=1.0, buffer_packets=3)
        for _ in range(3):
            queue.offer(0, pkt_len=1500)
        fate = queue.offer(0, pkt_len=1500)
        assert isinstance(fate, Drop) and fate.qin == 3

    def test_drop_fraction(self):
        queue = OutputQueue(qid=0, rate_gbps=1.0, buffer_packets=1)
        for _ in range(4):
            queue.offer(0, pkt_len=1500)
        # The in-service packet occupies the single buffer slot, so the
        # remaining three arrivals all drop.
        assert queue.drop_fraction == pytest.approx(3 / 4)


class TestValidation:
    def test_zero_rate_rejected(self):
        with pytest.raises(ValueError):
            OutputQueue(qid=0, rate_gbps=0)

    def test_peak_depth_tracked(self):
        queue = OutputQueue(qid=0, rate_gbps=1.0, buffer_packets=100)
        for _ in range(10):
            queue.offer(0, pkt_len=1500)
        assert queue.peak_depth == 9


@settings(max_examples=50, deadline=None)
@given(arrivals=st.lists(
    st.tuples(st.integers(min_value=0, max_value=1000),
              st.integers(min_value=64, max_value=1500)),
    max_size=100))
def test_queue_invariants(arrivals):
    """For any nondecreasing arrival sequence: tout > tin, FIFO order,
    depth bounded by the buffer."""
    queue = OutputQueue(qid=0, rate_gbps=10.0, buffer_packets=16)
    now = 0
    last_tout = 0
    for gap, pkt_len in arrivals:
        now += gap
        fate = queue.offer(now, pkt_len)
        if isinstance(fate, Departure):
            assert fate.tout > fate.tin or pkt_len == 0
            assert fate.tout >= last_tout
            last_tout = fate.tout
            assert 0 <= fate.qin <= 16
        else:
            assert fate.qin >= 16
