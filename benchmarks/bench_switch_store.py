"""PERF — split key-value store: vector engine vs row engine.

The Fig. 2 catalog's hardware path is the split SRAM/DRAM store of
§3.2 — after PR 1 (query execution) and PR 2 (cache simulation) it was
the last per-packet Python loop in the system.  This bench runs every
Fig. 2 query end to end (compile → switch pipeline → backing store →
software stages) on a CAIDA-like columnar trace with both store
engines and asserts the acceptance criteria of the schedule-driven
vector store (:mod:`repro.switch.kvstore.vector_store`):

* **bit-identical observables** — every query's full table set,
  ``CacheStats``, accuracy, and backing-store writes equal on both
  engines (the vector store is exact, not an approximation);
* **>= 10x end-to-end** — the whole catalog, same trace, runs at
  least an order of magnitude faster with ``engine="vector"``.

A ``BENCH_switch_store.json`` artifact (per-query seconds and
packets/s, row vs vector, plus catalog totals) lands at the repo root
to anchor the performance trajectory.

The ``smoke`` test replays the catalog on a tiny trace and asserts
only bit-identity — it is what CI runs on every push.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.queries.catalog import FIG2_QUERIES
from repro.switch.kvstore.cache import CacheGeometry
from repro.telemetry.runtime import QueryEngine
from repro.traffic.caida import PAPER_PACKETS, CaidaTraceConfig, generate_caida_like

SEED = 2016_04
PACKETS = 300_000
SMOKE_PACKETS = 4_000
GEOMETRY = CacheGeometry.set_associative(1 << 12, ways=8)
SMOKE_GEOMETRY = CacheGeometry.set_associative(1 << 8, ways=8)

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_switch_store.json"


def _trace(n_packets: int):
    return generate_caida_like(
        CaidaTraceConfig(scale=n_packets / PAPER_PACKETS, seed=SEED))


def _counters(stats):
    return (stats.accesses, stats.hits, stats.misses,
            stats.insertions, stats.evictions)


def _run_catalog(trace, engine: str, geometry: CacheGeometry):
    """Every Fig. 2 query on one engine: observables + per-query secs."""
    observables = {}
    seconds = {}
    for entry in FIG2_QUERIES:
        qe = QueryEngine(entry.source, params=entry.default_params,
                         geometry=geometry, exact_history=True,
                         engine=engine)
        t0 = time.perf_counter()
        run = qe.run(trace, include_invalid=True)
        seconds[entry.name] = time.perf_counter() - t0
        observables[entry.name] = (
            {q: t.rows for q, t in run.tables.items()},
            {q: _counters(s) for q, s in run.cache_stats.items()},
            run.backing_writes,
            run.accuracy,
        )
    return observables, seconds


# -- smoke (CI): tiny trace, bit-identity only --------------------------------

def test_smoke_catalog_bit_identical():
    trace = _trace(SMOKE_PACKETS)
    row, _ = _run_catalog(trace, "row", SMOKE_GEOMETRY)
    vector, _ = _run_catalog(trace, "vector", SMOKE_GEOMETRY)
    assert vector == row


# -- acceptance: full catalog, bit-identity + >=10x ---------------------------

@pytest.fixture(scope="module")
def full_comparison(report):
    trace = _trace(PACKETS)
    n = len(trace)
    vector, vector_secs = _run_catalog(trace, "vector", GEOMETRY)
    row, row_secs = _run_catalog(trace, "row", GEOMETRY)
    row_total = sum(row_secs.values())
    vector_total = sum(vector_secs.values())

    payload = {
        "packets": n,
        "queries": len(FIG2_QUERIES),
        "geometry": GEOMETRY.describe(),
        "row_seconds": round(row_total, 3),
        "vector_seconds": round(vector_total, 3),
        "speedup": round(row_total / vector_total, 2),
        "per_query": {
            entry.name: {
                "row_seconds": round(row_secs[entry.name], 3),
                "vector_seconds": round(vector_secs[entry.name], 3),
                "row_pkts_per_s": round(n / row_secs[entry.name]),
                "vector_pkts_per_s": round(n / vector_secs[entry.name]),
                "speedup": round(
                    row_secs[entry.name] / vector_secs[entry.name], 2),
            }
            for entry in FIG2_QUERIES
        },
    }
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        f"Fig. 2 catalog hardware path ({len(FIG2_QUERIES)} queries, "
        f"{n} records, {GEOMETRY.describe()})",
        f"row store:    {row_total:6.2f}s",
        f"vector store: {vector_total:6.2f}s  -> "
        f"{row_total / vector_total:.1f}x",
    ]
    for entry in FIG2_QUERIES:
        pq = payload["per_query"][entry.name]
        lines.append(
            f"  {entry.name:>24}: {pq['row_pkts_per_s'] / 1e3:7.0f}k -> "
            f"{pq['vector_pkts_per_s'] / 1e6:6.2f}M pkt/s "
            f"({pq['speedup']:.1f}x)")
    lines.append(f"artifact: {ARTIFACT.name}")
    report("PERF: split-store engines (row vs vector)", "\n".join(lines))
    return row, vector, row_total, vector_total


def test_fig2_catalog_bit_identical(full_comparison):
    row, vector, _, _ = full_comparison
    assert vector == row


def test_fig2_catalog_vector_at_least_10x(full_comparison):
    """The PR's acceptance bar: the Fig. 2 catalog hardware path, end
    to end on one trace, at least 10x faster on the vector store."""
    _, _, row_total, vector_total = full_comparison
    assert row_total >= 10.0 * vector_total, (
        f"vector store only {row_total / vector_total:.1f}x faster "
        f"({row_total:.2f}s row vs {vector_total:.2f}s vector)")


def test_unique_key_heavy_query_past_10x(full_comparison):
    """Lazy columnar ResultTable floor: the unique-key-heavy
    ``per_flow_high_latency`` (one group per packet) was capped near
    9x by per-row dict materialisation; with lazy columnar tables it
    must clear 10x too (measured ~27x)."""
    row, vector, _, _ = full_comparison
    payload = json.loads(ARTIFACT.read_text())
    speedup = payload["per_query"]["per_flow_high_latency"]["speedup"]
    assert speedup >= 10.0, (
        f"per_flow_high_latency only {speedup:.1f}x — result "
        f"materialisation is back on the hot path")
