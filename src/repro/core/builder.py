"""Programmatic query construction — a fluent alternative to query text.

Operators embedding the system in tooling (dashboards, alerting
pipelines) should not have to assemble query *strings*.  The builder
produces exactly the same AST as the parser, so everything downstream
(semantics, linearity analysis, compiler, hardware) is shared::

    from repro.core.builder import field, param, query, program, fold

    ewma = fold("ewma", state=["lat_est"], packet=["tin", "tout"]).let(
        "lat_est",
        (1 - param("alpha")) * field("lat_est")
        + param("alpha") * (field("tout") - field("tin")),
    )

    q = (query()
         .select("5tuple", "ewma")
         .groupby("5tuple")
         .where(field("proto") == 6))

    prog = program(folds=[ewma], result=q)

Expression objects overload Python operators; comparisons build
predicate nodes (so ``field("proto") == 6`` is a query predicate, not a
Python bool).
"""

from __future__ import annotations

from typing import Iterable, Union

from .ast_nodes import (
    Assign,
    BinOp,
    Call,
    Dotted,
    Expr,
    FoldDef,
    If,
    JoinQuery,
    Name,
    Number,
    Program,
    Query,
    SelectItem,
    SelectQuery,
    Star,
    Stmt,
    UnaryOp,
)
from .errors import SemanticError

NumberLike = Union[int, float, "E"]


class E:
    """Wrapper around an AST expression with operator overloading."""

    __slots__ = ("node",)

    def __init__(self, node: Expr):
        self.node = node

    # -- arithmetic ---------------------------------------------------------

    def __add__(self, other: NumberLike) -> "E":
        return E(BinOp("+", self.node, _unwrap(other)))

    def __radd__(self, other: NumberLike) -> "E":
        return E(BinOp("+", _unwrap(other), self.node))

    def __sub__(self, other: NumberLike) -> "E":
        return E(BinOp("-", self.node, _unwrap(other)))

    def __rsub__(self, other: NumberLike) -> "E":
        return E(BinOp("-", _unwrap(other), self.node))

    def __mul__(self, other: NumberLike) -> "E":
        return E(BinOp("*", self.node, _unwrap(other)))

    def __rmul__(self, other: NumberLike) -> "E":
        return E(BinOp("*", _unwrap(other), self.node))

    def __truediv__(self, other: NumberLike) -> "E":
        return E(BinOp("/", self.node, _unwrap(other)))

    def __rtruediv__(self, other: NumberLike) -> "E":
        return E(BinOp("/", _unwrap(other), self.node))

    def __neg__(self) -> "E":
        return E(UnaryOp("-", self.node))

    # -- comparisons (build predicates, not bools) -----------------------------

    def __eq__(self, other: object) -> "E":  # type: ignore[override]
        return E(BinOp("==", self.node, _unwrap(other)))

    def __ne__(self, other: object) -> "E":  # type: ignore[override]
        return E(BinOp("!=", self.node, _unwrap(other)))

    def __lt__(self, other: NumberLike) -> "E":
        return E(BinOp("<", self.node, _unwrap(other)))

    def __le__(self, other: NumberLike) -> "E":
        return E(BinOp("<=", self.node, _unwrap(other)))

    def __gt__(self, other: NumberLike) -> "E":
        return E(BinOp(">", self.node, _unwrap(other)))

    def __ge__(self, other: NumberLike) -> "E":
        return E(BinOp(">=", self.node, _unwrap(other)))

    # -- boolean connectives (named methods; `and`/`or` are not overloadable) --

    def and_(self, other: "E") -> "E":
        return E(BinOp("and", self.node, _unwrap(other)))

    def or_(self, other: "E") -> "E":
        return E(BinOp("or", self.node, _unwrap(other)))

    def not_(self) -> "E":
        return E(UnaryOp("not", self.node))

    def __hash__(self) -> int:  # __eq__ is overloaded; keep hashable
        return hash(self.node)

    def __repr__(self) -> str:
        from .ast_nodes import format_expr
        return f"E({format_expr(self.node)})"


def _unwrap(value: object) -> Expr:
    if isinstance(value, E):
        return value.node
    if isinstance(value, (int, float)):
        return Number(value)
    if isinstance(value, Expr):
        return value
    raise TypeError(f"cannot use {value!r} in a query expression")


# -- leaf constructors ---------------------------------------------------------


def field(name: str) -> E:
    """Reference a packet field, state variable, or upstream column —
    resolved by semantic analysis exactly as in query text."""
    return E(Name(name))


def param(name: str) -> E:
    """Reference a query parameter (bound at run time)."""
    return E(Name(name))


def lit(value: int | float) -> E:
    """A numeric literal."""
    return E(Number(value))


def col(table: str, name: str) -> E:
    """A qualified column, e.g. ``col("R1", "COUNT")`` in a join."""
    return E(Dotted(table, name))


def fmax(a: NumberLike, b: NumberLike) -> E:
    return E(Call("max", (_unwrap(a), _unwrap(b))))


def fmin(a: NumberLike, b: NumberLike) -> E:
    return E(Call("min", (_unwrap(a), _unwrap(b))))


def count() -> E:
    """The ``COUNT`` aggregation sugar."""
    return E(Name("COUNT"))


def agg(func: str, expr: NumberLike) -> E:
    """Aggregation sugar with an argument: ``agg("SUM", field("pkt_len"))``."""
    return E(Call(func, (_unwrap(expr),)))


# -- fold builder ----------------------------------------------------------------


class FoldBuilder:
    """Builds a :class:`FoldDef` statement by statement."""

    def __init__(self, name: str, state: Iterable[str], packet: Iterable[str]):
        self.name = name
        self.state_params = tuple(state)
        self.packet_params = tuple(packet)
        self.body: list[Stmt] = []
        self.inits: dict[str, int | float] = {}

    def let(self, target: str, value: NumberLike) -> "FoldBuilder":
        """Append ``target = value``."""
        if target not in self.state_params:
            raise SemanticError(
                f"{target!r} is not a state variable of fold {self.name!r}")
        self.body.append(Assign(target, _unwrap(value)))
        return self

    def when(self, pred: E,
             then: "FoldBuilder | list[Stmt]",
             otherwise: "FoldBuilder | list[Stmt] | None" = None) -> "FoldBuilder":
        """Append an ``if`` whose branches are built with :meth:`branch`."""
        then_stmts = then.body if isinstance(then, FoldBuilder) else list(then)
        else_stmts: list[Stmt] = []
        if otherwise is not None:
            else_stmts = (otherwise.body if isinstance(otherwise, FoldBuilder)
                          else list(otherwise))
        self.body.append(If(pred=_unwrap(pred), then=tuple(then_stmts),
                            orelse=tuple(else_stmts)))
        return self

    def branch(self) -> "FoldBuilder":
        """A sub-builder for an ``if`` branch (same declarations)."""
        return FoldBuilder(self.name, self.state_params, self.packet_params)

    def init(self, **values: int | float) -> "FoldBuilder":
        """Set initial state values (default 0)."""
        for var, value in values.items():
            if var not in self.state_params:
                raise SemanticError(
                    f"{var!r} is not a state variable of fold {self.name!r}")
            self.inits[var] = value
        return self

    def build(self) -> FoldDef:
        if not self.body:
            raise SemanticError(f"fold {self.name!r} has an empty body")
        return FoldDef(
            name=self.name,
            state_params=self.state_params,
            packet_params=self.packet_params,
            body=tuple(self.body),
            inits=dict(self.inits),
        )


def fold(name: str, state: Iterable[str], packet: Iterable[str]) -> FoldBuilder:
    """Start building a fold function."""
    return FoldBuilder(name, state, packet)


# -- query builder ----------------------------------------------------------------


class QueryBuilder:
    """Builds a :class:`SelectQuery` or :class:`JoinQuery`."""

    def __init__(self) -> None:
        self._items: list[SelectItem] | Star | None = None
        self._source: str | None = None
        self._join: tuple[str, tuple[str, ...]] | None = None
        self._groupby: tuple[str, ...] | None = None
        self._where: Expr | None = None

    def select(self, *items: str | E | tuple[str | E, str]) -> "QueryBuilder":
        """Select items: names, expressions, or ``(expr, alias)`` pairs."""
        built: list[SelectItem] = []
        for item in items:
            alias = None
            if isinstance(item, tuple):
                item, alias = item
            if isinstance(item, str):
                expr: Expr = Name(item)
            else:
                expr = _unwrap(item)
            built.append(SelectItem(expr=expr, alias=alias))
        self._items = built
        return self

    def select_star(self) -> "QueryBuilder":
        self._items = Star()
        return self

    def source(self, name: str) -> "QueryBuilder":
        """``FROM name`` (omit for the base table ``T``)."""
        self._source = name
        return self

    def join(self, left: str, right: str, on: Iterable[str]) -> "QueryBuilder":
        self._source = left
        self._join = (right, tuple(on))
        return self

    def groupby(self, *keys: str) -> "QueryBuilder":
        self._groupby = tuple(keys)
        return self

    def where(self, pred: E) -> "QueryBuilder":
        self._where = _unwrap(pred)
        return self

    def build(self) -> Query:
        if self._items is None:
            raise SemanticError("query has no SELECT items")
        items = tuple(self._items) if isinstance(self._items, list) else self._items
        if self._join is not None:
            right, on = self._join
            if self._groupby is not None:
                raise SemanticError("JOIN query cannot carry a GROUPBY clause")
            if self._source is None:
                raise SemanticError("join requires a left input")
            return JoinQuery(items=items, left=self._source, right=right,
                             on=on, where=self._where)
        return SelectQuery(items=items, source=self._source,
                           groupby=self._groupby, where=self._where)


def query() -> QueryBuilder:
    """Start building a query."""
    return QueryBuilder()


def program(result: QueryBuilder | Query,
            named: dict[str, QueryBuilder | Query] | None = None,
            folds: Iterable[FoldBuilder | FoldDef] = ()) -> Program:
    """Assemble a :class:`Program` from built parts.

    ``named`` queries are added in insertion order (they may reference
    each other in that order); ``result`` is appended last.
    """
    fold_defs: dict[str, FoldDef] = {}
    for item in folds:
        built = item.build() if isinstance(item, FoldBuilder) else item
        if built.name in fold_defs:
            raise SemanticError(f"fold {built.name!r} defined twice")
        fold_defs[built.name] = built

    queries: dict[str, Query] = {}
    for name, q in (named or {}).items():
        queries[name] = q.build() if isinstance(q, QueryBuilder) else q
    result_query = result.build() if isinstance(result, QueryBuilder) else result
    queries["__result__"] = result_query
    return Program(folds=fold_defs, queries=queries, result="__result__")
