"""Clean twin of bad_exceptions: handlers set a flag and get out; the
broad except records the exception before deciding anything."""
import atexit
import signal
import traceback

_STOP = []


def flush_everything():
    _STOP.append(True)


def on_term(signum, frame):
    _STOP.append(True)


def report(fn):
    try:
        return fn()
    except Exception as exc:
        traceback.print_exc()
        return exc


atexit.register(flush_everything)
signal.signal(signal.SIGTERM, on_term)
