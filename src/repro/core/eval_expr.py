"""Shared expression evaluator.

Resolved expressions (:class:`FieldRef` / :class:`ColumnRef` /
:class:`StateRef` / :class:`ParamRef` over arithmetic, comparisons,
``Cond`` and scalar builtins) are evaluated in three places — the
reference interpreter, the switch ALU model, and the backing-store
merge — always with the same semantics, defined here once.

Value conventions:

* comparisons and boolean operators return ``1`` / ``0`` (ints), which
  mirrors how a switch ALU materialises predicates into registers;
* ``and`` / ``or`` short-circuit like Python but still return 0/1;
* division is true division (floats), matching the paper's EWMA and
  ratio examples.
"""

from __future__ import annotations

from typing import Callable, Mapping

from .ast_nodes import (
    BinOp,
    Call,
    ColumnRef,
    Cond,
    Expr,
    FieldRef,
    Name,
    Number,
    ParamRef,
    StateRef,
    UnaryOp,
)
from .errors import InterpreterError

Numeric = float | int


class EvalContext:
    """Value environment for expression evaluation.

    Args:
        row: Maps field/column names to values.  For base-table queries
            this is the packet record (attribute or mapping access);
            for derived tables it is the result-row dict.
        state: Maps state-variable names to values (fold bodies only).
        params: Query-parameter bindings (``alpha``, ``L``, ...).
        qualified_rows: For joins — maps table name to that side's row.
    """

    __slots__ = ("row", "state", "params", "qualified_rows")

    def __init__(
        self,
        row: Mapping[str, Numeric] | object | None = None,
        state: Mapping[str, Numeric] | None = None,
        params: Mapping[str, Numeric] | None = None,
        qualified_rows: Mapping[str, Mapping[str, Numeric]] | None = None,
    ):
        self.row = row
        self.state = state
        self.params = params or {}
        self.qualified_rows = qualified_rows

    def field(self, name: str) -> Numeric:
        row = self.row
        if row is None:
            raise InterpreterError(f"no row bound while reading field {name!r}")
        if isinstance(row, Mapping):
            try:
                return row[name]
            except KeyError:
                raise InterpreterError(f"row has no field {name!r}") from None
        try:
            return getattr(row, name)
        except AttributeError:
            raise InterpreterError(f"record has no field {name!r}") from None

    def column(self, name: str, table: str | None) -> Numeric:
        if table is not None:
            if self.qualified_rows is None or table not in self.qualified_rows:
                raise InterpreterError(f"no row bound for table {table!r}")
            try:
                return self.qualified_rows[table][name]
            except KeyError:
                raise InterpreterError(f"{table!r} row has no column {name!r}") from None
        return self.field(name)

    def state_var(self, name: str) -> Numeric:
        if self.state is None:
            raise InterpreterError(f"no state bound while reading {name!r}")
        try:
            return self.state[name]
        except KeyError:
            raise InterpreterError(f"state has no variable {name!r}") from None

    def param(self, name: str) -> Numeric:
        try:
            return self.params[name]
        except KeyError:
            raise InterpreterError(
                f"query parameter {name!r} has no binding; pass it via params="
            ) from None


_BUILTINS: dict[str, Callable[..., Numeric]] = {
    "max": max,
    "min": min,
    "abs": abs,
}


def evaluate(expr: Expr, ctx: EvalContext) -> Numeric:
    """Evaluate a resolved expression in ``ctx``."""
    if isinstance(expr, Number):
        return expr.value
    if isinstance(expr, FieldRef):
        return ctx.field(expr.name)
    if isinstance(expr, ColumnRef):
        return ctx.column(expr.name, expr.table)
    if isinstance(expr, StateRef):
        return ctx.state_var(expr.name)
    if isinstance(expr, ParamRef):
        return ctx.param(expr.name)
    if isinstance(expr, Cond):
        if evaluate(expr.pred, ctx):
            return evaluate(expr.then, ctx)
        return evaluate(expr.orelse, ctx)
    if isinstance(expr, UnaryOp):
        value = evaluate(expr.operand, ctx)
        return (0 if value else 1) if expr.op == "not" else -value
    if isinstance(expr, Call):
        func = _BUILTINS.get(expr.func)
        if func is None:
            raise InterpreterError(f"unknown function {expr.func!r} at evaluation time")
        return func(*(evaluate(a, ctx) for a in expr.args))
    if isinstance(expr, BinOp):
        op = expr.op
        if op == "and":
            return 1 if (evaluate(expr.left, ctx) and evaluate(expr.right, ctx)) else 0
        if op == "or":
            return 1 if (evaluate(expr.left, ctx) or evaluate(expr.right, ctx)) else 0
        left = evaluate(expr.left, ctx)
        right = evaluate(expr.right, ctx)
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            return left / right
        if op == "==":
            return 1 if left == right else 0
        if op == "!=":
            return 1 if left != right else 0
        if op == "<":
            return 1 if left < right else 0
        if op == "<=":
            return 1 if left <= right else 0
        if op == ">":
            return 1 if left > right else 0
        if op == ">=":
            return 1 if left >= right else 0
        raise InterpreterError(f"unknown operator {op!r}")
    if isinstance(expr, Name):
        raise InterpreterError(
            f"unresolved name {expr.ident!r} reached evaluation — run semantic "
            "analysis first"
        )
    raise InterpreterError(f"cannot evaluate {expr!r}")


def evaluate_predicate(expr: Expr | None, ctx: EvalContext) -> bool:
    """Evaluate an optional WHERE predicate; ``None`` means pass-all."""
    if expr is None:
        return True
    return bool(evaluate(expr, ctx))
