"""Split key-value store integration tests (Fig. 3 engine)."""

import pytest

from repro.core.compiler import CompileOptions, compile_program
from repro.core.errors import HardwareError
from repro.core.interpreter import Interpreter
from repro.core.parser import parse_program
from repro.core.semantics import resolve_program
from repro.switch.kvstore.cache import CacheGeometry
from repro.switch.kvstore.split import SplitKeyValueStore
from repro.telemetry.results import compare_tables

from tests.conftest import synthetic_trace


def build_store(source, capacity=16, ways=4, params=None, exact_history=False):
    rp = resolve_program(parse_program(source))
    program = compile_program(rp, CompileOptions(exact_history=exact_history))
    stage = program.groupby_stages[0]
    geometry = CacheGeometry.set_associative(capacity, ways=ways)
    return rp, SplitKeyValueStore(stage, geometry, params=params)


class TestLifecycle:
    def test_process_after_finalize_rejected(self):
        rp, store = build_store("SELECT COUNT GROUPBY srcip")
        trace = synthetic_trace(n_packets=100)
        for record in trace:
            store.process(record)
        store.finalize()
        with pytest.raises(HardwareError):
            store.process(trace[0])

    def test_finalize_idempotent(self):
        rp, store = build_store("SELECT COUNT GROUPBY srcip")
        for record in synthetic_trace(n_packets=100):
            store.process(record)
        store.finalize()
        writes = store.backing.writes
        store.finalize()
        assert store.backing.writes == writes

    def test_result_table_triggers_finalize(self):
        rp, store = build_store("SELECT COUNT GROUPBY srcip")
        trace = synthetic_trace(n_packets=500, n_flows=40)
        for record in trace:
            store.process(record)
        table = store.result_table()
        # Every flow reaches the backing store via merge or flush.
        assert len(table) == trace.unique_keys(("srcip",))


class TestCorrectness:
    def test_count_exact_under_pressure(self):
        rp, store = build_store("SELECT COUNT GROUPBY srcip", capacity=8, ways=2)
        trace = synthetic_trace(n_packets=2000, n_flows=50)
        for record in trace:
            store.process(record)
        truth = Interpreter(rp).run_result(trace.records)
        diff = compare_tables(store.result_table(), truth)
        assert diff.exact, diff.describe()
        assert store.stats.evictions > 0  # the test must exercise merging

    def test_ewma_exact_under_pressure(self):
        source = (
            "def ewma (e, (tin, tout)): e = (1 - alpha) * e + alpha * (tout - tin)\n"
            "SELECT srcip, ewma GROUPBY srcip WHERE tout != infinity"
        )
        params = {"alpha": 0.2}
        rp, store = build_store(source, capacity=8, ways=2, params=params)
        trace = synthetic_trace(n_packets=2000, n_flows=50)
        kept = [r for r in trace if r.tout != float("inf")]
        for record in kept:
            store.process(record)
        truth = Interpreter(rp, params=params).run_result(trace.records)
        diff = compare_tables(store.result_table(), truth, rel_tol=1e-9)
        assert diff.exact, diff.describe()

    def test_invalid_keys_skipped_by_default(self):
        rp, store = build_store("SELECT MAX(tcpseq) GROUPBY srcip",
                                capacity=4, ways=1)
        trace = synthetic_trace(n_packets=2000, n_flows=50)
        for record in trace:
            store.process(record)
        valid_only = store.result_table()
        with_invalid = store.result_table(include_invalid=True)
        assert len(valid_only) < len(with_invalid)
        assert len(with_invalid) == trace.unique_keys(("srcip",))

    def test_accuracy_matches_backing_stats(self):
        rp, store = build_store("SELECT MAX(tcpseq) GROUPBY srcip",
                                capacity=4, ways=1)
        for record in synthetic_trace(n_packets=2000, n_flows=50):
            store.process(record)
        valid, total = store.backing.validity_stats()
        assert store.accuracy() == pytest.approx(valid / total)


class TestValueLayoutRuntime:
    def test_aux_registers_only_when_needed(self):
        rp, store = build_store("SELECT COUNT GROUPBY srcip")
        trace = synthetic_trace(n_packets=10)
        for record in trace:
            store.process(record)
        entry = next(store.cache.entries())
        assert entry.value.aux["COUNT"] == {}   # additive: no registers

    def test_scale_aux_register_present(self):
        source = (
            "def ewma (e, (tin, tout)): e = (1 - alpha) * e + alpha * (tout - tin)\n"
            "SELECT srcip, ewma GROUPBY srcip"
        )
        rp, store = build_store(source, params={"alpha": 0.5})
        for record in synthetic_trace(n_packets=10):
            store.process(record)
        entry = next(store.cache.entries())
        assert "P" in entry.value.aux["ewma"]
