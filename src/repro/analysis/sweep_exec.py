"""Parallel execution of the Fig. 5/6 hardware-design sweeps.

The eviction study (Fig. 5) and the accuracy study (Fig. 6) are grids
of independent cache simulations over one shared key stream: (geometry,
capacity) cells for Fig. 5, (capacity, window) cells for Fig. 6.  This
module fans those cells across worker processes with
:mod:`concurrent.futures`, generating the stream **once** in the parent
and publishing it through :mod:`multiprocessing.shared_memory`: every
worker maps the same physical pages at initialisation, so a full-scale
(1/1) sweep costs one stream's worth of RAM total instead of one
pickled copy per worker.

Two knobs, mirrored on :func:`repro.analysis.eviction.run_eviction_sweep`,
:func:`repro.analysis.accuracy.run_accuracy_sweep`, and the CLI:

* ``engine="auto"|"vector"|"row"`` — which cache simulator runs each
  cell: the array-native vector engine
  (:class:`repro.switch.kvstore.vector_cache.VectorCacheSim`,
  bit-identical counters, all four eviction policies — LRU via stack
  distances, FIFO/random via the packed per-set replay), the
  per-access row reference, or ``auto`` (vector for integer array
  streams).  Mirrors :class:`repro.telemetry.runtime.QueryEngine`'s
  knob.  Replay state derives from the cell's ``seed`` alone, so row,
  vector, and windowed-session runs of the same cell agree exactly
  (``tests/test_replay_packed.py``).
* ``workers`` (CLI: ``--sweep-workers``) — number of worker processes;
  ``None``/``0``/``1`` runs serially in-process.

Workers keep one :class:`VectorCacheSim` per (stream, seed), so cells
that share a bucketing also share its layout/chain computations, the
same memoization the serial path enjoys.  Results are reassembled in
grid order, so parallel sweeps are deterministic and bit-identical to
serial ones (asserted in ``tests/test_sweep_exec.py``).

When to fan out: the vector engine is usually fastest *serial* (one
process shares all memoized state and grid cells are sub-second);
``workers`` pays off for the row engine, for very large grids, and for
multi-10M-access streams — on multi-core machines.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from multiprocessing import shared_memory
from typing import Sequence

import numpy as np

from repro.core.errors import HardwareError
from repro.switch.kvstore.cache import ENGINES, CacheStats, simulate_eviction_count
from repro.switch.kvstore.vector_cache import VectorCacheSim, _as_key_array
from repro.telemetry.shard_exec import release_shared_memory

#: Per-worker shared state, installed by the pool initializer.
_WORKER_KEYS: np.ndarray | None = None
_WORKER_SHM: shared_memory.SharedMemory | None = None
_WORKER_SIMS: dict[tuple[int, int], VectorCacheSim] = {}
_WORKER_ROW_KEYS: dict[int, list] = {}


def check_engine(engine: str) -> str:
    if engine not in ENGINES:
        raise HardwareError(f"engine must be one of {ENGINES}, got {engine!r}")
    return engine


def resolve_engine(engine: str, keys) -> str:
    """Collapse ``auto`` to the engine that will actually run."""
    check_engine(engine)
    if engine != "auto":
        return engine
    return "vector" if _as_key_array(keys) is not None else "row"


def stats_fn(keys, seed: int, engine: str):
    """A ``(geometry, policy) -> CacheStats`` closure over one stream,
    sharing state across calls: the vector engine keeps one
    :class:`VectorCacheSim` (memoized layouts/chains), the row engine
    materialises the Python key list once for all cells."""
    if resolve_engine(engine, keys) == "vector":
        sim = VectorCacheSim(_as_key_array(keys), seed=seed)
        return lambda geometry, policy="lru": sim.stats(geometry, policy)
    key_list = keys.tolist() if isinstance(keys, np.ndarray) else keys
    return lambda geometry, policy="lru": simulate_eviction_count(
        key_list, geometry, policy=policy, seed=seed, engine="row")


def _init_worker(shm_name: str, shape: tuple[int, ...], dtype: str) -> None:
    """Attach this worker to the parent's shared key stream.

    The array is mapped read-only from the shared segment — no pickle,
    no copy.  The segment handle is kept alive for the worker's
    lifetime; the parent owns unlinking.
    """
    global _WORKER_KEYS, _WORKER_SHM
    _WORKER_SHM = shared_memory.SharedMemory(name=shm_name)
    # Pool workers share the parent's resource tracker, so the attach
    # above dedupes against the parent's own registration — cleanup
    # stays with the parent's unlink in _fan().
    keys = np.ndarray(shape, dtype=np.dtype(dtype), buffer=_WORKER_SHM.buf)
    keys.flags.writeable = False
    _WORKER_KEYS = keys
    _WORKER_SIMS.clear()
    _WORKER_ROW_KEYS.clear()


def _worker_sim(seed: int, length: int) -> VectorCacheSim:
    """Memoized per-worker sim over a prefix of the shared stream."""
    sim = _WORKER_SIMS.get((seed, length))
    if sim is None:
        sim = VectorCacheSim(_WORKER_KEYS[:length], seed=seed)
        _WORKER_SIMS[(seed, length)] = sim
    return sim


def _eviction_cell(args) -> tuple[int, int, int, int, int]:
    """One (geometry, capacity) cell: returns the CacheStats counters."""
    geometry_name, scaled, seed, policy, engine = args
    from repro.analysis.eviction import GEOMETRIES

    geometry = GEOMETRIES[geometry_name](scaled)
    if resolve_engine(engine, _WORKER_KEYS) == "vector":
        s = _worker_sim(seed, len(_WORKER_KEYS)).stats(geometry, policy)
    else:
        s = simulate_eviction_count(_worker_row_keys(len(_WORKER_KEYS)),
                                    geometry, policy=policy,
                                    seed=seed, engine="row")
    return (s.accesses, s.hits, s.misses, s.insertions, s.evictions)


def _worker_row_keys(length: int) -> list:
    """Memoized Python key list for a worker's row-engine cells."""
    lst = _WORKER_ROW_KEYS.get(length)
    if lst is None:
        lst = _WORKER_KEYS[:length].tolist()
        _WORKER_ROW_KEYS[length] = lst
    return lst


def _accuracy_cell(args) -> tuple[int, int]:
    """One (capacity, window) cell: returns (valid, total) keys."""
    scaled, window_len, seed, engine = args
    from repro.analysis.accuracy import _window_validity
    from repro.switch.kvstore.cache import CacheGeometry

    geometry = CacheGeometry.set_associative(scaled, ways=8)
    if resolve_engine(engine, _WORKER_KEYS) == "vector":
        return _worker_sim(seed, window_len).validity(geometry)
    return _window_validity(_worker_row_keys(window_len), geometry, seed,
                            engine="row")


def _fan(keys: np.ndarray, worker, tasks: Sequence[tuple], workers: int):
    """Run ``worker`` over ``tasks`` in a process pool sharing ``keys``
    via one shared-memory segment; results come back in task order."""
    keys = np.ascontiguousarray(keys)
    shm = shared_memory.SharedMemory(create=True, size=max(1, keys.nbytes))
    try:
        view = np.ndarray(keys.shape, dtype=keys.dtype, buffer=shm.buf)
        view[...] = keys
        del view       # drop the buffer export so close() cannot fail
        with ProcessPoolExecutor(
                max_workers=workers, initializer=_init_worker,
                initargs=(shm.name, keys.shape, keys.dtype.str)) as pool:
            return list(pool.map(worker, tasks))
    finally:
        # Idempotent teardown shared with the session shard pool: the
        # segment is unlinked even when a worker raised (pool.map
        # re-raises here) or close() hits a live buffer export.
        release_shared_memory(shm)


def run_eviction_sweep_parallel(
    scale: float = 1.0 / 256.0,
    capacities: tuple[int, ...] | None = None,
    geometries: tuple[str, ...] = ("hash_table", "8way", "fully_associative"),
    seed: int = 2016_04,
    engine: str = "auto",
    workers: int | None = None,
    policy: str = "lru",
):
    """Fig. 5 sweep with the (geometry, capacity) grid fanned across
    ``workers`` processes.  Bit-identical to the serial sweep."""
    from repro.analysis.eviction import (
        PAPER_CAPACITIES,
        EvictionPoint,
        EvictionSweep,
        scaled_capacity,
    )
    from repro.traffic.caida import CaidaTraceConfig, generate_key_stream

    check_engine(engine)
    capacities = capacities or PAPER_CAPACITIES
    if not workers or workers <= 1:
        from repro.analysis.eviction import run_eviction_sweep

        return run_eviction_sweep(scale=scale, capacities=capacities,
                                  geometries=geometries, seed=seed,
                                  engine=engine, policy=policy)
    keys = generate_key_stream(CaidaTraceConfig(scale=scale, seed=seed))
    flows = int(len(np.unique(keys)))
    grid = [(name, scaled_capacity(paper_pairs, scale))
            for paper_pairs in capacities for name in geometries]
    tasks = [(name, scaled, seed, policy, engine) for name, scaled in grid]
    counters = _fan(keys, _eviction_cell, tasks, workers)
    sweep = EvictionSweep(scale=scale)
    for (name, scaled), paper_pairs, cell in zip(
            grid, (p for p in capacities for _ in geometries), counters):
        stats = CacheStats(*cell)
        sweep.points.append(EvictionPoint(
            geometry=name, capacity_pairs=scaled, paper_pairs=paper_pairs,
            eviction_fraction=stats.eviction_fraction,
            packets=len(keys), flows=flows,
        ))
    return sweep


def run_accuracy_sweep_parallel(
    scale: float = 1.0 / 256.0,
    capacities: tuple[int, ...] | None = None,
    windows: dict[str, float] | None = None,
    seed: int = 2016_04,
    engine: str = "auto",
    workers: int | None = None,
):
    """Fig. 6 sweep with the (capacity, window) grid fanned across
    ``workers`` processes.  Bit-identical to the serial sweep."""
    from repro.analysis.accuracy import (
        FIG6_CAPACITIES,
        WINDOW_FRACTIONS,
        AccuracyPoint,
        AccuracySweep,
        run_accuracy_sweep,
    )
    from repro.analysis.eviction import scaled_capacity
    from repro.traffic.caida import CaidaTraceConfig, generate_key_stream

    check_engine(engine)
    capacities = capacities or FIG6_CAPACITIES
    windows = windows or WINDOW_FRACTIONS
    if not workers or workers <= 1:
        return run_accuracy_sweep(scale=scale, capacities=capacities,
                                  windows=windows, seed=seed, engine=engine)
    keys = generate_key_stream(CaidaTraceConfig(scale=scale, seed=seed))
    n = len(keys)
    grid = [(paper_pairs, window_name, fraction)
            for paper_pairs in capacities
            for window_name, fraction in windows.items()]
    tasks = [(scaled_capacity(paper_pairs, scale), max(1, int(n * fraction)),
              seed, engine) for paper_pairs, _, fraction in grid]
    results = _fan(keys, _accuracy_cell, tasks, workers)
    sweep = AccuracySweep(scale=scale)
    for (paper_pairs, window_name, _), (valid, total) in zip(grid, results):
        sweep.points.append(AccuracyPoint(
            window=window_name, paper_pairs=paper_pairs,
            capacity_pairs=scaled_capacity(paper_pairs, scale),
            valid_keys=valid, total_keys=total,
        ))
    return sweep
