"""Lexer unit tests: tokens, literals, layout, and error reporting."""

import pytest

from repro.core.errors import LexError
from repro.core.lexer import DEDENT, EOF, IDENT, INDENT, NEWLINE, NUMBER, OP, tokenize


def kinds(source):
    return [t.type for t in tokenize(source)]


def values(source, type_filter=None):
    layout = {NEWLINE, INDENT, DEDENT, EOF}
    return [t.value for t in tokenize(source)
            if (t.type == type_filter if type_filter else t.type not in layout)]


class TestBasicTokens:
    def test_idents_and_ops(self):
        tokens = tokenize("SELECT srcip, qid FROM T")
        assert [t.value for t in tokens[:-2]] == ["SELECT", "srcip", ",", "qid", "FROM", "T"]

    def test_integer_literal(self):
        token = tokenize("42")[0]
        assert token.type == NUMBER and token.value == 42

    def test_float_literal(self):
        token = tokenize("0.01")[0]
        assert token.type == NUMBER and token.value == pytest.approx(0.01)

    def test_float_with_exponent(self):
        token = tokenize("1.5e3")[0]
        assert token.type == NUMBER and token.value == pytest.approx(1500.0)

    def test_comparison_operators(self):
        ops = values("a == b != c <= d >= e < f > g", OP)
        assert ops == ["==", "!=", "<=", ">=", "<", ">"]

    def test_arithmetic_operators(self):
        ops = values("a + b - c * d / e", OP)
        assert ops == ["+", "-", "*", "/"]

    def test_eof_terminates(self):
        assert kinds("x")[-1] == EOF


class TestSpecialLiterals:
    def test_5tuple_is_identifier(self):
        token = tokenize("5tuple")[0]
        assert token.type == IDENT and token.value == "5tuple"

    def test_time_unit_ms(self):
        token = tokenize("1ms")[0]
        assert token.type == NUMBER and token.value == 1_000_000

    def test_time_unit_us(self):
        token = tokenize("250us")[0]
        assert token.type == NUMBER and token.value == 250_000

    def test_time_unit_ns(self):
        token = tokenize("7ns")[0]
        assert token.type == NUMBER and token.value == 7

    def test_time_unit_seconds(self):
        token = tokenize("2s")[0]
        assert token.type == NUMBER and token.value == 2_000_000_000

    def test_digit_leading_identifier_other(self):
        token = tokenize("5tuples_x")[0]
        assert token.type == IDENT and token.value == "5tuples_x"


class TestComments:
    def test_hash_comment_stripped(self):
        assert values("x # comment here") == ["x"]

    def test_slash_comment_stripped(self):
        assert values("x // comment here") == ["x"]

    def test_comment_only_line_skipped(self):
        assert kinds("# nothing\nx")[:1] == [IDENT]


class TestLayout:
    def test_newline_between_statements(self):
        assert NEWLINE in kinds("a = 1\nb = 2")

    def test_indent_dedent_pairs(self):
        source = "def f (s, x):\n    s = s + x\n"
        token_kinds = kinds(source)
        assert token_kinds.count(INDENT) == 1
        assert token_kinds.count(DEDENT) == 1

    def test_nested_blocks(self):
        source = (
            "def f ((a, b), x):\n"
            "    if x > 1:\n"
            "        a = a + 1\n"
            "    b = b + x\n"
        )
        token_kinds = kinds(source)
        assert token_kinds.count(INDENT) == 2
        assert token_kinds.count(DEDENT) == 2

    def test_continuation_on_clause_keyword(self):
        source = "SELECT srcip FROM T\n    WHERE tout == 1"
        token_kinds = kinds(source)
        # The WHERE line is joined: no NEWLINE/INDENT between them.
        assert INDENT not in token_kinds
        assert token_kinds.count(NEWLINE) == 1  # only the final one

    def test_continuation_after_trailing_operator(self):
        source = "a = 1 +\n    2"
        token_kinds = kinds(source)
        assert INDENT not in token_kinds

    def test_continuation_inside_parens(self):
        source = "def f (s, (tin,\n    tout)): s = s + tin"
        assert INDENT not in kinds(source)

    def test_inconsistent_dedent_raises(self):
        source = "def f (s, x):\n        s = s + x\n    s = s + 1\n"
        with pytest.raises(LexError):
            tokenize(source)


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(LexError) as excinfo:
            tokenize("a @ b")
        assert "@" in str(excinfo.value)

    def test_unbalanced_close_paren(self):
        with pytest.raises(LexError):
            tokenize("a ) b")

    def test_error_carries_position(self):
        with pytest.raises(LexError) as excinfo:
            tokenize("ok = 1\nbad @")
        assert excinfo.value.line == 2
