"""The Fig. 2 query catalog.

Every example query of the paper's Fig. 2, as source text in the query
language, with the paper's stated linear-in-state verdict and the
parameters each query needs.  The catalog drives:

* the FIG2 bench (``benchmarks/bench_fig2_queries.py``), which runs
  each query end-to-end and checks the linearity column;
* the expressiveness tests (``tests/test_catalog.py``);
* the examples, which pull queries by name.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.eval_expr import Numeric


@dataclass(frozen=True)
class CatalogEntry:
    """One Fig. 2 row."""

    name: str
    description: str
    source: str
    linear_in_state: bool                       # the Fig. 2 verdict
    default_params: dict[str, Numeric] = field(default_factory=dict)
    result_columns: tuple[str, ...] = ()        # spot-check columns


PER_FLOW_COUNTERS = CatalogEntry(
    name="per_flow_counters",
    description="Count packets and bytes for each src-dst IP pair.",
    source="SELECT COUNT, SUM(pkt_len) GROUPBY srcip, dstip",
    linear_in_state=True,
    result_columns=("COUNT", "SUM(pkt_len)"),
)

LATENCY_EWMA = CatalogEntry(
    name="latency_ewma",
    description="Maintain a per-flow EWMA over queueing latencies of packets.",
    source="""
def ewma (lat_est, (tin, tout)):
    lat_est = (1 - alpha) * lat_est + alpha * (tout - tin)

SELECT 5tuple, ewma GROUPBY 5tuple
""",
    linear_in_state=True,
    default_params={"alpha": 0.1},
    result_columns=("lat_est",),
)

TCP_OUT_OF_SEQUENCE = CatalogEntry(
    name="tcp_out_of_sequence",
    description="Count packets with non-consecutive sequence numbers in "
                "each TCP stream.",
    source="""
def outofseq ((lastseq, oos_count), (tcpseq, payload_len)):
    if lastseq + 1 != tcpseq:
        oos_count = oos_count + 1
    lastseq = tcpseq + payload_len

SELECT 5tuple, outofseq GROUPBY 5tuple WHERE proto == TCP
""",
    linear_in_state=True,
    result_columns=("outofseq.oos_count",),
)

TCP_NON_MONOTONIC = CatalogEntry(
    name="tcp_non_monotonic",
    description="Count packet retransmissions and reorderings in each "
                "TCP stream.",
    source="""
def nonmt ((maxseq, nm_count), tcpseq):
    if maxseq > tcpseq:
        nm_count = nm_count + 1
    maxseq = max(maxseq, tcpseq)

SELECT 5tuple, nonmt GROUPBY 5tuple WHERE proto == TCP
""",
    linear_in_state=False,
    result_columns=("nonmt.nm_count",),
)

PER_FLOW_HIGH_LATENCY = CatalogEntry(
    name="per_flow_high_latency",
    description="Count packets with high end-to-end latency per flow.",
    source="""
def sum_lat (lat, (tin, tout)):
    lat = lat + tout - tin

R1 = SELECT pkt_uniq, sum_lat GROUPBY pkt_uniq
R2 = SELECT 5tuple, COUNT FROM R1 GROUPBY 5tuple WHERE lat > L
""",
    linear_in_state=True,
    default_params={"L": 1_000_000},  # 1 ms end-to-end
    result_columns=("COUNT",),
)

PER_FLOW_LOSS_RATE = CatalogEntry(
    name="per_flow_loss_rate",
    description="Determine loss rates per flow.",
    source="""
R1 = SELECT COUNT GROUPBY 5tuple
R2 = SELECT COUNT GROUPBY 5tuple WHERE tout == infinity
R3 = SELECT R2.COUNT/R1.COUNT AS loss_rate FROM R1 JOIN R2 ON 5tuple
""",
    linear_in_state=True,
    result_columns=("loss_rate",),
)

HIGH_P99_QUEUE_SIZE = CatalogEntry(
    name="high_p99_queue_size",
    description="Identify queues with a 99th percentile queue size (over "
                "packet samples) higher than a threshold K.",
    source="""
def perc ((tot, high), qin):
    if qin > K:
        high = high + 1
    tot = tot + 1

R1 = SELECT qid, perc GROUPBY qid
R2 = SELECT * FROM R1 WHERE perc.high/perc.tot > 0.01
""",
    linear_in_state=True,
    default_params={"K": 20},
    result_columns=("qid", "perc.high", "perc.tot"),
)

#: All Fig. 2 rows in table order.
FIG2_QUERIES: tuple[CatalogEntry, ...] = (
    PER_FLOW_COUNTERS,
    LATENCY_EWMA,
    TCP_OUT_OF_SEQUENCE,
    TCP_NON_MONOTONIC,
    PER_FLOW_HIGH_LATENCY,
    PER_FLOW_LOSS_RATE,
    HIGH_P99_QUEUE_SIZE,
)

CATALOG: dict[str, CatalogEntry] = {q.name: q for q in FIG2_QUERIES}


def get(name: str) -> CatalogEntry:
    """Look a catalog query up by name."""
    return CATALOG[name]


# -- additional queries from the running text (§2), not in Fig. 2 ------------

HIGH_LATENCY_PACKETS = CatalogEntry(
    name="high_latency_packets",
    description="Source IPs of packets with queueing latency over 1 ms, "
                "with the queue where it happened (§2 SELECT/WHERE example).",
    source="SELECT srcip, qid FROM T WHERE tout - tin > 1ms",
    linear_in_state=True,  # no state at all
    result_columns=("srcip", "qid"),
)

BYTES_PER_SRC_DST = CatalogEntry(
    name="bytes_per_src_dst",
    description="Bytes per source-destination pair via a user fold "
                "(§2 sumlen example).",
    source="""
def sumlen (result, (pkt_len)):
    result = result + pkt_len

SELECT srcip, dstip, sumlen GROUPBY srcip, dstip
""",
    linear_in_state=True,
    result_columns=("result",),
)

EXTRA_QUERIES: tuple[CatalogEntry, ...] = (HIGH_LATENCY_PACKETS, BYTES_PER_SRC_DST)

ALL_QUERIES: dict[str, CatalogEntry] = {
    **CATALOG, **{q.name: q for q in EXTRA_QUERIES}
}
