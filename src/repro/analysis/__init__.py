"""Experiment drivers for the paper's evaluation (§4)."""

from .accuracy import AccuracyPoint, AccuracySweep, run_accuracy_sweep
from .eviction import EvictionPoint, EvictionSweep, run_eviction_sweep
from .report import banner, format_percent, format_table

__all__ = [
    "AccuracyPoint",
    "AccuracySweep",
    "EvictionPoint",
    "EvictionSweep",
    "banner",
    "format_percent",
    "format_table",
    "run_accuracy_sweep",
    "run_eviction_sweep",
]
