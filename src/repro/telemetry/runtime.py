"""End-to-end telemetry runtime: the system a network operator uses.

Ties the whole reproduction together (the paper's Fig. 3 workflow plus
the compiler it leaves as future work):

1. parse + resolve + compile the query text;
2. install the compiled program on a (simulated) switch pipeline with a
   configured cache geometry;
3. stream an observation table through the pipeline;
4. pull on-switch results from the backing store, then evaluate the
   program's *software stages* (downstream composed queries, joins)
   over them;
5. expose results, cache/eviction statistics, and an optional exact
   ground-truth comparison computed by the reference interpreter.

Typical use::

    from repro import telemetry
    engine = telemetry.QueryEngine('''
        R1 = SELECT COUNT GROUPBY 5tuple
        R2 = SELECT COUNT GROUPBY 5tuple WHERE tout == infinity
        R3 = SELECT R2.COUNT/R1.COUNT FROM R1 JOIN R2 ON 5tuple
    ''')
    report = engine.run(table)
    report.result.rows
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from repro.core.ast_nodes import Program
from repro.core.compiler import CompileOptions, compile_program
from repro.core.errors import HardwareError
from repro.core.eval_expr import Numeric
from repro.core.interpreter import Interpreter, ResultTable
from repro.core.parser import parse_program
from repro.core.plan import SwitchProgram
from repro.core.semantics import ResolvedProgram, resolve_program
from repro.core.vector_exec import (
    ArrayContext,
    VectorExecutor,
    VectorizationError,
    eval_mask,
)
from repro.network.records import ObservationTable
from repro.switch.kvstore.cache import (
    ENGINES,
    CacheGeometry,
    CacheStats,
    simulate_eviction_count,
)
from repro.switch.pipeline import DEFAULT_GEOMETRY, GeometrySpec
from repro.telemetry.diagnostics import Diagnostic, DiagnosticsReport, exc_message
from repro.telemetry.session import TelemetrySession

#: Legacy exception type raised for each hard diagnostic, keeping the
#: pre-analyzer contract of every entry point (session-knob errors were
#: ``ValueError``s, pipeline/hardware errors ``HardwareError``s).
_EXC_FOR_CODE = {
    "RPR-E001": HardwareError,
    "RPR-E002": HardwareError,
    "RPR-E003": ValueError,
    "RPR-E004": ValueError,
    "RPR-E005": ValueError,
    "RPR-E008": ValueError,
    "RPR-E301": HardwareError,
}


def _raise_for(diag: Diagnostic) -> None:
    exc_type = _EXC_FOR_CODE.get(diag.code, HardwareError)
    raise exc_type(f"[{diag.code}] {diag.message}")


@dataclass
class RunReport:
    """Everything one run produced."""

    tables: dict[str, ResultTable]
    result_name: str
    cache_stats: dict[str, CacheStats]
    backing_writes: dict[str, int]
    accuracy: dict[str, float]          # per groupby stage (% valid keys)
    ground_truth: dict[str, ResultTable] | None = None

    @property
    def result(self) -> ResultTable:
        return self.tables[self.result_name]

    def eviction_fractions(self) -> dict[str, float]:
        return {name: s.eviction_fraction for name, s in self.cache_stats.items()}


@dataclass(frozen=True)
class CachePlanPoint:
    """One candidate cache size for one ``GROUPBY`` stage: the exact
    counters the stage's cache would produce on the given workload."""

    query: str
    geometry: CacheGeometry
    policy: str
    pair_bits: int
    stats: CacheStats

    @property
    def eviction_fraction(self) -> float:
        return self.stats.eviction_fraction

    @property
    def mbits(self) -> float:
        """Cache SRAM for this geometry at the stage's pair width."""
        return self.geometry.capacity * self.pair_bits / (1 << 20)

    def writes_per_second(self, packet_rate: float | None = None) -> float:
        """Backing-store write rate this size implies (defaults to the
        §4 datacenter packet rate)."""
        from repro.switch.area import evictions_per_second

        return evictions_per_second(self.eviction_fraction,
                                    packet_rate=packet_rate)


@dataclass(frozen=True)
class QueryInfo:
    """Static facts about a compiled query (for operators and tests)."""

    params: frozenset[str]
    on_switch_stages: tuple[str, ...]
    software_stages: tuple[str, ...]
    linear_by_fold: dict[str, bool]
    pair_bits: dict[str, int]

    @property
    def fully_linear(self) -> bool:
        return all(self.linear_by_fold.values())


class QueryEngine:
    """Compile once, run on many traces.

    Args:
        source: Query text (or a pre-parsed :class:`Program`).
        params: Parameter bindings (``alpha``, ``L``, ...).
        geometry: Cache geometry for groupby stages.
        policy: Cache eviction policy.
        exact_history: Enable the exact-history merge extension.
        seed: Hash seed for the caches.
        engine: Execution engine, end to end — it selects both the
            exact evaluator for software stages / ground truth /
            :meth:`run_exact` (``"vector"`` =
            :class:`~repro.core.vector_exec.VectorExecutor`, ``"row"``
            = the reference interpreter) **and** the hardware path's
            split-store engine (``"vector"`` = the schedule-driven
            :class:`~repro.switch.kvstore.vector_store.VectorSplitStore`,
            ``"row"`` = the per-packet store).  ``"auto"`` picks vector
            wherever the input supports it (columnar tables, integer
            keys) and row otherwise.  Every engine combination produces
            bit-identical results; the knob trades per-row dispatch for
            array operations.
    """

    def __init__(
        self,
        source: str | Program,
        params: Mapping[str, Numeric] | None = None,
        geometry: GeometrySpec = DEFAULT_GEOMETRY,
        policy: str = "lru",
        exact_history: bool = False,
        seed: int = 0,
        refresh_interval: int | None = None,
        engine: str = "auto",
    ):
        if engine not in ENGINES:
            raise ValueError(
                exc_message("RPR-E008", engines=ENGINES, engine=engine))
        program = parse_program(source) if isinstance(source, str) else source
        self.resolved: ResolvedProgram = resolve_program(program)
        self.compiled: SwitchProgram = compile_program(
            self.resolved, CompileOptions(exact_history=exact_history)
        )
        self.params = dict(params or {})
        self.geometry = geometry
        self.policy = policy
        self.seed = seed
        self.refresh_interval = refresh_interval
        self.engine = engine
        self._interpreter: Interpreter | None = None
        self._vector: VectorExecutor | None = None
        #: Compile-time deployability report for the program as
        #: configured (no session knobs); :meth:`diagnostics` re-runs
        #: the analysis for a specific session shape.
        self.diagnostics_report: DiagnosticsReport = self.diagnostics()

    # -- introspection -------------------------------------------------------

    def info(self) -> QueryInfo:
        linear = {}
        pair_bits = {}
        for stage in self.compiled.groupby_stages:
            for fold in stage.folds:
                linear[f"{stage.query_name}/{fold.column}"] = fold.linearity.linear
            pair_bits[stage.query_name] = stage.pair_bits
        return QueryInfo(
            params=self.compiled.params,
            on_switch_stages=tuple(
                s.query_name for s in
                self.compiled.select_stages + self.compiled.groupby_stages
            ),
            software_stages=tuple(
                s.query.name for s in self.compiled.software_stages
            ),
            linear_by_fold=linear,
            pair_bits=pair_bits,
        )

    def describe_plan(self) -> str:
        return self.compiled.describe()

    def analyze(self, *, window: int | None = None, exact: bool = False,
                shards: int | None = None, trace_bounds=None,
                area_budget: float | None = None):
        """Run the compile-time deployability analysis
        (:func:`repro.core.analyze.analyze_program`) for this engine's
        configuration plus the given session knobs; returns a
        :class:`~repro.core.analyze.ProgramAnalysis`."""
        from repro.core.analyze import DEFAULT_AREA_BUDGET, analyze_program

        return analyze_program(
            self.compiled, self.resolved, params=self.params,
            geometry=self.geometry, engine=self.engine,
            window=window, shards=shards, exact=exact,
            refresh_interval=self.refresh_interval,
            trace_bounds=trace_bounds,
            area_budget=(DEFAULT_AREA_BUDGET if area_budget is None
                         else area_budget),
        )

    def diagnostics(self, **kwargs) -> DiagnosticsReport:
        """The :class:`DiagnosticsReport` of :meth:`analyze` — the
        structured record of every deployability verdict, with stable
        codes (see ``DIAGNOSTICS.md``)."""
        return self.analyze(**kwargs).report

    # -- engine selection ------------------------------------------------------

    def _row_engine(self) -> Interpreter:
        if self._interpreter is None:
            self._interpreter = Interpreter(self.resolved, params=self.params)
        return self._interpreter

    def _vector_engine(self) -> VectorExecutor:
        if self._vector is None:
            self._vector = VectorExecutor(self.resolved, params=self.params)
        return self._vector

    def _executor_for(self, records) -> Interpreter | VectorExecutor:
        """Pick the exact-evaluation engine per the ``engine`` knob."""
        if self.engine == "row":
            return self._row_engine()
        if self.engine == "vector":
            return self._vector_engine()
        if isinstance(records, ObservationTable) and records.is_columnar:
            return self._vector_engine()
        return self._row_engine()

    # -- execution -------------------------------------------------------------

    def open(self, window: int | None = None, exact: bool = False,
             chunk_size: int | None = None,
             shards: int | None = None,
             checkpoint_every: int | None = None,
             faults=None) -> TelemetrySession:
        """Open a streaming :class:`~repro.telemetry.session.TelemetrySession`
        — the execution protocol every entry point compiles down to:
        repeated :meth:`~TelemetrySession.ingest` calls, optional
        mid-stream :meth:`~TelemetrySession.results` snapshots, one
        :meth:`~TelemetrySession.close`.

        Args:
            window: Accesses per schedule execution for the vector
                split store.  Set it for unbounded streams: memory
                stays bounded by the window (plus per-key results) and
                mid-stream snapshots are supported, with results
                bit-identical to the one-shot path for every window
                size.  ``None`` keeps the deferred one-shot store.
                Must be positive when set — 0/negative raises
                :class:`ValueError` on every engine (the row engine
                would otherwise silently ignore it).
            exact: Software-only exact evaluation (no hardware model —
                what :meth:`run_exact` uses).
            chunk_size: Batch-path chunk size of the switch pipeline.
            shards: Hash-partitioned multi-core execution — fan every
                ``GROUPBY`` stage out to this many worker processes
                and combine their stores via the synthesized merges,
                bit-identical to the single-process engines (see
                :mod:`repro.switch.kvstore.sharded`).  Composes with
                ``window`` (each shard runs the windowed store over
                its key slice) but not ``refresh_interval`` or
                ``engine="row"``.
            checkpoint_every: Sharded sessions only — take a periodic
                per-worker role checkpoint every this many shard posts
                and enable crash *recovery*: a worker process that dies
                is respawned, restored from its last checkpoint, and
                fed only the batches since (bounded retries; see
                :class:`~repro.telemetry.shard_exec.ShardWorkerPool`).
                Independent of :meth:`TelemetrySession.checkpoint`,
                which serializes the whole session on demand.
            faults: A :class:`~repro.telemetry.faults.FaultInjector`
                for deterministic fault injection (tests/benchmarks).

        Every hard diagnostic (``RPR-E*``, see ``DIAGNOSTICS.md``) is
        raised here — before any session state is allocated or shard
        worker forked — with the same code and wording the CLI ``lint``
        command and served ``REJECT`` frames report.
        """
        report = self.diagnostics(window=window, exact=exact, shards=shards)
        error = report.first_error
        if error is not None:
            _raise_for(error)
        kwargs = {} if chunk_size is None else {"chunk_size": chunk_size}
        session = TelemetrySession(self, window=window, exact=exact,
                                   shards=shards,
                                   checkpoint_every=checkpoint_every,
                                   faults=faults, **kwargs)
        session.diagnostics = report
        return session

    def serve(self, **kwargs):
        """Build a live ingest front end over this engine: a
        long-running socket service whose named sessions are
        :meth:`open`-ed on demand, with per-session backpressure,
        admission control, optional load shedding, auto-checkpointing,
        and graceful drain (see
        :class:`~repro.telemetry.serve.IngestServer` for every knob).
        Call :meth:`~repro.telemetry.serve.IngestServer.start` (or
        ``run_forever()``) on the returned server."""
        from .serve import IngestServer

        server = IngestServer(self, **kwargs)
        server.diagnostics = self.diagnostics_report
        return server

    def resume(self, snapshot: bytes,
               checkpoint_every: int | None = None,
               faults=None) -> TelemetrySession:
        """Rebuild a mid-stream session from a
        :meth:`TelemetrySession.checkpoint` byte string.

        The engine must be configured identically to the one that
        saved the snapshot (queries, params, geometry, policy, seed,
        refresh/engine knobs) — the snapshot carries a configuration
        fingerprint and a mismatch raises
        :class:`~repro.core.errors.CheckpointError`.  The resumed
        session continues the stream exactly where the checkpoint was
        taken: feed it the remaining records (everything after
        ``session.packets_ingested``) and its results are bit-identical
        to a run that never stopped."""
        from repro.core.errors import CheckpointError

        from .checkpoint import unpack_checkpoint

        payload = unpack_checkpoint(snapshot)
        kind = payload.get("kind")
        if kind == "network":
            raise CheckpointError(
                "this is a network-deployment checkpoint; resume it "
                "with NetworkDeployment.resume()")
        if kind != "session":
            raise CheckpointError(
                f"not a session checkpoint (kind={kind!r})")
        if payload.get("config") != self._config_fingerprint():
            raise CheckpointError(
                "checkpoint was produced by a differently configured "
                "engine (queries, params, geometry, policy, seed, and "
                "the refresh/engine knobs must all match); resume on "
                "an engine configured like the one that saved it")
        session = TelemetrySession(
            self, window=payload["window"], exact=payload["exact"],
            chunk_size=payload["chunk_size"], shards=payload["shards"],
            checkpoint_every=checkpoint_every, faults=faults)
        session.diagnostics = self.diagnostics(
            window=payload["window"], exact=payload["exact"],
            shards=payload["shards"])
        session._restore_payload(payload)
        return session

    def _config_fingerprint(self) -> dict:
        """Plain-data identity of everything that shapes session
        results — embedded in checkpoints and compared on resume."""
        if isinstance(self.geometry, CacheGeometry):
            geom = self.geometry.describe()
        else:
            geom = {name: g.describe()
                    for name, g in sorted(self.geometry.items())}
        return {
            "plan": self.compiled.describe(),
            "result": self.compiled.result,
            "params": sorted(self.params.items()),
            "geometry": geom,
            "policy": self.policy,
            "seed": self.seed,
            "refresh_interval": self.refresh_interval,
            "engine": self.engine,
        }

    def run(
        self,
        records: Iterable[object],
        include_invalid: bool = False,
        with_ground_truth: bool = False,
    ) -> RunReport:
        """One-shot convenience over :meth:`open`: stream ``records``
        through a fresh session and collect every query's result
        (hardware + software stages).

        Columnar observation tables keep their columnar form end to
        end: the pipeline runs its chunked batch mode with the
        schedule-driven vector split store (under ``engine="auto"`` /
        ``"vector"``), and software stages and the optional ground
        truth run on the vectorized executor.  ``engine="vector"``
        columnizes row input first so the whole run stays array-native.
        """
        if not isinstance(records, (list, ObservationTable)):
            records = list(records)    # one-pass iterables: ingest and
        if self.engine == "vector":    # ground truth read it twice
            # Columnize once, up front: the session *and* the exact
            # ground-truth pass below reuse the same columnar table.
            if isinstance(records, list):
                records = ObservationTable(records)
            if not records.is_columnar:
                records = ObservationTable.from_arrays(records.columns())
        session = self.open()
        session.ingest(records)
        report = session.close(include_invalid=include_invalid)
        if with_ground_truth:
            report.ground_truth = self.run_exact(records)
        return report

    def run_exact(self, records: Iterable[object]) -> dict[str, ResultTable]:
        """Exact evaluation only (no hardware model), on the engine the
        ``engine`` knob selects — an *exact* session under the hood."""
        session = self.open(exact=True)
        session.ingest(records)
        return session.close().tables

    # -- deploy-time cache planning ---------------------------------------------

    def plan_cache(
        self,
        records,
        capacities: Iterable[int],
        ways: int = 8,
    ) -> dict[str, list[CachePlanPoint]]:
        """Size the on-chip store before deploying: exact cache
        counters per ``GROUPBY`` stage for each candidate capacity.

        This is the §4 methodology as an operator tool: the stage's key
        stream is extracted from ``records`` once (WHERE mask + key
        columns, vectorized for columnar tables), then each candidate
        geometry is simulated with the engine the ``engine`` knob
        selects — under ``"auto"``/``"vector"`` the array-native
        :class:`~repro.switch.kvstore.vector_cache.VectorCacheSim`,
        which shares layout work across the capacity sweep.  The
        predicted counters are bit-identical to what :meth:`run` with
        the same geometry/policy/seed would report, at a fraction of
        the cost (no value updates, no backing store).

        ``ways`` mirrors the CLI: 0 = fully associative, 1 = hash
        table, otherwise ``ways``-way set-associative.
        """
        capacities = list(capacities)
        plans: dict[str, list[CachePlanPoint]] = {}
        for stage in self.compiled.groupby_stages:
            keys = self._stage_key_stream(stage, records)
            use_vector = self.engine != "row" and isinstance(keys, np.ndarray)
            if use_vector:
                from repro.switch.kvstore.vector_cache import VectorCacheSim

                sim = VectorCacheSim(keys, seed=self.seed)
                stats_for = lambda g: sim.stats(g, policy=self.policy)  # noqa: E731
            else:
                if isinstance(keys, np.ndarray):
                    keys = [tuple(row) for row in keys.tolist()]
                stats_for = lambda g: simulate_eviction_count(  # noqa: E731
                    keys, g, policy=self.policy, seed=self.seed, engine="row")
            plans[stage.query_name] = [
                CachePlanPoint(
                    query=stage.query_name,
                    geometry=geometry,
                    policy=self.policy,
                    pair_bits=stage.pair_bits,
                    stats=stats_for(geometry),
                )
                for geometry in (self._plan_geometry(c, ways)
                                 for c in capacities)
            ]
        return plans

    @staticmethod
    def _plan_geometry(capacity: int, ways: int) -> CacheGeometry:
        if ways == 0:
            return CacheGeometry.fully_associative(capacity)
        if ways == 1:
            return CacheGeometry.hash_table(capacity)
        return CacheGeometry.set_associative(capacity, ways=ways)

    def _stage_key_stream(self, stage, records):
        """The exact sequence of aggregation keys one stage's cache
        sees: WHERE-filtered, in arrival order.  Returns a 2-D int
        array (one column per key field) for columnar tables, or a
        list of key tuples otherwise."""
        if isinstance(records, ObservationTable) and records.is_columnar:
            columns = records.columns()
            try:
                ctx = ArrayContext(columns, self.params, len(records))
                mask = eval_mask(stage.where, ctx)
                cols = [columns[f] for f in stage.key.fields]
                if all(c.dtype.kind in "iub" for c in cols):
                    keys = np.column_stack(
                        [c.astype(np.int64, copy=False) for c in cols])
                    return keys if mask is None else keys[mask]
            except (VectorizationError, KeyError):
                pass
        from repro.switch.alu import compile_key_extractor, compile_predicate

        predicate = compile_predicate(stage.where, self.params)
        extract = compile_key_extractor(stage.key.fields)
        if isinstance(records, ObservationTable):
            records = records.records
        return [extract(r) for r in records if predicate(r)]


def run(source: str, records: Iterable[object],
        params: Mapping[str, Numeric] | None = None,
        geometry: GeometrySpec = DEFAULT_GEOMETRY, **kwargs) -> RunReport:
    """One-shot convenience: build an engine and run it."""
    return QueryEngine(source, params=params, geometry=geometry, **kwargs).run(records)
