"""Observation-table serialisation.

Two formats:

* **CSV** — human-inspectable, header row of field names; ``tout`` of a
  dropped packet is written as ``inf``;
* **NPZ** — compressed columnar numpy (via
  :meth:`repro.network.records.ObservationTable.save`), the fast format
  the benches use to cache generated traces between runs.

The CSV reader tolerates column subsets (missing fields default), so
externally produced traces can be imported with whatever fields they
have.
"""

from __future__ import annotations

import csv
import math
from pathlib import Path

from repro.network.records import RECORD_FIELDS, ObservationTable, PacketRecord

#: Fields written to CSV, in canonical order.
CSV_FIELDS: tuple[str, ...] = RECORD_FIELDS


def write_csv(table: ObservationTable, path: str | Path) -> None:
    """Write ``table`` to ``path`` in CSV format."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(CSV_FIELDS)
        for record in table:
            writer.writerow([getattr(record, f) for f in CSV_FIELDS])


def read_csv(path: str | Path) -> ObservationTable:
    """Read an observation table from CSV.

    Unknown columns are ignored; missing columns take the record
    defaults.  ``tout`` accepts ``inf`` for drops.
    """
    table = ObservationTable()
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            return table
        known = [f for f in reader.fieldnames if f in RECORD_FIELDS]
        for row in reader:
            kwargs: dict[str, float | int] = {}
            for name in known:
                raw = row[name]
                if name == "tout":
                    kwargs[name] = float(raw)
                else:
                    kwargs[name] = int(float(raw))
            table.append(PacketRecord(**kwargs))
    return table


def write_npz(table: ObservationTable, path: str | Path) -> None:
    """Write ``table`` in compressed columnar form."""
    table.save(str(path))


def read_npz(path: str | Path) -> ObservationTable:
    """Read a columnar table written by :func:`write_npz`."""
    return ObservationTable.load(str(path))


def validate_table(table: ObservationTable) -> list[str]:
    """Sanity checks on an (imported) table; returns a list of
    human-readable problems, empty when clean.

    Checks the schema invariants the simulator guarantees:
    ``tout >= tin`` (or ``inf``), nonnegative depths and lengths,
    nondecreasing ``tin`` per queue.
    """
    problems: list[str] = []
    last_tin: dict[int, int] = {}
    for i, record in enumerate(table):
        if not math.isinf(record.tout) and record.tout < record.tin:
            problems.append(f"record {i}: tout {record.tout} < tin {record.tin}")
        if record.qin < 0 or record.pkt_len < 0 or record.payload_len < 0:
            problems.append(f"record {i}: negative qin/pkt_len/payload_len")
        prev = last_tin.get(record.qid)
        if prev is not None and record.tin < prev:
            problems.append(
                f"record {i}: tin decreases within queue {record.qid}"
            )
        last_tin[record.qid] = record.tin
        if len(problems) > 20:
            problems.append("... (truncated)")
            break
    return problems
