"""PERF — streaming TelemetrySession: bounded memory at one-shot speed.

The windowed session is the PR's answer to the one-shot vector store's
unbounded deferral: the schedule executes every ``window`` accesses
with carried residency/epoch state.  This bench drives a synthetic
flow stream **10× the window** through both paths — in separate
subprocesses, so each run's peak RSS is its own — and asserts the
acceptance criteria:

* **bounded memory** — the windowed session *generates batches on the
  fly* and never holds the stream; its peak RSS must stay well under
  the one-shot run's (which must materialise all ten windows of
  columns), and must not grow when the stream doubles to 20× the
  window;
* **≤ 1.3× runtime** — streaming costs at most 30% over the one-shot
  run of the same stream;
* **bit-identical results** — asserted here on the full stream and in
  CI by the ``smoke`` test (tiny sizes, row vs vector vs windowed).

A ``BENCH_streaming.json`` artifact (seconds + peak RSS per mode)
lands at the repo root to anchor the trajectory.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import resource
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.network.records import ObservationTable
from repro.switch.kvstore.cache import CacheGeometry
from repro.telemetry.runtime import QueryEngine

QUERY = "SELECT COUNT, SUM(pkt_len) GROUPBY srcip, dstip"
GEOMETRY = CacheGeometry.set_associative(1 << 12, ways=8)
WINDOW = 1 << 17
N_WINDOWS = 10
FLOWS = 50_000
SEED = 2016_04

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_streaming.json"


def make_batch(i: int, size: int, flows: int = FLOWS) -> ObservationTable:
    """Deterministic columnar batch ``i`` of a heavy-tailed flow
    stream — both phases rebuild identical batches, so the windowed
    phase never has to hold more than one."""
    rng = np.random.default_rng(SEED + i)
    flow = rng.zipf(1.2, size).astype(np.int64) % flows
    tin = np.arange(i * size, (i + 1) * size, dtype=np.int64) * 100
    return ObservationTable.from_arrays({
        "srcip": 0x0A000000 + flow,
        "dstip": 0x0B000000 + (flow * 7 + 3) % flows,
        "srcport": 1000 + (flow % 53),
        "pkt_len": rng.integers(64, 1500, size),
        "tin": tin,
        "tout": (tin + rng.integers(1000, 9000, size)).astype(np.float64),
    })


def _engine() -> QueryEngine:
    return QueryEngine(QUERY, geometry=GEOMETRY)


def _result_fingerprint(report) -> tuple:
    table = report.result
    return (len(table),
            sum(table.column("COUNT")),
            sum(table.column("SUM(pkt_len)")))


def _warmup() -> None:
    """One tiny end-to-end pass so import/allocator costs are paid
    before either phase's clock starts."""
    session = _engine().open(window=1 << 12)
    session.ingest(make_batch(10 ** 6, 1 << 12))
    session.close()
    _engine().run(make_batch(10 ** 6 + 1, 1 << 12))


def _run_one_shot(n_windows: int, out: dict) -> None:
    """Materialise the whole stream (what the deferred store needs
    anyway), then run it through the one-shot path."""
    _warmup()
    batches = [make_batch(i, WINDOW) for i in range(n_windows)]
    full = ObservationTable.from_arrays({
        name: np.concatenate([b.columns()[name] for b in batches])
        for name in batches[0].columns()
    })
    del batches
    t0 = time.perf_counter()
    report = _engine().run(full)
    out["seconds"] = time.perf_counter() - t0
    out["fingerprint"] = _result_fingerprint(report)
    out["peak_rss_mb"] = _peak_rss_mb()


def _run_windowed(n_windows: int, out: dict) -> None:
    """Generate-and-ingest: at no point does the process hold more
    than one batch of the stream.  Generation time is excluded from
    ``seconds`` (the one-shot phase generates before its clock starts),
    so the ratio compares the execution engines, not the generator."""
    _warmup()
    session = _engine().open(window=WINDOW)
    t0 = time.perf_counter()
    generating = 0.0
    for i in range(n_windows):
        g0 = time.perf_counter()
        batch = make_batch(i, WINDOW)
        generating += time.perf_counter() - g0
        session.ingest(batch)
    report = session.close()
    out["seconds"] = time.perf_counter() - t0 - generating
    out["fingerprint"] = _result_fingerprint(report)
    out["peak_rss_mb"] = _peak_rss_mb()


def _peak_rss_mb() -> float:
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":       # bytes on macOS, KiB on Linux
        peak //= 1024
    return round(peak / 1024, 1)


def _in_subprocess(target, *args) -> dict:
    """Run a phase in its own process so ru_maxrss is per-phase."""
    ctx = mp.get_context("spawn")
    with ctx.Manager() as manager:
        out = manager.dict()
        proc = ctx.Process(target=target, args=(*args, out))
        proc.start()
        proc.join()
        assert proc.exitcode == 0, f"phase crashed: {target.__name__}"
        return dict(out)


# -- smoke (CI): tiny stream, bit-identity across engines/windows -------------

def test_smoke_streaming_bit_identical():
    """Row vs vector vs windowed sessions on a tiny stream whose
    window is smaller than the trace: identical tables + counters."""
    geometry = CacheGeometry.set_associative(256, ways=8)
    batches = [make_batch(i, 2000, flows=500) for i in range(4)]
    full = ObservationTable.from_arrays({
        name: np.concatenate([b.columns()[name] for b in batches])
        for name in batches[0].columns()
    })

    def observables(report):
        return ({q: t.rows for q, t in report.tables.items()},
                {q: (s.accesses, s.hits, s.misses, s.insertions,
                     s.evictions)
                 for q, s in report.cache_stats.items()},
                report.backing_writes, report.accuracy)

    base = observables(QueryEngine(QUERY, geometry=geometry,
                                   engine="row").run(full))
    assert observables(QueryEngine(QUERY, geometry=geometry,
                                   engine="vector").run(full)) == base
    for engine in ("row", "vector"):
        session = QueryEngine(QUERY, geometry=geometry,
                              engine=engine).open(window=1500)
        for batch in batches:
            session.ingest(batch)
        assert observables(session.close()) == base, engine


# -- acceptance: bounded RSS at <= 1.3x one-shot runtime ----------------------

@pytest.fixture(scope="module")
def comparison(report):
    one_shot = _in_subprocess(_run_one_shot, N_WINDOWS)
    windowed = _in_subprocess(_run_windowed, N_WINDOWS)
    windowed_2x = _in_subprocess(_run_windowed, 2 * N_WINDOWS)
    assert windowed["fingerprint"] == one_shot["fingerprint"]

    payload = {
        "query": QUERY,
        "window": WINDOW,
        "stream": N_WINDOWS * WINDOW,
        "flows": FLOWS,
        "one_shot_seconds": round(one_shot["seconds"], 3),
        "windowed_seconds": round(windowed["seconds"], 3),
        "runtime_ratio": round(windowed["seconds"] / one_shot["seconds"], 3),
        "one_shot_peak_rss_mb": one_shot["peak_rss_mb"],
        "windowed_peak_rss_mb": windowed["peak_rss_mb"],
        "windowed_2x_stream_peak_rss_mb": windowed_2x["peak_rss_mb"],
    }
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")

    report("PERF: streaming session (windowed vs one-shot)", "\n".join([
        f"{QUERY}",
        f"stream {N_WINDOWS}x window of {WINDOW} ({N_WINDOWS * WINDOW} "
        f"records, {FLOWS} flows)",
        f"one-shot: {one_shot['seconds']:6.2f}s  "
        f"peak RSS {one_shot['peak_rss_mb']:7.1f} MB",
        f"windowed: {windowed['seconds']:6.2f}s  "
        f"peak RSS {windowed['peak_rss_mb']:7.1f} MB  "
        f"(ratio {payload['runtime_ratio']:.2f}x)",
        f"windowed, 2x stream:      "
        f"peak RSS {windowed_2x['peak_rss_mb']:7.1f} MB",
        f"artifact: {ARTIFACT.name}",
    ]))
    return payload


def test_streaming_runtime_within_30_percent(comparison):
    assert comparison["runtime_ratio"] <= 1.3, (
        f"windowed session {comparison['runtime_ratio']:.2f}x one-shot "
        f"({comparison['windowed_seconds']}s vs "
        f"{comparison['one_shot_seconds']}s)")


def test_streaming_rss_bounded_by_window_not_stream(comparison):
    """Peak RSS must track the window, not the stream: well under the
    stream-holding one-shot run, and flat when the stream doubles."""
    assert comparison["windowed_peak_rss_mb"] <= \
        0.6 * comparison["one_shot_peak_rss_mb"], comparison
    assert comparison["windowed_2x_stream_peak_rss_mb"] <= \
        1.25 * comparison["windowed_peak_rss_mb"], comparison
