"""Whole-program deployability analysis over compiled query plans.

The paper decides a query's fate statically: §3.2's linear-in-state
analysis says whether evictions merge (and therefore whether the stage
can shard), §3.3/§4's area model says whether the key-value cache fits
the chip.  The runtime already *contains* those verdicts — scattered
across :mod:`repro.core.linearity`, :mod:`repro.core.merge_synthesis`,
:mod:`repro.switch.area`, and ad-hoc constructor checks — but only
surfaces them as runtime errors and mid-run ``RuntimeWarning``s.  This
module lifts them into one compile-time pass:

(a) per-stage **mergeability/shardability** — the verdict
    :class:`~repro.switch.kvstore.sharded.ShardedStoreProxy` computes at
    routing time, derived here from the synthesized merge strategies;
(b) the **engine/session compatibility matrix** (row vs vector vs
    windowed vs sharded vs ``exact`` vs ``refresh_interval``);
(c) **value-range inference** over fold accumulators: given trace
    bounds (record count x max field magnitude), predict the int64
    overflow fallback that
    :func:`~repro.core.vector_exec.guard_int64_accumulation` otherwise
    discovers mid-run — the static bound is exactly the guard's
    conservative formula, so the verdicts agree by construction;
(d) **SRAM/area feasibility** per stage via :mod:`repro.switch.area`
    ("won't fit" before deployment, §4's 38%-of-die example);
(e) **unused-field / dead-stage detection** over the resolved program
    (which trace columns need never be scanned).

Everything is reported as :class:`~repro.telemetry.diagnostics.Diagnostic`
records with stable codes; ``QueryEngine`` gates :meth:`open`/
:meth:`serve` on the hard errors and the ``repro lint`` CLI prints the
report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.switch import area
from repro.switch.kvstore.cache import ENGINES, CacheGeometry
from repro.telemetry.diagnostics import Diagnostic, DiagnosticsReport, make

from .ast_nodes import (
    BinOp,
    Call,
    ColumnRef,
    Cond,
    Expr,
    FieldRef,
    Number,
    ParamRef,
    StateRef,
    UnaryOp,
    walk,
)
from .eval_expr import Numeric
from .plan import FoldConfig, GroupByStage, SwitchProgram
from .schema import FIELDS
from .semantics import ResolvedProgram

__all__ = [
    "DEFAULT_AREA_BUDGET",
    "DEFAULT_FIELD_MAGNITUDE",
    "FoldVerdict",
    "OverflowBound",
    "ProgramAnalysis",
    "StageAnalysis",
    "TraceBounds",
    "analyze_program",
    "session_diagnostics",
]

#: Largest fraction of the die the §4 model lets one program's caches
#: claim before the analyzer calls it undeployable.  The paper blesses
#: a 32-Mbit cache (<2.5% of a 200 mm² die) and rejects holding all
#: 3.8 M trace flows on-chip (~486 Mbit ≈ 38%) — the default sits
#: safely between the two.
DEFAULT_AREA_BUDGET = 0.25

#: Default per-field magnitude bound: every schema field is at most 64
#: bits, but absent better knowledge we assume 32-bit payloads.
DEFAULT_FIELD_MAGNITUDE = 2 ** 32

_INT64_LIMIT = 2 ** 63

_FIELD_DTYPE = {f.name: f.dtype for f in FIELDS}


@dataclass(frozen=True)
class TraceBounds:
    """What the analyzer may assume about the trace to be ingested.

    ``field_magnitude`` is either one bound for every field or a
    per-field mapping (missing fields fall back to
    :data:`DEFAULT_FIELD_MAGNITUDE`).  Bounds are magnitudes: the field
    value is assumed to lie in ``[-m, +m]``.  Integer magnitudes are
    kept exact — the runtime guard computes its bound in Python ints,
    and agreeing with it at the 2^63 boundary needs more precision
    than float64 carries.
    """

    records: int
    field_magnitude: Numeric | Mapping[str, Numeric] = DEFAULT_FIELD_MAGNITUDE

    def bound_for(self, name: str) -> Numeric:
        if isinstance(self.field_magnitude, Mapping):
            return self.field_magnitude.get(name, DEFAULT_FIELD_MAGNITUDE)
        return self.field_magnitude


@dataclass(frozen=True)
class OverflowBound:
    """Static accumulation bound for one integer state variable."""

    var: str
    per_record_bound: int
    init_magnitude: int
    total_bound: int           # |init| + records * per_record_bound
    overflows: bool            # total_bound >= 2^63
    safe_records: int | None   # largest N proven safe (None: unbounded)


@dataclass(frozen=True)
class FoldVerdict:
    """Per-fold outcome of the mergeability + range analyses."""

    column: str
    mergeable: bool
    strategy: str
    exact: bool
    reason: str | None
    overflow: tuple[OverflowBound, ...] = ()


@dataclass(frozen=True)
class StageAnalysis:
    """Per-``GROUPBY``-stage deployability facts."""

    query_name: str
    mergeable: bool
    shardable: bool             # mergeable and >1 hash bucket to split
    serialize_cause: str | None
    pair_bits: int
    n_pairs: int
    total_bits: int
    area_fraction: float
    folds: tuple[FoldVerdict, ...]

    @property
    def total_mbit(self) -> float:
        return self.total_bits / area.MBIT


@dataclass(frozen=True)
class ProgramAnalysis:
    """The full analysis: per-stage facts plus the diagnostics report."""

    stages: tuple[StageAnalysis, ...]
    dead_stages: tuple[str, ...]
    unused_fields: tuple[str, ...]
    report: DiagnosticsReport

    def stage(self, query_name: str) -> StageAnalysis:
        for s in self.stages:
            if s.query_name == query_name:
                return s
        raise KeyError(query_name)


# ---------------------------------------------------------------------------
# (b) engine/session compatibility matrix
# ---------------------------------------------------------------------------


def session_diagnostics(
    engine: str = "auto",
    window: int | None = None,
    shards: int | None = None,
    exact: bool = False,
    refresh_interval: int | None = None,
) -> list[Diagnostic]:
    """Statically check one session-knob combination.

    The emission order mirrors the runtime constructors' check order
    (session layer first, then pipeline), so the first error here is
    the error the runtime would have raised.
    """
    out: list[Diagnostic] = []
    if engine not in ENGINES:
        out.append(make("RPR-E008", engines=ENGINES, engine=engine))
    if window is not None and window <= 0:
        out.append(make("RPR-E004", window=window))
    if shards is not None and shards < 1:
        out.append(make("RPR-E005", shards=shards))
    if exact and shards is not None:
        out.append(make("RPR-E003"))
    elif shards is not None:
        if engine == "row":
            out.append(make("RPR-E001"))
        if refresh_interval is not None:
            out.append(make("RPR-E002"))
    if (not exact and window is None and engine != "row"
            and (shards is not None or engine == "vector")):
        out.append(make("RPR-W002"))
    return out


# ---------------------------------------------------------------------------
# (c) value-range inference over fold accumulators
# ---------------------------------------------------------------------------


def _is_int_expr(expr: Expr, params: Mapping[str, Numeric],
                 history: Mapping[str, Expr]) -> bool:
    """Whether ``expr`` evaluates on the integer array path.

    Mirrors the vector store's dtype derivation: float literals,
    division, float-typed fields/params, or unbound params (unknown
    type) all push the accumulator to float64, where int64 overflow
    cannot happen.
    """
    for node in walk(expr):
        if isinstance(node, Number) and isinstance(node.value, float):
            return False
        if isinstance(node, BinOp) and node.op == "/":
            return False
        if isinstance(node, (FieldRef, ColumnRef)):
            if _FIELD_DTYPE.get(node.name) == "float":
                return False
        if isinstance(node, ParamRef):
            if node.name not in params:
                return False
            if isinstance(params[node.name], float):
                return False
        if isinstance(node, StateRef):
            dep = history.get(node.name)
            if dep is None or not _is_int_expr(dep, params, history):
                return False
    return True


def _abs_bound(expr: Expr, bounds: TraceBounds,
               params: Mapping[str, Numeric],
               history_bounds: Mapping[str, Numeric]) -> Numeric:
    """Conservative bound on ``|expr|`` over any in-bounds record."""
    if isinstance(expr, Number):
        return abs(expr.value)
    if isinstance(expr, (FieldRef, ColumnRef)):
        return bounds.bound_for(expr.name)
    if isinstance(expr, ParamRef):
        value = params.get(expr.name)
        return abs(value) if value is not None else DEFAULT_FIELD_MAGNITUDE
    if isinstance(expr, StateRef):
        # Only history variables may appear in B (state-free by
        # construction); their pre-value is bounded by their own update.
        return history_bounds.get(expr.name, DEFAULT_FIELD_MAGNITUDE)
    if isinstance(expr, UnaryOp):
        if expr.op == "-":
            return _abs_bound(expr.operand, bounds, params, history_bounds)
        return 1  # "not" yields 0/1
    if isinstance(expr, BinOp):
        left = _abs_bound(expr.left, bounds, params, history_bounds)
        right = _abs_bound(expr.right, bounds, params, history_bounds)
        if expr.op in ("+", "-"):
            return left + right
        if expr.op == "*":
            return left * right
        if expr.op == "/":
            return left  # denominators are >= 1 in integer queries
        return 1  # comparisons / and / or yield 0/1
    if isinstance(expr, Call):
        args = [_abs_bound(a, bounds, params, history_bounds)
                for a in expr.args]
        return max(args, default=0)  # max / min / abs
    if isinstance(expr, Cond):
        return max(
            _abs_bound(expr.then, bounds, params, history_bounds),
            _abs_bound(expr.orelse, bounds, params, history_bounds),
        )
    return DEFAULT_FIELD_MAGNITUDE


def _history_bounds(fold: FoldConfig, bounds: TraceBounds,
                    params: Mapping[str, Numeric]) -> dict[str, Numeric]:
    """Bounds for history variables, resolved in depth order."""
    lin = fold.linearity
    out: dict[str, Numeric] = {}
    for var, _depth in sorted(lin.history.items(), key=lambda kv: kv[1]):
        out[var] = _abs_bound(lin.update_exprs[var], bounds, params, out)
    return out


def _as_int(value: Numeric) -> int:
    """Round a bound up to an int (bounds only ever over-approximate)."""
    i = int(value)
    return i if i == value else i + 1


def _overflow_bounds(fold: FoldConfig, bounds: TraceBounds,
                     params: Mapping[str, Numeric]) -> tuple[OverflowBound, ...]:
    """Accumulation bounds for an additive fold's integer variables.

    The additive strategy updates ``s = s + B(pkt)`` per record, so
    after ``N`` records ``|s| <= |init| + N * max|B|`` — the same
    conservative formula
    :func:`~repro.core.vector_exec.guard_int64_accumulation` applies to
    a batch at runtime, evaluated here against the trace bounds.
    """
    spec = fold.merge
    if spec.strategy != "additive":
        return ()
    history_exprs = {v: fold.linearity.update_exprs[v]
                     for v in fold.linearity.history}
    hist_bounds = _history_bounds(fold, bounds, params)
    inits = fold.instance.initial_state()
    out: list[OverflowBound] = []
    for var in spec.order:
        init = inits.get(var, 0)
        offset = spec.offset.get(var, Number(0))
        if isinstance(init, float) or not _is_int_expr(
                offset, params, history_exprs):
            continue
        incr = _as_int(_abs_bound(offset, bounds, params, hist_bounds))
        init_mag = abs(int(init))
        total = init_mag + bounds.records * incr
        safe = None if incr == 0 else (_INT64_LIMIT - 1 - init_mag) // incr
        out.append(OverflowBound(
            var=var, per_record_bound=incr, init_magnitude=init_mag,
            total_bound=total, overflows=total >= _INT64_LIMIT,
            safe_records=safe,
        ))
    return tuple(out)


# ---------------------------------------------------------------------------
# (a)+(c)+(d) per-stage analysis
# ---------------------------------------------------------------------------


def _geometry_for(name: str,
                  geometry: CacheGeometry | Mapping[str, CacheGeometry] | None
                  ) -> CacheGeometry | None:
    if geometry is None:
        return None
    if isinstance(geometry, CacheGeometry):
        return geometry
    return geometry.get(name)


def _analyze_stage(
    stage: GroupByStage,
    geom: CacheGeometry | None,
    params: Mapping[str, Numeric],
    trace_bounds: TraceBounds | None,
) -> StageAnalysis:
    verdicts: list[FoldVerdict] = []
    for fold in stage.folds:
        overflow = (_overflow_bounds(fold, trace_bounds, params)
                    if trace_bounds is not None else ())
        verdicts.append(FoldVerdict(
            column=fold.column,
            mergeable=fold.merge.mergeable,
            strategy=fold.merge.strategy,
            exact=fold.merge.exact,
            reason=fold.linearity.reason,
            overflow=overflow,
        ))
    mergeable = all(v.mergeable for v in verdicts)
    n_buckets = geom.n_buckets if geom is not None else 0
    shardable = mergeable and n_buckets > 1
    if not mergeable:
        cause = "non-mergeable fold"
    elif n_buckets == 1:
        cause = "single-bucket geometry"
    else:
        cause = None
    n_pairs = geom.capacity if geom is not None else 0
    total_bits = area.cache_bits(n_pairs, stage.pair_bits)
    return StageAnalysis(
        query_name=stage.query_name,
        mergeable=mergeable,
        shardable=shardable,
        serialize_cause=cause,
        pair_bits=stage.pair_bits,
        n_pairs=n_pairs,
        total_bits=total_bits,
        area_fraction=area.area_fraction(total_bits),
        folds=tuple(verdicts),
    )


# ---------------------------------------------------------------------------
# (e) program hygiene
# ---------------------------------------------------------------------------


def _dead_queries(resolved: ResolvedProgram) -> tuple[str, ...]:
    names = {q.name for q in resolved.queries}
    seen: set[str] = set()
    stack = [resolved.result]
    while stack:
        name = stack.pop()
        if name in seen or name not in names:
            continue
        seen.add(name)
        query = resolved.by_name(name)
        for dep in (query.source, query.join_left, query.join_right):
            if dep:
                stack.append(dep)
    return tuple(q.name for q in resolved.queries if q.name not in seen)


def _unused_fields(compiled: SwitchProgram) -> tuple[str, ...]:
    parsed = set(compiled.parse_fields)
    return tuple(f.name for f in FIELDS if f.name not in parsed)


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def analyze_program(
    compiled: SwitchProgram,
    resolved: ResolvedProgram | None = None,
    *,
    params: Mapping[str, Numeric] | None = None,
    geometry: CacheGeometry | Mapping[str, CacheGeometry] | None = None,
    engine: str = "auto",
    window: int | None = None,
    shards: int | None = None,
    exact: bool = False,
    refresh_interval: int | None = None,
    trace_bounds: TraceBounds | None = None,
    area_budget: float = DEFAULT_AREA_BUDGET,
) -> ProgramAnalysis:
    """Run every deployability analysis over one compiled program.

    Session knobs (``window``/``shards``/``exact``/...) describe the
    *intended* session; pass none of them to lint the program itself.
    ``trace_bounds`` enables the overflow analysis; without it no
    value-range verdicts are produced.
    """
    params = dict(params or {})
    diags: list[Diagnostic] = list(session_diagnostics(
        engine=engine, window=window, shards=shards, exact=exact,
        refresh_interval=refresh_interval))

    stages: list[StageAnalysis] = []
    for stage in compiled.groupby_stages:
        geom = _geometry_for(stage.query_name, geometry)
        analysis = _analyze_stage(stage, geom, params, trace_bounds)
        stages.append(analysis)

        for verdict in analysis.folds:
            if not verdict.mergeable:
                diags.append(make(
                    "RPR-W101", stage=stage.query_name,
                    column=verdict.column, reason=verdict.reason,
                ))
            elif not verdict.exact:
                fold = next(f for f in stage.folds
                            if f.column == verdict.column)
                diags.append(make(
                    "RPR-W103", stage=stage.query_name,
                    column=verdict.column,
                    depth=fold.merge.history_depth,
                ))
            for bound in verdict.overflow:
                if bound.overflows:
                    diags.append(make(
                        "RPR-W201", stage=stage.query_name,
                        column=verdict.column, var=bound.var,
                        init=bound.init_magnitude,
                        records=trace_bounds.records,
                        bound=bound.per_record_bound,
                        safe=bound.safe_records,
                    ))
        if (analysis.mergeable and analysis.serialize_cause
                and shards is not None and shards > 1 and not exact):
            diags.append(make("RPR-W102", stage=stage.query_name))
        if geom is not None:
            diags.append(make(
                "RPR-I301", stage=stage.query_name,
                pairs=analysis.n_pairs, pair_bits=analysis.pair_bits,
                mbit=analysis.total_mbit,
                pct=100 * analysis.area_fraction,
                chip=area.CHIP_AREA_MM2,
            ))
            if not exact and analysis.area_fraction > area_budget:
                diags.append(make(
                    "RPR-E301", stage=stage.query_name,
                    pairs=analysis.n_pairs, pair_bits=analysis.pair_bits,
                    mbit=analysis.total_mbit,
                    pct=100 * analysis.area_fraction,
                    chip=area.CHIP_AREA_MM2,
                    budget_pct=100 * area_budget,
                ))

    dead: tuple[str, ...] = ()
    if resolved is not None:
        dead = _dead_queries(resolved)
        for name in dead:
            diags.append(make("RPR-W401", stage=name, name=name,
                              result=resolved.result))

    unused = _unused_fields(compiled)
    if unused:
        diags.append(make("RPR-I402", fields=", ".join(unused)))

    return ProgramAnalysis(
        stages=tuple(stages),
        dead_stages=dead,
        unused_fields=unused,
        report=DiagnosticsReport(tuple(diags)),
    )
