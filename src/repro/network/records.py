"""Packet-observation records — the rows of the abstract table ``T``.

The paper's schema (§2)::

    (pkt_hdr, qid, tin, tout, qsize, pkt_path)

Each record describes one packet's transit of one queue; a packet that
traverses multiple queues contributes one record per queue (footnote
2).  A dropped packet has ``tout == +inf`` (§2).

Two representations are provided:

* :class:`PacketRecord` — a slotted per-row object, convenient for the
  interpreter, the switch pipeline, and tests;
* :class:`ObservationTable` — a struct-of-arrays table whose canonical
  storage is one numpy array per schema field.  Row access
  (iteration, indexing, ``.records``) materialises
  :class:`PacketRecord` views lazily, so row-at-a-time consumers keep
  working, while the columnar core gives the vectorized executor
  (:mod:`repro.core.vector_exec`), the trace generators, and the
  ``.npz`` persistence O(1)-per-column operations.

A table is always in exactly one of two authority states:

* *columnar* — ``_columns`` holds the data; built by
  :meth:`from_arrays` / :meth:`load` or by the columnar trace
  generators.  Aggregates (:meth:`key_array`, :meth:`unique_keys`,
  :meth:`drop_count`, :meth:`duration_ns`) and persistence run as
  numpy column operations.
* *row* — ``_rows`` holds a mutable list of :class:`PacketRecord`;
  entered on construction from records, on :meth:`append`, or the
  first time ``.records`` is touched (callers may mutate the list, so
  the columnar copy cannot be kept coherent and is dropped).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields as dc_fields
from typing import Iterable, Iterator, Sequence

import numpy as np

INFINITY = math.inf


@dataclass(slots=True)
class PacketRecord:
    """One packet observation at one queue.

    All times are integer nanoseconds except ``tout`` which is ``+inf``
    for dropped packets.  Field names match :mod:`repro.core.schema`
    exactly — queries access them by name.
    """

    srcip: int = 0
    dstip: int = 0
    srcport: int = 0
    dstport: int = 0
    proto: int = 6
    pkt_len: int = 64
    payload_len: int = 0
    tcpseq: int = 0
    pkt_id: int = 0
    qid: int = 0
    tin: int = 0
    tout: float = 0.0
    qin: int = 0
    qout: int = 0
    qsize: int = 0
    pkt_path: int = 0

    @property
    def dropped(self) -> bool:
        return math.isinf(self.tout)

    @property
    def queueing_delay(self) -> float:
        """``tout - tin``; ``+inf`` for drops."""
        return self.tout - self.tin

    def five_tuple(self) -> tuple[int, int, int, int, int]:
        return (self.srcip, self.dstip, self.srcport, self.dstport, self.proto)

    def key(self, key_fields: Sequence[str]) -> tuple:
        """Aggregation key for ``key_fields`` (hardware key extraction)."""
        return tuple(getattr(self, f) for f in key_fields)


RECORD_FIELDS: tuple[str, ...] = tuple(f.name for f in dc_fields(PacketRecord))


class ColumnRowView:
    """A lazy row view over per-field Python lists (``tolist`` output).

    Presents attribute access like a :class:`PacketRecord`, so compiled
    per-packet functions (ALU updates, predicates, merge replays) run
    unchanged over columnar batches; the underlying values are native
    Python scalars, so arithmetic is bit-identical to the
    row-at-a-time path.  Shared by the switch pipeline's batch
    fallbacks and the vectorized split store's replay path.
    """

    __slots__ = ("_columns", "_index")

    def __init__(self, columns, index: int):
        self._columns = columns
        self._index = index

    def __getattr__(self, name: str):
        try:
            return self._columns[name][self._index]
        except KeyError:
            raise AttributeError(name) from None

#: numpy dtypes used by the columnar representation.
_COLUMN_DTYPES: dict[str, str] = {name: "int64" for name in RECORD_FIELDS}
_COLUMN_DTYPES["tout"] = "float64"

#: Per-field default values (the PacketRecord dataclass defaults),
#: used to fill columns absent from ``from_arrays`` input.
_FIELD_DEFAULTS: dict[str, int | float] = {
    f.name: f.default for f in dc_fields(PacketRecord)
}


class ObservationTable:
    """A materialised observation table with native columnar storage.

    Iterating yields :class:`PacketRecord` objects in arrival order
    (the order matters: the language supports order-dependent folds).
    Mutating rows requires going through ``.records``, which switches
    the table to row authority.
    """

    def __init__(self, records: Iterable[PacketRecord] | None = None):
        self._rows: list[PacketRecord] | None = (
            list(records) if records is not None else []
        )
        self._columns: dict[str, np.ndarray] | None = None

    # -- authority management ------------------------------------------------

    @property
    def is_columnar(self) -> bool:
        """True when the canonical storage is the column dict."""
        return self._columns is not None

    @property
    def records(self) -> list[PacketRecord]:
        """The mutable row list; materialised from columns on demand.

        Touching this drops the columnar storage (the caller may mutate
        rows, which cannot be reflected into a retained column copy).
        """
        if self._rows is None:
            self._rows = self._materialize_rows()
            self._columns = None
        return self._rows

    def _materialize_rows(self) -> list[PacketRecord]:
        columns = self._columns
        assert columns is not None
        # tolist() converts to native Python scalars, so the records are
        # indistinguishable from ones built row-at-a-time.
        data = [columns[name].tolist() for name in RECORD_FIELDS]
        return [PacketRecord(*values) for values in zip(*data)]

    def __len__(self) -> int:
        if self._rows is not None:
            return len(self._rows)
        return len(self._columns["tin"])

    def __iter__(self) -> Iterator[PacketRecord]:
        if self._rows is not None:
            return iter(self._rows)
        return self._iter_columnar()

    def _iter_columnar(self) -> Iterator[PacketRecord]:
        """Lazy row views: records are built one at a time (consumers
        that stop early never pay for the tail) and the table keeps
        columnar authority.  The yielded records are ephemeral —
        mutating them does not write back; use ``.records`` for that."""
        columns = self._columns
        assert columns is not None
        data = [columns[name].tolist() for name in RECORD_FIELDS]
        for values in zip(*data):
            yield PacketRecord(*values)

    def __getitem__(self, index: int) -> PacketRecord:
        if self._rows is not None:
            return self._rows[index]
        columns = self._columns
        n = len(self)
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError("table index out of range")
        return PacketRecord(*(columns[name][index].item() for name in RECORD_FIELDS))

    def append(self, record: PacketRecord) -> None:
        self.records.append(record)

    # -- columnar conversion -------------------------------------------------

    def columns(self) -> dict[str, np.ndarray]:
        """The full column dict (one array per schema field).

        Columnar tables return their canonical storage — treat it as
        read-only.  Row-authority tables build a fresh columnar copy.
        """
        if self._columns is not None:
            return self._columns
        rows = self._rows
        out: dict[str, np.ndarray] = {}
        for name in RECORD_FIELDS:
            column = np.empty(len(rows), dtype=_COLUMN_DTYPES[name])
            for i, record in enumerate(rows):
                column[i] = getattr(record, name)
            out[name] = column
        return out

    def to_arrays(self) -> dict[str, np.ndarray]:
        """Columnar copy: one numpy array per field."""
        if self._columns is not None:
            return {name: array.copy() for name, array in self._columns.items()}
        return self.columns()

    @classmethod
    def from_arrays(cls, arrays: dict[str, np.ndarray]) -> "ObservationTable":
        """Build a columnar table from arrays; missing columns default.

        This is the fast path: input arrays are cast to the canonical
        dtypes (int64, float64 for ``tout``) and adopted without any
        per-record work.
        """
        lengths = {len(a) for a in arrays.values()}
        if len(lengths) > 1:
            raise ValueError(f"column length mismatch: {lengths}")
        n = lengths.pop() if lengths else 0
        columns: dict[str, np.ndarray] = {}
        for name in RECORD_FIELDS:
            dtype = _COLUMN_DTYPES[name]
            if name in arrays:
                columns[name] = np.ascontiguousarray(arrays[name], dtype=dtype)
            else:
                columns[name] = np.full(n, _FIELD_DEFAULTS[name], dtype=dtype)
        table = cls.__new__(cls)
        table._rows = None
        table._columns = columns
        return table

    def key_array(self, key_fields: Sequence[str]) -> np.ndarray:
        """Collapse the per-record key tuples into one int64 array of
        mixed hashes — the fast path used by large cache simulations
        where only key identity matters (e.g. the Fig. 5 sweep)."""
        columns = self.columns()
        mixed = np.zeros(len(self), dtype=np.int64)
        with np.errstate(over="ignore"):
            for name in key_fields:
                mixed = mixed * np.int64(1_000_003) + columns[name].astype(np.int64)
        return mixed

    # -- persistence --------------------------------------------------------------

    def save(self, path: str) -> None:
        np.savez_compressed(path, **self.columns())

    @classmethod
    def load(cls, path: str) -> "ObservationTable":
        with np.load(path) as data:
            return cls.from_arrays({k: data[k] for k in data.files})

    # -- conveniences ------------------------------------------------------------

    def unique_keys(self, key_fields: Sequence[str]) -> int:
        columns = self.columns()
        if not len(self):
            return 0
        stacked = np.stack([columns[name] for name in key_fields], axis=1)
        return len(np.unique(stacked, axis=0))

    def duration_ns(self) -> int:
        """Trace span ``max(tin) - min(tin)``.

        Uses the extrema rather than first/last record so out-of-order
        or merged multi-queue traces cannot yield a negative duration.
        """
        if not len(self):
            return 0
        tin = self.columns()["tin"]
        return int(tin.max() - tin.min())

    def drop_count(self) -> int:
        return int(np.isinf(self.columns()["tout"]).sum())
