"""Array-native cache-replacement simulator (the *vector* cache engine).

Bit-identical, batch-first replacement-policy simulation for the
split-store cache of §3.2/§4: given the whole key stream as a numpy
array, it reproduces the counters of :class:`~repro.switch.kvstore.cache.KeyValueCache`
/ :func:`~repro.switch.kvstore.cache.simulate_eviction_count` without a
per-packet Python loop.  It is what makes the Fig. 5 eviction sweep and
the Fig. 6 accuracy sweep interactive at multi-million-access scale
(``engine="vector"`` in :mod:`repro.analysis.eviction`,
:mod:`repro.analysis.accuracy`, and the sweep CLI).

Three execution paths, chosen per geometry/policy:

1. **Direct-mapped** (``m_slots == 1``, any policy — the policies are
   indistinguishable with one slot per bucket): mix the keys with a
   vectorized splitmix64 (:func:`mix_key_array`), stable-argsort the
   accesses by bucket, and read hits/misses/evictions off adjacent
   in-bucket key comparisons.  No Python loop at all.

2. **Exact LRU** (``m_slots > 1``): per-set reuse *stack distances* —
   an access hits iff the number of distinct keys touched in its set
   since the previous access to the same key is ``< m_slots`` (the LRU
   inclusion property, exact, not a model).  Accesses are grouped into
   per-set segments (one composite ``(bucket, time)`` sort), runs of
   the same key are collapsed (guaranteed hits that do not move the LRU
   state), and every access whose set-local reuse window is shorter
   than ``m_slots`` hits outright.  For the rest, the stack distance is
   ``S(i) - 1 - inv(prev(i))`` where ``S`` is the set's residency
   profile (one linear interval sweep over occurrence intervals, with
   set-end sentinels so everything stays set-local) and ``inv`` counts
   earlier accesses whose next occurrence lies past the window — an
   offline, Fenwick-free previous-larger merge counter.  Only accesses
   whose occurrence interval spans more than ``m_slots`` positions can
   ever be counted (shorter intervals close before any qualifying
   window opens), so the counter runs on that small subset, chunked at
   set boundaries to stay cache-resident; the table built for ``G`` is
   exact for every ``m >= G`` and is cached, so a fully associative
   capacity sweep pays for it once.

3. **Per-set replay** (FIFO) / **global replay** (random) fallbacks for
   the ablation policies: compact Python loops over packed key arrays
   that mirror the reference bucket order (and, for ``random``, the
   shared ``random.Random`` draw sequence) exactly.

Use :class:`VectorCacheSim` directly when sweeping many geometries over
one stream (layouts and distances are shared), or the one-shot
:func:`simulate_eviction_count_vector` /
:func:`window_validity_vector` wrappers.
"""

from __future__ import annotations

import random
from typing import Iterable

import numpy as np

from repro.core.errors import HardwareError
from .cache import CacheGeometry, CacheStats, KeyValueCache

_MASK64 = np.uint64(0xFFFFFFFFFFFFFFFF)
_U = np.uint64

#: Target chunk size for the kept-subset merge counter: chunks are cut
#: at set boundaries so each merge stays cache-resident.
_MERGE_CHUNK = 1 << 16


def splitmix64_array(values: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finaliser; uint64 in, uint64 out.

    Matches :func:`repro.switch.kvstore.cache.splitmix64` element-wise
    (numpy's wrapping uint64 arithmetic is the ``& _MASK64`` of the
    scalar version).
    """
    v = values.astype(np.uint64, copy=True)
    v += _U(0x9E3779B97F4A7C15)
    v = (v ^ (v >> _U(30))) * _U(0xBF58476D1CE4E5B9)
    v = (v ^ (v >> _U(27))) * _U(0x94D049BB133111EB)
    return v ^ (v >> _U(31))


def mix_key_array(keys: np.ndarray, seed: int = 0) -> np.ndarray:
    """Mix a key array to 64 bits, matching :func:`mix_key` per element.

    1-D arrays correspond to scalar int keys; 2-D ``(n, k)`` arrays to
    ``k``-tuples (one column per tuple part, folded in order).
    """
    keys = np.asarray(keys)
    seed64 = _U(seed & 0xFFFFFFFFFFFFFFFF)
    if keys.ndim == 1:
        return splitmix64_array(keys.astype(np.int64).view(np.uint64) ^ seed64)
    if keys.ndim == 2:
        acc = np.full(len(keys), seed64, dtype=np.uint64)
        for col in range(keys.shape[1]):
            part = keys[:, col].astype(np.int64).view(np.uint64)
            acc = splitmix64_array(acc ^ part)
        return acc
    raise HardwareError(f"key array must be 1-D or 2-D, got {keys.ndim}-D")


def _count_prev_greater(values: np.ndarray) -> np.ndarray:
    """For each ``i``: ``#{j < i : values[j] > values[i]}``.

    Offline bottom-up merge sort with vectorized cross-block counting:
    blocks are kept sorted; at each level the sorted halves of every
    pair are merged with one global ``searchsorted`` (rows made
    disjoint by a per-block offset) and the left-greater-than-right
    pairs are tallied.  Values must be non-negative (< 2**32).
    """
    n = len(values)
    counts = np.zeros(n, dtype=np.int64)
    if n <= 1:
        return counts
    base = 64
    p = 1 << max(base.bit_length() - 1, (n - 1).bit_length())
    arr = np.full(p, -1, dtype=np.int64)          # pad below all real values
    arr[:n] = values
    orig = np.arange(p, dtype=np.int64)
    big = np.int64(max(int(arr.max()), p)) + 2    # per-block offset stride

    # Bootstrap: exact counts inside blocks of ``base`` by brute
    # broadcast (cheaper than 6 merge levels), then sort each block.
    nb = p // base
    blocks = arr.reshape(nb, base)
    lt = np.tri(base, base, -1, dtype=bool).T     # lt[j, i] = j < i
    step = max(1, (1 << 22) // (base * base))     # bound temp memory
    for lo in range(0, nb, step):
        c = blocks[lo:lo + step]
        cnt = ((c[:, :, None] > c[:, None, :]) & lt[None]).sum(axis=1)
        sl = slice(lo * base, lo * base + cnt.size)
        counts_pad = cnt.ravel()
        seg = np.arange(sl.start, sl.stop)
        real = seg < n
        counts[seg[real]] += counts_pad[real]
    perm = np.argsort(blocks, axis=1, kind="stable")
    arr = np.take_along_axis(blocks, perm, axis=1).ravel()
    orig = np.take_along_axis(orig.reshape(nb, base), perm, axis=1).ravel()

    half = np.arange(p // 2, dtype=np.int64)
    width = base
    while width < p:
        nblocks = p // (2 * width)
        a2 = arr.reshape(nblocks, 2, width)
        o2 = orig.reshape(nblocks, 2, width)
        left = a2[:, 0, :].ravel()
        right = a2[:, 1, :].ravel()
        lorig = o2[:, 0, :].ravel()
        rorig = o2[:, 1, :].ravel()
        blk = half[:nblocks * width] // width
        boff = blk * big
        le = np.searchsorted(left + 1 + boff, right + 1 + boff,
                             side="right") - blk * width
        cnt = width - le
        real = rorig < n
        counts[rorig[real]] += cnt[real]
        if 2 * width >= p:
            break                                  # top level: count only
        # stable merge: rights go after the lefts that are <= them,
        # lefts fill the remaining slots in order.
        rslot = blk * (2 * width) + half[:nblocks * width] % width + le
        taken = np.zeros(p, dtype=bool)
        taken[rslot] = True
        lslot = np.flatnonzero(~taken)
        merged = np.empty_like(arr)
        morig = np.empty_like(orig)
        merged[rslot] = right
        morig[rslot] = rorig
        merged[lslot] = left
        morig[lslot] = lorig
        arr, orig = merged, morig
        width *= 2
    return counts


class _Layout:
    """Accesses grouped by bucket: segment space for one bucketing."""

    __slots__ = ("kz", "segstart", "order")

    def __init__(self, kz: np.ndarray, segstart: np.ndarray,
                 order: np.ndarray | None):
        self.kz = kz                # keys in (bucket, time) order
        self.segstart = segstart    # True at each bucket boundary
        self.order = order          # argsort permutation (None for n=1)


class _LruChains:
    """Compressed per-set occurrence chains (m-independent LRU data)."""

    __slots__ = ("n2", "kz2", "segstarts2", "prev", "nxtval", "gap",
                 "has_prev", "keep_idx", "resident", "inv_cache")

    def __init__(self, n2, kz2, segstarts2, prev, nxtval, gap, has_prev,
                 keep_idx):
        self.n2 = n2
        self.kz2 = kz2
        self.segstarts2 = segstarts2
        self.prev = prev
        self.nxtval = nxtval        # next same-key position; set end if none
        self.gap = gap              # set-local window length i - prev - 1
        self.has_prev = has_prev
        self.keep_idx = keep_idx    # layout positions of the kept accesses
        self.resident = None        # lazily: #same-set keys resident at i
        self.inv_cache = None       # (G, kept_rank, inv) — see _kept_inv


class VectorCacheSim:
    """Exact replacement-policy simulation over one key stream.

    Layouts (per-bucketing access orderings) and LRU stack distances
    are memoized, so sweeping many geometries over the same stream —
    the Fig. 5 grid — shares the expensive work.  All counters are
    bit-identical to :class:`KeyValueCache`.

    Args:
        keys: 1-D integer array (scalar keys) or 2-D ``(n, k)`` array
            (tuple keys, one column per part).
        seed: Hash seed (and RNG seed for the random policy).
        key_ids: Optional precomputed dense key ids (equal key ⇔ equal
            id, values in ``[0, 2^31)``) — callers that already
            factorized the stream (the vectorized split store) skip the
            internal factorization sort.
    """

    def __init__(self, keys: np.ndarray, seed: int = 0,
                 key_ids: np.ndarray | None = None):
        keys = np.asarray(keys)
        if keys.dtype.kind not in "iub":
            raise HardwareError(
                f"vector cache engine needs integer keys, got {keys.dtype}")
        self.seed = seed
        if keys.ndim == 2:
            self._hashes = mix_key_array(keys, seed)
            self._ids = key_ids.astype(np.int32, copy=False) \
                if key_ids is not None else _factorize_rows(keys)
        elif keys.ndim == 1:
            self._hashes = None      # lazy: single-bucket paths never hash
            self._ids = None         # lazy: dense int32 ids, on first use
            self._raw = keys
        else:
            raise HardwareError("key array must be 1-D or 2-D")
        if len(keys) >= 1 << 31:
            raise HardwareError("vector cache engine caps streams at 2^31")
        self.n = len(keys)
        self._layouts: dict[int, _Layout] = {}
        self._chains: dict[int, _LruChains] = {}

    # -- shared structure ----------------------------------------------------

    def _hash(self) -> np.ndarray:
        if self._hashes is None:
            self._hashes = mix_key_array(self._raw, self.seed)
        return self._hashes

    def _key_ids(self) -> np.ndarray:
        """Keys as int32 ids (equal key, equal id): cheaper to sort,
        gather, and compare than raw 64-bit key values.  Streams whose
        values already fit int32 are just cast; anything wider is
        factorized through one sort."""
        if self._ids is None:
            raw = self._raw
            if raw.dtype.itemsize <= 4 and raw.dtype.kind != "u" or (
                    len(raw) and raw.dtype.kind in "iu"
                    and int(raw.min()) >= np.iinfo(np.int32).min
                    and int(raw.max()) <= np.iinfo(np.int32).max):
                self._ids = raw.astype(np.int32, copy=False)
                return self._ids
            order = np.argsort(raw, kind="stable")
            rz = raw[order]
            boundary = np.empty(self.n, dtype=bool)
            if self.n:
                boundary[0] = True
                np.not_equal(rz[1:], rz[:-1], out=boundary[1:])
            ids = np.empty(self.n, dtype=np.int32)
            ids[order] = np.cumsum(boundary, dtype=np.int32) - \
                np.int32(1)
            self._ids = ids
        return self._ids

    def _layout(self, n_buckets: int) -> _Layout:
        layout = self._layouts.get(n_buckets)
        if layout is not None:
            return layout
        if n_buckets == 1:
            segstart = np.zeros(self.n, dtype=bool)
            if self.n:
                segstart[0] = True
            layout = _Layout(self._key_ids(), segstart, None)
        else:
            # One quicksort of (bucket << 32 | time) replaces a stable
            # argsort and the bucket gather — much cheaper in practice.
            b = self._hash() % _U(n_buckets)
            if n_buckets <= 1 << 31:
                comp = (b.astype(np.int64) << np.int64(32)) | \
                    np.arange(self.n, dtype=np.int64)
                comp.sort()
                order = comp & np.int64(0xFFFFFFFF)
                bz = comp >> np.int64(32)
            else:                      # degenerate: more buckets than 2^31
                b = b.astype(np.int64)
                order = np.argsort(b, kind="stable")
                bz = b[order]
            segstart = np.empty(self.n, dtype=bool)
            if self.n:
                segstart[0] = True
                np.not_equal(bz[1:], bz[:-1], out=segstart[1:])
            layout = _Layout(self._key_ids()[order], segstart, order)
        self._layouts[n_buckets] = layout
        return layout

    def _lru_chains(self, n_buckets: int) -> _LruChains:
        chains = self._chains.get(n_buckets)
        if chains is not None:
            return chains
        layout = self._layout(n_buckets)
        kz, segstart = layout.kz, layout.segstart
        n = self.n
        # Collapse runs of the same key inside a set: every non-first
        # access of a run is a hit that leaves the LRU state unchanged,
        # and distances for the kept accesses are unaffected.
        dup = np.zeros(n, dtype=bool)
        if n:
            dup[1:] = (~segstart[1:]) & (kz[1:] == kz[:-1])
        keep = ~dup
        keep_idx = np.flatnonzero(keep)
        kz2 = kz[keep]
        segstarts2 = np.flatnonzero(segstart[keep])
        n2 = len(kz2)
        comp = (kz2.astype(np.int64) << np.int64(32)) | \
            np.arange(n2, dtype=np.int64)
        comp.sort()
        korder = comp & np.int64(0xFFFFFFFF)
        kk = comp >> np.int64(32)
        same = kk[1:] == kk[:-1]
        prev = np.full(n2, -1, dtype=np.int32)
        # Last occurrences stay "resident" until their set's end: the
        # sentinel is the segment end, which keeps every quantity below
        # strictly set-local (no cross-set terms to cancel).
        bounds = np.append(segstarts2, n2)
        nxtval = np.repeat(bounds[1:].astype(np.int32), np.diff(bounds))
        ko32 = korder.astype(np.int32)
        prev[ko32[1:][same]] = ko32[:-1][same]
        nxtval[ko32[:-1][same]] = ko32[1:][same]
        has_prev = prev >= 0
        gap = np.arange(n2, dtype=np.int32) - prev - 1
        chains = _LruChains(n2, kz2, segstarts2, prev, nxtval, gap, has_prev,
                            keep_idx)
        self._chains[n_buckets] = chains
        return chains

    def _resident(self, chains: _LruChains) -> np.ndarray:
        """``S[i]``: number of keys of ``i``'s set whose latest access
        precedes ``i`` and whose next (or set end) is at/after ``i`` —
        the set's residency profile, via one interval sweep."""
        if chains.resident is None:
            n2 = chains.n2
            delta = np.zeros(n2 + 2, dtype=np.int64)
            delta[1:n2 + 1] = 1
            # set-end sentinels repeat, so tally expiries via bincount
            delta -= np.bincount(chains.nxtval + 1, minlength=n2 + 2)
            chains.resident = np.cumsum(delta)[:n2]
        return chains.resident

    def _lru_miss_mask(self, n_buckets: int,
                       m: int) -> tuple[_LruChains, np.ndarray]:
        """Per-kept-access miss mask for an LRU geometry.

        An access with fewer than ``m`` same-set accesses since its
        previous occurrence hits outright.  For the rest, the stack
        distance is ``S[i] - 1 - inv(prev(i))`` where ``inv(p)`` counts
        earlier accesses whose next occurrence is past ``i``.  Only
        accesses whose occurrence interval spans more than ``m``
        positions can contribute to any such ``inv`` (shorter intervals
        close before the window even starts), so the merge counter runs
        on that small subset, in cache-sized per-set chunks.
        """
        chains = self._lru_chains(n_buckets)
        miss = ~chains.has_prev         # first touches always miss
        queries = chains.has_prev & (chains.gap >= m)
        q_idx = np.flatnonzero(queries)
        if len(q_idx) == 0:
            return chains, miss
        s = self._resident(chains)
        kept_rank, inv = self._kept_inv(chains, m)
        p = chains.prev[q_idx]
        dist = s[q_idx] - 1 - inv[kept_rank[p]]
        miss[q_idx] = dist >= m
        return chains, miss

    def _kept_inv(self, chains: _LruChains,
                  m: int) -> tuple[np.ndarray, np.ndarray]:
        """Previous-larger counts of the next-occurrence array over the
        accesses whose occurrence interval spans more than ``G``
        positions.

        An interval spanning ``<= G`` closes before any window of
        ``>= G`` accesses opens, so it can never be counted for such a
        query — which makes a table built at ``G0`` exact for every
        ``m >= G0``.  The table is cached and rebuilt only when a
        smaller ``m`` arrives (capacity sweeps ask ascending ``m``, so
        they pay for one build).
        """
        if chains.inv_cache is not None and chains.inv_cache[0] <= m:
            return chains.inv_cache[1], chains.inv_cache[2]
        span = chains.nxtval - np.arange(chains.n2, dtype=np.int32)
        keep = span > m
        kept_idx = np.flatnonzero(keep)
        vals = chains.nxtval[kept_idx]
        inv = np.empty(len(vals), dtype=np.int64)
        for a, b in self._merge_chunks(chains, kept_idx):
            inv[a:b] = _count_prev_greater(vals[a:b].astype(np.int64))
        kept_rank = np.cumsum(keep, dtype=np.int64) - 1
        chains.inv_cache = (m, kept_rank, inv)
        return kept_rank, inv

    @staticmethod
    def _merge_chunks(chains: _LruChains,
                      kept_idx: np.ndarray) -> Iterable[tuple[int, int]]:
        """Chunk boundaries (in kept-rank space) aligned to set
        boundaries, each chunk ~``_MERGE_CHUNK`` kept accesses."""
        nk = len(kept_idx)
        seg_rank = np.searchsorted(kept_idx, chains.segstarts2)
        targets = np.arange(_MERGE_CHUNK, nk, _MERGE_CHUNK)
        pos = np.searchsorted(seg_rank, targets, side="right") - 1
        cuts = np.unique(seg_rank[pos[pos >= 0]])
        cuts = np.concatenate(([0], cuts[cuts > 0], [nk]))
        return zip(cuts[:-1], cuts[1:])

    # -- per-path counter computation ------------------------------------------

    def _direct(self, geometry: CacheGeometry, per_key: bool):
        """m == 1: the resident key of a bucket is its previous access."""
        layout = self._layout(geometry.n_buckets)
        kz, segstart = layout.kz, layout.segstart
        n = self.n
        hit1 = (~segstart[1:]) & (kz[1:] == kz[:-1])
        misses = n - int(np.count_nonzero(hit1))
        # A miss evicts unless it starts a bucket's occupancy, i.e.
        # unless it is the first access of its bucket.
        first = int(np.count_nonzero(segstart))
        stats = CacheStats(accesses=n, hits=n - misses, misses=misses,
                           insertions=misses, evictions=misses - first)
        if not per_key:
            return stats, None
        miss = np.ones(n, dtype=bool)
        miss[1:] = ~hit1
        return stats, _single_miss_validity(kz[miss])

    def _lru(self, geometry: CacheGeometry, per_key: bool):
        n, m = geometry.n_buckets, geometry.m_slots
        chains, miss = self._lru_miss_mask(n, m)
        misses = int(np.count_nonzero(miss))
        cs = np.cumsum(miss, dtype=np.int64)
        starts = chains.segstarts2
        ends = np.append(starts[1:], chains.n2)
        seg_misses = cs[ends - 1] - cs[starts] + miss[starts]
        evictions = int(np.maximum(0, seg_misses - m).sum())
        stats = CacheStats(accesses=self.n, hits=self.n - misses,
                           misses=misses, insertions=misses,
                           evictions=evictions)
        if not per_key:
            return stats, None
        return stats, _single_miss_validity(chains.kz2[miss])

    def _replay(self, geometry: CacheGeometry, policy: str, per_key: bool,
                miss_out: np.ndarray | None = None):
        """Exact Python replays for the ablation policies (FIFO is
        per-set over packed key lists; random must follow the global
        access order because the reference shares one RNG across
        buckets).  ``miss_out`` (bool, stream order) records the
        per-access miss flags for the schedule-driven store."""
        n_buckets, m = geometry.n_buckets, geometry.m_slots
        stats = CacheStats()
        miss_counts: dict[int, int] = {}
        if policy == "fifo":
            layout = self._layout(n_buckets)
            bounds = np.flatnonzero(layout.segstart).tolist() + [self.n]
            kz = layout.kz.tolist()
            miss_layout = np.zeros(self.n, dtype=bool) \
                if miss_out is not None else None
            for si in range(len(bounds) - 1):
                resident: set[int] = set()
                order: list[int] = []
                head = 0
                for pos in range(bounds[si], bounds[si + 1]):
                    key = kz[pos]
                    stats.accesses += 1
                    if key in resident:
                        stats.hits += 1
                        continue
                    stats.misses += 1
                    stats.insertions += 1
                    if miss_layout is not None:
                        miss_layout[pos] = True
                    if per_key:
                        miss_counts[key] = miss_counts.get(key, 0) + 1
                    if len(resident) >= m:
                        victim = order[head]
                        head += 1
                        resident.discard(victim)
                        stats.evictions += 1
                    resident.add(key)
                    order.append(key)
            if miss_out is not None:
                if layout.order is None:
                    miss_out[:] = miss_layout
                else:
                    miss_out[layout.order] = miss_layout
        else:  # random
            rng = random.Random(self.seed)
            hashes = (self._hash() % _U(n_buckets)).astype(np.int64).tolist() \
                if n_buckets > 1 else [0] * self.n
            keys = self._key_ids().tolist()
            buckets: dict[int, list[int]] = {}
            members: dict[int, set[int]] = {}
            for i, (key, b) in enumerate(zip(keys, hashes)):
                stats.accesses += 1
                lst = buckets.setdefault(b, [])
                seen = members.setdefault(b, set())
                if key in seen:
                    stats.hits += 1
                    continue
                stats.misses += 1
                stats.insertions += 1
                if miss_out is not None:
                    miss_out[i] = True
                if per_key:
                    miss_counts[key] = miss_counts.get(key, 0) + 1
                if len(lst) >= m:
                    victim = rng.choice(lst)
                    lst.remove(victim)
                    seen.discard(victim)
                    stats.evictions += 1
                lst.append(key)
                seen.add(key)
        if not per_key:
            return stats, None
        total = len(miss_counts)
        valid = sum(1 for c in miss_counts.values() if c == 1)
        return stats, (valid, total)

    def _run(self, geometry: CacheGeometry, policy: str, per_key: bool):
        if policy not in KeyValueCache.POLICIES:
            raise HardwareError(f"unknown eviction policy {policy!r}")
        if self.n == 0:
            return CacheStats(), (0, 0)
        if geometry.m_slots == 1:
            return self._direct(geometry, per_key)
        if policy == "lru":
            return self._lru(geometry, per_key)
        return self._replay(geometry, policy, per_key)

    # -- public API ------------------------------------------------------------

    def stats(self, geometry: CacheGeometry, policy: str = "lru") -> CacheStats:
        """Counters of a full run, bit-identical to the row engine."""
        return self._run(geometry, policy, per_key=False)[0]

    def miss_schedule(self, geometry: CacheGeometry,
                      policy: str = "lru") -> np.ndarray:
        """Per-access miss flags, in stream order — the schedule the
        vectorized split store executes.

        ``out[i]`` is True when access ``i`` misses (inserts a fresh
        value, possibly evicting); False when it hits the resident
        entry.  Exactly the hit/miss decisions
        :meth:`KeyValueCache.access` would make, access by access:

        * direct-mapped: a bucket's resident key is its previous
          access, so the flags fall out of the adjacent in-bucket key
          comparisons of the counter path;
        * LRU: the per-kept-access mask of :meth:`_lru_miss_mask`
          scattered back through the run-collapse (collapsed duplicate
          accesses are guaranteed hits) and the layout permutation;
        * FIFO/random: the exact replay loops, recording per access.
        """
        if policy not in KeyValueCache.POLICIES:
            raise HardwareError(f"unknown eviction policy {policy!r}")
        n = self.n
        if n == 0:
            return np.zeros(0, dtype=bool)
        if geometry.m_slots == 1:
            layout = self._layout(geometry.n_buckets)
            kz, segstart = layout.kz, layout.segstart
            miss_layout = np.ones(n, dtype=bool)
            miss_layout[1:] = segstart[1:] | (kz[1:] != kz[:-1])
            return self._to_stream_order(layout, miss_layout)
        if policy == "lru":
            chains, miss_kept = self._lru_miss_mask(geometry.n_buckets,
                                                    geometry.m_slots)
            layout = self._layout(geometry.n_buckets)
            miss_layout = np.zeros(n, dtype=bool)
            miss_layout[chains.keep_idx] = miss_kept
            return self._to_stream_order(layout, miss_layout)
        miss = np.zeros(n, dtype=bool)
        self._replay(geometry, policy, per_key=False, miss_out=miss)
        return miss

    def stats_and_schedule(self, geometry: CacheGeometry,
                           policy: str = "lru"
                           ) -> tuple[CacheStats, np.ndarray]:
        """Counters and per-access miss flags together.

        For the direct-mapped and LRU paths the two share all memoized
        work anyway; for the FIFO/random replays this runs the exact
        Python replay **once** for both (the schedule-driven store's
        entry point).
        """
        if self.n and geometry.m_slots > 1 and policy in ("fifo", "random"):
            miss = np.zeros(self.n, dtype=bool)
            stats, _ = self._replay(geometry, policy, per_key=False,
                                    miss_out=miss)
            return stats, miss
        return (self.stats(geometry, policy=policy),
                self.miss_schedule(geometry, policy=policy))

    @staticmethod
    def _to_stream_order(layout: _Layout, values: np.ndarray) -> np.ndarray:
        """Scatter a layout-ordered per-access array back to stream
        order (single-bucket layouts are already in stream order)."""
        if layout.order is None:
            return values
        out = np.empty_like(values)
        out[layout.order] = values
        return out

    def validity(self, geometry: CacheGeometry,
                 policy: str = "lru") -> tuple[int, int]:
        """(valid, total) keys under a non-mergeable fold (Fig. 6).

        A key's backing-store segment count equals its miss count (each
        insertion starts a residency that ends in one push — eviction
        or final flush), so a key is *valid* iff it missed exactly
        once.  Matches ``repro.analysis.accuracy._window_validity``.
        """
        return self._run(geometry, policy, per_key=True)[1]


def _single_miss_validity(miss_keys: np.ndarray) -> tuple[int, int]:
    """(valid, total) from the keys of all miss accesses: every key
    misses at least once, and is valid iff it missed exactly once."""
    if len(miss_keys) == 0:
        return 0, 0
    _, counts = np.unique(miss_keys, return_counts=True)
    return int(np.count_nonzero(counts == 1)), len(counts)


def _factorize_rows(keys: np.ndarray) -> np.ndarray:
    """Map 2-D key rows to dense int64 ids (equal rows, equal id)."""
    if len(keys) == 0:
        return np.zeros(0, dtype=np.int32)
    cols = [keys[:, c] for c in range(keys.shape[1])]
    order = np.lexsort(cols[::-1])
    boundary = np.zeros(len(keys), dtype=bool)
    boundary[0] = True
    for col in cols:
        cz = col[order]
        boundary[1:] |= cz[1:] != cz[:-1]
    ids = np.empty(len(keys), dtype=np.int32)
    ids[order] = np.cumsum(boundary, dtype=np.int32) - np.int32(1)
    return ids


def _as_key_array(keys) -> np.ndarray | None:
    """Try to view ``keys`` as an integer numpy array; None if the
    stream is not representable (non-integers, oversized ints, ...)."""
    if isinstance(keys, np.ndarray):
        arr = keys
    else:
        try:
            arr = np.asarray(keys)
        except (TypeError, ValueError, OverflowError):
            return None
    if arr.ndim not in (1, 2) or arr.dtype.kind not in "iub":
        return None
    return arr


def simulate_eviction_count_vector(keys, geometry: CacheGeometry,
                                   policy: str = "lru",
                                   seed: int = 0) -> CacheStats:
    """One-shot vector-engine counterpart of
    :func:`repro.switch.kvstore.cache.simulate_eviction_count`."""
    arr = _as_key_array(keys)
    if arr is None:
        arr = np.asarray(list(keys), dtype=np.int64)
    return VectorCacheSim(arr, seed=seed).stats(geometry, policy=policy)


def window_validity_vector(keys, geometry: CacheGeometry,
                           seed: int = 0,
                           policy: str = "lru") -> tuple[int, int]:
    """(valid, total) keys for one window — the vector engine behind
    ``repro.analysis.accuracy._window_validity``."""
    arr = _as_key_array(keys)
    if arr is None:
        arr = np.asarray(list(keys), dtype=np.int64)
    return VectorCacheSim(arr, seed=seed).validity(geometry, policy=policy)
