"""repro — reproduction of *Hardware-Software Co-Design for Network
Performance Measurement* (Narayana et al., HotNets-XV 2016).

The package implements both halves of the paper's co-design:

* :mod:`repro.core` — the declarative performance query language
  (parser, semantic analysis, the linear-in-state analysis, merge
  synthesis, a query compiler, and a reference interpreter);
* :mod:`repro.switch` — the switch hardware model (programmable
  parser, match-action pipeline, the split SRAM/DRAM key-value store,
  and the §3.3/§4 area model);

plus the substrates the evaluation needs:

* :mod:`repro.network` — an event-driven queueing simulator producing
  the paper's packet-observation table;
* :mod:`repro.traffic` — CAIDA-like, datacenter, and incast workload
  generators with TCP anomaly injection;
* :mod:`repro.queries` — the Fig. 2 query catalog;
* :mod:`repro.telemetry` — the end-to-end runtime (compile → install →
  stream → collect);
* :mod:`repro.analysis` — the Fig. 5 / Fig. 6 experiment drivers.

Quickstart::

    from repro import QueryEngine, CacheGeometry
    from repro.traffic.datacenter import DatacenterWorkload

    table = DatacenterWorkload().observation_table()   # columnar
    engine = QueryEngine("SELECT COUNT, SUM(pkt_len) GROUPBY srcip, dstip",
                         geometry=CacheGeometry.set_associative(4096, ways=8))
    report = engine.run(table)
    for row in report.result.rows[:5]:
        print(row)

Columnar fast path
------------------

:class:`ObservationTable` stores one numpy array per schema field; the
trace generators emit columns directly and ``ObservationTable.from_arrays``
adopts externally produced columns without per-record work::

    import numpy as np
    from repro import ObservationTable, QueryEngine

    table = ObservationTable.from_arrays({
        "srcip": srcip_array, "dstip": dstip_array,
        "pkt_len": lengths, "tin": tin_ns, "tout": tout_ns,
    })
    engine = QueryEngine("SELECT COUNT GROUPBY srcip, dstip")
    exact = engine.run_exact(table)     # vectorized (engine="auto")

Columnar tables take the batch execution path end to end: ``WHERE``
predicates become boolean masks, linear-in-state ``GROUPBY`` folds
(§3.2) become segmented reductions, and the switch pipeline extracts
key arrays per chunk instead of per packet.  The ``engine=`` knob on
:class:`QueryEngine` (``"auto"`` | ``"vector"`` | ``"row"``) selects
between the vectorized executor and the row-at-a-time reference
interpreter; both are exact and produce identical tables — on the 1M-
record CAIDA-like trace the vectorized path measures ~38x the row
interpreter's throughput for linear-fold aggregations (see
``benchmarks/bench_columnar.py``).
"""

from .core.analyze import ProgramAnalysis, TraceBounds, analyze_program
from .core.compiler import CompileOptions, compile_program
from .core.interpreter import Interpreter, ResultTable, run_query
from .core.linearity import analyze_fold
from .core.parser import parse_program, parse_query
from .core.semantics import resolve_program
from .core.vector_exec import VectorExecutor, run_query_vectorized
from .network.records import ObservationTable, PacketRecord
from .switch.kvstore.cache import CacheGeometry
from .switch.pipeline import SwitchPipeline
from .telemetry.diagnostics import Diagnostic, DiagnosticsReport, diagnostic_code
from .telemetry.runtime import QueryEngine, RunReport, run

__version__ = "0.2.0"

__all__ = [
    "CacheGeometry",
    "CompileOptions",
    "Diagnostic",
    "DiagnosticsReport",
    "Interpreter",
    "ObservationTable",
    "PacketRecord",
    "ProgramAnalysis",
    "QueryEngine",
    "ResultTable",
    "RunReport",
    "SwitchPipeline",
    "TraceBounds",
    "VectorExecutor",
    "analyze_fold",
    "analyze_program",
    "compile_program",
    "diagnostic_code",
    "parse_program",
    "parse_query",
    "resolve_program",
    "run",
    "run_query",
    "run_query_vectorized",
    "__version__",
]
