"""Execution engine of ``repro check``: discovery, dispatch, report.

``check_paths`` walks the given files/directories, runs every
applicable checker over each parseable Python file, filters
suppressed findings (counting them), and folds the results into one
:class:`CheckReport` the CLI renders as text or JSON.  Exit semantics
live here too: any finding (or unparseable file) means the tree fails
the gate.

Rule selection: ``select=("RPR-C201", ...)`` keeps only those codes.
By default a checker's path *scope* is honored (the determinism family
only runs over the replay-critical modules); ``ignore_scope=True``
bypasses it — the fixture tests use this to exercise scoped rules on
fixture files that live outside their scope.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.static.base import (
    CheckerInfo,
    Finding,
    ModuleContext,
    all_checkers,
)

__all__ = ["CheckReport", "check_paths", "check_source", "iter_rules"]


@dataclass
class CheckReport:
    """Everything one ``repro check`` run produced."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    #: ``(path, message)`` for files that failed to parse.
    unparseable: list[tuple[str, str]] = field(default_factory=list)

    @property
    def has_findings(self) -> bool:
        return bool(self.findings or self.unparseable)

    def by_code(self, code: str) -> list[Finding]:
        return [f for f in self.findings if f.code == code]

    def format(self) -> str:
        lines = [f.format() for f in self.findings]
        lines += [f"{path}: unparseable: {message}"
                  for path, message in self.unparseable]
        summary = (f"{len(self.findings)} finding(s) in "
                   f"{self.files_checked} file(s)")
        if self.suppressed:
            summary += f", {self.suppressed} suppressed"
        if self.unparseable:
            summary += f", {len(self.unparseable)} unparseable"
        return "\n".join(lines + [summary])

    def to_json(self) -> dict[str, object]:
        return {
            "findings": [f.to_json() for f in self.findings],
            "errors": len(self.findings) + len(self.unparseable),
            "files_checked": self.files_checked,
            "suppressed": self.suppressed,
            "unparseable": [{"path": p, "message": m}
                            for p, m in self.unparseable],
        }

    def dumps(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_json(), indent=indent)


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated list of
    ``.py`` files."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            seen.update(p for p in path.rglob("*.py"))
        elif path.suffix == ".py" or path.is_file():
            seen.add(path)
    return sorted(seen)


def _applicable(checkers: Sequence[CheckerInfo], path: str,
                select: Sequence[str] | None,
                ignore_scope: bool) -> list[CheckerInfo]:
    picked = []
    for info in checkers:
        if select is not None and not set(select) & set(info.codes):
            continue
        if not ignore_scope and not info.applies_to(path):
            continue
        picked.append(info)
    return picked


def check_source(source: str, path: str | Path = "<string>",
                 select: Sequence[str] | None = None,
                 ignore_scope: bool = False) -> list[Finding]:
    """Run the framework over one in-memory module; returns the
    unsuppressed findings (sorted by line).  ``SyntaxError``
    propagates."""
    module = ModuleContext(path, source)
    findings = list(module.suppression_findings)
    for info in _applicable(all_checkers(), module.path, select,
                            ignore_scope):
        findings.extend(info.run(module))
    if select is not None:
        findings = [f for f in findings if f.code in select]
    return sorted((f for f in findings if not module.is_suppressed(f)),
                  key=lambda f: (f.line, f.code))


def check_paths(paths: Iterable[str | Path],
                select: Sequence[str] | None = None,
                ignore_scope: bool = False) -> CheckReport:
    """Run every applicable checker over every Python file under
    ``paths``."""
    report = CheckReport()
    checkers = all_checkers()
    for path in iter_python_files(paths):
        try:
            source = path.read_text()
            module = ModuleContext(path, source)
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            report.unparseable.append((str(path), str(exc)))
            continue
        report.files_checked += 1
        findings = list(module.suppression_findings)
        for info in _applicable(checkers, module.path, select,
                                ignore_scope):
            findings.extend(info.run(module))
        if select is not None:
            findings = [f for f in findings if f.code in select]
        for finding in sorted(findings, key=lambda f: (f.line, f.code)):
            if module.is_suppressed(finding):
                report.suppressed += 1
            else:
                report.findings.append(finding)
    return report


def iter_rules() -> list[dict[str, str]]:
    """One row per registered checker code — the ``--rules`` listing
    and the DIAGNOSTICS.md sync test read this."""
    from repro.telemetry.diagnostics import CODES

    rows = []
    for info in all_checkers():
        for code in info.codes:
            rows.append({
                "code": code,
                "slug": CODES[code].slug,
                "checker": info.name,
                "scope": ", ".join(info.scope) if info.scope else "*",
            })
    return sorted(rows, key=lambda r: r["code"])
