"""Seeded violations: RPR-C201 (leak on exception path) and RPR-C202
(leak on a return path)."""
import socket


def leak_on_exception(host, port, frame):
    sock = socket.socket()            # C201: connect/sendall may raise
    sock.connect((host, port))
    sock.sendall(frame)
    sock.close()
    return True


def leak_on_return(path):
    handle = open(path, "rb")         # C201 (read may raise) + C202
    data = handle.read(16)
    if not data:
        return None                   # leaves the handle open
    handle.close()
    return data
