"""Builder-API tests: programmatic construction ≡ parsed text."""

import pytest

from repro.core.builder import (
    agg,
    col,
    count,
    field,
    fmax,
    fold,
    lit,
    param,
    program,
    query,
)
from repro.core.errors import SemanticError
from repro.core.interpreter import Interpreter
from repro.core.parser import parse_program
from repro.core.semantics import resolve_program

from tests.conftest import synthetic_trace


def run_built(prog, records, params=None):
    return Interpreter(resolve_program(prog), params=params).run_result(records)


def run_text(source, records, params=None):
    return Interpreter(resolve_program(parse_program(source)),
                       params=params).run_result(records)


class TestEquivalenceWithText:
    """Built programs produce identical results to parsed text."""

    @pytest.fixture(scope="class")
    def records(self):
        return synthetic_trace(n_packets=1500, n_flows=25).records

    def test_simple_groupby(self, records):
        built = program(
            result=query().select(count(), agg("SUM", field("pkt_len")))
                          .groupby("srcip", "dstip"))
        text = "SELECT COUNT, SUM(pkt_len) GROUPBY srcip, dstip"
        assert run_built(built, records).rows == run_text(text, records).rows

    def test_where_predicate(self, records):
        built = program(
            result=query().select("srcip", "qid")
                          .where((field("tout") - field("tin")) > lit(500_000)))
        text = "SELECT srcip, qid WHERE tout - tin > 500000"
        assert run_built(built, records).rows == run_text(text, records).rows

    def test_fold_with_branch(self, records):
        perc = (
            fold("perc", state=["tot", "high"], packet=["qin"])
            .when(field("qin") > param("K"),
                  then=[*fold("perc", ["tot", "high"], ["qin"])
                        .let("high", field("high") + 1).body])
            .let("tot", field("tot") + 1)
        )
        built = program(
            result=query().select("qid", "perc").groupby("qid"),
            folds=[perc])
        text = (
            "def perc ((tot, high), qin):\n"
            "    if qin > K: high = high + 1\n"
            "    tot = tot + 1\n"
            "SELECT qid, perc GROUPBY qid"
        )
        params = {"K": 20}
        assert (run_built(built, records, params).sort_key().rows ==
                run_text(text, records, params).sort_key().rows)

    def test_ewma_fold(self, records):
        ewma = fold("ewma", state=["lat_est"], packet=["tin", "tout"]).let(
            "lat_est",
            (lit(1) - param("alpha")) * field("lat_est")
            + param("alpha") * (field("tout") - field("tin")))
        built = program(
            result=query().select("5tuple", "ewma").groupby("5tuple")
                          .where(field("tout") != field("infinity")),
            folds=[ewma])
        text = (
            "def ewma (lat_est, (tin, tout)):\n"
            "    lat_est = (1 - alpha) * lat_est + alpha * (tout - tin)\n"
            "SELECT 5tuple, ewma GROUPBY 5tuple WHERE tout != infinity"
        )
        params = {"alpha": 0.25}
        assert (run_built(built, records, params).sort_key().rows ==
                run_text(text, records, params).sort_key().rows)

    def test_join_program(self, records):
        built = program(
            named={
                "R1": query().select(count()).groupby("5tuple"),
                "R2": query().select(count()).groupby("5tuple")
                             .where(field("tout") == field("infinity")),
            },
            result=query()
            .select((col("R2", "COUNT") / col("R1", "COUNT"), "loss"))
            .join("R1", "R2", on=["5tuple"]),
        )
        text = (
            "R1 = SELECT COUNT GROUPBY 5tuple\n"
            "R2 = SELECT COUNT GROUPBY 5tuple WHERE tout == infinity\n"
            "R3 = SELECT R2.COUNT/R1.COUNT AS loss FROM R1 JOIN R2 ON 5tuple"
        )
        assert (run_built(built, records).sort_key().rows ==
                run_text(text, records).sort_key().rows)


class TestExpressionAlgebra:
    def test_operators_build_nodes(self):
        from repro.core.ast_nodes import BinOp
        expr = (field("a") + 1) * 2 - field("b") / 4
        assert isinstance(expr.node, BinOp)

    def test_right_hand_operators(self):
        from repro.core.ast_nodes import Number
        expr = 10 - field("a")
        assert expr.node.left == Number(10)

    def test_comparison_builds_predicate(self):
        expr = field("a") == 5
        assert expr.node.op == "=="

    def test_boolean_connectives(self):
        expr = (field("a") > 1).and_(field("b") < 2).or_((field("c") == 3).not_())
        assert expr.node.op == "or"

    def test_max_min(self):
        assert fmax(field("a"), 3).node.func == "max"

    def test_invalid_operand_rejected(self):
        with pytest.raises(TypeError):
            field("a") + "nonsense"  # type: ignore[operator]


class TestBuilderValidation:
    def test_let_unknown_state_rejected(self):
        with pytest.raises(SemanticError):
            fold("f", ["s"], ["pkt_len"]).let("t", lit(1))

    def test_empty_fold_rejected(self):
        with pytest.raises(SemanticError):
            fold("f", ["s"], []).build()

    def test_init_unknown_var_rejected(self):
        with pytest.raises(SemanticError):
            fold("f", ["s"], []).init(t=5)

    def test_init_values_applied(self):
        built = fold("f", ["s"], ["pkt_len"]).init(s=7).let(
            "s", fmax(field("s"), field("pkt_len"))).build()
        assert built.initial_state() == {"s": 7}

    def test_query_without_select_rejected(self):
        with pytest.raises(SemanticError):
            query().groupby("srcip").build()

    def test_join_with_groupby_rejected(self):
        with pytest.raises(SemanticError):
            (query().select("srcip").join("R1", "R2", on=["srcip"])
                    .groupby("srcip").build())

    def test_duplicate_fold_rejected(self):
        f1 = fold("f", ["s"], ["pkt_len"]).let("s", field("s") + 1)
        f2 = fold("f", ["s"], ["pkt_len"]).let("s", field("s") + 2)
        with pytest.raises(SemanticError):
            program(result=query().select("srcip", "f").groupby("srcip"),
                    folds=[f1, f2])


class TestBuilderThroughHardware:
    def test_built_program_compiles_and_runs(self):
        from repro.switch.kvstore.cache import CacheGeometry
        from repro.telemetry.runtime import QueryEngine

        built = program(
            result=query().select(count()).groupby("srcip"))
        engine = QueryEngine(built,
                             geometry=CacheGeometry.set_associative(8, ways=2))
        records = synthetic_trace(n_packets=800, n_flows=30).records
        report = engine.run(records, with_ground_truth=True)
        truth = report.ground_truth[report.result_name]
        assert report.result.by_key() == truth.by_key()
