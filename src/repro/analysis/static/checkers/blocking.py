"""Event-loop blocking checker (``RPR-C101``/``RPR-C102``).

The ingest server's design center is that the asyncio loop *only*
shuffles frames — every window execution, checkpoint write, and other
slow operation belongs to a per-session worker thread.  A single
blocking call on the loop (file I/O, ``pickle`` of a large payload,
``time.sleep``, a sync socket op) stalls *every* connection at once,
which is precisely the failure mode the backpressure design exists to
prevent.

``RPR-C101`` flags a blocking call whose enclosing function is an
``async def``, or a sync helper reachable from one through the
intra-module call graph (``callgraph.build_edges``); calls directly
under ``await`` are coroutines, not blockers, and are skipped.
``RPR-C102`` flags ``import`` statements inside ``async def`` bodies —
module loading is file I/O executed under the global import lock.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.static.base import Finding, ModuleContext, checker
from repro.analysis.static.callgraph import (
    FunctionInfo,
    build_edges,
    collect_functions,
    own_nodes,
)

#: Bare-name calls that always block.
_BLOCKING_NAMES = frozenset({"open", "input"})

#: ``module.attr`` calls that always block (or, for pickle, block for
#: as long as the payload is large — which a static check must assume).
_BLOCKING_MODULE_ATTRS = frozenset({
    ("time", "sleep"),
    ("pickle", "dumps"), ("pickle", "loads"),
    ("pickle", "dump"), ("pickle", "load"),
    ("os", "replace"), ("os", "rename"), ("os", "stat"),
    ("os", "fstat"), ("os", "remove"), ("os", "unlink"),
    ("os", "makedirs"), ("os", "fsync"), ("os", "listdir"),
    ("socket", "socket"), ("socket", "create_connection"),
    ("shutil", "copy"), ("shutil", "copyfile"), ("shutil", "rmtree"),
    ("subprocess", "run"), ("subprocess", "call"),
    ("subprocess", "check_call"), ("subprocess", "check_output"),
})

#: Method names that block regardless of receiver (sync socket and
#: path I/O, lock acquisition).  ``wait``/``result`` block on
#: threading/concurrent primitives; their asyncio twins are awaited
#: and therefore skipped before classification.
_BLOCKING_METHODS = frozenset({
    "sendall", "recv", "recvfrom", "accept", "connect",
    "read_bytes", "write_bytes", "read_text", "write_text",
    "mkdir", "acquire", "wait", "result",
})


def _classify(call: ast.Call) -> str | None:
    """A human-readable name for the blocking operation, or None."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id if func.id in _BLOCKING_NAMES else None
    if not isinstance(func, ast.Attribute):
        return None
    if (isinstance(func.value, ast.Name)
            and (func.value.id, func.attr) in _BLOCKING_MODULE_ATTRS):
        return f"{func.value.id}.{func.attr}"
    if func.attr in _BLOCKING_METHODS:
        if isinstance(func.value, ast.Constant):
            return None          # e.g. ", ".join-style constant receiver
        return f".{func.attr}"
    return None


def _blocking_calls(info: FunctionInfo) -> list[tuple[ast.Call, str]]:
    awaited = {id(n.value) for n in own_nodes(info.node)
               if isinstance(n, ast.Await)}
    hits: list[tuple[ast.Call, str]] = []
    for node in own_nodes(info.node):
        if isinstance(node, ast.Call) and id(node) not in awaited:
            label = _classify(node)
            if label is not None:
                hits.append((node, label))
    return hits


@checker("event-loop-blocking", codes=("RPR-C101", "RPR-C102"))
def check_blocking(module: ModuleContext) -> Iterator[Finding]:
    functions = collect_functions(module.tree)
    if not any(f.is_async for f in functions):
        return
    by_qualname = {f.qualname: f for f in functions}
    edges = build_edges(module.tree, functions)

    reported: set[tuple[int, str]] = set()
    for entry in functions:
        if not entry.is_async:
            continue
        # direct blocking calls and imports in the async body itself
        for call, label in _blocking_calls(entry):
            key = (call.lineno, label)
            if key not in reported:
                reported.add(key)
                yield module.finding("RPR-C101", call, call=label,
                                     entry=entry.name, via="")
        for node in own_nodes(entry.node):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                name = (node.module if isinstance(node, ast.ImportFrom)
                        and node.module else node.names[0].name)
                yield module.finding("RPR-C102", node, module=name,
                                     entry=entry.name)
        # sync helpers reachable from this async entry
        seen: set[str] = {entry.qualname}
        queue: list[tuple[str, tuple[str, ...]]] = [
            (callee, (by_qualname[callee].name,))
            for callee, _ in edges.get(entry.qualname, ())
            if not by_qualname[callee].is_async]
        while queue:
            qual, chain = queue.pop(0)
            if qual in seen:
                continue
            seen.add(qual)
            info = by_qualname[qual]
            for call, label in _blocking_calls(info):
                key = (call.lineno, label)
                if key not in reported:
                    reported.add(key)
                    yield module.finding(
                        "RPR-C101", call, call=label, entry=entry.name,
                        via=" via " + " -> ".join(chain))
            for callee, _ in edges.get(qual, ()):
                if not by_qualname[callee].is_async:
                    queue.append((callee, chain + (by_qualname[callee].name,)))
