"""Determinism checker (``RPR-C501``..``RPR-C504``).

The rules formerly hard-coded in ``tests/test_self_lint.py``, now
first-class: checkpoint/restore, shard combining, and the exact
scalar-replay fallback are all bit-replay arguments — re-executing the
same stream must produce the same state.  Wall-clock reads
(``time.time``) and shared module-level randomness (``random.*``, the
legacy ``np.random`` global generator, unseeded ``random.Random()``)
silently break that argument, and no behavioural test reliably catches
a freshly introduced one.

``time.monotonic``/``time.sleep`` and explicitly seeded
``random.Random(seed)`` instances remain allowed.

The scope is the determinism-critical module set (the replacement
engines and stores replayed by checkpoint/restore, the
session/checkpoint layer, the shard worker fabric, and the fault
injector); ``DETERMINISM_SCOPE`` is exported so the thin test wrapper
and the framework can never drift on the module list.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from repro.analysis.static.base import Finding, ModuleContext, checker

__all__ = ["DETERMINISM_CODES", "DETERMINISM_SCOPE",
           "determinism_modules"]

DETERMINISM_CODES = ("RPR-C501", "RPR-C502", "RPR-C503", "RPR-C504")

#: Modules whose behaviour must be a pure function of (stream, seed).
DETERMINISM_SCOPE = (
    "*/repro/switch/kvstore/*.py",
    "*/repro/core/vector_exec.py",
    "*/repro/core/interpreter.py",
    "*/repro/telemetry/checkpoint.py",
    "*/repro/telemetry/session.py",
    "*/repro/telemetry/shard_exec.py",
    "*/repro/telemetry/faults.py",
)

_ALLOWED_RANDOM_ATTRS = frozenset({"Random", "SystemRandom"})


def determinism_modules(src_root: str | Path) -> list[Path]:
    """The concrete files under ``src_root`` (a ``.../repro`` source
    tree) that the determinism scope covers."""
    root = Path(src_root)
    return sorted(
        list((root / "switch" / "kvstore").glob("*.py"))
        + [
            root / "core" / "vector_exec.py",
            root / "core" / "interpreter.py",
            root / "telemetry" / "checkpoint.py",
            root / "telemetry" / "session.py",
            root / "telemetry" / "shard_exec.py",
            root / "telemetry" / "faults.py",
        ]
    )


def _is_module_attr(node: ast.AST, module: str,
                    attr: str | None = None) -> bool:
    return (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == module
            and (attr is None or node.attr == attr))


@checker("determinism", codes=DETERMINISM_CODES,
         scope=DETERMINISM_SCOPE)
def check_determinism(module: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(module.tree):
        # wall clock: time.time (time.monotonic / time.sleep are fine)
        if _is_module_attr(node, "time", "time"):
            yield module.finding("RPR-C501", node)
        # shared module-level Mersenne Twister: random.<anything>
        # except instantiating an explicitly seeded generator
        if (_is_module_attr(node, "random")
                and node.attr not in _ALLOWED_RANDOM_ATTRS):
            yield module.finding("RPR-C502", node, attr=node.attr)
        # legacy numpy global generator (np.random.* / numpy.random.*)
        if (isinstance(node, ast.Attribute)
                and (_is_module_attr(node.value, "np", "random")
                     or _is_module_attr(node.value, "numpy", "random"))):
            yield module.finding("RPR-C503", node, attr=node.attr)
        # unseeded random.Random() — a fresh MT seeded from the OS
        if (isinstance(node, ast.Call)
                and _is_module_attr(node.func, "random", "Random")
                and not node.args and not node.keywords):
            yield module.finding("RPR-C504", node)
