#!/usr/bin/env python
"""Cache planning: size the on-chip store for a query and a workload.

Recreates the §4 methodology as an operator tool: given a query, the
compiler reports bits per key-value pair; the area model converts
candidate cache sizes to % of switch die; and
:meth:`repro.telemetry.runtime.QueryEngine.plan_cache` reports the
exact eviction rate each size implies — i.e. the write rate the backing
store must sustain and the cores a Redis/Memcached-class store would
need.  Planning runs on the array-native cache simulator
(``repro.switch.kvstore.vector_cache``), so sweeping many candidate
sizes over a sizeable trace is interactive; its counters are
bit-identical to what deploying the geometry would report.

Deployment itself is just as array-native: ``QueryEngine.run`` with
``engine="auto"`` (the default) executes the chosen geometry's split
store through the schedule-driven vector engine
(``repro.switch.kvstore.vector_store``) — same counters, same results,
at millions of packets per second — so a plan picked here can be
validated against a full run interactively too.

Run:  python examples/cache_planning.py
"""

from repro.analysis.eviction import scaled_capacity
from repro.analysis.report import format_table
from repro.switch.area import AreaReport, backing_store_cores
from repro.telemetry.runtime import QueryEngine
from repro.traffic.caida import CaidaTraceConfig, generate_caida_like

QUERY = "SELECT COUNT GROUPBY 5tuple"

#: Candidate cache sizes in pairs, at paper scale.
CANDIDATES = tuple(1 << e for e in range(16, 22))

#: Trace scale (and cache scaling) — see DESIGN.md on substitutions.
SCALE = 1.0 / 512.0


def main() -> None:
    engine = QueryEngine(QUERY)
    stage = engine.compiled.groupby_stages[0]
    print(f"query: {QUERY.strip()}")
    print(f"pair layout: {stage.key.bits}-bit key + {stage.value.bits}-bit "
          f"value = {stage.pair_bits} bits\n")

    trace = generate_caida_like(CaidaTraceConfig(scale=SCALE))
    scaled = [scaled_capacity(pairs, SCALE) for pairs in CANDIDATES]
    points = engine.plan_cache(trace, capacities=scaled,
                               ways=8)[stage.query_name]

    rows = []
    for pairs, point in zip(CANDIDATES, points):
        area = AreaReport(pair_bits=stage.pair_bits, n_pairs=pairs)
        writes = point.writes_per_second()
        rows.append([
            f"{area.total_mbit:.0f}",
            f"{pairs:,}",
            f"{100 * area.chip_fraction:.2f}%",
            f"{100 * point.eviction_fraction:.2f}%",
            f"{writes / 1e3:,.0f}K",
            f"{backing_store_cores(writes):.1f}",
        ])
    print(format_table(
        ["Mbit", "pairs", "% die", "evict %", "writes/s", "KV cores"],
        rows,
        title="cache sizing for the query (8-way, CAIDA-like trace, "
              f"scale {SCALE:.4g})",
    ))
    print("\npaper's pick: 32 Mbit — <2.5% of die, backing-store load "
          "within a few commodity cores (§4).")


if __name__ == "__main__":
    main()
