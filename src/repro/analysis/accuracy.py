"""Accuracy study for non-linear queries — reproduces Fig. 6.

For folds that are not linear in state, evicted values cannot be
merged; a key evicted more than once accumulates multiple value
segments and is marked *invalid*.  Fig. 6 plots accuracy — the percent
of valid keys — against cache size for 8-way caches, for three query
window lengths (1, 3, 5 minutes): shorter windows see fewer evictions
per key and are therefore more accurate.

Implementation: Fig. 6 is "the accuracy-time tradeoff" — the query is
*run over a shorter time interval*: accuracy over the first 1/3/5
minutes of the trace (fresh store per run, flush at window end).
Shorter runs see fewer evict-and-reappear events per key, hence more
valid keys.  Windows are expressed as fractions of the paper's
5-minute trace so the scaled trace reproduces the 1/3/5-minute series.

Execution knobs (see :mod:`repro.analysis.sweep_exec`): ``engine``
selects the per-cell cache simulator (vector / row / auto, identical
results) and ``workers`` fans the (capacity, window) grid across
processes sharing one generated key stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.switch.kvstore.cache import CacheGeometry
from repro.analysis.eviction import scaled_capacity
from repro.traffic.caida import CaidaTraceConfig, generate_key_stream

#: Fig. 6 window lengths as fractions of the full (5-minute) trace.
WINDOW_FRACTIONS: dict[str, float] = {"1min": 1 / 5, "3min": 3 / 5, "5min": 1.0}

#: The Fig. 6 x-axis: the paper's cache capacities in pairs (2^16..2^21).
FIG6_CAPACITIES: tuple[int, ...] = tuple(1 << e for e in range(16, 22))


@dataclass(frozen=True)
class AccuracyPoint:
    """One (cache size, window) measurement."""

    window: str
    paper_pairs: int
    capacity_pairs: int
    valid_keys: int
    total_keys: int

    @property
    def accuracy(self) -> float:
        return self.valid_keys / self.total_keys if self.total_keys else 1.0

    @property
    def paper_mbits(self) -> float:
        return self.paper_pairs * 128 / (1 << 20)


@dataclass
class AccuracySweep:
    scale: float
    points: list[AccuracyPoint] = field(default_factory=list)

    def series(self, window: str) -> list[AccuracyPoint]:
        return sorted((p for p in self.points if p.window == window),
                      key=lambda p: p.capacity_pairs)


def _window_validity(keys, geometry: CacheGeometry, seed: int,
                     engine: str = "auto") -> tuple[int, int]:
    """(valid, total) keys for one window under a non-mergeable fold.

    A key is valid unless evicted and later re-inserted (≥ 2 epochs by
    the end-of-window flush).  Only eviction *events* matter, not the
    fold's values, so this tracks epoch counts directly — semantically
    identical to running the full split store with a non-linear fold.

    ``engine="vector"`` runs the array-native simulator (a key's epoch
    count equals its miss count, so per-key miss tallies suffice);
    ``"row"`` replays the reference cache; ``"auto"`` picks vector for
    integer array streams.  Both produce identical numbers.
    """
    from repro.analysis.sweep_exec import resolve_engine

    if resolve_engine(engine, keys) == "vector":
        from repro.switch.kvstore.vector_cache import window_validity_vector

        return window_validity_vector(keys, geometry, seed=seed)
    from repro.switch.kvstore.cache import KeyValueCache

    cache: KeyValueCache[None] = KeyValueCache(geometry, seed=seed)
    epochs: dict[int, int] = {}
    make_none = lambda: None  # noqa: E731
    for key in (keys.tolist() if isinstance(keys, np.ndarray) else keys):
        _entry, evicted = cache.access(key, make_none)
        if evicted is not None:
            epochs[evicted.key] = epochs.get(evicted.key, 0) + 1
    for entry in cache.flush():
        epochs[entry.key] = epochs.get(entry.key, 0) + 1
    total = len(epochs)
    valid = sum(1 for count in epochs.values() if count <= 1)
    return valid, total


def run_accuracy_sweep(
    scale: float = 1.0 / 256.0,
    capacities: tuple[int, ...] = FIG6_CAPACITIES,
    windows: dict[str, float] | None = None,
    seed: int = 2016_04,
    engine: str = "auto",
    workers: int | None = None,
) -> AccuracySweep:
    """Run the Fig. 6 sweep at ``scale`` (8-way caches).

    Windowing operates on the packet stream by position (the synthetic
    trace has uniform arrival intensity, so position ≈ time).

    ``engine`` selects the cache simulator per (capacity, window) cell
    and ``workers`` > 1 fans the grid across processes via
    :mod:`repro.analysis.sweep_exec` (one shared key stream, results
    bit-identical to the serial sweep).
    """
    if workers and workers > 1:
        from repro.analysis.sweep_exec import run_accuracy_sweep_parallel

        return run_accuracy_sweep_parallel(
            scale=scale, capacities=capacities, windows=windows,
            seed=seed, engine=engine, workers=workers)
    from repro.analysis.sweep_exec import resolve_engine

    windows = windows or WINDOW_FRACTIONS
    keys = generate_key_stream(CaidaTraceConfig(scale=scale, seed=seed))
    n = len(keys)
    # One validity oracle per window prefix: on the vector engine each
    # prefix gets one shared simulator, so the capacity sweep reuses
    # its hashing/layout work; on the row engine, one Python key list.
    use_vector = resolve_engine(engine, keys) == "vector"
    oracles: dict[int, object] = {}
    for fraction in windows.values():
        window_len = max(1, int(n * fraction))
        if window_len in oracles:
            continue
        if use_vector:
            from repro.switch.kvstore.vector_cache import VectorCacheSim

            sim = VectorCacheSim(keys[:window_len], seed=seed)
            oracles[window_len] = sim.validity
        else:
            prefix = keys[:window_len].tolist()
            oracles[window_len] = (
                lambda geometry, _p=prefix: _window_validity(
                    _p, geometry, seed, engine="row"))
    sweep = AccuracySweep(scale=scale)
    for paper_pairs in capacities:
        scaled = scaled_capacity(paper_pairs, scale)
        geometry = CacheGeometry.set_associative(scaled, ways=8)
        for window_name, fraction in windows.items():
            window_len = max(1, int(n * fraction))
            valid, total = oracles[window_len](geometry)
            sweep.points.append(AccuracyPoint(
                window=window_name, paper_pairs=paper_pairs,
                capacity_pairs=scaled, valid_keys=valid, total_keys=total,
            ))
    return sweep


def shape_checks(sweep: AccuracySweep,
                 ordering_from_pairs: int = 1 << 18) -> list[str]:
    """Fig. 6's qualitative claims; returns violated claims.

    1. accuracy rises with cache size, per window;
    2. the shortest window is at least as accurate as the longest at
       every capacity ≥ ``ordering_from_pairs`` (default: the paper's
       32-Mbit operating point, where it quotes 74% → 84%).

    The ordering is only asserted from the operating point up: in a
    short *prefix* of a synthetic trace the key population is
    length-biased toward long-lived, churn-heavy flows, which can
    depress small-cache short-window accuracy by a few points — an
    artifact of the trace substitution, not of the store (see
    EXPERIMENTS.md).
    """
    problems: list[str] = []
    tol = 0.01
    for window in {p.window for p in sweep.points}:
        series = sweep.series(window)
        for a, b in zip(series, series[1:]):
            if b.accuracy < a.accuracy - tol:
                problems.append(
                    f"{window}: accuracy falls from {a.paper_pairs} to "
                    f"{b.paper_pairs} pairs"
                )
    ordered = sorted(WINDOW_FRACTIONS, key=WINDOW_FRACTIONS.get)
    shortest, longest = ordered[0], ordered[-1]
    for capacity in sorted({p.paper_pairs for p in sweep.points}):
        if capacity < ordering_from_pairs:
            continue
        accs = {}
        for window in (shortest, longest):
            match = [p for p in sweep.points
                     if p.window == window and p.paper_pairs == capacity]
            if match:
                accs[window] = match[0].accuracy
        if len(accs) == 2 and accs[shortest] < accs[longest] - tol:
            problems.append(
                f"{capacity}: {shortest} window less accurate than {longest}"
            )
    return problems
