"""Semantic-analysis tests: resolution, schemas, and static rules."""

import pytest

from repro.core.ast_nodes import ColumnRef, FieldRef, Number, StateRef
from repro.core.errors import SemanticError
from repro.core.parser import parse_program
from repro.core.semantics import resolve_program


def resolve(source):
    return resolve_program(parse_program(source))


class TestNameResolution:
    def test_fields_resolve(self):
        rp = resolve("SELECT srcip WHERE tout - tin > 5")
        query = rp.result_query()
        assert FieldRef("tout") in _walk_all(query.where)

    def test_constants_fold_to_numbers(self):
        rp = resolve("SELECT srcip WHERE proto == TCP")
        assert Number(6) in _walk_all(rp.result_query().where)

    def test_free_names_become_params(self):
        rp = resolve("SELECT srcip WHERE tout - tin > L")
        assert rp.params == frozenset({"L"})

    def test_infinity_constant(self):
        rp = resolve("SELECT srcip WHERE tout == infinity")
        assert Number(float("inf")) in _walk_all(rp.result_query().where)

    def test_5tuple_not_scalar(self):
        with pytest.raises(SemanticError):
            resolve("SELECT srcip WHERE 5tuple == 1")


class TestSelectSchemas:
    def test_expression_column_named_by_text(self):
        rp = resolve("SELECT tout - tin FROM T")
        assert rp.result_query().output.columns[0].name == "tout - tin"

    def test_alias_naming(self):
        rp = resolve("SELECT tout - tin AS delay FROM T")
        assert rp.result_query().output.columns[0].name == "delay"

    def test_5tuple_expands_in_select(self):
        rp = resolve("SELECT 5tuple FROM T")
        names = [c.name for c in rp.result_query().output.columns]
        assert names == ["srcip", "dstip", "srcport", "dstport", "proto"]

    def test_star_over_base(self):
        rp = resolve("SELECT * FROM T WHERE proto == 6")
        names = rp.result_query().output.column_names()
        assert "srcip" in names and "qid" in names and "tout" in names


class TestGroupBySchemas:
    def test_keys_always_emitted(self):
        rp = resolve("SELECT COUNT GROUPBY srcip, dstip")
        names = rp.result_query().output.column_names()
        assert names[:2] == ("srcip", "dstip")
        assert "COUNT" in names

    def test_output_is_keyed(self):
        rp = resolve("SELECT COUNT GROUPBY 5tuple")
        output = rp.result_query().output
        assert output.keyed
        assert output.key_columns == ("srcip", "dstip", "srcport", "dstport", "proto")

    def test_single_var_fold_column_named_by_var(self):
        rp = resolve(
            "def sum_lat (lat, (tin, tout)): lat = lat + tout - tin\n"
            "SELECT 5tuple, sum_lat GROUPBY 5tuple"
        )
        output = rp.result_query().output
        assert output.resolve("lat") is not None
        assert output.resolve("sum_lat") is not None  # fold-name alias

    def test_multi_var_fold_dotted_columns(self):
        rp = resolve(
            "def perc ((tot, high), qin):\n"
            "    if qin > K: high = high + 1\n"
            "    tot = tot + 1\n"
            "R1 = SELECT qid, perc GROUPBY qid"
        )
        output = rp.result_query().output
        assert output.resolve("perc.tot") is not None
        assert output.resolve("perc.high") is not None
        assert output.resolve("high").name == "perc.high"  # bare alias

    def test_sugar_column_canonical_name(self):
        rp = resolve("SELECT SUM(tout - tin) GROUPBY pkt_uniq")
        assert rp.result_query().output.resolve("SUM(tout - tin)") is not None

    def test_duplicate_groupby_key_rejected(self):
        with pytest.raises(SemanticError):
            resolve("SELECT COUNT GROUPBY srcip, srcip")

    def test_arbitrary_expr_in_group_select_rejected(self):
        with pytest.raises(SemanticError):
            resolve("SELECT tout - tin GROUPBY srcip")

    def test_star_in_groupby_rejected(self):
        with pytest.raises(SemanticError):
            resolve("SELECT * GROUPBY srcip")

    def test_count_with_argument_rejected(self):
        with pytest.raises(SemanticError):
            resolve("SELECT COUNT(pkt_len) GROUPBY srcip")

    def test_sum_without_argument_rejected(self):
        with pytest.raises(SemanticError):
            resolve("SELECT SUM GROUPBY srcip")


class TestFolds:
    def test_state_vars_resolve_to_staterefs(self):
        rp = resolve(
            "def f (s, pkt_len): s = s + pkt_len\n"
            "SELECT srcip, f GROUPBY srcip"
        )
        fold = rp.result_query().folds[0]
        assert StateRef("s") in _walk_stmt_exprs(fold.body)

    def test_packet_params_bind_to_fields(self):
        rp = resolve(
            "def f (s, pkt_len): s = s + pkt_len\n"
            "SELECT srcip, f GROUPBY srcip"
        )
        fold = rp.result_query().folds[0]
        assert FieldRef("pkt_len") in _walk_stmt_exprs(fold.body)

    def test_unknown_packet_param_rejected(self):
        with pytest.raises(SemanticError):
            resolve(
                "def f (s, nosuchfield): s = s + nosuchfield\n"
                "SELECT srcip, f GROUPBY srcip"
            )

    def test_assign_to_undeclared_state_rejected(self):
        with pytest.raises(SemanticError):
            resolve(
                "def f (s, x): t = s + x\n"
                "SELECT srcip, f GROUPBY srcip"
            )

    def test_fold_params_visible(self):
        rp = resolve(
            "def ewma (e, (tin, tout)): e = (1 - alpha) * e + alpha * (tout - tin)\n"
            "SELECT 5tuple, ewma GROUPBY 5tuple"
        )
        assert "alpha" in rp.params


class TestComposition:
    SOURCE = (
        "def sum_lat (lat, (tin, tout)): lat = lat + tout - tin\n"
        "R1 = SELECT pkt_uniq, sum_lat GROUPBY pkt_uniq\n"
        "R2 = SELECT 5tuple FROM R1 GROUPBY 5tuple WHERE lat > L\n"
    )

    def test_downstream_groupby_over_derived(self):
        rp = resolve(self.SOURCE)
        r2 = rp.by_name("R2")
        assert r2.source == "R1"
        assert r2.groupby_keys == ("srcip", "dstip", "srcport", "dstport", "proto")

    def test_where_over_derived_resolves_to_columns(self):
        rp = resolve(self.SOURCE)
        r2 = rp.by_name("R2")
        assert ColumnRef("lat") in _walk_all(r2.where)

    def test_forward_reference_rejected(self):
        with pytest.raises(SemanticError):
            resolve(
                "R2 = SELECT srcip FROM R1 GROUPBY srcip\n"
                "R1 = SELECT COUNT GROUPBY srcip\n"
            )

    def test_dotted_column_over_derived(self):
        rp = resolve(
            "def perc ((tot, high), qin):\n"
            "    if qin > K: high = high + 1\n"
            "    tot = tot + 1\n"
            "R1 = SELECT qid, perc GROUPBY qid\n"
            "R2 = SELECT * FROM R1 WHERE perc.high / perc.tot > 0.01\n"
        )
        r2 = rp.by_name("R2")
        assert r2.output.keyed  # key column qid survives SELECT *

    def test_sugar_reference_in_downstream_where(self):
        rp = resolve(
            "R1 = SELECT pkt_uniq, SUM(tout - tin) GROUPBY pkt_uniq\n"
            "R2 = SELECT 5tuple FROM R1 GROUPBY 5tuple WHERE SUM(tout - tin) > L\n"
        )
        assert ColumnRef("SUM(tout - tin)") in _walk_all(rp.by_name("R2").where)


class TestJoins:
    GOOD = (
        "R1 = SELECT COUNT GROUPBY 5tuple\n"
        "R2 = SELECT COUNT GROUPBY 5tuple WHERE tout == infinity\n"
        "R3 = SELECT R2.COUNT/R1.COUNT FROM R1 JOIN R2 ON 5tuple\n"
    )

    def test_join_resolves(self):
        rp = resolve(self.GOOD)
        r3 = rp.by_name("R3")
        assert r3.kind == "join"
        assert r3.join_on == ("srcip", "dstip", "srcport", "dstport", "proto")
        assert r3.output.keyed

    def test_join_key_must_match_grouping(self):
        source = (
            "R1 = SELECT COUNT GROUPBY 5tuple\n"
            "R2 = SELECT COUNT GROUPBY srcip\n"
            "R3 = SELECT R1.COUNT FROM R1 JOIN R2 ON srcip\n"
        )
        with pytest.raises(SemanticError) as excinfo:
            resolve(source)
        assert "grouping key" in str(excinfo.value)

    def test_join_against_base_rejected(self):
        with pytest.raises(SemanticError):
            resolve(
                "R1 = SELECT COUNT GROUPBY srcip\n"
                "R2 = SELECT R1.COUNT FROM R1 JOIN T ON srcip\n"
            )

    def test_join_on_nonkeyed_rejected(self):
        source = (
            "R1 = SELECT COUNT GROUPBY srcip\n"
            "R2 = SELECT srcip FROM T WHERE proto == 6\n"
            "R3 = SELECT R1.COUNT FROM R1 JOIN R2 ON srcip\n"
        )
        with pytest.raises(SemanticError) as excinfo:
            resolve(source)
        assert "not a grouped table" in str(excinfo.value)

    def test_ambiguous_unqualified_column_rejected(self):
        source = (
            "R1 = SELECT COUNT GROUPBY srcip\n"
            "R2 = SELECT COUNT GROUPBY srcip\n"
            "R3 = SELECT COUNT FROM R1 JOIN R2 ON srcip\n"
        )
        with pytest.raises(SemanticError):
            resolve(source)


def _walk_all(expr):
    from repro.core.ast_nodes import walk
    return list(walk(expr))


def _walk_stmt_exprs(body):
    from repro.core.ast_nodes import Assign, If, walk
    out = []
    stack = list(body)
    while stack:
        stmt = stack.pop()
        if isinstance(stmt, Assign):
            out.extend(walk(stmt.value))
        elif isinstance(stmt, If):
            out.extend(walk(stmt.pred))
            stack.extend(stmt.then)
            stack.extend(stmt.orelse)
    return out
