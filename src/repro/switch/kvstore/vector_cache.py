"""Array-native cache-replacement simulator (the *vector* cache engine).

Bit-identical, batch-first replacement-policy simulation for the
split-store cache of §3.2/§4: given the whole key stream as a numpy
array, it reproduces the counters of :class:`~repro.switch.kvstore.cache.KeyValueCache`
/ :func:`~repro.switch.kvstore.cache.simulate_eviction_count` without a
per-packet Python loop.  It is what makes the Fig. 5 eviction sweep and
the Fig. 6 accuracy sweep interactive at multi-million-access scale
(``engine="vector"`` in :mod:`repro.analysis.eviction`,
:mod:`repro.analysis.accuracy`, and the sweep CLI).

Three execution paths, chosen per geometry/policy:

1. **Direct-mapped** (``m_slots == 1``, any policy — the policies are
   indistinguishable with one slot per bucket): mix the keys with a
   vectorized splitmix64 (:func:`mix_key_array`), stable-argsort the
   accesses by bucket, and read hits/misses/evictions off adjacent
   in-bucket key comparisons.  No Python loop at all.

2. **Exact LRU** (``m_slots > 1``): per-set reuse *stack distances* —
   an access hits iff the number of distinct keys touched in its set
   since the previous access to the same key is ``< m_slots`` (the LRU
   inclusion property, exact, not a model).  Accesses are grouped into
   per-set segments (one composite ``(bucket, time)`` sort), runs of
   the same key are collapsed (guaranteed hits that do not move the LRU
   state), and every access whose set-local reuse window is shorter
   than ``m_slots`` hits outright.  For the rest, the stack distance is
   ``S(i) - 1 - inv(prev(i))`` where ``S`` is the set's residency
   profile (one linear interval sweep over occurrence intervals, with
   set-end sentinels so everything stays set-local) and ``inv`` counts
   earlier accesses whose next occurrence lies past the window — an
   offline, Fenwick-free previous-larger merge counter.  Only accesses
   whose occurrence interval spans more than ``m_slots`` positions can
   ever be counted (shorter intervals close before any qualifying
   window opens), so the counter runs on that small subset, chunked at
   set boundaries to stay cache-resident; the table built for ``G`` is
   exact for every ``m >= G`` and is cached, so a fully associative
   capacity sweep pays for it once.

3. **Packed per-set replay** for the FIFO/random ablation policies
   (:func:`_replay_segments`): accesses are grouped by set with one
   composite ``(bucket, time)`` sort, then every set's occupancy is
   replayed *simultaneously*, one in-set step per Python iteration —
   membership tests, ring-buffer insertions (FIFO evicts the ring
   head; random removes a drawn slot and appends), and eviction
   bookkeeping are all vectorized across the active sets, so the
   Python-level iteration count is the longest set's access count, not
   the stream length.  Random victims come from the counter-based
   :func:`repro.switch.kvstore.cache.replay_victim` draw
   (:func:`replay_victim_array` here), consumed in array chunks — a
   pure function of ``(seed, set, per-set eviction count)``, so per-set
   replay (and the windowed store's carried replay) consumes exactly
   the reference loop's draws.  Streams without enough per-set
   parallelism (``max segment length * _PACKED_MIN_PARALLELISM > n``,
   e.g. a fully associative cache's single set) fall back to
   per-access reference loops that mirror
   :class:`~repro.switch.kvstore.cache.KeyValueCache` exactly.

Use :class:`VectorCacheSim` directly when sweeping many geometries over
one stream (layouts and distances are shared), or the one-shot
:func:`simulate_eviction_count_vector` /
:func:`window_validity_vector` wrappers.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.errors import HardwareError
from .cache import (
    _VICTIM_BUCKET_MULT,
    _VICTIM_COUNT_MULT,
    CacheGeometry,
    CacheStats,
    KeyValueCache,
    replay_victim,
)

_MASK64 = np.uint64(0xFFFFFFFFFFFFFFFF)
_U = np.uint64

#: Target chunk size for the kept-subset merge counter: chunks are cut
#: at set boundaries so each merge stays cache-resident.
_MERGE_CHUNK = 1 << 16

#: The packed FIFO/random replay runs one vectorized step per in-set
#: position, so it needs enough sets progressing in parallel to beat
#: the per-access reference loop: it is used when the longest set
#: segment times this factor fits in the stream (i.e. average
#: parallelism is at least this many sets).  Tests monkeypatch it to
#: force either path.
_PACKED_MIN_PARALLELISM = 16

#: Round cutoff inside one packed replay batch: once fewer than this
#: many sets are still active (the long tail of a skewed segment
#: distribution), a vectorized round costs more than touching the few
#: remaining accesses directly, so the surviving segment tails finish
#: on the scalar per-access loop (state handed over exactly).  The
#: value is the measured break-even: ~25 array operations per round
#: against ~0.3us per scalar access.
_PACKED_MIN_ACTIVE = 96

#: Hit-run skip width bounds of the packed replay: each round tests
#: the next ``w`` accesses of every active set against its ring in one
#: shot, so a round advances a set past a whole run of hits (hits
#: never change FIFO/random state) and at most one miss.  ``w`` adapts
#: between these bounds round by round — it grows while sets consume
#: whole blocks (hit-dense streams skip far) and shrinks toward 1
#: (plain step-major) while misses stop every set after an access or
#: two, where wide membership tests are wasted work.
_SKIP_BLOCK_MAX = 64
_SKIP_BLOCK_START = 8

#: Element budget of one round's membership block (``active sets x
#: width``): bounds the width growth while many short segments are
#: still active, where wide blocks would mostly compare past their
#: ends.
_SKIP_BLOCK_BUDGET = 1 << 17

#: Maximum misses resolved inside one block per round (by exact
#: verdict correction); deeper chains resume next round.
_CHAIN_DEPTH = 4

#: Empty ring-buffer slot: never equal to any key id (ids are int32 or
#: nonnegative int64) nor to any raw int32-ranged key.
_FILLER = np.iinfo(np.int64).min

#: Cached ``np.arange(w)`` block offsets (w is a power of two <=
#: :data:`_SKIP_BLOCK_MAX`).
_wr_cache: dict[int, np.ndarray] = {}


def splitmix64_array(values: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finaliser; uint64 in, uint64 out.

    Matches :func:`repro.switch.kvstore.cache.splitmix64` element-wise
    (numpy's wrapping uint64 arithmetic is the ``& _MASK64`` of the
    scalar version).
    """
    v = values.astype(np.uint64, copy=True)
    v += _U(0x9E3779B97F4A7C15)
    t = np.right_shift(v, _U(30))
    v ^= t
    v *= _U(0xBF58476D1CE4E5B9)
    np.right_shift(v, _U(27), out=t)
    v ^= t
    v *= _U(0x94D049BB133111EB)
    np.right_shift(v, _U(31), out=t)
    v ^= t
    return v


def mix_key_array(keys: np.ndarray, seed: int = 0) -> np.ndarray:
    """Mix a key array to 64 bits, matching :func:`mix_key` per element.

    1-D arrays correspond to scalar int keys; 2-D ``(n, k)`` arrays to
    ``k``-tuples (one column per tuple part, folded in order).
    """
    keys = np.asarray(keys)
    seed64 = _U(seed & 0xFFFFFFFFFFFFFFFF)
    if keys.ndim == 1:
        return splitmix64_array(keys.astype(np.int64).view(np.uint64) ^ seed64)
    if keys.ndim == 2:
        acc = np.full(len(keys), seed64, dtype=np.uint64)
        for col in range(keys.shape[1]):
            part = keys[:, col].astype(np.int64).view(np.uint64)
            acc = splitmix64_array(acc ^ part)
        return acc
    raise HardwareError(f"key array must be 1-D or 2-D, got {keys.ndim}-D")


def replay_victim_array(seed: int, buckets: np.ndarray, counts: np.ndarray,
                        size: int) -> np.ndarray:
    """Batch form of :func:`repro.switch.kvstore.cache.replay_victim`,
    element-wise identical: victim slots for evictions ``counts[i]`` in
    buckets ``buckets[i]`` (numpy's wrapping uint64 arithmetic is the
    scalar version's ``& MASK64``)."""
    mixed = (_U(seed & 0xFFFFFFFFFFFFFFFF)
             + np.asarray(buckets, dtype=np.int64).view(np.uint64)
             * _U(_VICTIM_BUCKET_MULT)
             + np.asarray(counts, dtype=np.uint64)
             * _U(_VICTIM_COUNT_MULT))
    return (splitmix64_array(mixed) % _U(size)).astype(np.int64)


def _replay_segments(kz: np.ndarray, starts: np.ndarray, lens: np.ndarray,
                     set_ids: np.ndarray, m: int, policy: str, seed: int,
                     ring: np.ndarray, head: np.ndarray, count: np.ndarray,
                     counters: np.ndarray | None,
                     in_cache: np.ndarray | None = None,
                     state_rows: np.ndarray | None = None,
                     start_width: int = _SKIP_BLOCK_START,
                     ) -> tuple[np.ndarray, int, int]:
    """Packed per-set FIFO/random replay over one batch of segments.

    ``kz`` holds the key ids in (set, time) layout order; segment ``s``
    (= one cache set's accesses in this batch) occupies
    ``kz[starts[s]:starts[s] + lens[s]]`` and has bucket id
    ``set_ids[s]``.  The per-set replacement state — ``ring`` (rows of
    ``m`` slots in insertion order, :data:`_FILLER` when empty;  FIFO
    treats the row circularly via ``head``, random keeps it compacted),
    ``count`` (occupancy), and ``counters`` (random's per-set eviction
    counters, the RNG state) — is carried *in place*, rows aligned with
    segments, so callers can run one batch from empty state (one-shot)
    or thread persistent state through successive windows (the windowed
    store).

    ``in_cache``, when the key ids are dense enough to afford one (a
    per-key-id residency flag array, kept exactly in sync with the
    rings, also carried across windows), turns every membership test
    into a single gather instead of ``m`` ring compares — a key is in
    its set's ring iff its flag is set, because each key id hashes to
    exactly one set.

    ``state_rows``, when given, maps segment ``s`` to row
    ``state_rows[s]`` of the state arrays (and of ``set_ids``), so a
    windowed caller can hand its *persistent* arrays straight in — no
    per-window gather/scatter.  Without it, row ``s`` is segment ``s``.

    The replay is round-major over blocks of ``w`` accesses per active
    set (``w`` adapts between rounds): one membership test per round
    classifies every block position against the pre-round state, then
    each set consumes its block — leading hits are skipped wholesale
    (hits never change FIFO/random state), and up to
    :data:`_CHAIN_DEPTH` misses are resolved *within* the block by
    exact verdict correction: a miss inserts one key and evicts one
    victim, so the remaining positions' verdicts flip precisely where
    they equal either (two compares per chained miss).  Ring
    insert/evict reproduces, per set, exactly what
    :class:`~repro.switch.kvstore.cache.KeyValueCache` does per access.
    Finished sets are compacted away; once fewer than
    :data:`_PACKED_MIN_ACTIVE` remain (skewed streams leave a long
    tail of one or two hot sets), the survivors' tails finish on the
    scalar per-access loop, picking up the ring state mid-segment.

    Returns ``(miss flags over kz positions, eviction count, last skip
    width)`` — windowed callers feed the width back in as the next
    window's ``start_width`` so the adaptation warms up once, not per
    window.
    """
    n = len(kz)
    miss = np.zeros(n, dtype=bool)
    if len(starts) == 0:
        return miss, 0, start_width
    w = max(2, min(int(start_width), _SKIP_BLOCK_MAX))
    # Pad so block gathers may peek past the last segment's end; the
    # pad value is irrelevant (phantom verdicts past a segment's end
    # are neutralised by clamping below) but must be a safe index for
    # the in_cache gather.
    keys64 = np.empty(n + _SKIP_BLOCK_MAX, dtype=np.int64)
    keys64[:n] = kz
    keys64[n:] = 0
    evictions = 0
    randomized = policy == "random"
    cols = np.arange(m - 1)

    def apply_misses(sub: np.ndarray, keys_m: np.ndarray) -> np.ndarray:
        """One miss per row of ``act[sub]``: insert ``keys_m``,
        evicting per policy.  Returns each row's evicted key
        (:data:`_FILLER` where the set was not yet full) — the chain
        correction needs it."""
        nonlocal evictions
        rows_g = act[sub]
        ck = count[rows_g]
        full = ck == m
        n_full = int(np.count_nonzero(full))
        evictions += n_full
        victims = np.full(len(rows_g), _FILLER, dtype=np.int64)
        if randomized:
            fl = np.flatnonzero(full)
            fr = rows_g[fl]
            if len(fr):
                # Remove the drawn slot (shift the tail), append.
                v = replay_victim_array(seed, set_ids[fr], counters[fr], m)
                counters[fr] += 1
                vk = ring[fr, v]
                victims[fl] = vk
                if in_cache is not None:
                    in_cache[vk] = False
                src = cols[None, :] + (cols[None, :] >= v[:, None])
                ring[fr[:, None], cols[None, :]] = ring[fr[:, None], src]
                ring[fr, m - 1] = keys_m[fl]
            nl = np.flatnonzero(~full)
            nf = rows_g[nl]
            if len(nf):
                ring[nf, count[nf]] = keys_m[nl]
                count[nf] += 1
        else:
            # FIFO ring: insert at (head + count) % m; a full set's
            # insert lands on the head slot (the victim).
            hk = head[rows_g]
            ins = hk + ck
            ins[ins >= m] -= m
            if n_full == len(rows_g):            # steady state
                vk = ring[rows_g, ins]
                victims[:] = vk
            elif n_full:
                fl = np.flatnonzero(full)
                vk = ring[rows_g[fl], ins[fl]]
                victims[fl] = vk
            else:
                vk = None
            if in_cache is not None and vk is not None:
                in_cache[vk] = False
            ring[rows_g, ins] = keys_m
            hk += full                           # full: head advances
            hk[hk == m] = 0
            head[rows_g] = hk
            ck += 1
            ck -= full                           # full: occupancy stays
            count[rows_g] = ck
        if in_cache is not None:
            in_cache[keys_m] = True
        return victims

    # Compact per-active-set arrays: state row ids, cursors (in-set
    # position), segment starts/ends.  Rounds operate on these and
    # index the caller's state arrays through ``act``.
    act = np.array(state_rows) if state_rows is not None \
        else np.arange(len(starts))
    cur = np.zeros(len(starts), dtype=np.int64)
    seg_start = np.asarray(starts, dtype=np.int64)
    seg_end = seg_start + np.asarray(lens, dtype=np.int64)
    while True:
        if not len(act):
            break
        if len(act) < _PACKED_MIN_ACTIVE:
            evictions += _finish_tails(
                keys64, miss, seg_start, seg_end, set_ids, act, cur, m,
                policy, seed, ring, head, count, counters, in_cache)
            break
        base = seg_start + cur
        wr = _wr_cache.get(w)
        if wr is None:
            wr = _wr_cache[w] = np.arange(w)
        block = keys64[base[:, None] + wr]
        if in_cache is not None:
            hitrun = in_cache[block]
        else:
            # Membership per ring slot keeps the temporaries at (A, w)
            # instead of materialising an (A, w, m) cube.
            ring_act = ring[act]
            hitrun = block == ring_act[:, 0, None]
            slot_eq = np.empty_like(hitrun)
            for c in range(1, m):
                np.equal(block, ring_act[:, c, None], out=slot_eq)
                hitrun |= slot_eq
        stop = hitrun.argmin(axis=1)             # first miss in block
        stop[hitrun.all(axis=1)] = w             # all-hit: skip whole
        # Clamping to the segment end also neutralises any phantom
        # verdicts the block picked up past it (neighbouring segments'
        # keys, the pad).
        at = np.minimum(base + stop, seg_end)
        is_miss = (stop < w) & (at < seg_end)
        # Default: the whole block (clamped) is consumed; rows whose
        # miss chain is cut short overwrite this below.
        new_cur = np.minimum(base + w, seg_end) - seg_start
        rows = np.flatnonzero(is_miss)
        if len(rows):
            sub = rows                           # compact-row indices
            at_sub = at[rows]
            block_sub = block[rows]
            hit_sub = hitrun[rows]
            base_sub = base[rows]
            end_sub = seg_end[rows]
            depth = 0
            while True:
                keys_m = keys64[at_sub]
                miss[at_sub] = True
                victims = apply_misses(sub, keys_m)
                depth += 1
                if depth >= _CHAIN_DEPTH:
                    # Budget exhausted mid-block: resume here next
                    # round.
                    new_cur[sub] = at_sub + 1 - seg_start[sub]
                    break
                # Exact correction of the remaining verdicts: this
                # miss made exactly its key resident and its victim
                # non-resident.
                hit_sub = (hit_sub | (block_sub == keys_m[:, None])) & \
                    (block_sub != victims[:, None])
                hit_sub |= wr <= (at_sub - base_sub)[:, None]  # consumed
                stop2 = hit_sub.argmin(axis=1)
                done = hit_sub.all(axis=1)
                at2 = np.minimum(base_sub + stop2, end_sub)
                more = ~done & (at2 < end_sub)
                if more.all():
                    at_sub = at2
                    continue
                keep = np.flatnonzero(more)
                if not len(keep):                # whole block consumed
                    break
                sub = sub[keep]
                at_sub = at2[keep]
                block_sub = block_sub[keep]
                hit_sub = hit_sub[keep]
                base_sub = base_sub[keep]
                end_sub = end_sub[keep]
        # Adapt the skip width to the stream: grow while blocks are
        # being consumed nearly whole, shrink when miss chains keep
        # getting cut (wide membership tests are then wasted work).
        advanced = int(new_cur.sum() - cur.sum())
        if advanced * 4 >= 3 * len(act) * w and w < _SKIP_BLOCK_MAX \
                and len(act) * 2 * w <= _SKIP_BLOCK_BUDGET:
            w *= 2
        elif advanced * 4 < len(act) * w and w > 4:
            w //= 2
        cur = new_cur
        alive = cur < seg_end - seg_start
        if not alive.all():
            act = act[alive]
            cur = cur[alive]
            seg_start = seg_start[alive]
            seg_end = seg_end[alive]
    return miss, evictions, w


def _finish_tails(keys64, miss, seg_start, seg_end, set_ids, act, cur, m,
                  policy, seed, ring, head, count, counters,
                  in_cache=None) -> int:
    """Scalar finish of :func:`_replay_segments`: the still-active rows
    (``act``, each at in-set position ``cur``) replay their remaining
    tails per access, starting from (and writing back) the packed ring
    state.  The written-back FIFO state is canonicalised to ``head=0``
    — an equivalent representation of the same queue.  Returns the tail
    eviction count."""
    randomized = policy == "random"
    evictions = 0
    for i, row in enumerate(act.tolist()):
        occupancy = int(count[row])
        if randomized:
            resident = ring[row, :occupancy].tolist()
        else:
            front = int(head[row])
            slots = ring[row].tolist()
            resident = [slots[(front + k) % m] for k in range(occupancy)]
        seen = set(resident)
        touched: set = set()      # keys whose residency flag may move
        evict_count = int(counters[row]) if randomized else 0
        bucket = int(set_ids[row])
        lo = int(seg_start[i]) + int(cur[i])
        for pos, key in enumerate(keys64[lo:int(seg_end[i])].tolist(), lo):
            if key in seen:
                continue
            miss[pos] = True
            if len(resident) >= m:
                if randomized:
                    victim = resident[
                        replay_victim(seed, bucket, evict_count,
                                      len(resident))]
                    evict_count += 1
                    resident.remove(victim)
                else:
                    victim = resident.pop(0)
                seen.discard(victim)
                touched.add(victim)
                evictions += 1
            resident.append(key)
            seen.add(key)
            touched.add(key)
        ring[row, :len(resident)] = resident
        ring[row, len(resident):] = _FILLER
        head[row] = 0
        count[row] = len(resident)
        if randomized:
            counters[row] = evict_count
        if in_cache is not None and touched:
            in_cache[list(touched)] = False
            in_cache[resident] = True
    return evictions


def _count_prev_greater(values: np.ndarray) -> np.ndarray:
    """For each ``i``: ``#{j < i : values[j] > values[i]}``.

    Offline bottom-up merge sort with vectorized cross-block counting:
    blocks are kept sorted; at each level the sorted halves of every
    pair are merged with one global ``searchsorted`` (rows made
    disjoint by a per-block offset) and the left-greater-than-right
    pairs are tallied.  Values must be non-negative (< 2**32).
    """
    n = len(values)
    counts = np.zeros(n, dtype=np.int64)
    if n <= 1:
        return counts
    base = 64
    p = 1 << max(base.bit_length() - 1, (n - 1).bit_length())
    arr = np.full(p, -1, dtype=np.int64)          # pad below all real values
    arr[:n] = values
    orig = np.arange(p, dtype=np.int64)
    big = np.int64(max(int(arr.max()), p)) + 2    # per-block offset stride

    # Bootstrap: exact counts inside blocks of ``base`` by brute
    # broadcast (cheaper than 6 merge levels), then sort each block.
    nb = p // base
    blocks = arr.reshape(nb, base)
    lt = np.tri(base, base, -1, dtype=bool).T     # lt[j, i] = j < i
    step = max(1, (1 << 22) // (base * base))     # bound temp memory
    for lo in range(0, nb, step):
        c = blocks[lo:lo + step]
        cnt = ((c[:, :, None] > c[:, None, :]) & lt[None]).sum(axis=1)
        sl = slice(lo * base, lo * base + cnt.size)
        counts_pad = cnt.ravel()
        seg = np.arange(sl.start, sl.stop)
        real = seg < n
        counts[seg[real]] += counts_pad[real]
    perm = np.argsort(blocks, axis=1, kind="stable")
    arr = np.take_along_axis(blocks, perm, axis=1).ravel()
    orig = np.take_along_axis(orig.reshape(nb, base), perm, axis=1).ravel()

    half = np.arange(p // 2, dtype=np.int64)
    width = base
    while width < p:
        nblocks = p // (2 * width)
        a2 = arr.reshape(nblocks, 2, width)
        o2 = orig.reshape(nblocks, 2, width)
        left = a2[:, 0, :].ravel()
        right = a2[:, 1, :].ravel()
        lorig = o2[:, 0, :].ravel()
        rorig = o2[:, 1, :].ravel()
        blk = half[:nblocks * width] // width
        boff = blk * big
        le = np.searchsorted(left + 1 + boff, right + 1 + boff,
                             side="right") - blk * width
        cnt = width - le
        real = rorig < n
        counts[rorig[real]] += cnt[real]
        if 2 * width >= p:
            break                                  # top level: count only
        # stable merge: rights go after the lefts that are <= them,
        # lefts fill the remaining slots in order.
        rslot = blk * (2 * width) + half[:nblocks * width] % width + le
        taken = np.zeros(p, dtype=bool)
        taken[rslot] = True
        lslot = np.flatnonzero(~taken)
        merged = np.empty_like(arr)
        morig = np.empty_like(orig)
        merged[rslot] = right
        morig[rslot] = rorig
        merged[lslot] = left
        morig[lslot] = lorig
        arr, orig = merged, morig
        width *= 2
    return counts


class _Layout:
    """Accesses grouped by bucket: segment space for one bucketing."""

    __slots__ = ("kz", "segstart", "order", "segbuckets")

    def __init__(self, kz: np.ndarray, segstart: np.ndarray,
                 order: np.ndarray | None, segbuckets: np.ndarray):
        self.kz = kz                # keys in (bucket, time) order
        self.segstart = segstart    # True at each bucket boundary
        self.order = order          # argsort permutation (None for n=1)
        self.segbuckets = segbuckets  # bucket id per segment


class _LruChains:
    """Compressed per-set occurrence chains (m-independent LRU data)."""

    __slots__ = ("n2", "kz2", "segstarts2", "prev", "nxtval", "gap",
                 "has_prev", "keep_idx", "resident", "inv_cache")

    def __init__(self, n2, kz2, segstarts2, prev, nxtval, gap, has_prev,
                 keep_idx):
        self.n2 = n2
        self.kz2 = kz2
        self.segstarts2 = segstarts2
        self.prev = prev
        self.nxtval = nxtval        # next same-key position; set end if none
        self.gap = gap              # set-local window length i - prev - 1
        self.has_prev = has_prev
        self.keep_idx = keep_idx    # layout positions of the kept accesses
        self.resident = None        # lazily: #same-set keys resident at i
        self.inv_cache = None       # (G, kept_rank, inv) — see _kept_inv


class VectorCacheSim:
    """Exact replacement-policy simulation over one key stream.

    Layouts (per-bucketing access orderings) and LRU stack distances
    are memoized, so sweeping many geometries over the same stream —
    the Fig. 5 grid — shares the expensive work.  All counters are
    bit-identical to :class:`KeyValueCache`.

    Args:
        keys: 1-D integer array (scalar keys) or 2-D ``(n, k)`` array
            (tuple keys, one column per part).
        seed: Hash seed (and RNG seed for the random policy).
        key_ids: Optional precomputed dense key ids (equal key ⇔ equal
            id, values in ``[0, 2^31)``) — callers that already
            factorized the stream (the vectorized split store) skip the
            internal factorization sort.
    """

    def __init__(self, keys: np.ndarray, seed: int = 0,
                 key_ids: np.ndarray | None = None):
        keys = np.asarray(keys)
        if keys.dtype.kind not in "iub":
            raise HardwareError(
                f"vector cache engine needs integer keys, got {keys.dtype}")
        self.seed = seed
        if keys.ndim == 2:
            self._hashes = mix_key_array(keys, seed)
            self._ids = key_ids.astype(np.int32, copy=False) \
                if key_ids is not None else _factorize_rows(keys)
        elif keys.ndim == 1:
            self._hashes = None      # lazy: single-bucket paths never hash
            self._ids = None         # lazy: dense int32 ids, on first use
            self._raw = keys
        else:
            raise HardwareError("key array must be 1-D or 2-D")
        if len(keys) >= 1 << 31:
            raise HardwareError("vector cache engine caps streams at 2^31")
        self.n = len(keys)
        self._layouts: dict[int, _Layout] = {}
        self._chains: dict[int, _LruChains] = {}

    # -- shared structure ----------------------------------------------------

    def _hash(self) -> np.ndarray:
        if self._hashes is None:
            self._hashes = mix_key_array(self._raw, self.seed)
        return self._hashes

    def _key_ids(self) -> np.ndarray:
        """Keys as int32 ids (equal key, equal id): cheaper to sort,
        gather, and compare than raw 64-bit key values.  Streams whose
        values already fit int32 are just cast; anything wider is
        factorized through one sort."""
        if self._ids is None:
            raw = self._raw
            if raw.dtype.itemsize <= 4 and raw.dtype.kind != "u" or (
                    len(raw) and raw.dtype.kind in "iu"
                    and int(raw.min()) >= np.iinfo(np.int32).min
                    and int(raw.max()) <= np.iinfo(np.int32).max):
                self._ids = raw.astype(np.int32, copy=False)
                return self._ids
            order = np.argsort(raw, kind="stable")
            rz = raw[order]
            boundary = np.empty(self.n, dtype=bool)
            if self.n:
                boundary[0] = True
                np.not_equal(rz[1:], rz[:-1], out=boundary[1:])
            ids = np.empty(self.n, dtype=np.int32)
            ids[order] = np.cumsum(boundary, dtype=np.int32) - \
                np.int32(1)
            self._ids = ids
        return self._ids

    def _layout(self, n_buckets: int) -> _Layout:
        layout = self._layouts.get(n_buckets)
        if layout is not None:
            return layout
        if n_buckets == 1:
            segstart = np.zeros(self.n, dtype=bool)
            if self.n:
                segstart[0] = True
            layout = _Layout(self._key_ids(), segstart, None,
                             np.zeros(1 if self.n else 0, dtype=np.int64))
        else:
            # One quicksort of (bucket << 32 | time) replaces a stable
            # argsort and the bucket gather — much cheaper in practice.
            b = self._hash() % _U(n_buckets)
            if n_buckets <= 1 << 31:
                comp = (b.astype(np.int64) << np.int64(32)) | \
                    np.arange(self.n, dtype=np.int64)
                comp.sort()
                order = comp & np.int64(0xFFFFFFFF)
                bz = comp >> np.int64(32)
            else:                      # degenerate: more buckets than 2^31
                b = b.astype(np.int64)
                order = np.argsort(b, kind="stable")
                bz = b[order]
            segstart = np.empty(self.n, dtype=bool)
            if self.n:
                segstart[0] = True
                np.not_equal(bz[1:], bz[:-1], out=segstart[1:])
            layout = _Layout(self._key_ids()[order], segstart, order,
                             np.asarray(bz, dtype=np.int64)[segstart])
        self._layouts[n_buckets] = layout
        return layout

    def _lru_chains(self, n_buckets: int) -> _LruChains:
        chains = self._chains.get(n_buckets)
        if chains is not None:
            return chains
        layout = self._layout(n_buckets)
        kz, segstart = layout.kz, layout.segstart
        n = self.n
        # Collapse runs of the same key inside a set: every non-first
        # access of a run is a hit that leaves the LRU state unchanged,
        # and distances for the kept accesses are unaffected.
        dup = np.zeros(n, dtype=bool)
        if n:
            dup[1:] = (~segstart[1:]) & (kz[1:] == kz[:-1])
        keep = ~dup
        keep_idx = np.flatnonzero(keep)
        kz2 = kz[keep]
        segstarts2 = np.flatnonzero(segstart[keep])
        n2 = len(kz2)
        comp = (kz2.astype(np.int64) << np.int64(32)) | \
            np.arange(n2, dtype=np.int64)
        comp.sort()
        korder = comp & np.int64(0xFFFFFFFF)
        kk = comp >> np.int64(32)
        same = kk[1:] == kk[:-1]
        prev = np.full(n2, -1, dtype=np.int32)
        # Last occurrences stay "resident" until their set's end: the
        # sentinel is the segment end, which keeps every quantity below
        # strictly set-local (no cross-set terms to cancel).
        bounds = np.append(segstarts2, n2)
        nxtval = np.repeat(bounds[1:].astype(np.int32), np.diff(bounds))
        ko32 = korder.astype(np.int32)
        prev[ko32[1:][same]] = ko32[:-1][same]
        nxtval[ko32[:-1][same]] = ko32[1:][same]
        has_prev = prev >= 0
        gap = np.arange(n2, dtype=np.int32) - prev - 1
        chains = _LruChains(n2, kz2, segstarts2, prev, nxtval, gap, has_prev,
                            keep_idx)
        self._chains[n_buckets] = chains
        return chains

    def _resident(self, chains: _LruChains) -> np.ndarray:
        """``S[i]``: number of keys of ``i``'s set whose latest access
        precedes ``i`` and whose next (or set end) is at/after ``i`` —
        the set's residency profile, via one interval sweep."""
        if chains.resident is None:
            n2 = chains.n2
            delta = np.zeros(n2 + 2, dtype=np.int64)
            delta[1:n2 + 1] = 1
            # set-end sentinels repeat, so tally expiries via bincount
            delta -= np.bincount(chains.nxtval + 1, minlength=n2 + 2)
            chains.resident = np.cumsum(delta)[:n2]
        return chains.resident

    def _lru_miss_mask(self, n_buckets: int,
                       m: int) -> tuple[_LruChains, np.ndarray]:
        """Per-kept-access miss mask for an LRU geometry.

        An access with fewer than ``m`` same-set accesses since its
        previous occurrence hits outright.  For the rest, the stack
        distance is ``S[i] - 1 - inv(prev(i))`` where ``inv(p)`` counts
        earlier accesses whose next occurrence is past ``i``.  Only
        accesses whose occurrence interval spans more than ``m``
        positions can contribute to any such ``inv`` (shorter intervals
        close before the window even starts), so the merge counter runs
        on that small subset, in cache-sized per-set chunks.
        """
        chains = self._lru_chains(n_buckets)
        miss = ~chains.has_prev         # first touches always miss
        queries = chains.has_prev & (chains.gap >= m)
        q_idx = np.flatnonzero(queries)
        if len(q_idx) == 0:
            return chains, miss
        s = self._resident(chains)
        kept_rank, inv = self._kept_inv(chains, m)
        p = chains.prev[q_idx]
        dist = s[q_idx] - 1 - inv[kept_rank[p]]
        miss[q_idx] = dist >= m
        return chains, miss

    def _kept_inv(self, chains: _LruChains,
                  m: int) -> tuple[np.ndarray, np.ndarray]:
        """Previous-larger counts of the next-occurrence array over the
        accesses whose occurrence interval spans more than ``G``
        positions.

        An interval spanning ``<= G`` closes before any window of
        ``>= G`` accesses opens, so it can never be counted for such a
        query — which makes a table built at ``G0`` exact for every
        ``m >= G0``.  The table is cached and rebuilt only when a
        smaller ``m`` arrives (capacity sweeps ask ascending ``m``, so
        they pay for one build).
        """
        if chains.inv_cache is not None and chains.inv_cache[0] <= m:
            return chains.inv_cache[1], chains.inv_cache[2]
        span = chains.nxtval - np.arange(chains.n2, dtype=np.int32)
        keep = span > m
        kept_idx = np.flatnonzero(keep)
        vals = chains.nxtval[kept_idx]
        inv = np.empty(len(vals), dtype=np.int64)
        for a, b in self._merge_chunks(chains, kept_idx):
            inv[a:b] = _count_prev_greater(vals[a:b].astype(np.int64))
        kept_rank = np.cumsum(keep, dtype=np.int64) - 1
        chains.inv_cache = (m, kept_rank, inv)
        return kept_rank, inv

    @staticmethod
    def _merge_chunks(chains: _LruChains,
                      kept_idx: np.ndarray) -> Iterable[tuple[int, int]]:
        """Chunk boundaries (in kept-rank space) aligned to set
        boundaries, each chunk ~``_MERGE_CHUNK`` kept accesses."""
        nk = len(kept_idx)
        seg_rank = np.searchsorted(kept_idx, chains.segstarts2)
        targets = np.arange(_MERGE_CHUNK, nk, _MERGE_CHUNK)
        pos = np.searchsorted(seg_rank, targets, side="right") - 1
        cuts = np.unique(seg_rank[pos[pos >= 0]])
        cuts = np.concatenate(([0], cuts[cuts > 0], [nk]))
        return zip(cuts[:-1], cuts[1:])

    # -- per-path counter computation ------------------------------------------

    def _direct(self, geometry: CacheGeometry, per_key: bool):
        """m == 1: the resident key of a bucket is its previous access."""
        layout = self._layout(geometry.n_buckets)
        kz, segstart = layout.kz, layout.segstart
        n = self.n
        hit1 = (~segstart[1:]) & (kz[1:] == kz[:-1])
        misses = n - int(np.count_nonzero(hit1))
        # A miss evicts unless it starts a bucket's occupancy, i.e.
        # unless it is the first access of its bucket.
        first = int(np.count_nonzero(segstart))
        stats = CacheStats(accesses=n, hits=n - misses, misses=misses,
                           insertions=misses, evictions=misses - first)
        if not per_key:
            return stats, None
        miss = np.ones(n, dtype=bool)
        miss[1:] = ~hit1
        return stats, _single_miss_validity(kz[miss])

    def _lru(self, geometry: CacheGeometry, per_key: bool):
        n, m = geometry.n_buckets, geometry.m_slots
        chains, miss = self._lru_miss_mask(n, m)
        misses = int(np.count_nonzero(miss))
        cs = np.cumsum(miss, dtype=np.int64)
        starts = chains.segstarts2
        ends = np.append(starts[1:], chains.n2)
        seg_misses = cs[ends - 1] - cs[starts] + miss[starts]
        evictions = int(np.maximum(0, seg_misses - m).sum())
        stats = CacheStats(accesses=self.n, hits=self.n - misses,
                           misses=misses, insertions=misses,
                           evictions=evictions)
        if not per_key:
            return stats, None
        return stats, _single_miss_validity(chains.kz2[miss])

    def _replay(self, geometry: CacheGeometry, policy: str, per_key: bool,
                miss_out: np.ndarray | None = None):
        """Exact replay of the FIFO/random ablation policies.

        Dispatches to the packed per-set array replay
        (:func:`_replay_segments`) whenever the stream has enough
        per-set parallelism to win — its Python-level iteration count
        is the longest set segment, so it needs many sets progressing
        together — and otherwise (e.g. a fully associative cache's
        single set) to the per-access reference loops of
        :meth:`_replay_scalar`.  Both paths are bit-identical to
        :class:`KeyValueCache`.  ``miss_out`` (bool, stream order)
        records the per-access miss flags for the schedule-driven
        store."""
        chains = self._lru_chains(geometry.n_buckets)
        starts = chains.segstarts2
        lens = np.diff(np.append(starts, chains.n2))
        max_len = int(lens.max()) if len(lens) else 0
        if max_len * _PACKED_MIN_PARALLELISM > chains.n2:
            return self._replay_scalar(geometry, policy, per_key,
                                       miss_out=miss_out)
        m = geometry.m_slots
        layout = self._layout(geometry.n_buckets)
        n_segs = len(starts)
        ring = np.full((n_segs, m), _FILLER, dtype=np.int64)
        head = np.zeros(n_segs, dtype=np.int64)
        count = np.zeros(n_segs, dtype=np.int64)
        counters = np.zeros(n_segs, dtype=np.uint64) \
            if policy == "random" else None
        # A residency-flag array buys one-gather membership tests when
        # the key-id range is dense enough to afford one (always true
        # for factorized ids; raw narrow int streams may be sparse).
        kz2 = chains.kz2
        kmin = int(kz2.min())
        span = int(kz2.max()) - kmin + 1
        if span <= 4 * chains.n2 + 1024:
            in_cache = np.zeros(span, dtype=bool)
            if kmin:
                kz2 = kz2.astype(np.int64) - kmin
        else:
            in_cache = None
        # Runs of the same key inside a set are collapsed (guaranteed
        # hits that leave FIFO/random state untouched — hits never
        # reorder these policies), exactly like the LRU path.
        miss_kept, evictions, _ = _replay_segments(
            kz2, starts, lens, layout.segbuckets, m, policy,
            self.seed, ring, head, count, counters, in_cache=in_cache)
        misses = int(np.count_nonzero(miss_kept))
        stats = CacheStats(accesses=self.n, hits=self.n - misses,
                           misses=misses, insertions=misses,
                           evictions=evictions)
        if miss_out is not None:
            miss_layout = np.zeros(self.n, dtype=bool)
            miss_layout[chains.keep_idx] = miss_kept
            miss_out[:] = self._to_stream_order(layout, miss_layout)
        if not per_key:
            return stats, None
        return stats, _single_miss_validity(chains.kz2[miss_kept])

    def _replay_scalar(self, geometry: CacheGeometry, policy: str,
                       per_key: bool, miss_out: np.ndarray | None = None):
        """Per-access reference loops for the ablation policies —
        compact Python over packed key arrays mirroring
        :class:`KeyValueCache`'s bucket order and victim draws exactly
        (the random policy consumes the same counter-based
        :func:`replay_victim` stream as the packed path)."""
        n_buckets, m = geometry.n_buckets, geometry.m_slots
        stats = CacheStats()
        miss_counts: dict[int, int] = {}
        if policy == "fifo":
            layout = self._layout(n_buckets)
            bounds = np.flatnonzero(layout.segstart).tolist() + [self.n]
            kz = layout.kz.tolist()
            miss_layout = np.zeros(self.n, dtype=bool) \
                if miss_out is not None else None
            for si in range(len(bounds) - 1):
                resident: set[int] = set()
                order: list[int] = []
                head = 0
                for pos in range(bounds[si], bounds[si + 1]):
                    key = kz[pos]
                    stats.accesses += 1
                    if key in resident:
                        stats.hits += 1
                        continue
                    stats.misses += 1
                    stats.insertions += 1
                    if miss_layout is not None:
                        miss_layout[pos] = True
                    if per_key:
                        miss_counts[key] = miss_counts.get(key, 0) + 1
                    if len(resident) >= m:
                        victim = order[head]
                        head += 1
                        resident.discard(victim)
                        stats.evictions += 1
                    resident.add(key)
                    order.append(key)
            if miss_out is not None:
                if layout.order is None:
                    miss_out[:] = miss_layout
                else:
                    miss_out[layout.order] = miss_layout
        else:  # random
            seed = self.seed
            hashes = (self._hash() % _U(n_buckets)).astype(np.int64).tolist() \
                if n_buckets > 1 else [0] * self.n
            keys = self._key_ids().tolist()
            buckets: dict[int, list[int]] = {}
            members: dict[int, set[int]] = {}
            evict_counts: dict[int, int] = {}
            for i, (key, b) in enumerate(zip(keys, hashes)):
                stats.accesses += 1
                lst = buckets.setdefault(b, [])
                seen = members.setdefault(b, set())
                if key in seen:
                    stats.hits += 1
                    continue
                stats.misses += 1
                stats.insertions += 1
                if miss_out is not None:
                    miss_out[i] = True
                if per_key:
                    miss_counts[key] = miss_counts.get(key, 0) + 1
                if len(lst) >= m:
                    count = evict_counts.get(b, 0)
                    evict_counts[b] = count + 1
                    victim = lst[replay_victim(seed, b, count, len(lst))]
                    lst.remove(victim)
                    seen.discard(victim)
                    stats.evictions += 1
                lst.append(key)
                seen.add(key)
        if not per_key:
            return stats, None
        total = len(miss_counts)
        valid = sum(1 for c in miss_counts.values() if c == 1)
        return stats, (valid, total)

    def _run(self, geometry: CacheGeometry, policy: str, per_key: bool):
        if policy not in KeyValueCache.POLICIES:
            raise HardwareError(f"unknown eviction policy {policy!r}")
        if self.n == 0:
            return CacheStats(), (0, 0)
        if geometry.m_slots == 1:
            return self._direct(geometry, per_key)
        if policy == "lru":
            return self._lru(geometry, per_key)
        return self._replay(geometry, policy, per_key)

    # -- public API ------------------------------------------------------------

    def stats(self, geometry: CacheGeometry, policy: str = "lru") -> CacheStats:
        """Counters of a full run, bit-identical to the row engine."""
        return self._run(geometry, policy, per_key=False)[0]

    def miss_schedule(self, geometry: CacheGeometry,
                      policy: str = "lru") -> np.ndarray:
        """Per-access miss flags, in stream order — the schedule the
        vectorized split store executes.

        ``out[i]`` is True when access ``i`` misses (inserts a fresh
        value, possibly evicting); False when it hits the resident
        entry.  Exactly the hit/miss decisions
        :meth:`KeyValueCache.access` would make, access by access:

        * direct-mapped: a bucket's resident key is its previous
          access, so the flags fall out of the adjacent in-bucket key
          comparisons of the counter path;
        * LRU: the per-kept-access mask of :meth:`_lru_miss_mask`
          scattered back through the run-collapse (collapsed duplicate
          accesses are guaranteed hits) and the layout permutation;
        * FIFO/random: the packed per-set replay (or its per-access
          reference fallback), recording per access.
        """
        if policy not in KeyValueCache.POLICIES:
            raise HardwareError(f"unknown eviction policy {policy!r}")
        n = self.n
        if n == 0:
            return np.zeros(0, dtype=bool)
        if geometry.m_slots == 1:
            layout = self._layout(geometry.n_buckets)
            kz, segstart = layout.kz, layout.segstart
            miss_layout = np.ones(n, dtype=bool)
            miss_layout[1:] = segstart[1:] | (kz[1:] != kz[:-1])
            return self._to_stream_order(layout, miss_layout)
        if policy == "lru":
            chains, miss_kept = self._lru_miss_mask(geometry.n_buckets,
                                                    geometry.m_slots)
            layout = self._layout(geometry.n_buckets)
            miss_layout = np.zeros(n, dtype=bool)
            miss_layout[chains.keep_idx] = miss_kept
            return self._to_stream_order(layout, miss_layout)
        miss = np.zeros(n, dtype=bool)
        self._replay(geometry, policy, per_key=False, miss_out=miss)
        return miss

    def stats_and_schedule(self, geometry: CacheGeometry,
                           policy: str = "lru"
                           ) -> tuple[CacheStats, np.ndarray]:
        """Counters and per-access miss flags together.

        For the direct-mapped and LRU paths the two share all memoized
        work anyway; for the FIFO/random policies this runs the replay
        **once** for both (the schedule-driven store's entry point).
        """
        if self.n and geometry.m_slots > 1 and policy in ("fifo", "random"):
            miss = np.zeros(self.n, dtype=bool)
            stats, _ = self._replay(geometry, policy, per_key=False,
                                    miss_out=miss)
            return stats, miss
        return (self.stats(geometry, policy=policy),
                self.miss_schedule(geometry, policy=policy))

    @staticmethod
    def _to_stream_order(layout: _Layout, values: np.ndarray) -> np.ndarray:
        """Scatter a layout-ordered per-access array back to stream
        order (single-bucket layouts are already in stream order)."""
        if layout.order is None:
            return values
        out = np.empty_like(values)
        out[layout.order] = values
        return out

    def validity(self, geometry: CacheGeometry,
                 policy: str = "lru") -> tuple[int, int]:
        """(valid, total) keys under a non-mergeable fold (Fig. 6).

        A key's backing-store segment count equals its miss count (each
        insertion starts a residency that ends in one push — eviction
        or final flush), so a key is *valid* iff it missed exactly
        once.  Matches ``repro.analysis.accuracy._window_validity``.
        """
        return self._run(geometry, policy, per_key=True)[1]


def _single_miss_validity(miss_keys: np.ndarray) -> tuple[int, int]:
    """(valid, total) from the keys of all miss accesses: every key
    misses at least once, and is valid iff it missed exactly once."""
    if len(miss_keys) == 0:
        return 0, 0
    _, counts = np.unique(miss_keys, return_counts=True)
    return int(np.count_nonzero(counts == 1)), len(counts)


def _factorize_rows(keys: np.ndarray) -> np.ndarray:
    """Map 2-D key rows to dense int64 ids (equal rows, equal id)."""
    if len(keys) == 0:
        return np.zeros(0, dtype=np.int32)
    cols = [keys[:, c] for c in range(keys.shape[1])]
    order = np.lexsort(cols[::-1])
    boundary = np.zeros(len(keys), dtype=bool)
    boundary[0] = True
    for col in cols:
        cz = col[order]
        boundary[1:] |= cz[1:] != cz[:-1]
    ids = np.empty(len(keys), dtype=np.int32)
    ids[order] = np.cumsum(boundary, dtype=np.int32) - np.int32(1)
    return ids


def _as_key_array(keys) -> np.ndarray | None:
    """Try to view ``keys`` as an integer numpy array; None if the
    stream is not representable (non-integers, oversized ints, ...)."""
    if isinstance(keys, np.ndarray):
        arr = keys
    else:
        try:
            arr = np.asarray(keys)
        except (TypeError, ValueError, OverflowError):
            return None
    if arr.ndim not in (1, 2) or arr.dtype.kind not in "iub":
        return None
    return arr


def simulate_eviction_count_vector(keys, geometry: CacheGeometry,
                                   policy: str = "lru",
                                   seed: int = 0) -> CacheStats:
    """One-shot vector-engine counterpart of
    :func:`repro.switch.kvstore.cache.simulate_eviction_count`."""
    arr = _as_key_array(keys)
    if arr is None:
        arr = np.asarray(list(keys), dtype=np.int64)
    return VectorCacheSim(arr, seed=seed).stats(geometry, policy=policy)


def window_validity_vector(keys, geometry: CacheGeometry,
                           seed: int = 0,
                           policy: str = "lru") -> tuple[int, int]:
    """(valid, total) keys for one window — the vector engine behind
    ``repro.analysis.accuracy._window_validity``."""
    arr = _as_key_array(keys)
    if arr is None:
        arr = np.asarray(list(keys), dtype=np.int64)
    return VectorCacheSim(arr, seed=seed).validity(geometry, policy=policy)
