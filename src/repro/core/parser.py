"""Recursive-descent parser for the performance query language (Fig. 1).

The parser turns token streams from :mod:`repro.core.lexer` into the
AST of :mod:`repro.core.ast_nodes`.  It is purely syntactic: identifiers
stay unresolved (:class:`~repro.core.ast_nodes.Name` /
:class:`~repro.core.ast_nodes.Dotted`) and no schema checking happens
here — that is the job of :mod:`repro.core.semantics`.

Grammar accepted (a slight superset of the paper's Fig. 1)::

    program      := (fold_def | named_query | query)*
    fold_def     := 'def' IDENT '(' params ',' params ')' ':' block
    params       := IDENT | '(' IDENT (',' IDENT)* ')'
    block        := simple_stmt* NEWLINE            # inline, single line
                  | NEWLINE INDENT statement+ DEDENT
    statement    := simple_stmt NEWLINE | if_stmt
    simple_stmt  := IDENT '=' expr (';' simple_stmt)*
    if_stmt      := 'if' expr ':' block ['else' ':' block]
                  | 'if' expr 'then' simple_stmt ['else' simple_stmt]
    named_query  := IDENT '=' query
    query        := 'SELECT' select_items clause*
    clause       := 'FROM' IDENT ['JOIN' IDENT 'ON' key_list]
                  | 'GROUPBY' key_list
                  | 'WHERE' expr
    select_items := '*' | select_item (',' select_item)*
    select_item  := expr ['AS' IDENT]
    key_list     := IDENT (',' IDENT)*

Clause order is free (the paper writes both ``SELECT ... GROUPBY ...
WHERE ...`` and ``SELECT ... FROM ... WHERE ...``); each clause may
appear at most once.
"""

from __future__ import annotations

from .ast_nodes import (
    Assign,
    BinOp,
    Call,
    Dotted,
    Expr,
    FoldDef,
    If,
    JoinQuery,
    Name,
    Number,
    Program,
    Query,
    SelectItem,
    SelectQuery,
    Star,
    Stmt,
    UnaryOp,
)
from .errors import ParseError
from .lexer import DEDENT, EOF, IDENT, INDENT, NEWLINE, NUMBER, OP, Token, tokenize

RESULT_NAME = "__result__"


class Parser:
    """Single-pass recursive-descent parser over a token list."""

    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers --------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.type != EOF:
            self.pos += 1
        return token

    def expect(self, type_: str, value: str | None = None) -> Token:
        token = self.peek()
        if token.type != type_ or (value is not None and token.value != value):
            want = value if value is not None else type_
            raise ParseError(f"expected {want!r}, found {token.value!r}", token.line, token.column)
        return self.advance()

    def expect_keyword(self, word: str) -> Token:
        token = self.peek()
        if not token.is_keyword(word):
            raise ParseError(f"expected {word!r}, found {token.value!r}", token.line, token.column)
        return self.advance()

    def at_keyword(self, word: str) -> bool:
        return self.peek().is_keyword(word)

    def at_op(self, op: str) -> bool:
        token = self.peek()
        return token.type == OP and token.value == op

    def skip_newlines(self) -> None:
        while self.peek().type == NEWLINE:
            self.advance()

    # -- program --------------------------------------------------------------

    def parse_program(self) -> Program:
        """Parse a complete program; the last query becomes the result."""
        folds: dict[str, FoldDef] = {}
        queries: dict[str, Query] = {}
        last_name: str | None = None

        self.skip_newlines()
        while self.peek().type != EOF:
            if self.at_keyword("def"):
                fold = self.parse_fold_def()
                if fold.name in folds:
                    raise ParseError(f"fold {fold.name!r} defined twice")
                folds[fold.name] = fold
            elif self.at_keyword("SELECT"):
                queries[RESULT_NAME] = self.parse_query()
                last_name = RESULT_NAME
            elif self.peek().type == IDENT and self.peek(1).type == OP and self.peek(1).value == "=":
                name_token = self.advance()
                self.advance()  # '='
                name = str(name_token.value)
                if name in queries:
                    raise ParseError(f"query {name!r} defined twice", name_token.line, name_token.column)
                queries[name] = self.parse_query()
                last_name = name
            else:
                token = self.peek()
                raise ParseError(f"expected 'def', 'SELECT' or a named query, found {token.value!r}",
                                 token.line, token.column)
            self.skip_newlines()

        if last_name is None:
            raise ParseError("program contains no query")
        return Program(folds=folds, queries=queries, result=last_name)

    # -- fold functions ---------------------------------------------------------

    def parse_fold_def(self) -> FoldDef:
        self.expect_keyword("def")
        name = str(self.expect(IDENT).value)
        self.expect(OP, "(")
        state_params = self.parse_params()
        self.expect(OP, ",")
        packet_params = self.parse_params()
        self.expect(OP, ")")
        self.expect(OP, ":")
        body = self.parse_block()
        return FoldDef(name=name, state_params=state_params, packet_params=packet_params, body=body)

    def parse_params(self) -> tuple[str, ...]:
        if self.at_op("("):
            self.advance()
            names = [str(self.expect(IDENT).value)]
            while self.at_op(","):
                self.advance()
                names.append(str(self.expect(IDENT).value))
            self.expect(OP, ")")
            return tuple(names)
        return (str(self.expect(IDENT).value),)

    def parse_block(self) -> tuple[Stmt, ...]:
        """Parse either an inline statement list or an indented block."""
        if self.peek().type != NEWLINE:
            stmts = self.parse_simple_stmts()
            if self.peek().type == NEWLINE:
                self.advance()
            return stmts
        self.advance()  # NEWLINE
        self.expect(INDENT)
        stmts: list[Stmt] = []
        while self.peek().type != DEDENT:
            stmts.extend(self.parse_statement())
        self.expect(DEDENT)
        if not stmts:
            raise ParseError("empty block", self.peek().line, self.peek().column)
        return tuple(stmts)

    def parse_statement(self) -> tuple[Stmt, ...]:
        if self.at_keyword("if"):
            return (self.parse_if(),)
        stmts = self.parse_simple_stmts()
        if self.peek().type == NEWLINE:
            self.advance()
        return stmts

    def parse_simple_stmts(self) -> tuple[Stmt, ...]:
        """One or more semicolon-free assignments on a single line.

        The paper writes single assignments per line; we additionally
        accept ``a = e1`` followed by more assignments on later lines of
        the same indent level (handled by the block loop), so this parses
        exactly one assignment.
        """
        target_token = self.expect(IDENT)
        if target_token.is_keyword("def"):
            raise ParseError("nested 'def' not allowed in fold body",
                             target_token.line, target_token.column)
        self.expect(OP, "=")
        value = self.parse_expr()
        return (Assign(target=str(target_token.value), value=value),)

    def parse_if(self) -> If:
        self.expect_keyword("if")
        pred = self.parse_expr()
        if self.at_keyword("then"):
            self.advance()
            then_body = self.parse_simple_stmts()
            orelse: tuple[Stmt, ...] = ()
            if self.at_keyword("else"):
                self.advance()
                orelse = self.parse_simple_stmts()
            if self.peek().type == NEWLINE:
                self.advance()
            return If(pred=pred, then=then_body, orelse=orelse)
        self.expect(OP, ":")
        then_body = self.parse_block()
        orelse = ()
        if self.at_keyword("else"):
            self.advance()
            self.expect(OP, ":")
            orelse = self.parse_block()
        return If(pred=pred, then=then_body, orelse=orelse)

    # -- queries -----------------------------------------------------------------

    def parse_query(self) -> Query:
        self.expect_keyword("SELECT")
        items = self.parse_select_items()
        source: str | None = None
        join_right: str | None = None
        join_on: tuple[str, ...] | None = None
        groupby: tuple[str, ...] | None = None
        where: Expr | None = None

        while True:
            if self.at_keyword("FROM"):
                if source is not None:
                    raise ParseError("duplicate FROM clause", self.peek().line, self.peek().column)
                self.advance()
                source = str(self.expect(IDENT).value)
                if self.at_keyword("JOIN"):
                    self.advance()
                    join_right = str(self.expect(IDENT).value)
                    self.expect_keyword("ON")
                    join_on = self.parse_key_list()
            elif self.at_keyword("GROUPBY"):
                if groupby is not None:
                    raise ParseError("duplicate GROUPBY clause", self.peek().line, self.peek().column)
                self.advance()
                groupby = self.parse_key_list()
            elif self.at_keyword("WHERE"):
                if where is not None:
                    raise ParseError("duplicate WHERE clause", self.peek().line, self.peek().column)
                self.advance()
                where = self.parse_expr()
            else:
                break

        if join_right is not None:
            if groupby is not None:
                raise ParseError("JOIN query cannot carry a GROUPBY clause")
            assert source is not None and join_on is not None
            return JoinQuery(items=items, left=source, right=join_right, on=join_on, where=where)
        return SelectQuery(items=items, source=source, groupby=groupby, where=where)

    def parse_select_items(self) -> tuple[SelectItem, ...] | Star:
        if self.at_op("*"):
            self.advance()
            return Star()
        items = [self.parse_select_item()]
        while self.at_op(","):
            self.advance()
            items.append(self.parse_select_item())
        return tuple(items)

    def parse_select_item(self) -> SelectItem:
        expr = self.parse_expr()
        alias: str | None = None
        if self.at_keyword("AS"):
            self.advance()
            alias = str(self.expect(IDENT).value)
        return SelectItem(expr=expr, alias=alias)

    def parse_key_list(self) -> tuple[str, ...]:
        keys = [str(self.expect(IDENT).value)]
        while self.at_op(","):
            self.advance()
            keys.append(str(self.expect(IDENT).value))
        return tuple(keys)

    # -- expressions ---------------------------------------------------------------

    def parse_expr(self) -> Expr:
        return self.parse_or()

    def parse_or(self) -> Expr:
        left = self.parse_and()
        while self.at_keyword("or"):
            self.advance()
            left = BinOp("or", left, self.parse_and())
        return left

    def parse_and(self) -> Expr:
        left = self.parse_not()
        while self.at_keyword("and"):
            self.advance()
            left = BinOp("and", left, self.parse_not())
        return left

    def parse_not(self) -> Expr:
        if self.at_keyword("not"):
            self.advance()
            return UnaryOp("not", self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self) -> Expr:
        left = self.parse_additive()
        token = self.peek()
        if token.type == OP and token.value in ("==", "!=", "<", "<=", ">", ">="):
            self.advance()
            right = self.parse_additive()
            return BinOp(str(token.value), left, right)
        return left

    def parse_additive(self) -> Expr:
        left = self.parse_multiplicative()
        while True:
            token = self.peek()
            if token.type == OP and token.value in ("+", "-"):
                self.advance()
                left = BinOp(str(token.value), left, self.parse_multiplicative())
            else:
                return left

    def parse_multiplicative(self) -> Expr:
        left = self.parse_unary()
        while True:
            token = self.peek()
            if token.type == OP and token.value in ("*", "/"):
                self.advance()
                left = BinOp(str(token.value), left, self.parse_unary())
            else:
                return left

    def parse_unary(self) -> Expr:
        if self.at_op("-"):
            self.advance()
            return UnaryOp("-", self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> Expr:
        token = self.peek()
        if token.type == NUMBER:
            self.advance()
            return Number(token.value)  # type: ignore[arg-type]
        if token.type == OP and token.value == "(":
            self.advance()
            inner = self.parse_expr()
            self.expect(OP, ")")
            return inner
        if token.type == IDENT:
            self.advance()
            name = str(token.value)
            if self.at_op("("):
                self.advance()
                args: list[Expr] = []
                if not self.at_op(")"):
                    args.append(self.parse_expr())
                    while self.at_op(","):
                        self.advance()
                        args.append(self.parse_expr())
                self.expect(OP, ")")
                return Call(name, tuple(args))
            if self.at_op("."):
                self.advance()
                attr = str(self.expect(IDENT).value)
                if self.at_op("("):
                    # Qualified aggregation reference, e.g. R2.SUM(pkt_len):
                    # canonicalise to the sugar column name on that table.
                    from .ast_nodes import format_expr
                    self.advance()
                    args: list[Expr] = []
                    if not self.at_op(")"):
                        args.append(self.parse_expr())
                        while self.at_op(","):
                            self.advance()
                            args.append(self.parse_expr())
                    self.expect(OP, ")")
                    rendered = ", ".join(format_expr(a) for a in args)
                    return Dotted(name, f"{attr}({rendered})")
                return Dotted(name, attr)
            return Name(name)
        raise ParseError(f"expected an expression, found {token.value!r}", token.line, token.column)


def parse_program(source: str) -> Program:
    """Parse query-language source text into a :class:`Program`."""
    return Parser(tokenize(source)).parse_program()


def parse_query(source: str) -> Query:
    """Parse a single query (no folds, no named results)."""
    program = Parser(tokenize(source)).parse_program()
    return program.result_query()


def parse_expression(source: str) -> Expr:
    """Parse a standalone expression (useful in tests)."""
    parser = Parser(tokenize(source))
    expr = parser.parse_expr()
    parser.skip_newlines()
    token = parser.peek()
    if token.type != EOF:
        raise ParseError(f"unexpected trailing input {token.value!r}", token.line, token.column)
    return expr
