"""Live ingest service: the long-running front end of the runtime.

The paper's premise is a *standing* network monitor — queries are
installed once and observations arrive forever — but every entry point
so far is batch-shaped: something must already hold the whole trace.
:class:`IngestServer` closes that gap.  It listens on localhost TCP or
a UNIX socket, accepts length-framed columnar batches
(:mod:`repro.telemetry.wire`), demultiplexes them into named
:class:`~repro.telemetry.session.TelemetrySession` instances, and
executes windows on a per-session worker thread while the asyncio
event loop keeps accepting — so a slow window never stops the service
from answering other clients.

Robustness is the design center, in the spirit of nara's fixed
self-throttling budget (overhead must stay bounded no matter how the
offered load grows) and ACORN's disorderly control planes (clients
stall, disconnect mid-frame, and send garbage; the service must stay
deterministic anyway):

* **Per-session bounded ingest queues.**  Each served session buffers
  at most ``queue_high_bytes`` of undigested batches.  Crossing the
  high watermark asserts *backpressure*: the server answers the
  offending batch with an explicit ``BUSY`` credit frame and stops
  reading that connection until the worker drains the queue below
  ``queue_low_bytes``, then sends ``READY``.  Memory is bounded by the
  watermark, not by how fast the client can push.
* **Admission control.**  ``max_sessions`` live sessions and
  ``max_inflight_bytes`` of total queued batches; a ``HELLO`` that
  would exceed either is answered with a ``REJECT`` frame naming the
  reason (never a silent drop, never an accept-then-collapse).
* **Load shedding** (``shed=True``).  Instead of backpressure, a batch
  arriving over the high watermark is dropped *whole* — never applied
  partially — and counted exactly: the client gets a ``SHED`` ack for
  that specific sequence number, and ``shed_batches``/``shed_records``
  ride every results/close reply's ``serve`` metadata.  Shedding is
  documented load *loss*; the differential tests run with it disabled.
* **Exactly-once ingest under retry.**  Batches carry per-session
  sequence numbers; the ``HELLO`` reply tells a (re)connecting client
  the next sequence the session expects, so a batch cut in half by a
  disconnect is resent and a batch whose ack was lost is skipped.
* **Idle/dead-client timeouts** (``idle_timeout``): a connection that
  goes quiet is closed; the session survives for the client's retry.
* **Durability.**  ``checkpoint_dir`` + ``checkpoint_every_batches``
  auto-checkpoint each session through the PR-7 machinery, and SIGTERM
  (or :meth:`IngestServer.stop`) triggers a graceful drain: stop
  accepting, finish every queued window, checkpoint, close, and report
  — ``QueryEngine.resume`` then continues bit-identically.

The **trace-file tailer** (:class:`TraceTailer`) closes the loop for
file-based capture: it follows a growing CSV observation trace —
surviving truncation and rotation — and feeds batches into a served
session through the same bounded queue (blocking at the high
watermark, the local equivalent of a ``BUSY`` frame).

``ingest_delay`` is a test/bench knob: it sleeps the worker thread
after every ingested batch to emulate a slow consumer, which is how
``benchmarks/bench_serve.py`` forces backpressure deterministically.
"""

from __future__ import annotations

import asyncio
import csv
import io
import os
import signal
import threading
import time
from collections import deque
from concurrent.futures import Future
from pathlib import Path
from typing import IO, TYPE_CHECKING, Any, Iterator

from repro.core.errors import SessionError
from repro.network.records import RECORD_FIELDS, ObservationTable, PacketRecord

from . import wire
from .diagnostics import diagnostic_code
from .wire import FrameError

if TYPE_CHECKING:                                  # pragma: no cover
    from .faults import FaultInjector
    from .runtime import QueryEngine


def batch_nbytes(columns: dict) -> int:
    """Queue accounting charge of one columnar batch."""
    return sum(arr.nbytes for arr in columns.values())


class _ServedSession:
    """One named session behind the server: a bounded job queue feeding
    a dedicated worker thread that owns the
    :class:`~repro.telemetry.session.TelemetrySession` outright.

    The event loop only ever touches the queue and counters (under
    ``_cond``); the session object itself — including its creation, so
    shard workers fork from the worker thread, not the loop — lives
    entirely on the worker thread.  FIFO job order is the consistency
    story: a ``results``/``close``/``checkpoint`` call observes every
    batch enqueued before it, exactly like the shard pool's pipe."""

    def __init__(self, server: "IngestServer", name: str) -> None:
        self._server = server
        self.name = name
        self.session: Any = None                  # worker thread only
        self._cond = threading.Condition()
        self._jobs: deque = deque()
        self.queued_bytes = 0
        self.next_seq = 0                         # socket batches enqueued
        self.closing = False
        self.error: str | None = None
        self.error_cause: BaseException | None = None
        # exact accounting (every counter surfaces in `serve` metadata)
        self.batches_in = 0
        self.records_in = 0
        self.bytes_in = 0
        self.shed_batches = 0
        self.shed_records = 0
        self.busy_events = 0
        self.checkpoints_written = 0
        self._since_checkpoint = 0
        self._drain_waiters: list[asyncio.Event] = []
        self._thread = threading.Thread(
            target=self._worker, name=f"serve-{name}", daemon=True)

    # -- event-loop side -------------------------------------------------------

    def start(self) -> Future:
        """Spawn the worker and return the future of the session-open
        job (awaited before the ``HELLO`` reply, so admission errors —
        bad knob combinations, fork failures — surface to the client)."""
        fut: Future = Future()
        self._jobs.append(("open", None, fut))
        self._thread.start()
        with self._cond:
            self._cond.notify_all()
        return fut

    def try_enqueue(self, table: ObservationTable, nbytes: int,
                    records: int, from_socket: bool = True) -> str:
        """Admit one batch under the watermark policy; returns ``"ok"``,
        ``"busy"`` (accepted, assert backpressure), ``"shed"`` (dropped
        whole, counted), or ``"error"`` (session is poisoned/closing)."""
        with self._cond:
            if self.error is not None or self.closing:
                return "error"
            high = self._server.queue_high_bytes
            if (self._server.shed and self._jobs
                    and self.queued_bytes + nbytes > high):
                self.shed_batches += 1
                self.shed_records += records
                if from_socket:
                    self.next_seq += 1
                return "shed"
            self._jobs.append(("batch", (table, nbytes), None))
            self.queued_bytes += nbytes
            self.batches_in += 1
            self.records_in += records
            self.bytes_in += nbytes
            if from_socket:
                self.next_seq += 1
            self._cond.notify_all()
            if not self._server.shed and self.queued_bytes >= high:
                self.busy_events += 1
                return "busy"
            return "ok"

    def enqueue_local(self, table: ObservationTable, nbytes: int,
                      records: int, stop: threading.Event) -> bool:
        """Tailer-side enqueue: block while over the high watermark
        (local backpressure) instead of speaking ``BUSY`` frames."""
        with self._cond:
            while (self.queued_bytes >= self._server.queue_high_bytes
                   and self.error is None and not self.closing
                   and not stop.is_set()):
                self._cond.wait(0.05)
            if self.error is not None or self.closing:
                return False
        return self.try_enqueue(table, nbytes, records,
                                from_socket=False) in ("ok", "busy")

    def add_drain_waiter(self) -> asyncio.Event:
        """Register for the below-low-watermark wakeup (the handler
        awaits this between its ``BUSY`` and ``READY`` frames)."""
        event = asyncio.Event()
        with self._cond:
            if self.queued_bytes <= self._server.queue_low_bytes:
                event.set()
            else:
                self._drain_waiters.append(event)
        return event

    def request(self, op: str) -> Future:
        """Enqueue a synchronous session operation (``results``,
        ``checkpoint``, ``close``, ``drain``) behind every pending
        batch; the worker fulfils the returned future."""
        fut: Future = Future()
        with self._cond:
            if op in ("close", "drain"):
                self.closing = True
            self._jobs.append((op, None, fut))
            self._cond.notify_all()
        return fut

    def serve_meta(self) -> dict:
        """The exact-accounting metadata riding every reply."""
        with self._cond:
            return {
                "session": self.name,
                "batches_in": self.batches_in,
                "records_in": self.records_in,
                "bytes_in": self.bytes_in,
                "shed_batches": self.shed_batches,
                "shed_records": self.shed_records,
                "busy_events": self.busy_events,
                "queued_bytes": self.queued_bytes,
                "checkpoints_written": self.checkpoints_written,
            }

    # -- worker side -----------------------------------------------------------

    def _worker(self) -> None:
        while True:
            with self._cond:
                while not self._jobs:
                    self._cond.wait()
                kind, arg, fut = self._jobs.popleft()
            if kind == "batch":
                self._ingest(*arg)
                continue
            if kind == "stop":
                return
            failed = False
            try:
                result = self._do_call(kind)
            except BaseException as exc:       # noqa: BLE001 - to the client
                failed = True
                fut.set_exception(exc)
            else:
                fut.set_result(result)
            if kind in ("close", "drain") or (kind == "open" and failed):
                self._fail_leftovers()
                return

    def _fail_leftovers(self) -> None:
        """The worker is exiting: jobs racing in behind the close must
        fail loudly, not hang their futures forever."""
        with self._cond:
            leftovers, self._jobs = list(self._jobs), deque()
        for _, _, fut in leftovers:
            if fut is not None:
                fut.set_exception(SessionError(
                    f"served session {self.name!r} closed while this "
                    f"request was queued behind the close"))

    def _ingest(self, table: ObservationTable, nbytes: int) -> None:
        try:
            self.session.ingest(table)
        except Exception as exc:
            with self._cond:
                self.error = f"{type(exc).__name__}: {exc}"
                self.error_cause = exc
        if self._server.ingest_delay:
            time.sleep(self._server.ingest_delay)
        with self._cond:
            self.queued_bytes -= nbytes
            self._cond.notify_all()
            if (self.queued_bytes <= self._server.queue_low_bytes
                    and self._drain_waiters):
                waiters, self._drain_waiters = self._drain_waiters, []
                loop = self._server._loop
                assert loop is not None   # set before any batch arrives
                loop.call_soon_threadsafe(_set_events, waiters)
        if self.error is None:
            self._maybe_checkpoint()

    def _maybe_checkpoint(self) -> None:
        every = self._server.checkpoint_every_batches
        self._since_checkpoint += 1
        if (every is not None and self._since_checkpoint >= every
                and self._server.checkpoint_dir is not None):
            self._since_checkpoint = 0
            self._write_checkpoint()

    def _write_checkpoint(self) -> str:
        ckpt_dir = self._server.checkpoint_dir
        assert ckpt_dir is not None       # both callers guard on it
        path = Path(ckpt_dir) / f"{self.name}.ckpt"
        tmp = path.with_suffix(".ckpt.tmp")
        tmp.write_bytes(self.session.checkpoint())
        os.replace(tmp, path)                 # atomic: no torn checkpoints
        with self._cond:
            self.checkpoints_written += 1
        return str(path)

    def _do_call(self, op: str) -> dict | None:
        if op == "open":
            self.session = self._server._open_session()
            return None
        self._check_error()
        if op == "results":
            report = self.session.results(
                include_invalid=self._server.include_invalid)
            return {"report": report, "serve": self.serve_meta()}
        if op == "checkpoint":
            return {"checkpoint": self.session.checkpoint(),
                    "serve": self.serve_meta()}
        if op == "close":
            report = self.session.close(
                include_invalid=self._server.include_invalid)
            return {"report": report, "serve": self.serve_meta()}
        if op == "drain":
            return self._drain()
        raise SessionError(f"unknown served-session op {op!r}")

    def _check_error(self) -> None:
        if self.error is not None:
            raise SessionError(
                f"served session {self.name!r} is broken — an ingest "
                f"failed ({self.error}); close it and open a new one "
                f"(or resume from its last checkpoint)"
            ) from self.error_cause

    def _drain(self) -> dict:
        """Graceful-shutdown finish: every queued batch has already
        been ingested (FIFO), so checkpoint, close, and summarize."""
        info = self.serve_meta()
        info["packets_ingested"] = self.session.packets_ingested
        if self.error is not None:
            # A poisoned session has no trustworthy state to checkpoint;
            # just release its resources and report the breakage (the
            # chained close error carries the original ingest failure).
            info["error"] = self.error
            try:
                self.session.close()
            except SessionError as exc:
                info["close_error"] = str(exc)
            return info
        if self._server.checkpoint_dir is not None:
            info["checkpoint"] = self._write_checkpoint()
            info["checkpoints_written"] = self.checkpoints_written
        report = self.session.close(
            include_invalid=self._server.include_invalid)
        info["result"] = report.result_name
        info["result_rows"] = len(report.result)
        return info


def _set_events(events: list[asyncio.Event]) -> None:
    for event in events:
        event.set()


class IngestServer:
    """Long-running ingest front end over one compiled
    :class:`~repro.telemetry.runtime.QueryEngine` (see the module
    docstring for the robustness contract).

    Args:
        engine: The compiled engine served sessions open on.
        host, port: TCP listen address (``port=0`` picks an ephemeral
            port).  Loopback only by design — the wire format trusts
            its peer.
        unix_path: Listen on a UNIX socket instead of TCP.
        window, shards, chunk_size, checkpoint_every, faults: Session
            knobs, passed to :meth:`QueryEngine.open` for every served
            session (``window`` is strongly recommended: it bounds
            memory and enables mid-stream ``RESULTS`` snapshots).
        max_sessions: Admission cap on live sessions.
        max_inflight_bytes: Admission cap on total queued batch bytes
            across sessions; new sessions are rejected above it, and
            existing connections are backpressured.
        queue_high_bytes / queue_low_bytes: Per-session backpressure
            watermarks (``BUSY`` above high, ``READY`` below low).
        shed: Drop-whole-batches load shedding instead of backpressure
            (exact accounting in every reply's ``serve`` metadata).
        idle_timeout: Seconds of connection silence before the server
            closes it (the session survives for a reconnect).
        checkpoint_dir: Directory for ``<session>.ckpt`` files —
            written every ``checkpoint_every_batches`` ingested batches
            and on drain.
        include_invalid: Forwarded to ``results()``/``close()``.
        ingest_delay: Test/bench knob — per-batch worker sleep
            emulating a slow consumer.
    """

    def __init__(self, engine: "QueryEngine", *,
                 host: str = "127.0.0.1", port: int = 0,
                 unix_path: str | Path | None = None,
                 window: int | None = None, shards: int | None = None,
                 chunk_size: int | None = None,
                 checkpoint_every: int | None = None,
                 faults: "FaultInjector | None" = None,
                 max_sessions: int = 8,
                 max_inflight_bytes: int = 256 << 20,
                 queue_high_bytes: int = 32 << 20,
                 queue_low_bytes: int | None = None,
                 shed: bool = False,
                 idle_timeout: float | None = None,
                 checkpoint_dir: str | Path | None = None,
                 checkpoint_every_batches: int | None = None,
                 include_invalid: bool = True,
                 ingest_delay: float = 0.0) -> None:
        if queue_low_bytes is None:
            queue_low_bytes = queue_high_bytes // 4
        if not 0 <= queue_low_bytes <= queue_high_bytes:
            raise ValueError(
                f"queue watermarks must satisfy 0 <= low <= high, got "
                f"low={queue_low_bytes} high={queue_high_bytes}")
        if max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1, got {max_sessions}")
        if checkpoint_every_batches is not None and checkpoint_dir is None:
            raise ValueError(
                "checkpoint_every_batches requires checkpoint_dir")
        self.engine = engine
        self._host, self._port, self._unix_path = host, port, unix_path
        self._open_kwargs: dict[str, Any] = dict(
            window=window, shards=shards,
            checkpoint_every=checkpoint_every, faults=faults)
        if chunk_size is not None:
            self._open_kwargs["chunk_size"] = chunk_size
        self.max_sessions = max_sessions
        self.max_inflight_bytes = max_inflight_bytes
        self.queue_high_bytes = queue_high_bytes
        self.queue_low_bytes = queue_low_bytes
        self.shed = shed
        self.idle_timeout = idle_timeout
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every_batches = checkpoint_every_batches
        self.include_invalid = include_invalid
        self.ingest_delay = ingest_delay
        self._sessions: dict[str, _ServedSession] = {}
        self._final: dict[str, dict] = {}
        self._rejected = 0
        self._idle_closed = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._drain_requested: asyncio.Event | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._tailers: list[tuple[TraceTailer, threading.Thread,
                                  threading.Event]] = []
        self._pending_tailers: list[tuple] = []
        self._address: str | tuple[str, int] | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._thread: threading.Thread | None = None
        self.drain_report: dict | None = None
        if checkpoint_dir is not None:
            Path(checkpoint_dir).mkdir(parents=True, exist_ok=True)

    def _open_session(self) -> Any:
        return self.engine.open(**self._open_kwargs)

    # -- lifecycle -------------------------------------------------------------

    @property
    def address(self) -> str | tuple[str, int] | None:
        """The bound listen address: ``(host, port)`` for TCP, the
        socket path string for UNIX — valid once started."""
        return self._address

    def start(self) -> str | tuple[str, int] | None:
        """Run the service on a background thread; returns the bound
        address once the socket is listening.  Pair with :meth:`stop`."""
        if self._thread is not None:
            raise SessionError("ingest server is already running")
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-serve", daemon=True)
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self._address

    def _request_drain(self) -> None:
        if self._drain_requested is not None:
            self._drain_requested.set()

    def stop(self, timeout: float = 60.0) -> dict | None:
        """Request a graceful drain (finish queued windows, checkpoint,
        close, report) and return the drain report."""
        if self._loop is not None:
            try:
                self._loop.call_soon_threadsafe(self._request_drain)
            except RuntimeError:             # loop already finished
                pass
        if self._thread is not None:
            self._thread.join(timeout)
        return self.drain_report

    def run_forever(self, signals: bool = True) -> dict:
        """Run in the foreground (the CLI path) until SIGTERM/SIGINT —
        or an external :meth:`stop` — triggers the graceful drain;
        returns the drain report."""
        loop = asyncio.new_event_loop()
        try:
            if signals:
                for signum in (signal.SIGTERM, signal.SIGINT):
                    loop.add_signal_handler(signum, self._request_drain)
            report = loop.run_until_complete(self._main(loop))
            self.drain_report = report
        finally:
            loop.close()
        return report

    def _thread_main(self) -> None:
        loop = asyncio.new_event_loop()
        try:
            self.drain_report = loop.run_until_complete(self._main(loop))
        except BaseException as exc:         # surface to start()
            self._startup_error = exc
        finally:
            self._ready.set()
            loop.close()

    async def _main(self, loop: asyncio.AbstractEventLoop) -> dict:
        self._loop = loop
        self._drain_requested = asyncio.Event()
        if self._unix_path is not None:
            server = await asyncio.start_unix_server(
                self._handle_conn, path=str(self._unix_path))
            self._address = str(self._unix_path)
        else:
            server = await asyncio.start_server(
                self._handle_conn, host=self._host, port=self._port)
            self._address = server.sockets[0].getsockname()[:2]
        for args in self._pending_tailers:
            self._start_tailer(*args)
        self._pending_tailers.clear()
        self._ready.set()
        async with server:
            await self._drain_requested.wait()
            server.close()
            await server.wait_closed()
        return await self._drain()

    async def _drain(self) -> dict:
        # 1. Tailers first: they stop feeding after a final catch-up
        #    read, so the drain checkpoint reflects the whole file.
        for tailer, thread, stop in self._tailers:
            stop.set()
        for tailer, thread, stop in self._tailers:
            await asyncio.get_running_loop().run_in_executor(
                None, thread.join)
        # 2. Cut the remaining connections (retrying clients see a
        #    clean EOF, not a half-served stream).
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        # 3. Drain every live session: FIFO ensures queued batches run
        #    before the checkpoint+close the drain op performs.
        report: dict = {"sessions": {}, "rejected": self._rejected,
                        "idle_closed": self._idle_closed,
                        "shed": self.shed}
        for name, served in list(self._sessions.items()):
            fut = served.request("drain")
            try:
                report["sessions"][name] = await asyncio.wrap_future(fut)
            except Exception as exc:         # noqa: BLE001 - report anyway
                report["sessions"][name] = {"error": str(exc)}
        for name, payload in self._final.items():
            info = dict(payload.get("serve", {}))
            info["closed"] = True
            report["sessions"].setdefault(name, info)
        self.drain_report = report
        return report

    # -- connections -----------------------------------------------------------

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        assert task is not None              # we are inside a task
        self._conn_tasks.add(task)
        try:
            await self._serve_conn(reader, writer)
        except asyncio.CancelledError:
            pass
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            pass                             # disconnects are routine
        finally:
            self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_conn(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        name: str | None = None
        while True:
            try:
                if self.idle_timeout is not None:
                    ftype, payload = await asyncio.wait_for(
                        wire.read_frame(reader), self.idle_timeout)
                else:
                    ftype, payload = await wire.read_frame(reader)
            except asyncio.TimeoutError:
                self._idle_closed += 1
                await self._send(writer, wire.T_ERROR, {
                    "reason": f"connection idle for {self.idle_timeout}s; "
                              f"closing (the session is still live — "
                              f"reconnect to continue)",
                    "fatal": False})
                return
            except FrameError as exc:
                # The stream may have lost frame sync; say why, drop
                # the connection, and let the client's seq resync
                # redeliver whatever the bad frame was carrying.
                await self._send(writer, wire.T_ERROR,
                                 {"reason": str(exc), "fatal": False})
                return
            if ftype == wire.T_HELLO:
                name = await self._handle_hello(writer, payload)
                if name is None:
                    return
            elif name is None:
                await self._send(writer, wire.T_ERROR, {
                    "reason": "protocol error: HELLO must precede "
                              "every other frame", "fatal": True})
                return
            elif ftype == wire.T_BATCH:
                if not await self._handle_batch(writer, name, payload):
                    return
            elif ftype in (wire.T_RESULTS, wire.T_CHECKPOINT, wire.T_CLOSE):
                await self._handle_call(writer, name, ftype)
            else:
                await self._send(writer, wire.T_ERROR, {
                    "reason": f"unexpected frame type {ftype}",
                    "fatal": True})
                return

    async def _handle_hello(self, writer: asyncio.StreamWriter,
                            payload: dict) -> str | None:
        name = str(payload.get("session", "default"))
        if name in self._final:
            # A finalized name stays addressable so a close() retry
            # whose reply was lost can re-fetch the stored report.
            await self._send(writer, wire.T_OK, {
                "session": name, "next_seq": None, "closed": True,
                "shed": self.shed})
            return name
        if name not in self._sessions:
            reason = self._admission_refusal()
            if reason is not None:
                self._rejected += 1
                await self._send(writer, wire.T_REJECT, {"reason": reason})
                return None
            served = _ServedSession(self, name)
            self._sessions[name] = served
            try:
                await asyncio.wrap_future(served.start())
            except Exception as exc:         # noqa: BLE001 - to the client
                del self._sessions[name]
                self._rejected += 1
                await self._send(writer, wire.T_REJECT, {
                    "reason": f"session open failed: {exc}",
                    "code": diagnostic_code(exc)})
                return None
        served = self._sessions[name]
        await self._send(writer, wire.T_OK, {
            "session": name, "next_seq": served.next_seq, "closed": False,
            "shed": self.shed})
        return name

    def _admission_refusal(self) -> str | None:
        if len(self._sessions) >= self.max_sessions:
            return (f"session limit reached ({self.max_sessions} live "
                    f"sessions); close one or raise max_sessions")
        inflight = sum(s.queued_bytes for s in self._sessions.values())
        if inflight >= self.max_inflight_bytes:
            return (f"overloaded: {inflight} bytes of batches in flight "
                    f"(limit {self.max_inflight_bytes}); retry later")
        return None

    async def _handle_batch(self, writer: asyncio.StreamWriter,
                            name: str, payload: dict) -> bool:
        served = self._sessions.get(name)
        if served is None:
            await self._send(writer, wire.T_ERROR, {
                "reason": f"session {name!r} is closed; its final report "
                          f"is still retrievable with CLOSE", "fatal": True})
            return False
        seq = payload["seq"]
        columns = payload["columns"]
        if seq < served.next_seq:
            # Duplicate delivery after a retry whose ack was lost: the
            # batch is already applied (or shed) — ack, don't re-ingest.
            await self._send(writer, wire.T_OK, {"seq": seq, "dup": True})
            return True
        if seq > served.next_seq:
            await self._send(writer, wire.T_ERROR, {
                "reason": f"out-of-order batch seq {seq} (expected "
                          f"{served.next_seq}); reconnect to resync",
                "fatal": True})
            return False
        table = ObservationTable.from_arrays(columns)
        status = served.try_enqueue(table, batch_nbytes(table.columns()),
                                    len(table))
        if status == "error":
            await self._send(writer, wire.T_ERROR, {
                "reason": f"session {name!r} is broken or closing "
                          f"({served.error or 'close in progress'})",
                "fatal": True})
            return False
        if status == "shed":
            await self._send(writer, wire.T_SHED,
                             {"seq": seq, "records": len(table)})
            return True
        total = sum(s.queued_bytes for s in self._sessions.values())
        if status == "ok" and not self.shed \
                and total >= self.max_inflight_bytes:
            # Global pressure backstop: this session is under its own
            # watermark but the service as a whole is not.
            with served._cond:
                served.busy_events += 1
            status = "busy"
        if status == "busy":
            await self._send(writer, wire.T_BUSY, {"seq": seq})
            # Stop reading this connection until the worker drains the
            # queue below the low watermark — the explicit credit stop.
            event = served.add_drain_waiter()
            await event.wait()
            await self._send(writer, wire.T_READY, {})
        else:
            await self._send(writer, wire.T_OK, {"seq": seq})
        return True

    async def _handle_call(self, writer: asyncio.StreamWriter,
                           name: str, ftype: int) -> None:
        op = {wire.T_RESULTS: "results", wire.T_CHECKPOINT: "checkpoint",
              wire.T_CLOSE: "close"}[ftype]
        if name in self._final:
            if op == "results":
                await self._send(writer, wire.T_ERROR, {
                    "reason": f"session {name!r} is closed; the final "
                              f"report is served by CLOSE", "fatal": True})
                return
            if op == "checkpoint":
                await self._send(writer, wire.T_ERROR, {
                    "reason": f"session {name!r} is closed; there is no "
                              f"state left to checkpoint", "fatal": True})
                return
            await self._send(writer, wire.T_RESULT, self._final[name])
            return
        served = self._sessions.get(name)
        if served is None:
            await self._send(writer, wire.T_ERROR, {
                "reason": f"unknown session {name!r}", "fatal": True})
            return
        fut = served.request(op)
        try:
            result = await asyncio.wrap_future(fut)
        except Exception as exc:             # noqa: BLE001 - to the client
            await self._send(writer, wire.T_ERROR,
                             {"reason": str(exc), "fatal": True})
            return
        if op == "close":
            self._final[name] = result
            del self._sessions[name]
        await self._send(writer, wire.T_RESULT, result)

    @staticmethod
    async def _send(writer: asyncio.StreamWriter,
                    ftype: int, payload: dict) -> None:
        writer.write(wire.pack_frame(ftype, payload))
        try:
            await writer.drain()
        except (ConnectionError, OSError):
            pass                              # peer is gone; reader notices

    # -- tailers ---------------------------------------------------------------

    def attach_tailer(self, path: str | Path, session: str = "tail",
                      batch_size: int = 4096,
                      poll_interval: float = 0.05) -> None:
        """Follow a CSV observation trace into a served session (before
        or after :meth:`start`); the tailer thread blocks at the
        session's high watermark, stops — after one final catch-up
        read — when the server drains."""
        args = (TraceTailer(path, batch_size=batch_size,
                            poll_interval=poll_interval), session)
        if self._loop is None:
            self._pending_tailers.append(args)
        else:
            self._loop.call_soon_threadsafe(self._start_tailer, *args)

    def _start_tailer(self, tailer: "TraceTailer", session: str) -> None:
        served = self._sessions.get(session)
        if served is None:
            served = _ServedSession(self, session)
            self._sessions[session] = served
            served.start()
        stop = threading.Event()
        thread = threading.Thread(
            target=self._tail_into, args=(tailer, served, stop),
            name=f"tail-{session}", daemon=True)
        self._tailers.append((tailer, thread, stop))
        thread.start()

    def _tail_into(self, tailer: "TraceTailer", served: _ServedSession,
                   stop: threading.Event) -> None:
        for table in tailer.batches(stop=stop):
            columns = table.columns()
            if not served.enqueue_local(table, batch_nbytes(columns),
                                        len(table), stop):
                return


class TraceTailer:
    """Follow a growing CSV observation trace, yielding columnar
    batches — the file-capture twin of the socket front end.

    The tailer is deliberately paranoid about the file underneath it
    (log rotation is normal operations, not an error):

    * a **partial last line** (the writer mid-``write``) is left in the
      file until its newline arrives — batches only ever carry whole
      records;
    * **truncation** (size shrank) reopens from the start — the writer
      restarted the file;
    * **rotation** (inode changed) finishes reading the old file, then
      follows the new one from its header;
    * a **missing file** is waited out (the writer may not have created
      it yet).

    Field parsing matches :func:`repro.traffic.trace_io.read_csv`
    exactly: unknown columns are ignored, missing ones default, so a
    tailed trace produces the same table an offline read would.
    """

    def __init__(self, path: str | Path, batch_size: int = 4096,
                 poll_interval: float = 0.05) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.path = Path(path)
        self.batch_size = batch_size
        self.poll_interval = poll_interval
        self.rotations = 0
        self.truncations = 0

    def batches(self, stop: threading.Event | None = None
                ) -> Iterator[ObservationTable]:
        """Generate :class:`ObservationTable` batches until ``stop`` is
        set (one final catch-up read runs first, so everything written
        before the stop is delivered)."""
        handle: IO[bytes] | None = None
        inode: int | None = None
        fields: list[str] | None = None
        pending = b""
        rows: list[PacketRecord] = []
        try:
            while True:
                final = stop is not None and stop.is_set()
                if handle is None:
                    handle, inode = self._try_open()
                    fields, pending = None, b""
                progressed = False
                if handle is not None:
                    chunk = handle.read()
                    if chunk:
                        progressed = True
                        pending += chunk
                        lines = pending.split(b"\n")
                        pending = lines.pop()    # partial tail, keep
                        for line in lines:
                            if not line.strip():
                                continue
                            if fields is None:
                                fields = self._header(line)
                            else:
                                rows.append(self._record(fields, line))
                    while len(rows) >= self.batch_size:
                        yield self._table(rows[:self.batch_size])
                        del rows[:self.batch_size]
                    if self._stale(handle, inode):
                        handle.close()
                        handle = None
                        continue                 # reopen immediately
                if not progressed:
                    if final:
                        if rows:
                            yield self._table(rows)
                        return
                    time.sleep(self.poll_interval)
        finally:
            if handle is not None:
                handle.close()

    def _try_open(self) -> tuple[IO[bytes] | None, int | None]:
        try:
            handle = open(self.path, "rb")
        except FileNotFoundError:
            return None, None
        try:
            return handle, os.fstat(handle.fileno()).st_ino
        except Exception:
            # the handle has no owner yet; a failed fstat (EBADF under
            # a racing rotation, resource pressure) must not leak it
            handle.close()
            raise

    def _stale(self, handle: IO[bytes], inode: int | None) -> bool:
        """True when the path no longer names the open file (rotation)
        or the file shrank beneath our read position (truncation)."""
        try:
            st = os.stat(self.path)
        except FileNotFoundError:
            return False                     # keep draining the old file
        if st.st_ino != inode:
            self.rotations += 1
            return True
        if st.st_size < handle.tell():
            self.truncations += 1
            return True
        return False

    @staticmethod
    def _header(line: bytes) -> list[str]:
        return next(csv.reader(io.StringIO(line.decode())))

    @staticmethod
    def _record(fields: list[str], line: bytes) -> PacketRecord:
        values = next(csv.reader(io.StringIO(line.decode())))
        kwargs: dict[str, Any] = {}
        for name, raw in zip(fields, values):
            if name not in RECORD_FIELDS:
                continue
            kwargs[name] = float(raw) if name == "tout" else int(float(raw))
        return PacketRecord(**kwargs)

    @staticmethod
    def _table(rows: list[PacketRecord]) -> ObservationTable:
        table = ObservationTable(list(rows))
        return ObservationTable.from_arrays(table.columns())
