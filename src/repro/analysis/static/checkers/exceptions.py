"""Exception-discipline checker (``RPR-C401``/``RPR-C402``).

``RPR-C401`` — a broad handler (``except:``, ``except Exception``,
``except BaseException``) that neither re-raises nor *records* the
exception can swallow a :class:`SessionError`/:class:`ShardError`
carrying real diagnosis (a failed shard, a corrupt checkpoint) without
a trace.  A handler is fine if it re-raises, binds the exception and
actually uses it, or captures the traceback
(``traceback.format_exc``/``print_exc``, ``sys.exc_info``,
``logging.exception``).

``RPR-C402`` — functions registered via ``signal.signal`` run between
two bytecodes of whatever the main thread was doing; acquiring a lock,
waiting, joining, sleeping, or opening files there can deadlock against
the interrupted frame.  Functions registered via ``atexit.register``
run during interpreter shutdown, where starting a new thread raises
``RuntimeError``.  Only the handler's *direct* body is checked — the
flag is for handlers that should set an event and get out.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.static.base import Finding, ModuleContext, checker
from repro.analysis.static.callgraph import collect_functions, own_nodes

_BROAD = frozenset({"Exception", "BaseException"})

#: Calls that count as "recording" the exception inside a handler.
_RECORDING_ATTRS = frozenset({
    "format_exc", "print_exc", "print_exception", "exc_info",
    "exception",
})

#: Blocking / lock-taking calls unsafe in a signal handler's direct
#: body.
_SIGNAL_UNSAFE_METHODS = frozenset({"acquire", "wait", "join"})


def _broad_caught(type_node: ast.expr | None) -> str | None:
    if type_node is None:
        return "<bare>"
    if isinstance(type_node, ast.Name) and type_node.id in _BROAD:
        return type_node.id
    if isinstance(type_node, ast.Tuple):
        for elt in type_node.elts:
            if isinstance(elt, ast.Name) and elt.id in _BROAD:
                return elt.id
    return None


def _handler_records(handler: ast.ExceptHandler) -> bool:
    for node in handler.body:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Raise):
                return True
            if (handler.name is not None and isinstance(sub, ast.Name)
                    and sub.id == handler.name
                    and isinstance(sub.ctx, ast.Load)):
                return True
            if (isinstance(sub, ast.Attribute)
                    and sub.attr in _RECORDING_ATTRS):
                return True
    return False


@checker("exception-discipline", codes=("RPR-C401", "RPR-C402"))
def check_exceptions(module: ModuleContext) -> Iterator[Finding]:
    # -- swallowed broad excepts -------------------------------------------
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Try):
            continue
        for handler in node.handlers:
            caught = _broad_caught(handler.type)
            if caught is None:
                continue
            if not _handler_records(handler):
                yield module.finding("RPR-C401", handler, caught=caught)

    # -- signal / atexit handler reentrancy --------------------------------
    functions = collect_functions(module.tree)
    module_level = {f.name: f for f in functions
                    if f.class_name is None and "." not in f.qualname}
    registered: list[tuple[str, str]] = []   # (kind, function name)
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)):
            continue
        if (func.value.id, func.attr) == ("signal", "signal") \
                and len(node.args) >= 2 \
                and isinstance(node.args[1], ast.Name):
            registered.append(("signal", node.args[1].id))
        elif (func.value.id, func.attr) == ("atexit", "register") \
                and node.args and isinstance(node.args[0], ast.Name):
            registered.append(("atexit", node.args[0].id))

    seen: set[tuple[str, str]] = set()
    for kind, fname in registered:
        if (kind, fname) in seen or fname not in module_level:
            continue
        seen.add((kind, fname))
        info = module_level[fname]
        for node in own_nodes(info.node):
            if not isinstance(node, ast.Call):
                continue
            label = _unsafe_call(node, kind)
            if label is not None:
                yield module.finding("RPR-C402", node, kind=kind,
                                     func=fname, call=label)


def _unsafe_call(call: ast.Call, kind: str) -> str | None:
    func = call.func
    if kind == "signal":
        if isinstance(func, ast.Name) and func.id == "open":
            return "open"
        if isinstance(func, ast.Attribute):
            if (isinstance(func.value, ast.Name)
                    and (func.value.id, func.attr) == ("time", "sleep")):
                return "time.sleep"
            if func.attr in _SIGNAL_UNSAFE_METHODS \
                    and not isinstance(func.value, ast.Constant):
                return f".{func.attr}"
            if (isinstance(func.value, ast.Name)
                    and func.value.id == "threading"
                    and func.attr in ("Lock", "RLock", "Condition")):
                return f"threading.{func.attr}"
        return None
    # atexit: starting threads during interpreter shutdown raises
    if isinstance(func, ast.Attribute) and func.attr == "Thread" \
            and isinstance(func.value, ast.Name) \
            and func.value.id == "threading":
        return "threading.Thread"
    if isinstance(func, ast.Name) and func.id == "Thread":
        return "Thread"
    return None
