"""PERF — durable sessions: checkpoint/restore overhead + crash recovery.

``TelemetrySession.checkpoint()`` serializes the full mid-stream state
(windowed carried residency, open epochs, fold accumulators, replay
rings, RNG counters) into a versioned, checksummed byte string;
``QueryEngine.resume()`` rebuilds the session and continues the stream
**bit-identically** to a run that never stopped — asserted here on
every run and in CI by the ``smoke`` tests, including after an injected
shard-worker SIGKILL recovered through the pool's journal replay.

The overhead bench streams the datacenter trace once uninterrupted and
once with a checkpoint taken (and a fresh session resumed from it)
mid-stream, and records both runtimes into ``BENCH_durability.json``.
The acceptance ceiling: the checkpointed+resumed run must finish within
``MAX_OVERHEAD``x of the uninterrupted one.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.network.records import ObservationTable
from repro.switch.kvstore.cache import CacheGeometry
from repro.telemetry.faults import FaultInjector, FaultPlan
from repro.telemetry.runtime import QueryEngine

GEOMETRY = CacheGeometry.set_associative(512, ways=8)
WINDOW = 1 << 15
CHUNK = 8192
MAX_OVERHEAD = 1.25
QUERY = "SELECT COUNT, SUM(pkt_len) GROUPBY srcip"

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_durability.json"


def observables(report):
    return (
        {q: t.rows for q, t in report.tables.items()},
        {q: (s.accesses, s.hits, s.misses, s.insertions, s.evictions)
         for q, s in report.cache_stats.items()},
        report.backing_writes,
        report.accuracy,
    )


def chunked(table: ObservationTable, size: int):
    columns = table.columns()
    for lo in range(0, len(table), size):
        yield ObservationTable.from_arrays(
            {name: arr[lo:lo + size] for name, arr in columns.items()})


def slice_from(table: ObservationTable, lo: int) -> ObservationTable:
    return ObservationTable.from_arrays(
        {name: arr[lo:] for name, arr in table.columns().items()})


def run_uninterrupted(engine, table, shards=None, faults=None,
                      checkpoint_every=None):
    session = engine.open(window=WINDOW, shards=shards, faults=faults,
                          checkpoint_every=checkpoint_every)
    for batch in chunked(table, CHUNK):
        session.ingest(batch)
    return session.close(include_invalid=True)


def run_with_checkpoint(engine, table, cut, shards=None):
    """Stream to ``cut``, checkpoint, abandon, resume, stream the rest —
    the full save/kill/restore cycle a durable driver performs."""
    session = engine.open(window=WINDOW, shards=shards)
    for batch in chunked(slice_from(table, 0), CHUNK):
        if session.packets_ingested >= cut:
            break
        session.ingest(batch)
    snapshot = session.checkpoint()
    session.close()  # the "crash": this session's state is discarded
    resumed = engine.resume(snapshot)
    for batch in chunked(slice_from(table, resumed.packets_ingested), CHUNK):
        resumed.ingest(batch)
    return snapshot, resumed.close(include_invalid=True)


# -- smoke (CI): tiny trace, 2 shards, injected worker kill -------------------

def _tiny_trace() -> ObservationTable:
    from repro.traffic.datacenter import DatacenterConfig, DatacenterWorkload

    workload = DatacenterWorkload(DatacenterConfig(
        n_flows=30, duration_ns=5_000_000, seed=5))
    return ObservationTable.from_arrays(
        workload.observation_table().columns())


def test_smoke_checkpoint_resume_bit_identical():
    table = _tiny_trace()
    engine = QueryEngine(QUERY, geometry=GEOMETRY)
    base = observables(run_uninterrupted(engine, table))
    _, got = run_with_checkpoint(engine, table, cut=len(table) // 2)
    assert observables(got) == base


def test_smoke_crash_recovery_bit_identical():
    """2 shards, one injected SIGKILL: the pool respawns the worker,
    restores its periodic checkpoint, replays the journal — results
    identical to a clean run."""
    table = _tiny_trace()
    engine = QueryEngine(QUERY, geometry=GEOMETRY)
    base = observables(run_uninterrupted(engine, table))
    injector = FaultInjector(FaultPlan(kill_posts={0: {2}}))
    got = run_uninterrupted(engine, table, shards=2, faults=injector,
                            checkpoint_every=4)
    assert [e[0] for e in injector.events] == ["kill"], \
        "scheduled worker kill never fired"
    assert observables(got) == base


# -- overhead: checkpoint+resume vs uninterrupted -----------------------------

@pytest.fixture(scope="module")
def durability(report, dc_trace):
    table = ObservationTable.from_arrays(dc_trace.columns())
    engine = QueryEngine(QUERY, geometry=GEOMETRY)
    cut = len(table) // 2

    start = time.perf_counter()
    base = observables(run_uninterrupted(engine, table))
    plain_s = time.perf_counter() - start

    start = time.perf_counter()
    snapshot, got = run_with_checkpoint(engine, table, cut=cut)
    durable_s = time.perf_counter() - start
    assert observables(got) == base, "resumed run diverged"

    overhead = durable_s / plain_s
    payload = {
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "cpu_count": os.cpu_count() or 1,
        "records": len(table),
        "window": WINDOW,
        "chunk": CHUNK,
        "geometry": GEOMETRY.describe(),
        "query": QUERY,
        "cut": cut,
        "snapshot_bytes": len(snapshot),
        "uninterrupted_seconds": round(plain_s, 4),
        "checkpoint_resume_seconds": round(durable_s, 4),
        "overhead": round(overhead, 4),
        "max_overhead": MAX_OVERHEAD,
    }
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")

    report("PERF: durable sessions (checkpoint/restore overhead)", "\n".join([
        f"{len(table)} records, window {WINDOW}, chunk {CHUNK}, "
        f"cut at {cut}",
        f"  uninterrupted      {plain_s:7.3f}s",
        f"  checkpoint+resume  {durable_s:7.3f}s  "
        f"({overhead:.3f}x, snapshot {len(snapshot) / 1024:.1f} KiB)",
        f"artifact: {ARTIFACT.name}",
    ]))
    return payload


def test_durability_overhead_ceiling(durability):
    """Checkpoint+restore mid-stream costs <= 1.25x the uninterrupted
    runtime (the save/restore cycle re-buys one engine spin-up plus the
    serialization itself)."""
    assert durability["overhead"] <= MAX_OVERHEAD, durability
