"""Property-based tests (hypothesis): the split store equals ground truth.

The central §3.2 claim — for linear-in-state folds, merging evicted
values preserves exactness regardless of when evictions happen — is
checked here over randomly generated packet streams and randomly tiny
caches (maximising eviction pressure), for a pool of linear fold
programs spanning all three merge strategies.
"""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compiler import CompileOptions, compile_program
from repro.core.interpreter import Interpreter
from repro.core.parser import parse_program
from repro.core.semantics import resolve_program
from repro.switch.kvstore.cache import CacheGeometry
from repro.switch.pipeline import SwitchPipeline
from repro.telemetry.results import compare_tables

from tests.conftest import make_record

#: Linear fold programs: (source, params) — additive, scale, matrix,
#: multi-fold, predicated-increment, and history-coefficient cases.
LINEAR_PROGRAMS = [
    ("SELECT COUNT, SUM(pkt_len) GROUPBY srcip", {}),
    ("def ewma (e, (tin, tout)): e = (1 - alpha) * e + alpha * (tout - tin)\n"
     "SELECT srcip, ewma GROUPBY srcip", {"alpha": 0.3}),
    ("def f ((a, b), pkt_len):\n"
     "    a = a + b\n"
     "    b = b + pkt_len\n"
     "SELECT srcip, f GROUPBY srcip", {}),
    ("def perc ((tot, high), qin):\n"
     "    if qin > K: high = high + 1\n"
     "    tot = tot + 1\n"
     "SELECT srcip, perc GROUPBY srcip", {"K": 10}),
    ("def g (s, (pkt_len, qin)):\n"
     "    if qin > 5 then s = 2 * s + pkt_len else s = s + 1\n"
     "SELECT srcip, g GROUPBY srcip", {}),
]

HISTORY_PROGRAM = (
    "def outofseq ((lastseq, oos), (tcpseq, payload_len)):\n"
    "    if lastseq + 1 != tcpseq: oos = oos + 1\n"
    "    lastseq = tcpseq + payload_len\n"
    "SELECT srcip, outofseq GROUPBY srcip"
)


@st.composite
def packet_streams(draw):
    """A stream of records over a handful of flows, adversarially
    interleaved by hypothesis."""
    n = draw(st.integers(min_value=1, max_value=120))
    n_flows = draw(st.integers(min_value=1, max_value=6))
    records = []
    t = 0
    for i in range(n):
        flow = draw(st.integers(min_value=0, max_value=n_flows - 1))
        t += draw(st.integers(min_value=1, max_value=50))
        records.append(make_record(
            srcip=flow, pkt_id=i, tin=t,
            tout=float(t + draw(st.integers(min_value=1, max_value=1000))),
            pkt_len=draw(st.integers(min_value=40, max_value=1500)),
            payload_len=draw(st.integers(min_value=0, max_value=1460)),
            tcpseq=draw(st.integers(min_value=0, max_value=10_000)),
            qin=draw(st.integers(min_value=0, max_value=30)),
        ))
    return records


def run_both(source, params, records, capacity, ways, exact_history=False):
    rp = resolve_program(parse_program(source))
    truth = Interpreter(rp, params=params).run_result(records)
    program = compile_program(rp, CompileOptions(exact_history=exact_history))
    if ways == 0:
        geometry = CacheGeometry.fully_associative(capacity)
    elif ways == 1:
        geometry = CacheGeometry.hash_table(capacity)
    else:
        capacity = max(ways, capacity // ways * ways)
        geometry = CacheGeometry.set_associative(capacity, ways=ways)
    pipeline = SwitchPipeline(program, params=params, geometry=geometry)
    pipeline.run(records)
    hardware = pipeline.results()[rp.result]
    return hardware, truth


@settings(max_examples=40, deadline=None)
@given(
    stream=packet_streams(),
    program_index=st.integers(min_value=0, max_value=len(LINEAR_PROGRAMS) - 1),
    capacity=st.integers(min_value=1, max_value=8),
    ways=st.sampled_from([0, 1, 2]),
)
def test_linear_folds_are_exact_under_any_eviction_schedule(
        stream, program_index, capacity, ways):
    source, params = LINEAR_PROGRAMS[program_index]
    hardware, truth = run_both(source, params, stream, capacity, ways)
    diff = compare_tables(hardware, truth, rel_tol=1e-9, abs_tol=1e-6)
    assert diff.key_complete, diff.describe()
    assert diff.exact, diff.describe()


@settings(max_examples=25, deadline=None)
@given(stream=packet_streams(), capacity=st.integers(min_value=1, max_value=6))
def test_history_fold_exact_with_replay_extension(stream, capacity):
    hardware, truth = run_both(HISTORY_PROGRAM, {}, stream, capacity, ways=1,
                               exact_history=True)
    diff = compare_tables(hardware, truth, abs_tol=1e-9)
    assert diff.exact, diff.describe()


@settings(max_examples=25, deadline=None)
@given(stream=packet_streams(), capacity=st.integers(min_value=1, max_value=6))
def test_history_fold_error_is_bounded_by_eviction_count(stream, capacity):
    """Without the replay extension the paper's merge may miscount the
    first packet of each epoch: |error| ≤ number of epochs."""
    rp = resolve_program(parse_program(HISTORY_PROGRAM))
    truth = Interpreter(rp).run_result(stream).by_key()
    program = compile_program(rp)
    pipeline = SwitchPipeline(program, geometry=CacheGeometry.hash_table(capacity))
    pipeline.run(stream)
    store = pipeline.store_for(rp.result)
    hardware = store.result_table().by_key()
    for key, hw_row in hardware.items():
        t_row = truth[key]
        error = abs(hw_row["outofseq.oos"] - t_row["outofseq.oos"])
        epochs = store.backing.data[key].epochs
        assert error <= epochs


@settings(max_examples=20, deadline=None)
@given(stream=packet_streams())
def test_nonlinear_valid_keys_report_exact_values(stream):
    """§3.2: for non-linear folds, keys never evicted-and-reinserted
    stay valid and their reported value must equal ground truth."""
    source = (
        "def nonmt ((maxseq, nm), tcpseq):\n"
        "    if maxseq > tcpseq: nm = nm + 1\n"
        "    maxseq = max(maxseq, tcpseq)\n"
        "SELECT srcip, nonmt GROUPBY srcip"
    )
    rp = resolve_program(parse_program(source))
    truth = Interpreter(rp).run_result(stream).by_key()
    pipeline = SwitchPipeline(compile_program(rp),
                              geometry=CacheGeometry.hash_table(2))
    pipeline.run(stream)
    hardware = pipeline.results()[rp.result].by_key()  # valid keys only
    for key, row in hardware.items():
        assert row["nonmt.nm"] == truth[key]["nonmt.nm"]
        assert row["nonmt.maxseq"] == truth[key]["nonmt.maxseq"]


@settings(max_examples=20, deadline=None)
@given(stream=packet_streams(),
       seed_a=st.integers(min_value=0, max_value=2**32 - 1),
       seed_b=st.integers(min_value=0, max_value=2**32 - 1))
def test_results_independent_of_hash_seed(stream, seed_a, seed_b):
    """Merged results must not depend on cache hash placement."""
    source, params = LINEAR_PROGRAMS[0]
    rp = resolve_program(parse_program(source))
    program = compile_program(rp)
    tables = []
    for seed in (seed_a, seed_b):
        pipeline = SwitchPipeline(
            program, params=params,
            geometry=CacheGeometry.set_associative(8, ways=2), seed=seed)
        pipeline.run(stream)
        tables.append(pipeline.results()[rp.result])
    diff = compare_tables(tables[0], tables[1], abs_tol=1e-9)
    assert diff.exact, diff.describe()
