"""Backing-store tests: merge path, segment lists, validity (§3.2)."""

import pytest

from repro.core.compiler import compile_program
from repro.core.merge_synthesis import init_aux
from repro.core.parser import parse_program
from repro.core.semantics import resolve_program
from repro.switch.kvstore.backing import BackingStore


def stage_for(source):
    rp = resolve_program(parse_program(source))
    return compile_program(rp).groupby_stages[0]


COUNT_STAGE = "SELECT COUNT GROUPBY srcip"
MAX_STAGE = "SELECT MAX(tcpseq) GROUPBY srcip"
MIXED_STAGE = "SELECT COUNT, MAX(tcpseq) GROUPBY srcip"


def absorb(store, stage, key, **values):
    state = {}
    aux = {}
    for fold in stage.folds:
        var = fold.instance.state_vars[0]
        state[fold.column] = {var: values[fold.column]}
        aux[fold.column] = init_aux(fold.merge)
    store.absorb(key, state, aux)


class TestMergeablePath:
    def test_single_eviction(self):
        stage = stage_for(COUNT_STAGE)
        store = BackingStore(stage.folds)
        absorb(store, stage, (1,), COUNT=5)
        assert store.value_of((1,), "COUNT") == {"COUNT": 5}
        assert store.is_valid((1,))

    def test_two_evictions_merge(self):
        stage = stage_for(COUNT_STAGE)
        store = BackingStore(stage.folds)
        absorb(store, stage, (1,), COUNT=5)
        absorb(store, stage, (1,), COUNT=3)
        assert store.value_of((1,), "COUNT") == {"COUNT": 8}
        assert store.is_valid((1,))          # mergeable keys never invalid
        assert store.writes == 2


class TestNonMergeablePath:
    def test_single_segment_is_valid(self):
        stage = stage_for(MAX_STAGE)
        store = BackingStore(stage.folds)
        absorb(store, stage, (1,), **{"MAX(tcpseq)": 100})
        assert store.is_valid((1,))
        assert store.value_of((1,), "MAX(tcpseq)") == {"MAX(tcpseq)": 100}

    def test_multiple_segments_invalidate(self):
        stage = stage_for(MAX_STAGE)
        store = BackingStore(stage.folds)
        absorb(store, stage, (1,), **{"MAX(tcpseq)": 100})
        absorb(store, stage, (1,), **{"MAX(tcpseq)": 50})
        assert not store.is_valid((1,))
        assert store.value_of((1,), "MAX(tcpseq)") is None

    def test_segments_remain_readable(self):
        """§3.2: 'each value in the list is correct over a specific
        time interval' — invalid keys still expose their segments."""
        stage = stage_for(MAX_STAGE)
        store = BackingStore(stage.folds)
        absorb(store, stage, (1,), **{"MAX(tcpseq)": 100})
        absorb(store, stage, (1,), **{"MAX(tcpseq)": 50})
        segments = store.segments_of((1,), "MAX(tcpseq)")
        assert [s["MAX(tcpseq)"] for s in segments] == [100, 50]

    def test_validity_stats(self):
        stage = stage_for(MAX_STAGE)
        store = BackingStore(stage.folds)
        absorb(store, stage, (1,), **{"MAX(tcpseq)": 1})
        absorb(store, stage, (2,), **{"MAX(tcpseq)": 2})
        absorb(store, stage, (2,), **{"MAX(tcpseq)": 3})
        valid, total = store.validity_stats()
        assert (valid, total) == (1, 2)
        assert store.accuracy == pytest.approx(0.5)


class TestMixedStage:
    def test_linear_fold_merges_while_nonlinear_segments(self):
        stage = stage_for(MIXED_STAGE)
        store = BackingStore(stage.folds)
        absorb(store, stage, (1,), COUNT=5, **{"MAX(tcpseq)": 10})
        absorb(store, stage, (1,), COUNT=2, **{"MAX(tcpseq)": 20})
        assert store.value_of((1,), "COUNT") == {"COUNT": 7}
        assert store.value_of((1,), "MAX(tcpseq)") is None
        assert not store.is_valid((1,))     # the non-linear fold poisons it

    def test_empty_store_accuracy_is_one(self):
        stage = stage_for(MIXED_STAGE)
        store = BackingStore(stage.folds)
        assert store.accuracy == 1.0
        assert len(store) == 0
