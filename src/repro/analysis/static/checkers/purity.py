"""Checkpoint-state purity checker (``RPR-C301``/``RPR-C302``).

The whole durability story (PR 7) rests on checkpoint payloads being
*plain data*: dicts/lists/arrays/scalars that pickle, travel through a
shard pipe, and replay bit-identically.  A lock, thread, socket,
process handle, live session object, lambda, or generator smuggled
into a ``checkpoint_state()`` dict either fails to pickle at the worst
possible moment (mid-checkpoint, after the journal was truncated) or
— worse — pickles something that cannot be meaningfully restored.

This checker walks every function named ``checkpoint_state`` /
``checkpoint`` / ``_checkpoint_payload`` and classifies the values of
each dict it builds (literals, comprehensions, and
``payload[...] = value`` stores):

* lambdas, generator expressions, references to module functions, and
  bare ``self`` are flagged as ``RPR-C301`` (not data at all);
* attribute reads whose name names a runtime handle
  (``self._lock``, ``self._thread``, ``self._sock``, ...) are flagged
  as ``RPR-C302`` — the heuristic is the attribute's snake_case
  segments, so ``self._evict_counts`` passes while ``self._cond``
  does not.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.static.base import Finding, ModuleContext, checker
from repro.analysis.static.callgraph import collect_functions, own_nodes

#: Functions whose return payloads must be plain data.
_CHECKPOINT_NAMES = frozenset({
    "checkpoint_state", "checkpoint", "_checkpoint_payload",
})

#: snake_case segments that name runtime handles, not data.
_HANDLE_SEGMENTS = frozenset({
    "lock", "locks", "mutex", "rlock", "cond", "condition",
    "thread", "threads", "sock", "socket", "sockets", "conn",
    "connection", "connections", "proc", "process", "processes",
    "pool", "pools", "executor", "executors", "shm", "loop",
    "future", "futures", "fut", "handle", "handles", "fh", "fd",
    "server", "client", "writer", "reader", "timer", "timers",
    "task", "tasks", "sem", "semaphore",
})

#: Constructors whose results are runtime handles.
_HANDLE_CONSTRUCTORS = frozenset({
    ("threading", "Lock"), ("threading", "RLock"),
    ("threading", "Condition"), ("threading", "Event"),
    ("threading", "Semaphore"), ("threading", "BoundedSemaphore"),
    ("threading", "Thread"), ("socket", "socket"),
})


def _handle_attr(attr: str) -> bool:
    return any(seg in _HANDLE_SEGMENTS
               for seg in attr.lower().strip("_").split("_"))


def _attr_text(node: ast.Attribute) -> str:
    parts = [node.attr]
    value = node.value
    while isinstance(value, ast.Attribute):
        parts.append(value.attr)
        value = value.value
    if isinstance(value, ast.Name):
        parts.append(value.id)
    return ".".join(reversed(parts))


def _classify(value: ast.expr, module_funcs: set[str],
              ) -> tuple[str, dict[str, object]] | None:
    """``(code, context)`` when ``value`` is not plain data."""
    if isinstance(value, ast.Lambda):
        return "RPR-C301", {"what": "a lambda"}
    if isinstance(value, ast.GeneratorExp):
        return "RPR-C301", {"what": "a generator expression"}
    if isinstance(value, ast.Name):
        if value.id == "self":
            return "RPR-C301", {"what": "the live object itself"}
        if value.id in module_funcs:
            return "RPR-C301", {
                "what": f"a reference to function {value.id}()"}
        return None
    if isinstance(value, ast.Attribute):
        if _handle_attr(value.attr):
            return "RPR-C302", {"attr": _attr_text(value)}
        return None
    if isinstance(value, ast.Call):
        func = value.func
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and (func.value.id, func.attr) in _HANDLE_CONSTRUCTORS):
            return "RPR-C302", {
                "attr": f"{func.value.id}.{func.attr}(...)"}
        if isinstance(func, ast.Name) and func.id == "open":
            return "RPR-C302", {"attr": "open(...)"}
        return None
    if isinstance(value, ast.IfExp):
        return (_classify(value.body, module_funcs)
                or _classify(value.orelse, module_funcs))
    if isinstance(value, (ast.List, ast.Tuple, ast.Set)):
        for elt in value.elts:
            bad = _classify(elt, module_funcs)
            if bad:
                return bad
        return None
    if isinstance(value, ast.ListComp):
        return _classify(value.elt, module_funcs)
    if isinstance(value, ast.DictComp):
        return _classify(value.value, module_funcs)
    # nested ast.Dict literals are visited by the outer walk directly
    return None


def _key_repr(key: ast.expr | None) -> str:
    if isinstance(key, ast.Constant):
        return repr(key.value)
    return "<dynamic>" if key is None else ast.unparse(key)


@checker("checkpoint-purity", codes=("RPR-C301", "RPR-C302"))
def check_purity(module: ModuleContext) -> Iterator[Finding]:
    module_funcs = {f.name for f in collect_functions(module.tree)
                    if f.class_name is None}
    for info in collect_functions(module.tree):
        if info.name not in _CHECKPOINT_NAMES:
            continue
        for node in own_nodes(info.node):
            entries: list[tuple[ast.expr | None, ast.expr]] = []
            if isinstance(node, ast.Dict):
                entries = list(zip(node.keys, node.values))
            elif isinstance(node, ast.DictComp):
                entries = [(node.key, node.value)]
            elif (isinstance(node, ast.Assign)
                  and len(node.targets) == 1
                  and isinstance(node.targets[0], ast.Subscript)):
                entries = [(node.targets[0].slice, node.value)]
            for key, value in entries:
                bad = _classify(value, module_funcs)
                if bad is None:
                    continue
                code, context = bad
                yield module.finding(code, value,
                                     key=_key_repr(key), **context)
