"""Result-comparison utilities.

Used by tests and the accuracy benches to compare hardware-path results
(backing store after merges) against reference-interpreter ground
truth, row by row and column by column.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.interpreter import ResultTable


@dataclass
class TableDiff:
    """Difference between a hardware table and its ground truth."""

    missing_keys: int = 0          # in truth, absent from hardware
    extra_keys: int = 0            # in hardware, absent from truth
    compared_cells: int = 0
    exact_cells: int = 0
    max_abs_error: float = 0.0
    max_rel_error: float = 0.0
    worst_column: str | None = None

    @property
    def key_complete(self) -> bool:
        return self.missing_keys == 0 and self.extra_keys == 0

    @property
    def exact(self) -> bool:
        return self.key_complete and self.exact_cells == self.compared_cells

    @property
    def cell_accuracy(self) -> float:
        if self.compared_cells == 0:
            return 1.0
        return self.exact_cells / self.compared_cells

    def describe(self) -> str:
        return (
            f"keys: -{self.missing_keys}/+{self.extra_keys}; "
            f"cells exact {self.exact_cells}/{self.compared_cells}; "
            f"max |err| {self.max_abs_error:.3g} "
            f"(rel {self.max_rel_error:.3g}, col {self.worst_column})"
        )


def compare_tables(hardware: ResultTable, truth: ResultTable,
                   rel_tol: float = 1e-9, abs_tol: float = 1e-9) -> TableDiff:
    """Compare two keyed tables cell-by-cell.

    Cells are "exact" when within ``rel_tol``/``abs_tol`` (the EWMA
    merge reassociates floating-point arithmetic, so bitwise equality
    is not expected even for correct merges).

    When both tables are columnar (vector-engine output), the
    comparison runs directly on the numpy columns — no per-row dict
    materialisation; the counters and error extrema are the same the
    row path produces.
    """
    if hardware.is_columnar and truth.is_columnar:
        diff = _compare_columnar(hardware, truth, rel_tol, abs_tol)
        if diff is not None:
            return diff
    diff = TableDiff()
    hw_rows = hardware.by_key()
    truth_rows = truth.by_key()
    diff.missing_keys = sum(1 for k in truth_rows if k not in hw_rows)
    diff.extra_keys = sum(1 for k in hw_rows if k not in truth_rows)

    key_cols = set(truth.schema.key_columns)
    for key, t_row in truth_rows.items():
        h_row = hw_rows.get(key)
        if h_row is None:
            continue
        for column, t_val in t_row.items():
            if column in key_cols or column not in h_row:
                continue
            h_val = h_row[column]
            diff.compared_cells += 1
            err = _abs_error(h_val, t_val)
            rel = err / max(abs(t_val), 1e-300) if not math.isnan(err) else math.inf
            if err <= abs_tol or rel <= rel_tol:
                diff.exact_cells += 1
            if err > diff.max_abs_error:
                diff.max_abs_error = err
                diff.worst_column = column
            diff.max_rel_error = max(diff.max_rel_error, rel)
    return diff


def _compare_columnar(hardware: ResultTable, truth: ResultTable,
                      rel_tol: float, abs_tol: float) -> TableDiff | None:
    """Column-wise comparison of two columnar tables; ``None`` when the
    column storage is not plain numeric arrays (caller falls back to
    the row path)."""
    if not truth.schema.keyed or not hardware.schema.keyed:
        return None
    h_cols, t_cols = hardware.columns(), truth.columns()
    key_cols = list(truth.schema.key_columns)
    value_cols = [name for name in t_cols
                  if name not in key_cols and name in h_cols]
    needed = [(h_cols, n) for n in key_cols + value_cols] + \
             [(t_cols, n) for n in key_cols + value_cols]
    for cols, name in needed:
        arr = cols.get(name)
        if not (isinstance(arr, np.ndarray) and arr.dtype.kind in "iuf"):
            return None

    diff = TableDiff()
    # Duplicate keys collapse with the *last* row winning, exactly like
    # the row path's by_key() dict.
    h_index = {key: i for i, key in enumerate(
        zip(*(h_cols[k].tolist() for k in key_cols)))} if len(hardware) \
        else {}
    t_index = {key: i for i, key in enumerate(
        zip(*(t_cols[k].tolist() for k in key_cols)))} if len(truth) \
        else {}
    diff.missing_keys = sum(1 for k in t_index if k not in h_index)
    diff.extra_keys = sum(1 for k in h_index if k not in t_index)
    matched = [(t_i, h_index[k]) for k, t_i in t_index.items()
               if k in h_index]
    if not matched or not value_cols:
        return diff
    t_idx = np.fromiter((m[0] for m in matched), dtype=np.int64,
                        count=len(matched))
    h_idx = np.fromiter((m[1] for m in matched), dtype=np.int64,
                        count=len(matched))
    for name in value_cols:
        t_raw, h_raw = t_cols[name][t_idx], h_cols[name][h_idx]
        if t_raw.dtype.kind in "iu" and h_raw.dtype.kind in "iu":
            # Integer columns difference exactly in int64 — a float64
            # cast would collapse differences beyond 2^53 to "exact".
            # Same-sign pairs can never overflow the subtraction;
            # mixed-sign pairs can, so those fall back to the float
            # estimate (approximate only at magnitudes where the
            # difference dwarfs any tolerance anyway).
            h64 = h_raw.astype(np.int64)
            t64 = t_raw.astype(np.int64)
            with np.errstate(over="ignore"):
                err = np.abs(h64 - t64).astype(np.float64)
            mixed = (h64 < 0) != (t64 < 0)
            if mixed.any():
                err[mixed] = np.abs(h64[mixed].astype(np.float64) -
                                    t64[mixed].astype(np.float64))
            rel = err / np.maximum(np.abs(t64.astype(np.float64)),
                                   1e-300)
        else:
            t_val = t_raw.astype(np.float64, copy=False)
            h_val = h_raw.astype(np.float64, copy=False)
            with np.errstate(invalid="ignore"):
                err = np.abs(h_val - t_val)
                # Matching infinities count as exact (the row path's
                # _abs_error); inf - inf is NaN otherwise.
                same_inf = np.isinf(h_val) & np.isinf(t_val) & \
                    ((h_val > 0) == (t_val > 0))
                err[same_inf] = 0.0
                rel = err / np.maximum(np.abs(t_val), 1e-300)
            rel[np.isnan(err)] = math.inf
        diff.compared_cells += len(err)
        diff.exact_cells += int(np.count_nonzero(
            (err <= abs_tol) | (rel <= rel_tol)))
        finite = err[~np.isnan(err)]
        col_max = float(finite.max()) if len(finite) else 0.0
        if col_max > diff.max_abs_error:
            diff.max_abs_error = col_max
            diff.worst_column = name
        rel_finite = rel[~np.isnan(rel)]
        if len(rel_finite):
            diff.max_rel_error = max(diff.max_rel_error,
                                     float(rel_finite.max()))
    return diff


def _abs_error(a: float, b: float) -> float:
    if math.isinf(a) and math.isinf(b) and (a > 0) == (b > 0):
        return 0.0
    try:
        return abs(a - b)
    except TypeError:
        return math.inf


def assert_tables_match(hardware: ResultTable, truth: ResultTable,
                        rel_tol: float = 1e-9, abs_tol: float = 1e-9) -> None:
    """Raise ``AssertionError`` with a readable diff when tables differ."""
    diff = compare_tables(hardware, truth, rel_tol=rel_tol, abs_tol=abs_tol)
    assert diff.exact, f"tables differ: {diff.describe()}"
