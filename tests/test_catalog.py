"""Catalog tests: every Fig. 2 query compiles, runs, and matches the
paper's linearity column; planted conditions are detected."""

import pytest

from repro.queries.catalog import ALL_QUERIES, FIG2_QUERIES, get
from repro.switch.kvstore.cache import CacheGeometry
from repro.telemetry.results import compare_tables
from repro.telemetry.runtime import QueryEngine

from tests.conftest import synthetic_trace

GEOM = CacheGeometry.set_associative(64, ways=8)


@pytest.fixture(scope="module")
def trace():
    return synthetic_trace(n_packets=4000, n_flows=40, drop_rate=0.03)


class TestEveryEntry:
    @pytest.mark.parametrize("entry", ALL_QUERIES.values(),
                             ids=lambda e: e.name)
    def test_compiles(self, entry):
        engine = QueryEngine(entry.source, params=entry.default_params,
                             geometry=GEOM)
        assert engine.compiled is not None

    @pytest.mark.parametrize("entry", ALL_QUERIES.values(),
                             ids=lambda e: e.name)
    def test_linearity_matches_fig2_column(self, entry):
        engine = QueryEngine(entry.source, params=entry.default_params,
                             geometry=GEOM)
        assert engine.info().fully_linear == entry.linear_in_state

    @pytest.mark.parametrize("entry", ALL_QUERIES.values(),
                             ids=lambda e: e.name)
    def test_runs_end_to_end(self, entry, trace):
        engine = QueryEngine(entry.source, params=entry.default_params,
                             geometry=GEOM)
        report = engine.run(trace.records)
        result = report.result
        for column in entry.result_columns:
            assert result.schema.resolve(column) is not None, column

    @pytest.mark.parametrize(
        "entry", [e for e in FIG2_QUERIES if e.linear_in_state],
        ids=lambda e: e.name)
    def test_linear_queries_match_ground_truth(self, entry, trace):
        engine = QueryEngine(entry.source, params=entry.default_params,
                             geometry=CacheGeometry.set_associative(16, ways=4),
                             exact_history=True)
        report = engine.run(trace.records, with_ground_truth=True)
        truth = report.ground_truth[report.result_name]
        if report.result.schema.keyed:
            diff = compare_tables(report.result, truth, rel_tol=1e-6)
            assert diff.exact, f"{entry.name}: {diff.describe()}"
        else:
            assert len(report.result) == len(truth)


class TestDetection:
    def test_loss_rate_finds_lossy_flows(self, trace):
        entry = get("per_flow_loss_rate")
        engine = QueryEngine(entry.source, geometry=GEOM)
        report = engine.run(trace.records)
        dropped_flows = {
            (r.srcip, r.dstip, r.srcport, r.dstport, r.proto)
            for r in trace if r.dropped
        }
        reported = {
            (row["srcip"], row["dstip"], row["srcport"], row["dstport"],
             row["proto"]) for row in report.result
        }
        assert reported == dropped_flows
        for row in report.result:
            assert 0 < row["loss_rate"] <= 1

    def test_high_p99_finds_deep_queues(self):
        # Queue 0 sees depths of 50, queue 1 stays shallow.
        from tests.conftest import make_record
        records = []
        for i in range(1000):
            records.append(make_record(pkt_id=i, qid=0, tin=i,
                                       qin=50 if i % 50 else 55))
            records.append(make_record(pkt_id=i + 1000, qid=1, tin=i, qin=1))
        entry = get("high_p99_queue_size")
        engine = QueryEngine(entry.source, params={"K": 20}, geometry=GEOM)
        report = engine.run(records)
        assert [row["qid"] for row in report.result] == [0]

    def test_high_latency_counts(self, trace):
        entry = get("per_flow_high_latency")
        engine = QueryEngine(entry.source, params={"L": 1_000_000},
                             geometry=GEOM)
        report = engine.run(trace.records, with_ground_truth=True)
        diff = compare_tables(report.result,
                              report.ground_truth[report.result_name])
        assert diff.exact, diff.describe()
