"""Network-wide query deployment: one pipeline per switch.

The language is defined over observations from *every* queue in the
network (§2), but each physical switch only sees its own queues.  This
module deploys a compiled program onto every switch of a simulated
network — each switch runs its own cache + backing store over its local
observations — and combines per-switch results in the collection layer:

* **cross-switch-combinable folds** — those whose state update is
  *commutative across streams* (identity matrix ``A``, i.e. counters
  and sums, even history-dependent ones like ``outofseq``): per-switch
  values are merged additively into one network-wide row per key, which
  is exact regardless of how a flow's packets interleaved across
  switches;
* everything else (EWMA and other order-dependent folds, non-linear
  folds): the network-wide value depends on the cross-switch packet
  order, which no per-switch decomposition preserves, so results stay
  *per (key, switch)* — still exactly what an operator wants for
  "which queue hurts this flow".

Execution rides the same :class:`~repro.telemetry.session.TelemetrySession`
protocol as single-switch runs: :meth:`NetworkDeployment.open` yields a
:class:`NetworkSession` holding one per-switch session; batches are
routed to the owning switch (vectorized for columnar tables) and
``results()``/``close()`` combine the per-switch reports.
:meth:`NetworkDeployment.run` is the one-shot wrapper over it.

This mirrors the paper's deployment story (queries are installed on
switches; results are pulled from backing stores) one step further
than the single-switch evaluation of §4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from repro.core.ast_nodes import Program
from repro.core.errors import CheckpointError, SessionClosedError, SessionError
from repro.core.eval_expr import Numeric
from repro.core.interpreter import ResultTable, Row
from repro.network.records import ObservationTable, PacketRecord
from repro.network.simulator import NetworkSimulator
from repro.switch.pipeline import DEFAULT_GEOMETRY, GeometrySpec
from repro.telemetry.runtime import QueryEngine
from repro.telemetry.session import TelemetrySession


@dataclass
class NetworkRunReport:
    """Results of a network-wide deployment."""

    combined: dict[str, ResultTable]       # query -> network-wide table
    per_switch: dict[str, dict[str, ResultTable]]  # switch -> query -> table
    combinable: dict[str, bool]            # query -> combined exactly?

    def result(self, query_name: str) -> ResultTable:
        return self.combined[query_name]


class NetworkDeployment:
    """Installs one compiled program on every switch of a topology.

    Args:
        source: Query text or a built :class:`Program`.
        simulator: The network whose switches observe traffic.  Each
            switch is identified by its node name; observations are
            routed to the switch owning the observed queue.
        params, geometry, policy, seed, exact_history, engine: as in
            :class:`repro.telemetry.runtime.QueryEngine`.
    """

    def __init__(
        self,
        source: str | Program,
        simulator: NetworkSimulator,
        params: Mapping[str, Numeric] | None = None,
        geometry: GeometrySpec = DEFAULT_GEOMETRY,
        policy: str = "lru",
        seed: int = 0,
        exact_history: bool = False,
        engine: str = "auto",
    ):
        self.engine = QueryEngine(source, params=params, geometry=geometry,
                                  policy=policy, seed=seed,
                                  exact_history=exact_history, engine=engine)
        self.resolved = self.engine.resolved
        self.compiled = self.engine.compiled
        self.params = self.engine.params
        self.simulator = simulator
        self._queue_owner = {
            qid: edge[0] for edge, qid in simulator.topology._qids.items()
        }
        self._session: NetworkSession | None = None

    # -- execution -----------------------------------------------------------

    def open(self, window: int | None = None,
             shards: int | None = None,
             checkpoint_every: int | None = None,
             faults=None) -> "NetworkSession":
        """Open one streaming session per switch; batches ingested into
        the returned :class:`NetworkSession` are routed to the switch
        owning each observation's queue.  The most recently opened
        session backs :meth:`cache_stats`.

        ``shards`` runs the per-switch sessions in that many worker
        processes, one switch per shard round-robin — the switch is the
        natural sharding unit: its session already owns a disjoint
        slice of the observation stream (queue ownership), and
        :meth:`NetworkSession.ingest`'s composite sort routes to it
        unchanged.  Per-switch reports — and therefore the combined
        report — are bit-identical to the unsharded deployment.

        ``checkpoint_every`` enables shard-worker crash recovery and
        ``faults`` threads a deterministic fault injector into the
        transport, exactly as in :meth:`QueryEngine.open`."""
        self._session = NetworkSession(self, window=window, shards=shards,
                                       checkpoint_every=checkpoint_every,
                                       faults=faults)
        return self._session

    def resume(self, snapshot: bytes,
               checkpoint_every: int | None = None,
               faults=None) -> "NetworkSession":
        """Rebuild a mid-stream network session from a
        :meth:`NetworkSession.checkpoint` byte string — the deployment
        (program, params, geometry, knobs, *and topology*) must match
        the one that saved it."""
        from repro.telemetry.checkpoint import unpack_checkpoint

        payload = unpack_checkpoint(snapshot)
        kind = payload.get("kind")
        if kind == "session":
            raise CheckpointError(
                "this is a single-session checkpoint; resume it with "
                "QueryEngine.resume()")
        if kind != "network":
            raise CheckpointError(
                f"not a network checkpoint (kind={kind!r})")
        if payload.get("config") != self.engine._config_fingerprint():
            raise CheckpointError(
                "checkpoint was produced by a differently configured "
                "deployment (queries, params, geometry, policy, seed, "
                "and the refresh/engine knobs must all match)")
        session = self.open(window=payload["window"],
                            shards=payload["shards"],
                            checkpoint_every=checkpoint_every,
                            faults=faults)
        if session._switch_order != payload["switches"]:
            raise CheckpointError(
                "checkpoint was taken on a different topology (the "
                "switch set does not match); resume on the same "
                "simulated network")
        if payload["sharded"]:
            if session._pool is None:
                raise CheckpointError(
                    "snapshot was taken with a sharded deployment; "
                    "resume with the same shards= setting")
            session._pool.restore_workers(payload["workers"])
        else:
            if session._pool is not None:
                raise CheckpointError(
                    "snapshot was taken without shards; resume with "
                    "shards=None")
            for switch, sess_payload in payload["sessions"].items():
                session.sessions[switch]._restore_payload(sess_payload)
        self._session = session
        return session

    def run(self, records: Iterable[PacketRecord]) -> NetworkRunReport:
        """One-shot wrapper over :meth:`open`: route each observation
        to the switch owning its queue, then collect and combine
        results."""
        session = self.open()
        session.ingest(records)
        return session.close()

    # -- combination ------------------------------------------------------------

    @staticmethod
    def _stage_combinable(stage) -> bool:
        """Exact cross-switch combination requires every fold's ``A``
        to be the identity (stream-commutative accumulation)."""
        return all(f.linearity.linear and f.linearity.matrix_kind == "identity"
                   for f in stage.folds)

    def _combine_additive(self, stage, per_switch) -> ResultTable:
        key_fields = stage.key.fields
        inits = {
            f.column: f.instance.initial_state() for f in stage.folds
        }
        merged_rows: dict[tuple, Row] = {}
        for tables in per_switch.values():
            for row in tables[stage.query_name].rows:
                key = tuple(row[k] for k in key_fields)
                target = merged_rows.get(key)
                if target is None:
                    merged_rows[key] = dict(row)
                    continue
                for col in stage.output.columns:
                    if col.kind != "agg":
                        continue
                    init = inits[col.fold].get(col.state_var, 0)
                    target[col.name] += row[col.name] - init
        out = ResultTable(schema=stage.output)
        out.rows = list(merged_rows.values())
        return out

    @staticmethod
    def _tag_per_switch(stage, per_switch) -> ResultTable:
        """Non-combinable stages: union of rows with a ``switch``
        column appended (per-queue truth, not a network total)."""
        out = ResultTable(schema=stage.output)
        for switch, tables in per_switch.items():
            for row in tables[stage.query_name].rows:
                tagged = dict(row)
                tagged["switch"] = switch
                out.rows.append(tagged)
        return out

    # -- statistics -------------------------------------------------------------

    def cache_stats(self) -> dict[str, dict[str, object]]:
        """Counters of the most recently opened session ( ``{}`` before
        any :meth:`open`).  Once that session is closed this raises
        :class:`~repro.core.errors.SessionClosedError` like every other
        post-close read — final counters live on the close() reports."""
        if self._session is None:
            return {}
        return self._session.cache_stats()


class _NetworkShardRole:
    """Worker-side role of a sharded network deployment: runs the
    (unsharded) :class:`TelemetrySession` of every switch assigned to
    this worker.  The engine object is inherited at fork — compiled
    programs and closures ship for free, nothing is pickled."""

    def __init__(self, engine: QueryEngine, window: int | None):
        self._engine = engine
        self._window = window
        self._sessions: dict[str, TelemetrySession] = {}
        self._reports: dict[str, object] = {}

    def _session(self, switch: str) -> TelemetrySession:
        session = self._sessions.get(switch)
        if session is None:
            session = self._engine.open(window=self._window)
            self._sessions[switch] = session
        return session

    def handle(self, op: str, meta, arrays):
        switch = meta["switch"]
        if op == "ingest_cols":
            self._session(switch).ingest(ObservationTable.from_arrays(arrays))
            return None
        if op == "ingest_rows":
            self._session(switch).ingest(meta["records"])
            return None
        if op == "results":
            return self._session(switch).results()
        if op == "close":
            # Idempotent so a partially-failed NetworkSession.close()
            # retry re-collects already-finalized switches.
            report = self._reports.get(switch)
            if report is None:
                report = self._session(switch).close()
                self._reports[switch] = report
            return report
        if op == "cache_stats":
            return self._session(switch).cache_stats()
        raise ValueError(f"unknown network shard op {op!r}")

    # -- durable checkpoints (pool-internal __checkpoint__/__restore__) ------

    def checkpoint(self) -> dict:
        """Plain-data snapshot of every switch session living in this
        worker, plus any already-collected close() reports (so a crash
        mid-close keeps its idempotency).  Closed sessions carry no
        state — their contribution is the stored final report."""
        return {
            "sessions": {switch: session._checkpoint_payload()
                         for switch, session in self._sessions.items()
                         if not session.closed},
            "reports": dict(self._reports),
        }

    def restore(self, state: dict) -> None:
        for switch, payload in state["sessions"].items():
            session = self._engine.open(window=self._window)
            session._restore_payload(payload)
            self._sessions[switch] = session
        self._reports = dict(state["reports"])
        return None


class _RemoteSwitchSession:
    """Parent-side handle of one switch's session living in a shard
    worker — the same surface :class:`NetworkSession` drives on
    in-process :class:`TelemetrySession` objects."""

    def __init__(self, pool, worker: int, switch: str):
        self._pool = pool
        self._worker = worker
        self._switch = switch

    def ingest(self, batch) -> "_RemoteSwitchSession":
        if isinstance(batch, ObservationTable) and batch.is_columnar:
            columns = batch.columns()
            if all(not np.asarray(arr).dtype.hasobject
                   for arr in columns.values()):
                self._pool.post(self._worker, "ingest_cols",
                                {"switch": self._switch}, columns)
                return self
            batch = batch.records
        self._pool.post(self._worker, "ingest_rows",
                        {"switch": self._switch, "records": list(batch)})
        return self

    def results(self):
        return self._pool.call(self._worker, "results",
                               {"switch": self._switch})

    def submit_close(self):
        return self._pool.submit(self._worker, "close",
                                 {"switch": self._switch})

    def close(self):
        return self._pool.result(self.submit_close())

    def cache_stats(self):
        return self._pool.call(self._worker, "cache_stats",
                               {"switch": self._switch})


class NetworkSession:
    """Streaming ingest across a deployment's switches: one
    :class:`TelemetrySession` per switch, batches routed by queue
    ownership, reports combined exactly like the one-shot path.

    With ``shards`` the per-switch sessions run inside a
    :class:`~repro.telemetry.shard_exec.ShardWorkerPool`, one switch
    per worker round-robin; all routing, combining, and close/retry
    semantics are unchanged (a dead worker surfaces as
    :class:`~repro.telemetry.shard_exec.ShardError`).
    """

    def __init__(self, deployment: NetworkDeployment,
                 window: int | None = None, shards: int | None = None,
                 checkpoint_every: int | None = None, faults=None):
        self.deployment = deployment
        self.window = window
        self.shards = shards
        switches = list(deployment.simulator.topology.switches())
        self._pool = None
        self._broken: str | None = None
        self._broken_cause: BaseException | None = None
        if shards is not None and switches:
            if shards < 1:
                raise ValueError(
                    f"shards must be a positive worker count, got "
                    f"{shards!r}")
            from repro.telemetry.shard_exec import ShardWorkerPool

            n_workers = min(shards, len(switches))
            self._pool = ShardWorkerPool(
                [_NetworkShardRole(deployment.engine, window)
                 for _ in range(n_workers)],
                name="netshard", checkpoint_every=checkpoint_every,
                faults=faults)
            self.sessions = {
                switch: _RemoteSwitchSession(self._pool, i % n_workers,
                                             switch)
                for i, switch in enumerate(switches)
            }
        else:
            self.sessions: dict[str, TelemetrySession] = {
                switch: deployment.engine.open(window=window)
                for switch in switches
            }
        self._switch_order = list(self.sessions)
        owners = deployment._queue_owner
        max_qid = max(owners, default=-1)
        index = {s: i for i, s in enumerate(self._switch_order)}
        self._owner_index = np.full(max_qid + 1, -1, dtype=np.int64)
        for qid, owner in owners.items():
            self._owner_index[qid] = index[owner]
        self._closed = False
        #: Per-switch close() reports already collected — close() is
        #: retryable after a partial failure (a later switch's close
        #: raising must not orphan the ones that already finalized).
        self._switch_reports: dict[str, object] = {}

    def __enter__(self) -> "NetworkSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        # Mirrors TelemetrySession.__exit__: close only on clean exit,
        # never suppress an in-flight exception.
        if not self._closed and exc_type is None:
            self.close()
        return False

    # -- ingestion ------------------------------------------------------------

    def ingest(self, batch: Iterable[object]) -> "NetworkSession":
        """Route one batch of observations to the owning switches
        (vectorized split for columnar tables; observations from
        unmonitored queues are dropped, as in the one-shot path).

        Columnar batches are split with a **single** composite sort of
        ``(owner, position)`` plus one ``searchsorted`` for the
        per-switch segment bounds — one pass over the batch regardless
        of fabric size, instead of one boolean mask per switch.  The
        low sort bits are the arrival positions, so each switch's
        segment is in arrival order: the split is bit-identical to
        per-switch ``owner == i`` masking."""
        if self._closed:
            raise SessionClosedError(
                "network session is closed; open a new one with "
                "NetworkDeployment.open()")
        self._check_broken()
        if self._switch_reports:
            raise SessionClosedError(
                "network session is partially closed (an earlier "
                "close() failed midway); retry close() instead of "
                "ingesting")
        try:
            return self._route(batch)
        except Exception as exc:
            # Fail fast: some switches may have absorbed the batch and
            # others not, so the combined view can no longer be
            # trusted (per-switch ShardError/SessionError poisoning
            # already covers the switch that raised).
            self._broken = f"{type(exc).__name__}: {exc}"
            self._broken_cause = exc
            raise

    def _check_broken(self) -> None:
        if self._broken is not None:
            raise SessionError(
                f"network session is broken — an earlier ingest() "
                f"failed ({self._broken}) after routing part of a "
                f"batch; close() this session and open a new one (or "
                f"resume from the last checkpoint() with "
                f"NetworkDeployment.resume())") from self._broken_cause

    def _route(self, batch: Iterable[object]) -> "NetworkSession":
        if isinstance(batch, ObservationTable) and batch.is_columnar:
            if not len(self._owner_index):
                return self        # no monitored queues
            columns = batch.columns()
            qid = columns["qid"]
            valid = (qid >= 0) & (qid < len(self._owner_index))
            clipped = np.clip(qid, 0, len(self._owner_index) - 1)
            owner = np.where(valid, self._owner_index[clipped], -1)
            comp = (owner << np.int64(32)) | np.arange(len(owner),
                                                       dtype=np.int64)
            comp.sort()
            sorted_owner = comp >> np.int64(32)    # -1 first (unmonitored)
            positions = comp & np.int64(0xFFFFFFFF)
            bounds = np.searchsorted(
                sorted_owner, np.arange(len(self._switch_order) + 1))
            for i, switch in enumerate(self._switch_order):
                lo, hi = bounds[i], bounds[i + 1]
                if hi > lo:
                    sel = positions[lo:hi]
                    self.sessions[switch].ingest(ObservationTable.from_arrays(
                        {name: arr[sel] for name, arr in columns.items()}))
            return self
        per_switch: dict[str, list] = {}
        owners = self.deployment._queue_owner
        for record in batch:
            owner = owners.get(record.qid)
            if owner is None:
                continue
            per_switch.setdefault(owner, []).append(record)
        for switch, records in per_switch.items():
            self.sessions[switch].ingest(records)
        return self

    # -- results --------------------------------------------------------------

    def results(self) -> NetworkRunReport:
        """Combined mid-stream snapshot (requires per-switch stores
        that support streaming reads — a ``window`` or the row
        engine).  Raises
        :class:`~repro.core.errors.SessionClosedError` once closed,
        like :class:`~repro.telemetry.session.TelemetrySession`; the
        final report is the one :meth:`close` returned."""
        if self._closed:
            raise SessionClosedError(
                "network session is closed; the final report is the "
                "close() return value")
        self._check_broken()
        # After a partial close() failure, already-finalized switches
        # answer from their stored final reports (their sessions would
        # raise); the rest snapshot live.
        return self._combine({
            switch: self._switch_reports.get(switch) or session.results()
            for switch, session in self.sessions.items()
        })

    def close(self) -> NetworkRunReport:
        """Close every per-switch session and return the combined
        final report; any further call raises
        :class:`~repro.core.errors.SessionClosedError`.

        If one switch's close fails, the already-finalized switches'
        reports are kept and a retry resumes with the remaining
        sessions instead of tripping over the closed ones."""
        if self._closed:
            raise SessionClosedError("network session is already closed")
        if self._broken is not None:
            self._closed = True
            if self._pool is not None:
                self._pool.close()
            raise SessionError(
                f"closing a broken network session (an earlier "
                f"ingest() failed: {self._broken}); its partial state "
                f"was discarded — open a new session, or resume from "
                f"the last checkpoint()") from self._broken_cause
        if self._pool is not None:
            # Submit every pending close before collecting the first
            # result so the switch finalizations run concurrently
            # across the shard workers (the worker-side close is
            # idempotent, preserving partial-failure retries).
            handles = {
                switch: session.submit_close()
                for switch, session in self.sessions.items()
                if switch not in self._switch_reports
            }
            for switch, handle in handles.items():
                self._switch_reports[switch] = self._pool.result(handle)
        else:
            for switch, session in self.sessions.items():
                if switch not in self._switch_reports:
                    self._switch_reports[switch] = session.close()
        report = self._combine(self._switch_reports)
        self._closed = True
        if self._pool is not None:
            self._pool.close()
        return report

    def _combine(self, reports) -> NetworkRunReport:
        deployment = self.deployment
        on_switch = [s.query_name for s in
                     deployment.compiled.select_stages +
                     deployment.compiled.groupby_stages]
        per_switch = {
            switch: {name: report.tables[name] for name in on_switch}
            for switch, report in reports.items()
        }
        combined: dict[str, ResultTable] = {}
        combinable: dict[str, bool] = {}
        for stage in deployment.compiled.groupby_stages:
            name = stage.query_name
            combinable[name] = deployment._stage_combinable(stage)
            if combinable[name]:
                combined[name] = deployment._combine_additive(stage, per_switch)
            else:
                combined[name] = deployment._tag_per_switch(stage, per_switch)
        for stage in deployment.compiled.select_stages:
            merged = ResultTable(schema=stage.output)
            for tables in per_switch.values():
                merged.rows.extend(tables[stage.query_name].rows)
            combined[stage.query_name] = merged
            combinable[stage.query_name] = True
        return NetworkRunReport(combined=combined, per_switch=per_switch,
                                combinable=combinable)

    # -- durable checkpoints ---------------------------------------------------

    def checkpoint(self) -> bytes:
        """Serialize every per-switch session into one composite,
        checksummed checkpoint.  Feed it to
        :meth:`NetworkDeployment.resume` on an identically configured
        deployment (same program, knobs, and topology) to continue the
        stream bit-identically; the session itself keeps streaming."""
        if self._closed:
            raise SessionClosedError(
                "network session is closed; there is no state left to "
                "checkpoint")
        self._check_broken()
        if self._switch_reports:
            raise SessionError(
                "network session is partially closed (an earlier "
                "close() failed midway); retry close() instead of "
                "checkpointing")
        from repro.telemetry.checkpoint import pack_checkpoint

        payload = {
            "kind": "network",
            "config": self.deployment.engine._config_fingerprint(),
            "window": self.window,
            "shards": self.shards,
            "switches": list(self._switch_order),
            "sharded": self._pool is not None,
        }
        if self._pool is not None:
            payload["workers"] = self._pool.checkpoint_workers()
        else:
            payload["sessions"] = {
                switch: session._checkpoint_payload()
                for switch, session in self.sessions.items()
            }
        return pack_checkpoint(payload)

    # -- statistics ------------------------------------------------------------

    def cache_stats(self) -> dict[str, dict[str, object]]:
        """Per-switch, per-stage cache counters so far.  Raises
        :class:`~repro.core.errors.SessionClosedError` once closed
        (consistent with every other post-close read)."""
        if self._closed:
            raise SessionClosedError(
                "network session is closed; read cache stats before "
                "close(), or from the per-switch close() reports")
        return {
            switch: (self._switch_reports[switch].cache_stats
                     if switch in self._switch_reports
                     else session.cache_stats())
            for switch, session in self.sessions.items()
        }
