"""Windowed vectorized split store: bounded-memory streaming execution.

:class:`~repro.switch.kvstore.vector_store.VectorSplitStore` defers all
work to ``finalize()`` because the replacement schedule is a function of
the *whole* key stream — memory grows with the stream.  This module
executes the same schedule-driven machinery **window by window** with
carried state, so peak memory is bounded by the window (plus per-key
results), while every observable stays **bit-identical** to the one-shot
store and to the per-packet row store, for *any* window partitioning:

1. **Carried residency.** The cache's replacement state at a window
   boundary is summarised and replayed into the next window's schedule:

   * LRU / direct-mapped (``m == 1``, any policy — one slot per bucket
     makes the policies indistinguishable): by the LRU inclusion
     property, the resident keys of a set are exactly its ``m`` most
     recently accessed distinct keys, in recency order.  Prepending one
     *phantom access* per resident key (per set, oldest → newest) to
     the window's stream reconstructs the exact replacement state, so
     the unmodified
     :meth:`~repro.switch.kvstore.vector_cache.VectorCacheSim.miss_schedule`
     over the augmented stream yields the continuation's exact hit/miss
     flags.  Eviction counts fall out of per-set occupancy arithmetic
     (``max(0, occupancy + misses - m)`` per set), and the next
     boundary's residency is read off the augmented stream's per-set
     most-recent keys.
   * FIFO / random: the packed per-set array replay of the one-shot
     engine (:func:`repro.switch.kvstore.vector_cache._replay_segments`)
     with its per-set ring buffers, occupancy, and counter-based RNG
     counters carried across windows — one gather/replay/scatter per
     window, no per-access Python.  Degenerate geometries with too few
     sets for the step-major replay to win keep a per-access reference
     scheduler (:class:`_ReplayWindowScheduler`).

2. **Carried open epochs.** A key's current cache-residency epoch can
   span windows.  Its partial fold state (and merge registers) is
   carried — in per-key *arrays* for the vectorizable merge classes
   (additive, scale, non-mergeable value segments), in per-key dicts
   for the sequential ones (full-matrix, exact history) — and injected
   as the initial per-epoch state of the next window's segmented fold
   evaluation (``init_override`` in :mod:`repro.core.vector_exec`);
   accumulations and round updates then perform the same scalar
   operations in the same order as an uncut epoch, so results are
   bit-identical.  An epoch closes — and is absorbed into the backing
   store, in per-key chronological order — when its key misses again,
   when a periodic-refresh boundary passes (global positions), or when
   the key is found non-resident at a window boundary (its next access,
   if any, must miss, so the epoch is provably complete).  Open-epoch
   state is therefore bounded by the cache capacity.

3. **Carried merges.** The all-plain-additive fast path keeps per-key
   accumulator arrays (one ``np.add.at`` per window over global key
   ids) instead of a materialised backing store; the general path
   absorbs into a real :class:`BackingStore` as epochs close.  Window
   keys map to persistent global ids with one ``searchsorted`` over a
   sorted view of the known unique keys — no per-access Python.

Differential tests (``tests/test_session.py``) assert bit-identical
tables, counters, accuracy, writes, and refresh counts against both the
row store and the one-shot vector store across the query catalog,
multiple window sizes, and refresh intervals that cut mid-window.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import Mapping

import numpy as np

from repro.core.errors import CheckpointError, HardwareError
from repro.core.eval_expr import Numeric
from repro.core.interpreter import ResultTable
from repro.core.merge_synthesis import AuxState, State
from repro.core.plan import FoldConfig, GroupByStage
from repro.core.vector_exec import (
    ArrayContext,
    GroupLayout,
    VectorizationError,
    as_column,
    eval_array,
    factorize,
)

from .backing import BackingStore, KeyEntry
from .cache import CacheGeometry, CacheStats, replay_victim
from .vector_cache import _FILLER, _SKIP_BLOCK_START, VectorCacheSim, \
    _replay_segments, mix_key_array
from .split import build_result_table
from .vector_store import VectorSplitStore, _FoldCont, _copy_aux

#: Default window: large enough to amortise the per-window vector work,
#: small enough that a few windows of columns stay cache-friendly.
DEFAULT_WINDOW = 1 << 17

#: Minimum bucket count for the packed FIFO/random window scheduler:
#: its step-major replay advances every set in parallel, so geometries
#: with fewer sets than this keep the per-access reference scheduler
#: (a fully associative cache is a single set — there is nothing to
#: parallelise across).  Tests monkeypatch it to force either
#: scheduler.
PACKED_WINDOW_MIN_SETS = 16

_U = np.uint64


@dataclass
class StoreSnapshot:
    """Mid-stream observable state, as if the stream ended now."""

    table: ResultTable
    stats: CacheStats
    backing_writes: int
    accuracy: float


class _ArrayCont:
    """Array-backed epoch continuation (the windowed store's carried
    open-epoch arrays) — same interface as
    :class:`~repro.switch.kvstore.vector_store._FoldCont`, with the
    per-epoch dict lists materialised only on the replay fallback."""

    __slots__ = ("eids", "gids", "_state", "_P", "_fold")

    def __init__(self, eids: np.ndarray, gids: np.ndarray,
                 state: dict[str, np.ndarray],
                 P: dict[str, np.ndarray] | None, fold: FoldConfig):
        self.eids = eids
        self.gids = gids
        self._state = state
        self._P = P
        self._fold = fold

    def __len__(self) -> int:
        return len(self.eids)

    def p_values(self, var: str) -> np.ndarray:
        return self._P[var][self.gids]

    def override(self, fold: FoldConfig, n_groups: int,
                 variables) -> dict[str, np.ndarray]:
        out: dict[str, np.ndarray] = {}
        for var in variables:
            init = fold.instance.inits.get(var, 0)
            arr = np.full(n_groups, init,
                          dtype=np.float64 if isinstance(init, float)
                          else np.int64)
            vals = self._state[var][self.gids]
            dtype = np.result_type(arr.dtype, vals.dtype)
            if dtype != arr.dtype:
                arr = arr.astype(dtype)
            arr[self.eids] = vals
            out[var] = arr
        return out

    # Replay fallback only: per-epoch scalar dicts.

    @property
    def states(self) -> list[State]:
        lists = {var: arr[self.gids].tolist()
                 for var, arr in self._state.items()}
        return [{var: vals[i] for var, vals in lists.items()}
                for i in range(len(self.gids))]

    @property
    def auxes(self) -> list[AuxState]:
        if self._P is None:
            return [{} for _ in range(len(self.gids))]
        lists = {var: arr[self.gids].tolist()
                 for var, arr in self._P.items()}
        return [{"P": {var: vals[i] for var, vals in lists.items()}}
                for i in range(len(self.gids))]


class _LruWindowScheduler:
    """Carried-residency scheduler for LRU and direct-mapped caches
    (any policy when ``m == 1``).  See the module docstring, item 1."""

    def __init__(self, geometry: CacheGeometry, policy: str, seed: int):
        self.geometry = geometry
        self.policy = policy
        self.seed = seed
        self._res_keys: np.ndarray | None = None   # (r, k) key columns
        self._res_gids = np.zeros(0, dtype=np.int64)

    def schedule(self, keys2d: np.ndarray, gid: np.ndarray,
                 ) -> tuple[np.ndarray, int, np.ndarray]:
        """Miss flags (stream order), eviction count, and the resident
        key ids after this window."""
        geometry = self.geometry
        n_buckets, m = geometry.n_buckets, geometry.m_slots
        r = len(self._res_gids)
        if r:
            aug_keys = np.concatenate([self._res_keys, keys2d])
            aug_gid = np.concatenate([self._res_gids, gid])
        else:
            aug_keys, aug_gid = keys2d, gid
        n_aug = len(aug_gid)
        sim = VectorCacheSim(aug_keys, seed=self.seed, key_ids=aug_gid)
        miss = sim.miss_schedule(geometry, policy=self.policy)[r:]

        if n_buckets == 1:
            buckets = np.zeros(n_aug, dtype=np.int64)
        else:
            buckets = (sim._hash() % _U(n_buckets)).astype(np.int64)

        # Evictions: LRU occupancy only grows (an eviction replaces),
        # so per set they are max(0, occupancy_before + misses - m).
        miss_b = buckets[r:][miss]
        if not len(miss_b):
            evictions = 0
        elif n_buckets <= 1 << 22:
            occ = np.bincount(buckets[:r], minlength=n_buckets)
            per_set = np.bincount(miss_b, minlength=n_buckets)
            evictions = int(np.maximum(0, occ + per_set - m).sum())
        else:                              # degenerate bucket counts
            all_b = np.concatenate([buckets[:r], miss_b])
            uniq, inv = np.unique(all_b, return_inverse=True)
            occ = np.bincount(inv[:r], minlength=len(uniq))
            per_set = np.bincount(inv[r:], minlength=len(uniq))
            evictions = int(np.maximum(0, occ + per_set - m).sum())

        # New residency: per set, the (up to) m most recently accessed
        # distinct keys of the augmented stream, in recency order.
        comp = (aug_gid << np.int64(32)) | np.arange(n_aug, dtype=np.int64)
        comp.sort()
        pos = comp & np.int64(0xFFFFFFFF)
        gz = comp >> np.int64(32)
        last = np.empty(n_aug, dtype=bool)
        last[-1] = True
        np.not_equal(gz[1:], gz[:-1], out=last[:-1])
        last_pos = pos[last]                      # last access per key
        last_gid = gz[last]
        key_bucket = buckets[last_pos]
        order = np.argsort((key_bucket << np.int64(32)) | last_pos)
        sb = key_bucket[order]
        nk = len(sb)
        seg_start = np.empty(nk, dtype=bool)
        seg_start[0] = True
        np.not_equal(sb[1:], sb[:-1], out=seg_start[1:])
        seg_id = np.cumsum(seg_start) - 1
        counts = np.bincount(seg_id)
        ends = np.repeat(np.cumsum(counts), counts)
        keep = (ends - np.arange(nk)) <= m        # tail m of each set
        kept = order[keep]
        recency = np.argsort(last_pos[kept])      # oldest → newest
        kept = kept[recency]
        self._res_gids = last_gid[kept]
        self._res_keys = aug_keys[last_pos[kept]]
        return miss, evictions, self._res_gids

    def checkpoint_state(self) -> dict:
        return {
            "kind": "lru",
            "res_keys": None if self._res_keys is None
            else self._res_keys.copy(),
            "res_gids": self._res_gids.copy(),
        }

    def restore_state(self, state: dict) -> None:
        if state.get("kind") != "lru":
            raise CheckpointError(
                f"scheduler state mismatch: snapshot carries "
                f"{state.get('kind')!r}, store expects 'lru'")
        self._res_keys = state["res_keys"]
        self._res_gids = state["res_gids"]


class _ReplayWindowScheduler:
    """Carried per-set replay for the FIFO/random ablation policies on
    degenerate geometries (fewer than :data:`PACKED_WINDOW_MIN_SETS`
    sets): the per-access reference loop with its bucket structures
    (and the random policy's per-set eviction counters — the
    counter-based RNG state) persisted across windows."""

    def __init__(self, geometry: CacheGeometry, policy: str, seed: int):
        self.geometry = geometry
        self.policy = policy
        self.seed = seed
        #: bucket -> insertion-ordered {key id: None} (mirrors the
        #: reference cache's per-bucket OrderedDict).
        self._buckets: dict[int, dict[int, None]] = {}
        self._evict_counts: dict[int, int] = {}

    def schedule(self, keys2d: np.ndarray, gid: np.ndarray,
                 ) -> tuple[np.ndarray, int, np.ndarray]:
        n = len(gid)
        n_buckets, m = self.geometry.n_buckets, self.geometry.m_slots
        if n_buckets == 1:
            bucket_list = [0] * n
        else:
            bucket_list = (mix_key_array(keys2d, self.seed) %
                           _U(n_buckets)).astype(np.int64).tolist()
        miss = np.zeros(n, dtype=bool)
        evictions = 0
        randomized = self.policy == "random"
        seed = self.seed
        buckets = self._buckets
        evict_counts = self._evict_counts
        for i, (g, b) in enumerate(zip(gid.tolist(), bucket_list)):
            resident = buckets.setdefault(b, {})
            if g in resident:
                continue
            miss[i] = True
            if len(resident) >= m:
                if randomized:
                    count = evict_counts.get(b, 0)
                    evict_counts[b] = count + 1
                    victim = list(resident)[
                        replay_victim(seed, b, count, len(resident))]
                else:
                    victim = next(iter(resident))
                del resident[victim]
                evictions += 1
            resident[g] = None
        resident_gids = np.fromiter(
            (g for d in buckets.values() for g in d), dtype=np.int64)
        return miss, evictions, resident_gids

    def checkpoint_state(self) -> dict:
        # Per-bucket insertion order *is* the replacement state; the
        # random policy's RNG is the counter dict.
        return {
            "kind": "replay",
            "buckets": {b: list(d) for b, d in self._buckets.items()},
            "evict_counts": dict(self._evict_counts),
        }

    def restore_state(self, state: dict) -> None:
        if state.get("kind") != "replay":
            raise CheckpointError(
                f"scheduler state mismatch: snapshot carries "
                f"{state.get('kind')!r}, store expects 'replay'")
        self._buckets = {b: dict.fromkeys(ids)
                         for b, ids in state["buckets"].items()}
        self._evict_counts = dict(state["evict_counts"])


class _PackedWindowScheduler:
    """Carried packed per-set replay for the FIFO/random ablation
    policies: the persistent per-set state of the one-shot packed
    engine — insertion-ordered ring buffers, occupancy, and the random
    policy's per-set eviction counters — lives in flat arrays indexed
    by a registry of touched sets; each window is grouped by set with
    one composite sort, its sets' state rows are gathered, replayed
    through the shared step-major core
    (:func:`~repro.switch.kvstore.vector_cache._replay_segments`), and
    scattered back.  Bit-identical to the per-access reference for
    every window partitioning (the replay state a set carries is
    independent of where windows cut)."""

    def __init__(self, geometry: CacheGeometry, policy: str, seed: int):
        self.geometry = geometry
        self.policy = policy
        self.seed = seed
        m = geometry.m_slots
        self._known_ids = np.zeros(0, dtype=np.int64)    # sorted bucket ids
        self._known_rows = np.zeros(0, dtype=np.int64)   # their state rows
        self._set_of_row = np.zeros(0, dtype=np.int64)   # inverse mapping
        self._n_sets = 0
        self._ring = np.full((0, m), _FILLER, dtype=np.int64)
        self._head = np.zeros(0, dtype=np.int64)
        self._count = np.zeros(0, dtype=np.int64)
        self._counters = np.zeros(0, dtype=np.uint64)
        #: Per-key-id residency flags, exactly the rings' content (key
        #: ids are dense): one-gather membership tests in the core and
        #: O(resident) boundary extraction.
        self._in_cache = np.zeros(0, dtype=bool)
        self._width = _SKIP_BLOCK_START      # adapted skip width carry

    def schedule(self, keys2d: np.ndarray, gid: np.ndarray,
                 ) -> tuple[np.ndarray, int, np.ndarray]:
        n = len(gid)
        n_buckets, m = self.geometry.n_buckets, self.geometry.m_slots
        if n_buckets == 1:
            buckets = np.zeros(n, dtype=np.int64)
        else:
            buckets = (mix_key_array(keys2d, self.seed) %
                       _U(n_buckets)).astype(np.int64)
        if n_buckets <= 1 << 31:
            comp = (buckets << np.int64(32)) | np.arange(n, dtype=np.int64)
            comp.sort()
            order = comp & np.int64(0xFFFFFFFF)
            bz = comp >> np.int64(32)
        else:                              # degenerate bucket counts
            order = np.argsort(buckets, kind="stable")
            bz = buckets[order]
        segstart = np.empty(n, dtype=bool)
        segstart[0] = True
        np.not_equal(bz[1:], bz[:-1], out=segstart[1:])
        seg_ids = bz[segstart]
        # Collapse runs of the same key inside a set (guaranteed hits
        # that leave FIFO/random state untouched), exactly like the
        # one-shot engine: a window is a contiguous chunk of the
        # stream, so in-window adjacency in set order is true adjacency.
        gz = gid[order]
        keep = np.empty(n, dtype=bool)
        keep[0] = True
        keep[1:] = segstart[1:] | (gz[1:] != gz[:-1])
        keep_idx = np.flatnonzero(keep)
        kz2 = gz[keep_idx]
        starts = np.flatnonzero(segstart[keep_idx])
        lens = np.diff(np.append(starts, len(kz2)))
        rows = self._rows_for(seg_ids)
        randomized = self.policy == "random"
        max_gid = int(gid.max()) + 1
        if len(self._in_cache) < max_gid:
            self._in_cache = _grown(self._in_cache, max_gid)
        miss_kept, evictions, self._width = _replay_segments(
            kz2, starts, lens, self._set_of_row, m, self.policy,
            self.seed, self._ring, self._head, self._count,
            self._counters if randomized else None,
            in_cache=self._in_cache, state_rows=rows,
            start_width=self._width)
        # Scatter only the miss positions back to stream order (misses
        # are typically a small fraction of the window).
        miss = np.zeros(n, dtype=bool)
        miss[order[keep_idx[np.flatnonzero(miss_kept)]]] = True
        return miss, evictions, self._in_cache

    def _rows_for(self, seg_ids: np.ndarray) -> np.ndarray:
        """State rows for this window's (sorted, unique) bucket ids,
        registering unseen sets with empty state."""
        rows = np.empty(len(seg_ids), dtype=np.int64)
        if self._n_sets == 0:
            fresh = np.ones(len(seg_ids), dtype=bool)
        else:
            pos = np.searchsorted(self._known_ids, seg_ids)
            found = pos < len(self._known_ids)
            safe = np.where(found, pos, 0)
            found &= self._known_ids[safe] == seg_ids
            rows[found] = self._known_rows[safe[found]]
            fresh = ~found
        n_new = int(np.count_nonzero(fresh))
        if n_new:
            start = self._n_sets
            new_rows = start + np.arange(n_new)
            rows[fresh] = new_rows
            self._grow(start + n_new)
            self._n_sets = start + n_new
            new_ids = seg_ids[fresh]
            self._set_of_row[new_rows] = new_ids
            ins = np.searchsorted(self._known_ids, new_ids)
            self._known_ids = np.insert(self._known_ids, ins, new_ids)
            self._known_rows = np.insert(self._known_rows, ins, new_rows)
        return rows

    def checkpoint_state(self) -> dict:
        n = self._n_sets
        return {
            "kind": "packed",
            "known_ids": self._known_ids.copy(),
            "known_rows": self._known_rows.copy(),
            "set_of_row": self._set_of_row[:n].copy(),
            "n_sets": n,
            "ring": self._ring[:n].copy(),
            "head": self._head[:n].copy(),
            "count": self._count[:n].copy(),
            "counters": self._counters[:n].copy(),
            "in_cache": self._in_cache.copy(),
            "width": self._width,
        }

    def restore_state(self, state: dict) -> None:
        if state.get("kind") != "packed":
            raise CheckpointError(
                f"scheduler state mismatch: snapshot carries "
                f"{state.get('kind')!r}, store expects 'packed'")
        self._known_ids = state["known_ids"]
        self._known_rows = state["known_rows"]
        self._n_sets = state["n_sets"]
        self._ring = state["ring"]
        self._head = state["head"]
        self._count = state["count"]
        self._counters = state["counters"]
        self._set_of_row = state["set_of_row"]
        self._in_cache = state["in_cache"]
        self._width = state["width"]

    def _grow(self, n: int) -> None:
        cap = len(self._head)
        if cap >= n:
            return
        # One capacity for every state array (the rows of _ring must
        # stay aligned with the 1-D arrays and the set registry).
        new_cap = max(n, 2 * cap, 1024)
        ring = np.full((new_cap, self.geometry.m_slots), _FILLER,
                       dtype=np.int64)
        ring[:cap] = self._ring
        self._ring = ring
        for name in ("_head", "_count", "_counters", "_set_of_row"):
            old = getattr(self, name)
            new = np.zeros(new_cap, dtype=old.dtype)
            new[:cap] = old
            setattr(self, name, new)


class WindowedVectorStore(VectorSplitStore):
    """Streaming variant of :class:`VectorSplitStore`: executes the
    schedule-driven machinery once per ``window`` accesses with carried
    residency/epoch state (see the module docstring), so unbounded
    streams run in bounded memory.  Same constructor and observable
    surface; additionally supports mid-stream :meth:`snapshot` reads.
    """

    def __init__(
        self,
        stage: GroupByStage,
        geometry: CacheGeometry,
        params: Mapping[str, Numeric] | None = None,
        policy: str = "lru",
        seed: int = 0,
        refresh_interval: int | None = None,
        window: int = DEFAULT_WINDOW,
    ):
        super().__init__(stage, geometry, params=params, policy=policy,
                         seed=seed, refresh_interval=refresh_interval)
        if window <= 0:
            raise HardwareError("window must be positive")
        self.window = window
        self._buffered = 0
        self._total = 0
        # Persistent key table: unique key rows in first-seen
        # (= first-access) order, with a sorted void view for
        # vectorized window-key -> global-id matching.
        self._nkeys = 0
        self._all_keys = np.zeros((0, len(stage.key.fields)),
                                  dtype=np.int64)
        self._sorted_view: np.ndarray | None = None
        self._sorted_perm: np.ndarray | None = None
        self._keys_list: list[tuple] = []
        # Open epochs, bounded by cache capacity: a per-key flag/last-
        # position pair, per-key state arrays for the vectorizable
        # merge classes, per-key dicts for the sequential ones.
        self._open_mask = np.zeros(0, dtype=bool)
        self._open_pos = np.zeros(0, dtype=np.int64)
        self._array_carry = {
            fold.column: (fold.merge.strategy in ("additive", "scale",
                                                  "list")
                          and not fold.merge.exact_history)
            for fold in stage.folds
        }
        self._open_state: dict[str, dict[str, np.ndarray]] = {
            fold.column: {} for fold in stage.folds
            if self._array_carry[fold.column]
        }
        self._open_P: dict[str, dict[str, np.ndarray]] = {
            fold.column: {} for fold in stage.folds
            if self._array_carry[fold.column]
            and fold.merge.strategy == "scale"
        }
        self._open_dicts: dict[int, dict[str, tuple[State, AuxState]]] = {}
        if geometry.m_slots == 1 or policy == "lru":
            self._sched = _LruWindowScheduler(geometry, policy, seed)
        elif geometry.n_buckets >= PACKED_WINDOW_MIN_SETS:
            self._sched = _PackedWindowScheduler(geometry, policy, seed)
        else:
            self._sched = _ReplayWindowScheduler(geometry, policy, seed)
        # Absorption target: per-key accumulator arrays when every fold
        # merges by plain addition from zero (the one-shot bulk path's
        # condition), a real backing store otherwise.
        self._bulk_mode = self._all_plain_additive()
        if self._bulk_mode:
            self._acc: dict[str, dict[str, np.ndarray]] = {
                fold.column: {} for fold in stage.folds}
            self._hist: dict[str, dict[str, np.ndarray]] = {
                fold.column: {} for fold in stage.folds}
            self._epochs = np.zeros(0, dtype=np.int64)
            #: Running |value| bound per (fold, var) for the int64
            #: overflow guard on the cross-window accumulators (each
            #: window's reduction is guarded in vector_exec; the
            #: per-key accumulation across windows needs its own).
            self._acc_bound: dict[tuple[str, str], int] = {}
        else:
            self._backing = BackingStore(stage.folds, params=self.params)

    # -- ingestion -----------------------------------------------------------

    def add_batch(self, keys: np.ndarray,
                  columns: Mapping[str, np.ndarray]) -> None:
        if self._finalized:
            raise HardwareError("store already finalized")
        if keys.ndim != 2 or keys.dtype.kind not in "iub":
            raise HardwareError("vector store needs a 2-D integer key array")
        self._key_chunks.append(keys)
        for name in self.needed_fields:
            try:
                self._col_chunks[name].append(columns[name])
            except KeyError:
                raise HardwareError(f"missing fold input column {name!r}") \
                    from None
        self._buffered += len(keys)
        if self._buffered >= self.window:
            self._drain()

    def _drain(self) -> None:
        """Execute everything buffered as one window."""
        if self._buffered == 0:
            return
        keys2d = np.ascontiguousarray(np.concatenate(self._key_chunks))
        if keys2d.dtype != np.int64:
            keys2d = keys2d.astype(np.int64)
        columns = {
            name: np.concatenate(chunks)
            for name, chunks in self._col_chunks.items()
        }
        self._key_chunks.clear()
        for chunks in self._col_chunks.values():
            chunks.clear()
        self._buffered = 0
        self._run_window(keys2d, columns)

    # -- global key ids ------------------------------------------------------

    def _map_global(self, unique_cols: list[np.ndarray]) -> np.ndarray:
        """Map a window's unique key rows (first-occurrence order) to
        persistent global ids, registering unseen keys in order — one
        ``searchsorted`` against the sorted view of the known keys."""
        rows = np.ascontiguousarray(np.column_stack(unique_cols))
        view = rows.view([("", np.int64)] * rows.shape[1]).ravel()
        u = len(rows)
        l2g = np.empty(u, dtype=np.int64)
        if self._sorted_view is None or self._nkeys == 0:
            fresh = np.ones(u, dtype=bool)
        else:
            pos = np.searchsorted(self._sorted_view, view)
            found = pos < len(self._sorted_view)
            safe = np.where(found, pos, 0)
            found &= self._sorted_view[safe] == view
            l2g[found] = self._sorted_perm[safe[found]]
            fresh = ~found
        n_new = int(np.count_nonzero(fresh))
        if n_new:
            start = self._nkeys
            new_gids = start + np.arange(n_new)
            l2g[fresh] = new_gids
            self._grow_keys(start + n_new)
            new_rows = rows[fresh]
            self._all_keys[start:start + n_new] = new_rows
            self._nkeys = start + n_new
            self._keys_list.extend(
                zip(*(new_rows[:, j].tolist()
                      for j in range(new_rows.shape[1]))))
            # Merge the new keys into the sorted view incrementally —
            # O(new log new + K) instead of re-sorting all K keys.
            new_view = view[fresh]
            new_order = np.argsort(new_view)
            new_sorted = new_view[new_order]
            if self._sorted_view is None or start == 0:
                self._sorted_view = new_sorted
                self._sorted_perm = new_gids[new_order]
            else:
                pos = np.searchsorted(self._sorted_view, new_sorted)
                self._sorted_view = np.insert(self._sorted_view, pos,
                                              new_sorted)
                self._sorted_perm = np.insert(self._sorted_perm, pos,
                                              new_gids[new_order])
        return l2g

    def _grow_keys(self, n: int) -> None:
        """Grow every per-key array to capacity >= n (doubling)."""
        if len(self._open_mask) >= n:
            return
        cap = max(n, 2 * len(self._open_mask), 1024)
        grown = np.zeros((cap, self._all_keys.shape[1]), dtype=np.int64)
        grown[:self._nkeys] = self._all_keys[:self._nkeys]
        self._all_keys = grown
        self._open_mask = _grown(self._open_mask, cap)
        self._open_pos = _grown(self._open_pos, cap)
        if self._bulk_mode:
            self._epochs = _grown(self._epochs, cap)
            per_key = [self._acc, self._hist]
        else:
            per_key = []
        for group in (*per_key, self._open_state, self._open_P):
            for per_fold in group.values():
                for var, arr in per_fold.items():
                    per_fold[var] = _grown(arr, cap)

    # -- one window ----------------------------------------------------------

    def _run_window(self, keys2d: np.ndarray,
                    columns: dict[str, np.ndarray]) -> None:
        n = len(keys2d)
        offset = self._total
        key_cols = [keys2d[:, j] for j in range(keys2d.shape[1])]
        lgid, l_unique_cols, l_n = factorize(key_cols)
        gid = self._map_global(l_unique_cols)[lgid]

        # Replacement schedule with carried residency.
        miss, evictions, resident = self._sched.schedule(keys2d, gid)
        stats = self._stats
        misses = int(np.count_nonzero(miss))
        stats.accesses += n
        stats.hits += n - misses
        stats.misses += misses
        stats.insertions += misses
        stats.evictions += evictions

        # Epoch segmentation (identical to the one-shot store, with
        # refresh boundaries at *global* stream positions).
        comp = (gid << np.int64(32)) | np.arange(n, dtype=np.int64)
        comp.sort()
        sorted_idx = comp & np.int64(0xFFFFFFFF)
        gid_sorted = comp >> np.int64(32)
        new_epoch = np.empty(n, dtype=bool)
        new_epoch[0] = True
        same_key = gid_sorted[1:] == gid_sorted[:-1]
        new_epoch[1:] = ~same_key | miss[sorted_idx[1:]]
        refresh = self.refresh_interval
        if refresh is not None:
            boundaries = (sorted_idx + offset) // refresh
            new_epoch[1:] |= same_key & (boundaries[1:] > boundaries[:-1])
        eid_sorted = np.cumsum(new_epoch) - 1
        n_epochs = int(eid_sorted[-1]) + 1
        eid = np.empty(n, dtype=np.int64)
        eid[sorted_idx] = eid_sorted
        epoch_key = gid_sorted[new_epoch]
        layout = GroupLayout.from_sorted_order(eid, n_epochs, sorted_idx)

        # Per-key window extent (sorted space is key-major).
        key_start = np.empty(n, dtype=bool)
        key_start[0] = True
        key_start[1:] = ~same_key
        start_pos = np.flatnonzero(key_start)
        end_pos = np.append(start_pos[1:], n) - 1
        win_keys = gid_sorted[start_pos]          # distinct ids, ascending
        first_idx = sorted_idx[start_pos]
        last_eid = eid_sorted[end_pos]

        # Carried open epochs: continue into this window's first epoch
        # of their key (first access hits, no refresh boundary passed),
        # or close now — *before* the window's own epochs of that key.
        open_w = self._open_mask[win_keys]
        cont_mask = open_w & ~miss[first_idx]
        if refresh is not None:
            cont_mask &= (self._open_pos[win_keys] // refresh ==
                          (first_idx + offset) // refresh)
        self._absorb_open(win_keys[open_w & ~cont_mask])
        cont_keys = win_keys[cont_mask]
        cont_eids = eid_sorted[start_pos][cont_mask]
        self._open_mask[cont_keys] = False
        cont_dicts = [self._open_dicts.pop(int(g), None)
                      for g in cont_keys] if self._open_dicts else \
            [None] * len(cont_keys)

        # Per-epoch fold values, with continuation injection.
        ctx = ArrayContext(columns, self.params, n)
        fold_epochs = {}
        for fold in self.stage.folds:
            col = fold.column
            if not len(cont_keys):
                cont = None
            elif self._array_carry[col]:
                cont = _ArrayCont(cont_eids, cont_keys,
                                  self._open_state[col],
                                  self._open_P.get(col), fold)
            else:
                cont = _FoldCont(
                    cont_eids,
                    [d[col][0] for d in cont_dicts],
                    [d[col][1] for d in cont_dicts],
                )
            fold_epochs[col] = self._eval_fold(fold, ctx, layout, cont)

        # Absorb every epoch that provably closed inside the window
        # (all but each key's last), then stash the still-open ones.
        is_open = np.zeros(n_epochs, dtype=bool)
        is_open[last_eid] = True
        if self._bulk_mode:
            self._bulk_absorb_closed(fold_epochs, epoch_key, ~is_open)
        else:
            items = list(fold_epochs.items())
            keys_list = self._keys_list
            absorb = self._backing.absorb
            open_list = is_open.tolist()
            for e, g in enumerate(epoch_key.tolist()):
                if open_list[e]:
                    continue
                absorb(keys_list[g],
                       {col: fe.value(e) for col, fe in items},
                       {col: fe.aux(e) for col, fe in items})
        self._stash_open(win_keys, last_eid,
                         offset + sorted_idx[end_pos], fold_epochs)

        # Window boundary: a key that is no longer resident can only
        # miss on its next access, so its open epoch is complete.
        open_gids = np.flatnonzero(self._open_mask[:self._nkeys])
        self._absorb_open(open_gids[~_is_resident(open_gids, resident)])

        self._total += n
        if refresh is not None:
            self.refreshes = self._total // refresh

    # -- open-epoch carry ----------------------------------------------------

    def _stash_open(self, win_keys: np.ndarray, last_eid: np.ndarray,
                    last_pos: np.ndarray, fold_epochs) -> None:
        """Record each window key's still-open last epoch in the carry
        storage (vectorized for the array-carried folds)."""
        self._open_mask[win_keys] = True
        self._open_pos[win_keys] = last_pos
        dict_folds = []
        for fold in self.stage.folds:
            col = fold.column
            fe = fold_epochs[col]
            if not self._array_carry[col]:
                dict_folds.append((col, fe))
                continue
            target = self._open_state[col]
            for var in fold.instance.state_vars:
                if fe.arrays is not None:
                    vals = fe.arrays[var]
                else:
                    vals = np.asarray(fe.values[var])
                self._scatter(target, var, vals[last_eid], win_keys)
            if fold.merge.strategy == "scale":
                p_target = self._open_P[col]
                for var in fold.merge.order:
                    if fe.P is not None:
                        pvals = np.asarray(fe.P[var],
                                           dtype=np.float64)[last_eid]
                    else:                  # replay fallback window
                        pvals = np.asarray(
                            [fe.aux_list[e]["P"][var]
                             for e in last_eid.tolist()])
                    self._scatter(p_target, var, pvals, win_keys)
        if dict_folds:
            for j, g in enumerate(win_keys.tolist()):
                e = int(last_eid[j])
                self._open_dicts[g] = {
                    col: (fe.value(e), fe.aux(e)) for col, fe in dict_folds
                }

    def _scatter(self, target: dict[str, np.ndarray], var: str,
                 vals: np.ndarray, gids: np.ndarray) -> None:
        """``target[var][gids] = vals`` with creation/promotion."""
        arr = target.get(var)
        if arr is None:
            arr = np.zeros(len(self._open_mask), dtype=vals.dtype)
            target[var] = arr
        promoted = np.result_type(arr.dtype, vals.dtype)
        if promoted != arr.dtype:
            arr = arr.astype(promoted)
            target[var] = arr
        arr[gids] = vals

    def _open_payloads(self, gids: np.ndarray) -> list[
            tuple[int, dict[str, State], dict[str, AuxState]]]:
        """(gid, states, aux) for carried open epochs — scalars pulled
        out of the carry arrays (native Python values, like the
        one-shot absorb path) and the carry dicts."""
        out = []
        glist = gids.tolist()
        per_fold: dict[str, tuple[dict[str, list], dict[str, list] | None]] = {}
        for fold in self.stage.folds:
            col = fold.column
            if not self._array_carry[col]:
                continue
            states = {var: arr[gids].tolist()
                      for var, arr in self._open_state[col].items()}
            P = None
            if fold.merge.strategy == "scale":
                P = {var: arr[gids].tolist()
                     for var, arr in self._open_P[col].items()}
            per_fold[col] = (states, P)
        for i, g in enumerate(glist):
            states: dict[str, State] = {}
            aux: dict[str, AuxState] = {}
            for fold in self.stage.folds:
                col = fold.column
                if self._array_carry[col]:
                    vals, P = per_fold[col]
                    states[col] = {var: lst[i] for var, lst in vals.items()}
                    aux[col] = {} if P is None else \
                        {"P": {var: lst[i] for var, lst in P.items()}}
                else:
                    states[col], aux[col] = self._open_dicts[g][col]
            out.append((g, states, aux))
        return out

    # -- absorption ----------------------------------------------------------

    def _absorb_open(self, gids: np.ndarray) -> None:
        """Close and absorb the carried open epochs of ``gids``
        (vectorized on the all-additive path)."""
        if len(gids) == 0:
            return
        if self._bulk_mode:
            for fold in self.stage.folds:
                col = fold.column
                history = fold.linearity.history
                for var in fold.instance.state_vars:
                    vals = self._open_state[col][var][gids]
                    target = self._hist if var in history else self._acc
                    arr = self._target_array(target[col], var, vals.dtype)
                    if var in history:
                        arr[gids] = vals
                    else:
                        arr = self._guard_acc(target[col], col, var, arr,
                                              vals)
                        arr[gids] += vals      # unique ids: plain fancy add
            self._epochs[gids] += 1
            self._writes += len(gids)
        else:
            absorb = self._backing.absorb
            keys_list = self._keys_list
            for g, states, aux in self._open_payloads(gids):
                absorb(keys_list[g], states, aux)
        self._open_mask[gids] = False
        if self._open_dicts:
            for g in gids.tolist():
                self._open_dicts.pop(g, None)

    def _bulk_absorb_closed(self, fold_epochs, epoch_key: np.ndarray,
                            closed: np.ndarray) -> None:
        """Vectorized absorption of the window's closed epochs on the
        all-additive path: one ``np.add.at`` per order variable, a
        last-epoch-per-key assignment per history variable."""
        closed_e = np.flatnonzero(closed)
        if len(closed_e) == 0:
            return
        closed_g = epoch_key[closed_e]
        # Epoch ids ascend per key, so each key's closed epochs are a
        # contiguous, chronological run; its last one carries the
        # history values.
        run_last = np.empty(len(closed_g), dtype=bool)
        run_last[-1] = True
        np.not_equal(closed_g[1:], closed_g[:-1], out=run_last[:-1])
        for fold in self.stage.folds:
            fe = fold_epochs[fold.column]
            history = fold.linearity.history
            for var in fold.instance.state_vars:
                if fe.arrays is not None:
                    vals = fe.arrays[var]
                else:
                    vals = np.asarray(fe.values[var])
                vals = vals[closed_e]
                target = self._hist if var in history else self._acc
                arr = self._target_array(target[fold.column], var,
                                         vals.dtype)
                if var in history:
                    arr[closed_g[run_last]] = vals[run_last]
                else:
                    arr = self._guard_acc(target[fold.column], fold.column,
                                          var, arr, vals)
                    np.add.at(arr, closed_g, vals)
        np.add.at(self._epochs, closed_g, 1)
        self._writes += len(closed_e)

    def _target_array(self, target: dict[str, np.ndarray], var: str,
                      dtype) -> np.ndarray:
        """The per-key accumulator for ``var``, created/promoted on
        demand at the shared capacity."""
        arr = target.get(var)
        if arr is None:
            arr = np.zeros(len(self._open_mask), dtype=dtype)
            target[var] = arr
        promoted = np.result_type(arr.dtype, dtype)
        if promoted != arr.dtype:
            arr = arr.astype(promoted)
            target[var] = arr
        return arr

    def _guard_acc(self, target: dict[str, np.ndarray], col: str, var: str,
                   arr: np.ndarray, vals: np.ndarray,
                   persist: bool = True) -> np.ndarray:
        """int64 overflow guard for the bulk path's cross-window
        accumulators: tracks a conservative running bound on the
        accumulated magnitude and, before it can reach 2^63, promotes
        the accumulator to ``object`` dtype — exact Python-int
        arithmetic, matching the row engine's unbounded ints — with a
        warning.  Bounds are computed with Python ints (``np.abs`` on
        ``int64.min`` would itself wrap)."""
        if arr.dtype.kind not in "iu":
            return arr
        v = np.asarray(vals)
        if v.dtype.kind not in "iu" or v.size == 0:
            return arr
        step = int(v.size) * max(abs(int(v.min())), abs(int(v.max())))
        bound = self._acc_bound.get((col, var), 0) + step
        if persist:
            self._acc_bound[(col, var)] = bound
        if bound < 2 ** 63:
            return arr
        warnings.warn(
            f"fold {col!r} state {var!r} may exceed int64 while merging "
            f"epochs across windows; switching the accumulator to exact "
            f"Python-int arithmetic (slower, bit-identical to the row "
            f"engine)", RuntimeWarning, stacklevel=4)
        arr = arr.astype(object)
        target[var] = arr
        return arr

    # -- end of run / observables --------------------------------------------

    def finalize(self) -> None:
        """Process the remaining partial window and absorb every open
        epoch (idempotent)."""
        if self._finalized:
            return
        self._drain()
        self._finalized = True
        self._absorb_open(np.flatnonzero(self._open_mask[:self._nkeys]))

    @property
    def backing(self) -> BackingStore:
        self.finalize()
        if self._bulk_mode:
            return super().backing       # materialised from the arrays
        return self._backing

    def result_table(self, include_invalid: bool = False) -> ResultTable:
        self.finalize()
        if self._bulk_mode:
            try:
                return self._bulk_table(self._bulk_states())
            except VectorizationError:
                pass
        return build_result_table(self.stage, self.backing,
                                  self._keys_list, self.params,
                                  include_invalid=include_invalid)

    def _bulk_states(self) -> dict[str, dict[str, np.ndarray]]:
        """Merged per-key state arrays (all-additive path), trimmed to
        the key count."""
        nk = self._nkeys
        out: dict[str, dict[str, np.ndarray]] = {}
        for fold in self.stage.folds:
            history = fold.linearity.history
            per_var: dict[str, np.ndarray] = {}
            for var in fold.instance.state_vars:
                target = self._hist if var in history else self._acc
                arr = target[fold.column].get(var)
                if arr is None:
                    init = fold.instance.inits.get(var, 0)
                    arr = np.full(max(nk, 1), init)
                per_var[var] = arr[:nk]
            out[fold.column] = per_var
        return out

    def _bulk_table(self, merged: dict[str, dict[str, np.ndarray]],
                    ) -> ResultTable:
        n_groups = self._nkeys
        keys = self._all_keys[:n_groups]
        out: dict[str, np.ndarray] = {
            field: keys[:, j]
            for j, field in enumerate(self.stage.key.fields)
        }
        for col in self.stage.output.columns:
            if col.kind == "agg":
                out[col.name] = merged[col.fold][col.state_var]
            elif col.kind == "derived":
                dctx = ArrayContext({}, self.params, n_groups,
                                    state=merged[col.fold])
                with np.errstate(divide="ignore", invalid="ignore"):
                    out[col.name] = as_column(
                        eval_array(col.read_expr, dctx), n_groups)
        return ResultTable.from_columns(self.stage.output, out)

    def _materialize_backing(self) -> BackingStore:
        if not self._bulk_mode:
            return self._backing
        return self._backing_from_bulk(self._bulk_states(), self._writes,
                                       self._epochs[:self._nkeys])

    def _backing_from_bulk(self, merged, writes: int,
                           epochs: np.ndarray) -> BackingStore:
        """A real per-key :class:`BackingStore` from merged state
        arrays (the bulk path's on-demand store surface)."""
        backing = BackingStore(self.stage.folds, params=self.params)
        backing.writes = writes
        columns = [
            (col, [(var, arr.tolist()) for var, arr in per_var.items()])
            for col, per_var in merged.items()
        ]
        counts = epochs.tolist()
        data = backing.data
        for g, key in enumerate(self._keys_list):
            data[key] = KeyEntry(
                merged={col: {var: vals[g] for var, vals in items}
                        for col, items in columns},
                epochs=counts[g],
            )
        return backing

    @property
    def backing_writes(self) -> int:
        self.finalize()
        if self._bulk_mode:
            return self._writes
        return self._backing.writes

    def accuracy(self) -> float:
        self.finalize()
        if self._bulk_mode:
            return 1.0
        return self._backing.accuracy

    # -- mid-stream snapshots -------------------------------------------------

    def snapshot(self, include_invalid: bool = False) -> StoreSnapshot:
        """Observable state as if the stream ended now, without ending
        it: pending input is executed (results are partition-
        independent, so this is observation-neutral), open epochs are
        absorbed into *copies*, and streaming continues untouched."""
        if self._finalized:
            return StoreSnapshot(
                table=self.result_table(include_invalid=include_invalid),
                stats=replace(self._stats),
                backing_writes=self.backing_writes,
                accuracy=self.accuracy(),
            )
        self._drain()
        if self._bulk_mode:
            merged, epochs, writes = self._snapshot_bulk_state()
            try:
                table = self._bulk_table(merged)
            except VectorizationError:
                table = build_result_table(
                    self.stage,
                    self._backing_from_bulk(merged, writes, epochs),
                    self._keys_list, self.params,
                    include_invalid=include_invalid)
            return StoreSnapshot(table=table, stats=replace(self._stats),
                                 backing_writes=writes, accuracy=1.0)
        snap = self._snapshot_store()
        table = build_result_table(self.stage, snap, self._keys_list,
                                   self.params,
                                   include_invalid=include_invalid)
        return StoreSnapshot(table=table, stats=replace(self._stats),
                             backing_writes=snap.writes,
                             accuracy=snap.accuracy)

    def _snapshot_bulk_state(self) -> tuple[
            dict[str, dict[str, np.ndarray]], np.ndarray, int]:
        """Copies of the merged per-key accumulators with every carried
        open epoch absorbed — ``(merged, epochs, writes)``.  Call after
        :meth:`_drain`; shared by :meth:`snapshot` and the shard
        workers' mid-stream payloads."""
        open_gids = np.flatnonzero(self._open_mask[:self._nkeys])
        merged = {
            col: {var: arr.copy() for var, arr in per_var.items()}
            for col, per_var in self._bulk_states().items()
        }
        for fold in self.stage.folds if len(open_gids) else ():
            col = fold.column
            history = fold.linearity.history
            for var in fold.instance.state_vars:
                vals = self._open_state[col][var][open_gids]
                arr = merged[col][var]
                promoted = np.result_type(arr.dtype, vals.dtype)
                if promoted != arr.dtype:
                    arr = arr.astype(promoted)
                    merged[col][var] = arr
                if var in history:
                    arr[open_gids] = vals
                else:
                    arr = self._guard_acc(merged[col], col, var, arr, vals,
                                          persist=False)
                    arr[open_gids] += vals
        epochs = self._epochs[:self._nkeys].copy()
        epochs[open_gids] += 1
        return merged, epochs, self._writes + len(open_gids)

    def _snapshot_store(self) -> BackingStore:
        """Clone of the general-path backing store with every carried
        open epoch absorbed.  Call after :meth:`_drain`."""
        open_gids = np.flatnonzero(self._open_mask[:self._nkeys])
        snap = self._backing.clone()
        for g, states, aux in self._open_payloads(open_gids):
            snap.absorb(self._keys_list[g],
                        {col: dict(s) for col, s in states.items()},
                        {col: _copy_aux(a) for col, a in aux.items()})
        return snap

    @property
    def stats(self) -> CacheStats:
        """Counters over everything ingested so far (end-of-run values
        once the store is finalized; open-epoch absorption never moves
        the counters, so draining pending input suffices)."""
        if not self._finalized:
            self._drain()
        return self._stats

    # -- durable checkpoints -------------------------------------------------

    def checkpoint_state(self) -> dict:
        """Plain-data snapshot of *everything* the continuation needs:
        pending (undrained) input, the persistent key table, carried
        residency (scheduler state incl. RNG counters), carried open
        epochs, and the absorption target (bulk accumulators with their
        overflow bounds, or the general backing store).  Pending input
        is serialized as-is — not drained — so a restored store runs
        the byte-for-byte same window schedule as an uninterrupted one.
        """
        if self._finalized:
            raise CheckpointError("cannot checkpoint a finalized store")
        nk = self._nkeys
        state = {
            "kind": "windowed",
            "window": self.window,
            "bulk": self._bulk_mode,
            "buffered": self._buffered,
            "pending_keys": np.concatenate(self._key_chunks)
            if self._key_chunks else None,
            "pending_cols": {
                name: np.concatenate(chunks) if chunks else None
                for name, chunks in self._col_chunks.items()
            },
            "total": self._total,
            "nkeys": nk,
            "keys": self._all_keys[:nk].copy(),
            "open_mask": self._open_mask[:nk].copy(),
            "open_pos": self._open_pos[:nk].copy(),
            "open_state": {
                col: {var: arr[:nk].copy() for var, arr in per.items()}
                for col, per in self._open_state.items()
            },
            "open_P": {
                col: {var: arr[:nk].copy() for var, arr in per.items()}
                for col, per in self._open_P.items()
            },
            "open_dicts": {
                g: {col: (dict(s), _copy_aux(a))
                    for col, (s, a) in folds.items()}
                for g, folds in self._open_dicts.items()
            },
            "stats": replace(self._stats),
            "refreshes": self.refreshes,
            "sched": self._sched.checkpoint_state(),
        }
        if self._bulk_mode:
            state["acc"] = {
                col: {var: arr[:nk].copy() for var, arr in per.items()}
                for col, per in self._acc.items()
            }
            state["hist"] = {
                col: {var: arr[:nk].copy() for var, arr in per.items()}
                for col, per in self._hist.items()
            }
            state["epochs"] = self._epochs[:nk].copy()
            state["acc_bound"] = dict(self._acc_bound)
            state["writes"] = self._writes
        else:
            backing = self._backing.clone()
            state["backing_data"] = backing.data
            state["backing_writes"] = backing.writes
        return state

    def restore_state(self, state: dict) -> None:
        """Load a :meth:`checkpoint_state` payload into this (freshly
        constructed) store.  The store takes ownership of the payload's
        arrays and containers."""
        if state.get("kind") != "windowed":
            raise CheckpointError(
                f"store state mismatch: snapshot carries "
                f"{state.get('kind')!r}, expected 'windowed'")
        if self._finalized or self._total or self._nkeys or self._buffered:
            raise CheckpointError("restore target store must be fresh")
        if state["window"] != self.window or state["bulk"] != self._bulk_mode:
            raise CheckpointError(
                "store configuration mismatch: snapshot was taken with "
                f"window={state['window']} bulk={state['bulk']}, store has "
                f"window={self.window} bulk={self._bulk_mode}")
        self._buffered = state["buffered"]
        if state["pending_keys"] is not None:
            self._key_chunks = [state["pending_keys"]]
            for name, pending in state["pending_cols"].items():
                self._col_chunks[name] = [pending]
        self._total = state["total"]
        nk = self._nkeys = state["nkeys"]
        if nk:
            # Every per-key array shares one capacity (the _grow_keys
            # invariant) — restore them all at exactly nk.
            rows = np.ascontiguousarray(state["keys"])
            self._all_keys = rows
            view = rows.view([("", np.int64)] * rows.shape[1]).ravel()
            perm = np.argsort(view)
            self._sorted_view = view[perm]
            self._sorted_perm = perm.astype(np.int64, copy=False)
            self._keys_list = list(zip(
                *(rows[:, j].tolist() for j in range(rows.shape[1]))))
            self._open_mask = state["open_mask"]
            self._open_pos = state["open_pos"]
        self._open_state = {col: dict(per)
                            for col, per in state["open_state"].items()}
        self._open_P = {col: dict(per)
                        for col, per in state["open_P"].items()}
        self._open_dicts = {
            int(g): dict(folds) for g, folds in state["open_dicts"].items()}
        self._stats = state["stats"]
        self.refreshes = state["refreshes"]
        self._sched.restore_state(state["sched"])
        if self._bulk_mode:
            self._acc = {col: dict(per) for col, per in state["acc"].items()}
            self._hist = {col: dict(per)
                          for col, per in state["hist"].items()}
            self._epochs = state["epochs"]
            self._acc_bound = dict(state["acc_bound"])
            self._writes = state["writes"]
        else:
            self._backing.data = state["backing_data"]
            self._backing.writes = state["backing_writes"]


def _is_resident(gids: np.ndarray, resident: np.ndarray) -> np.ndarray:
    """Membership of ``gids`` in a scheduler's residency report —
    either a key-id array (LRU / per-access schedulers) or a per-gid
    flag array (the packed scheduler's bitmap, possibly shorter than
    the store's key table)."""
    if resident.dtype == np.bool_:
        out = np.zeros(len(gids), dtype=bool)
        within = gids < len(resident)
        out[within] = resident[gids[within]]
        return out
    return np.isin(gids, resident)


def _grown(arr: np.ndarray, n: int) -> np.ndarray:
    """Capacity-doubling resize, preserving contents."""
    if len(arr) >= n:
        return arr
    new = np.zeros(max(n, 2 * len(arr), 1024), dtype=arr.dtype)
    new[:len(arr)] = arr
    return new
