"""Switch ALU model: single-cycle state updates, compiled to Python.

§3.3: linear-in-state updates are fused multiply-adds (``S*A + B``);
other updates use Domino-style combinational atoms.  Either way the
hardware reads the entire state vector, computes every new value from
the *pre-update* state, and writes the vector back in one clock cycle.

This module mirrors that discipline in software: a fold's if-converted
update expressions (one per state variable) are code-generated into a
single Python function evaluated against the pre-update state, then the
state dict is overwritten atomically.  Code generation inlines query
parameters (they are part of the switch configuration, not per-packet
data) and is ~10× faster than tree-walking evaluation, which matters
for the trace-scale benches.

Predicates follow the hardware convention of materialising to 0/1.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.core.ast_nodes import (
    BinOp,
    Call,
    ColumnRef,
    Cond,
    Expr,
    FieldRef,
    Number,
    ParamRef,
    StateRef,
    UnaryOp,
)
from repro.core.errors import CompileError
from repro.core.eval_expr import Numeric

#: Functions callable from generated code.
_SAFE_GLOBALS = {"__builtins__": {}, "max": max, "min": min, "abs": abs,
                 "inf": float("inf")}

UpdateFn = Callable[[object, Mapping[str, Numeric]], dict[str, Numeric]]
ScalarFn = Callable[[object, Mapping[str, Numeric]], Numeric]


def _emit(expr: Expr, params: Mapping[str, Numeric]) -> str:
    """Render a resolved expression as a Python expression string.

    ``r`` is the packet record (attribute access), ``s`` the pre-update
    state mapping.  Parameters are inlined as literals.
    """
    if isinstance(expr, Number):
        return _literal(expr.value)
    if isinstance(expr, FieldRef):
        return f"r.{expr.name}"
    if isinstance(expr, ColumnRef):
        if expr.table is not None:
            raise CompileError("qualified columns cannot run on-switch")
        return f"r.{expr.name}"
    if isinstance(expr, StateRef):
        return f"s[{expr.name!r}]"
    if isinstance(expr, ParamRef):
        if expr.name not in params:
            raise CompileError(f"unbound parameter {expr.name!r} at install time")
        return _literal(params[expr.name])
    if isinstance(expr, UnaryOp):
        inner = _emit(expr.operand, params)
        if expr.op == "not":
            return f"(0 if {inner} else 1)"
        return f"(-{inner})"
    if isinstance(expr, Cond):
        return (f"({_emit(expr.then, params)} if {_emit(expr.pred, params)} "
                f"else {_emit(expr.orelse, params)})")
    if isinstance(expr, Call):
        if expr.func not in ("max", "min", "abs"):
            raise CompileError(f"cannot compile call to {expr.func!r}")
        args = ", ".join(_emit(a, params) for a in expr.args)
        return f"{expr.func}({args})"
    if isinstance(expr, BinOp):
        left = _emit(expr.left, params)
        right = _emit(expr.right, params)
        if expr.op in ("==", "!=", "<", "<=", ">", ">="):
            return f"(1 if {left} {expr.op} {right} else 0)"
        if expr.op in ("and", "or"):
            return f"(1 if ({left} {expr.op} {right}) else 0)"
        return f"({left} {expr.op} {right})"
    raise CompileError(f"cannot compile expression {expr!r}")


def _literal(value: Numeric) -> str:
    if value == float("inf"):
        return "inf"
    if value == float("-inf"):
        return "(-inf)"
    return repr(value)


def compile_update(update_exprs: Mapping[str, Expr],
                   params: Mapping[str, Numeric]) -> UpdateFn:
    """Compile a fold's per-variable update expressions.

    Returns ``fn(record, state) -> new_values`` where ``new_values``
    contains every state variable's post-packet value, all computed
    from the pre-update ``state`` (single-cycle semantics).
    """
    items = ", ".join(
        f"{var!r}: {_emit(expr, params)}" for var, expr in update_exprs.items()
    )
    source = f"lambda r, s: {{{items}}}"
    return eval(source, dict(_SAFE_GLOBALS))  # noqa: S307 - generated from checked AST


def compile_scalar(expr: Expr, params: Mapping[str, Numeric]) -> ScalarFn:
    """Compile a scalar expression (e.g. a WHERE predicate or a key
    sub-expression) to ``fn(record, state) -> value``."""
    source = f"lambda r, s=None: {_emit(expr, params)}"
    return eval(source, dict(_SAFE_GLOBALS))  # noqa: S307


def compile_predicate(expr: Expr | None,
                      params: Mapping[str, Numeric]) -> Callable[[object], bool]:
    """Compile an optional WHERE predicate to ``fn(record) -> bool``."""
    if expr is None:
        return lambda record: True
    scalar = compile_scalar(expr, params)
    return lambda record: bool(scalar(record))


def compile_key_extractor(fields: tuple[str, ...]) -> Callable[[object], tuple]:
    """Compile the key-extraction step (concatenation of header fields
    into the aggregation key, §3.2)."""
    body = ", ".join(f"r.{f}" for f in fields)
    source = f"lambda r: ({body},)" if len(fields) == 1 else f"lambda r: ({body})"
    return eval(source, dict(_SAFE_GLOBALS))  # noqa: S307
