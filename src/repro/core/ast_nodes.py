"""Abstract syntax tree for the performance query language (paper Fig. 1).

The AST is produced by :mod:`repro.core.parser` (from query text) or by
:mod:`repro.core.builder` (programmatically), then resolved and checked
by :mod:`repro.core.semantics`.

Two small languages share these nodes:

* the *query* language proper (``SELECT`` / ``WHERE`` / ``GROUPBY`` /
  ``JOIN`` and named-query composition), and
* the *fold function* mini-language used inside ``GROUPBY``
  aggregations (assignments, ``if``/``else``, arithmetic) — the paper's
  ``agg_fun`` production.

Name resolution levels
----------------------

The parser emits :class:`Name` and :class:`Dotted` nodes for every
identifier; it does not know whether ``lat_est`` is a state variable, a
packet field, or a query parameter.  Semantic analysis rewrites these
into :class:`FieldRef`, :class:`StateRef`, :class:`ParamRef`,
:class:`ColumnRef`, or folds them into :class:`Number` (for built-in
constants such as ``TCP``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterator, Union

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    """Base class for expression nodes."""

    def children(self) -> tuple["Expr", ...]:
        return ()


@dataclass(frozen=True)
class Number(Expr):
    """Numeric literal.  Time-suffixed literals are normalised to
    nanoseconds by the lexer, so ``1ms`` arrives here as ``1000000``."""

    value: Union[int, float]


@dataclass(frozen=True)
class Name(Expr):
    """Unresolved identifier (parser output only)."""

    ident: str


@dataclass(frozen=True)
class Dotted(Expr):
    """Unresolved dotted reference such as ``R1.COUNT`` or ``perc.high``
    (parser output only)."""

    base: str
    attr: str


@dataclass(frozen=True)
class FieldRef(Expr):
    """Resolved reference to a concrete observation-table field."""

    name: str


@dataclass(frozen=True)
class StateRef(Expr):
    """Resolved reference to a fold-function state variable."""

    name: str


@dataclass(frozen=True)
class ParamRef(Expr):
    """Resolved reference to a query parameter (e.g. ``alpha``, ``L``,
    ``K`` in the paper's examples), bound to a value at compile or
    evaluation time."""

    name: str


@dataclass(frozen=True)
class ColumnRef(Expr):
    """Resolved reference to a column of an upstream query's result
    table.  ``table`` is ``None`` for the sole input of a ``SELECT`` and
    names one side of a ``JOIN`` otherwise."""

    name: str
    table: str | None = None


@dataclass(frozen=True)
class BinOp(Expr):
    """Binary operation.  ``op`` is one of ``+ - * / == != < <= > >=
    and or``."""

    op: str
    left: Expr
    right: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class UnaryOp(Expr):
    """Unary operation: ``-`` or ``not``."""

    op: str
    operand: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)


@dataclass(frozen=True)
class Call(Expr):
    """Built-in function call.  The fold mini-language supports ``max``,
    ``min`` and ``abs``; the query language additionally uses ``SUM``,
    ``AVG``, ``MAX``, ``MIN`` as aggregation sugar (resolved to built-in
    folds by semantic analysis)."""

    func: str
    args: tuple[Expr, ...]

    def children(self) -> tuple[Expr, ...]:
        return self.args


@dataclass(frozen=True)
class Cond(Expr):
    """Internal ternary ``pred ? then : orelse``.

    Never produced by the parser; the linearity analysis introduces it
    when merging the two sides of an ``if`` into a single affine
    coefficient, and the select-item resolver uses it for derived
    read-time expressions.
    """

    pred: Expr
    then: Expr
    orelse: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.pred, self.then, self.orelse)


COMPARISON_OPS = frozenset({"==", "!=", "<", "<=", ">", ">="})
ARITH_OPS = frozenset({"+", "-", "*", "/"})
BOOL_OPS = frozenset({"and", "or"})


def walk(expr: Expr) -> Iterator[Expr]:
    """Yield ``expr`` and every descendant, pre-order."""
    yield expr
    for child in expr.children():
        yield from walk(child)


def map_expr(fn: Callable[[Expr], Expr | None], expr: Expr) -> Expr:
    """Rebuild ``expr`` bottom-up, applying ``fn`` to each node.

    ``fn`` may return a replacement node or ``None`` to keep the node
    (with already-rewritten children) unchanged.
    """
    if isinstance(expr, BinOp):
        rebuilt: Expr = BinOp(expr.op, map_expr(fn, expr.left), map_expr(fn, expr.right))
    elif isinstance(expr, UnaryOp):
        rebuilt = UnaryOp(expr.op, map_expr(fn, expr.operand))
    elif isinstance(expr, Call):
        rebuilt = Call(expr.func, tuple(map_expr(fn, a) for a in expr.args))
    elif isinstance(expr, Cond):
        rebuilt = Cond(map_expr(fn, expr.pred), map_expr(fn, expr.then), map_expr(fn, expr.orelse))
    else:
        rebuilt = expr
    replacement = fn(rebuilt)
    return rebuilt if replacement is None else replacement


# ---------------------------------------------------------------------------
# Fold-function statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Stmt:
    """Base class for fold-body statements."""


@dataclass(frozen=True)
class Assign(Stmt):
    """``target = expr`` where ``target`` is a state variable."""

    target: str
    value: Expr


@dataclass(frozen=True)
class If(Stmt):
    """``if pred then code else code`` (Fig. 1 ``code`` production).
    ``orelse`` may be empty."""

    pred: Expr
    then: tuple[Stmt, ...]
    orelse: tuple[Stmt, ...] = ()


@dataclass(frozen=True)
class FoldDef:
    """A user-defined fold function (Fig. 1 ``agg_fun``).

    ``def name((s1, s2), (f1, f2)): body`` — the first parameter is the
    accumulator state (one identifier or a tuple), the second names the
    packet fields consumed.  ``inits`` supplies initial state values;
    variables without an entry start at 0, matching the hardware's
    zero-initialised value slots.
    """

    name: str
    state_params: tuple[str, ...]
    packet_params: tuple[str, ...]
    body: tuple[Stmt, ...]
    inits: dict[str, Union[int, float]] = field(default_factory=dict)

    def initial_state(self) -> dict[str, Union[int, float]]:
        """Initial value for every state variable (default 0)."""
        return {s: self.inits.get(s, 0) for s in self.state_params}


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    """One entry of a ``SELECT`` list.

    ``expr`` may be a field reference, arbitrary expression, a
    :class:`Name` that resolves to a fold function, or aggregation sugar
    (``COUNT``, ``SUM(e)``...).  ``alias`` names the output column; when
    omitted a column name is derived from the expression.
    """

    expr: Expr
    alias: str | None = None


@dataclass(frozen=True)
class Star:
    """``SELECT *`` — pass every input column through."""


@dataclass(frozen=True)
class Query:
    """Base class for query nodes."""


@dataclass(frozen=True)
class SelectQuery(Query):
    """``SELECT items [FROM source] [GROUPBY keys] [WHERE pred]``.

    Covers both the plain ``select_query`` and the ``group_query`` of
    Fig. 1 — ``groupby`` is ``None`` for the former.  ``source`` is
    ``None`` for the root table ``T``.
    """

    items: Union[tuple[SelectItem, ...], Star]
    source: str | None = None
    groupby: tuple[str, ...] | None = None
    where: Expr | None = None


@dataclass(frozen=True)
class JoinQuery(Query):
    """``SELECT items FROM left JOIN right ON keys [WHERE pred]``.

    Per §2 the join key must uniquely identify records in both inputs;
    semantic analysis enforces a sufficient condition (each side is a
    ``GROUPBY`` whose key list equals the join key).
    """

    items: Union[tuple[SelectItem, ...], Star]
    left: str
    right: str
    on: tuple[str, ...]
    where: Expr | None = None


@dataclass(frozen=True)
class Program:
    """A parsed query program: fold definitions, named intermediate
    queries (``R1 = SELECT ...``) and the final (result) query.

    The final query is the last statement; if it was named, ``result``
    holds that name, otherwise the anonymous query itself is stored
    under the reserved name ``"__result__"``.
    """

    folds: dict[str, FoldDef]
    queries: dict[str, Query]
    result: str

    def result_query(self) -> Query:
        return self.queries[self.result]


# ---------------------------------------------------------------------------
# Pretty printing (used for round-trip tests and diagnostics)
# ---------------------------------------------------------------------------

_PRECEDENCE = {
    "or": 1,
    "and": 2,
    "==": 3, "!=": 3, "<": 3, "<=": 3, ">": 3, ">=": 3,
    "+": 4, "-": 4,
    "*": 5, "/": 5,
}


def format_expr(expr: Expr, parent_prec: int = 0) -> str:
    """Render an expression back to query-language text."""
    if isinstance(expr, Number):
        if isinstance(expr.value, float) and math.isinf(expr.value):
            return "infinity"
        return repr(expr.value)
    if isinstance(expr, Name):
        return expr.ident
    if isinstance(expr, Dotted):
        return f"{expr.base}.{expr.attr}"
    if isinstance(expr, FieldRef):
        return expr.name
    if isinstance(expr, StateRef):
        return expr.name
    if isinstance(expr, ParamRef):
        return expr.name
    if isinstance(expr, ColumnRef):
        return f"{expr.table}.{expr.name}" if expr.table else expr.name
    if isinstance(expr, UnaryOp):
        inner = format_expr(expr.operand, 6)
        return f"not {inner}" if expr.op == "not" else f"-{inner}"
    if isinstance(expr, Call):
        args = ", ".join(format_expr(a) for a in expr.args)
        return f"{expr.func}({args})"
    if isinstance(expr, Cond):
        return (f"({format_expr(expr.pred)} ? {format_expr(expr.then)}"
                f" : {format_expr(expr.orelse)})")
    if isinstance(expr, BinOp):
        prec = _PRECEDENCE[expr.op]
        # Comparisons are non-associative in the grammar, so a
        # comparison operand of a comparison must be parenthesised on
        # either side; other operators left-associate.
        left_prec = prec + 1 if expr.op in COMPARISON_OPS else prec
        left = format_expr(expr.left, left_prec)
        right = format_expr(expr.right, prec + 1)
        text = f"{left} {expr.op} {right}"
        return f"({text})" if prec < parent_prec else text
    raise TypeError(f"unknown expression node {expr!r}")


def format_stmt(stmt: Stmt, indent: int = 1) -> str:
    pad = "    " * indent
    if isinstance(stmt, Assign):
        return f"{pad}{stmt.target} = {format_expr(stmt.value)}"
    if isinstance(stmt, If):
        lines = [f"{pad}if {format_expr(stmt.pred)}:"]
        lines += [format_stmt(s, indent + 1) for s in stmt.then]
        if stmt.orelse:
            lines.append(f"{pad}else:")
            lines += [format_stmt(s, indent + 1) for s in stmt.orelse]
        return "\n".join(lines)
    raise TypeError(f"unknown statement node {stmt!r}")


def format_fold(fold: FoldDef) -> str:
    state = fold.state_params[0] if len(fold.state_params) == 1 else "(" + ", ".join(fold.state_params) + ")"
    pkts = fold.packet_params[0] if len(fold.packet_params) == 1 else "(" + ", ".join(fold.packet_params) + ")"
    header = f"def {fold.name} ({state}, {pkts}):"
    body = "\n".join(format_stmt(s) for s in fold.body)
    return f"{header}\n{body}"


def format_query(query: Query) -> str:
    """Render a query node back to query-language text."""
    if isinstance(query, SelectQuery):
        if isinstance(query.items, Star):
            items = "*"
        else:
            items = ", ".join(
                format_expr(i.expr) + (f" AS {i.alias}" if i.alias else "")
                for i in query.items
            )
        text = f"SELECT {items}"
        if query.source:
            text += f" FROM {query.source}"
        if query.groupby:
            text += " GROUPBY " + ", ".join(query.groupby)
        if query.where is not None:
            text += f" WHERE {format_expr(query.where)}"
        return text
    if isinstance(query, JoinQuery):
        if isinstance(query.items, Star):
            items = "*"
        else:
            items = ", ".join(
                format_expr(i.expr) + (f" AS {i.alias}" if i.alias else "")
                for i in query.items
            )
        text = f"SELECT {items} FROM {query.left} JOIN {query.right} ON " + ", ".join(query.on)
        if query.where is not None:
            text += f" WHERE {format_expr(query.where)}"
        return text
    raise TypeError(f"unknown query node {query!r}")


def format_program(program: Program) -> str:
    """Render a whole program (folds, named queries, result)."""
    parts = [format_fold(f) for f in program.folds.values()]
    for name, query in program.queries.items():
        if name == "__result__":
            parts.append(format_query(query))
        else:
            parts.append(f"{name} = {format_query(query)}")
    return "\n".join(parts)
