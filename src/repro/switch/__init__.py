"""The paper's hardware half: the switch model.

:mod:`.parser_model` — programmable parser (§3.1);
:mod:`.pipeline` — match-action pipeline executing compiled programs;
:mod:`.alu` — single-cycle state-update ALU;
:mod:`.kvstore` — the split SRAM/DRAM key-value store (§3.2);
:mod:`.area` — area/feasibility arithmetic (§3.3, §4).
"""

from .alu import compile_predicate, compile_update
from .area import AreaReport, area_fraction, effective_packet_rate
from .kvstore import BackingStore, CacheGeometry, CacheStats, KeyValueCache, SplitKeyValueStore
from .parser_model import ParserConfig, configure_parser
from .pipeline import DEFAULT_GEOMETRY, SwitchPipeline

__all__ = [
    "AreaReport",
    "BackingStore",
    "CacheGeometry",
    "CacheStats",
    "DEFAULT_GEOMETRY",
    "KeyValueCache",
    "ParserConfig",
    "SplitKeyValueStore",
    "SwitchPipeline",
    "area_fraction",
    "compile_predicate",
    "compile_update",
    "configure_parser",
    "effective_packet_rate",
]
