"""Event-driven network simulator producing the observation table.

The query language's input is "an abstract table containing timestamped
records of each packet's arrival and departure at every network queue"
(§2).  This simulator materialises that table: packets injected at
hosts are routed hop by hop (shortest path); every switch egress queue
traversed contributes one :class:`PacketRecord` with real ``tin`` /
``tout`` / ``qin`` / ``qout`` values from the queue model, and a drop
terminates the packet's journey with ``tout = +inf`` at the dropping
queue.

``pkt_path`` is a stable hash of the node sequence, left opaque to
queries exactly as the paper specifies ("we leave its value
uninterpreted").

Events are processed on a global time heap, which also guarantees each
queue sees nondecreasing arrival times as its analytic model requires.
"""

from __future__ import annotations

import heapq
import itertools
import zlib
from dataclasses import dataclass, field

from repro.switch.kvstore.cache import mix_key

from .queues import Departure, Drop, OutputQueue
from .records import ObservationTable, PacketRecord
from .topology import Topology


@dataclass(order=True)
class _Event:
    """Arrival of a packet at a node at a given time."""

    time: int
    seq: int
    packet: "SimPacket" = field(compare=False)
    node_index: int = field(compare=False, default=0)


@dataclass
class SimPacket:
    """A packet in flight: headers plus its route."""

    srcip: int
    dstip: int
    srcport: int
    dstport: int
    proto: int
    pkt_len: int
    payload_len: int
    tcpseq: int
    pkt_id: int
    path: list[str]
    path_id: int


class NetworkSimulator:
    """Simulates packet transit over a :class:`Topology`.

    Usage::

        sim = NetworkSimulator(topology)
        sim.inject(time_ns=0, src="h0", dst="h1", pkt_len=1500)
        table = sim.run()

    Host-name to address mapping is automatic (stable per topology);
    use :meth:`host_ip` to build queries that reference concrete hosts.
    """

    def __init__(self, topology: Topology):
        self.topology = topology
        self.queues: dict[int, OutputQueue] = {}
        for (u, v) in topology.queue_edges():
            spec = topology.link(u, v)
            qid = topology.qid(u, v)
            self.queues[qid] = OutputQueue(
                qid=qid, rate_gbps=spec.rate_gbps,
                buffer_packets=spec.buffer_packets,
            )
        self._events: list[_Event] = []
        self._seq = itertools.count()
        self._pkt_ids = itertools.count()
        self._host_ips = {h: 0x0A000001 + i * 256
                          for i, h in enumerate(sorted(topology.hosts()))}
        self.table = ObservationTable()
        self.delivered = 0
        self.dropped = 0

    # -- injection -----------------------------------------------------------

    def host_ip(self, host: str) -> int:
        return self._host_ips[host]

    def inject(
        self,
        time_ns: int,
        src: str,
        dst: str,
        pkt_len: int = 1500,
        srcport: int = 10000,
        dstport: int = 80,
        proto: int = 6,
        payload_len: int | None = None,
        tcpseq: int = 0,
    ) -> int:
        """Schedule one packet; returns its ``pkt_id``."""
        path = self.topology.path(src, dst)
        pkt_id = next(self._pkt_ids)
        packet = SimPacket(
            srcip=self._host_ips[src], dstip=self._host_ips[dst],
            srcport=srcport, dstport=dstport, proto=proto,
            pkt_len=pkt_len,
            payload_len=payload_len if payload_len is not None else max(0, pkt_len - 40),
            tcpseq=tcpseq, pkt_id=pkt_id, path=path,
            path_id=mix_key(tuple(zlib.crc32(n.encode()) for n in path)),
        )
        heapq.heappush(self._events,
                       _Event(time=time_ns, seq=next(self._seq), packet=packet))
        return pkt_id

    # -- execution -------------------------------------------------------------

    def run(self) -> ObservationTable:
        """Drain the event heap; returns the observation table sorted
        by queue-arrival time (the stream order queries consume)."""
        events = self._events
        while events:
            event = heapq.heappop(events)
            self._arrive(event)
        self.table.records.sort(key=lambda r: (r.tin, r.pkt_id))
        return self.table

    def _arrive(self, event: _Event) -> None:
        packet = event.packet
        node = packet.path[event.node_index]
        if event.node_index == len(packet.path) - 1:
            self.delivered += 1
            return
        next_node = packet.path[event.node_index + 1]
        if not self.topology.is_switch(node):
            # Host NIC: model as pure link traversal (no observed queue).
            spec = self.topology.link(node, next_node)
            tx = int(packet.pkt_len * 8.0 / spec.rate_gbps)
            heapq.heappush(self._events, _Event(
                time=event.time + tx + spec.prop_delay_ns,
                seq=next(self._seq), packet=packet,
                node_index=event.node_index + 1,
            ))
            return

        qid = self.topology.qid(node, next_node)
        queue = self.queues[qid]
        fate = queue.offer(event.time, packet.pkt_len)
        if isinstance(fate, Drop):
            self.dropped += 1
            self.table.append(self._record(packet, qid, fate.tin, float("inf"),
                                           fate.qin, 0))
            return
        assert isinstance(fate, Departure)
        self.table.append(self._record(packet, qid, fate.tin, float(fate.tout),
                                       fate.qin, fate.qout))
        spec = self.topology.link(node, next_node)
        heapq.heappush(self._events, _Event(
            time=fate.tout + spec.prop_delay_ns,
            seq=next(self._seq), packet=packet,
            node_index=event.node_index + 1,
        ))

    def _record(self, packet: SimPacket, qid: int, tin: int, tout: float,
                qin: int, qout: int) -> PacketRecord:
        return PacketRecord(
            srcip=packet.srcip, dstip=packet.dstip,
            srcport=packet.srcport, dstport=packet.dstport, proto=packet.proto,
            pkt_len=packet.pkt_len, payload_len=packet.payload_len,
            tcpseq=packet.tcpseq, pkt_id=packet.pkt_id,
            qid=qid, tin=tin, tout=tout, qin=qin, qout=qout, qsize=qin,
            pkt_path=packet.path_id,
        )

    # -- statistics -------------------------------------------------------------

    def queue_stats(self) -> dict[int, dict[str, float]]:
        return {
            qid: {
                "arrivals": q.arrivals,
                "drops": q.drops,
                "drop_fraction": q.drop_fraction,
                "peak_depth": q.peak_depth,
            }
            for qid, q in self.queues.items()
        }
