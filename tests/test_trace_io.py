"""Trace serialisation tests: CSV/NPZ round-trips and validation."""

import math

from repro.network.records import ObservationTable
from repro.traffic.trace_io import (
    read_csv,
    read_npz,
    validate_table,
    write_csv,
    write_npz,
)

from tests.conftest import make_record, synthetic_trace


class TestCsv:
    def test_round_trip(self, tmp_path):
        table = synthetic_trace(n_packets=150, n_flows=10)
        path = tmp_path / "trace.csv"
        write_csv(table, path)
        loaded = read_csv(path)
        assert len(loaded) == len(table)
        assert loaded[0] == table[0]
        assert loaded[97] == table[97]

    def test_inf_tout_round_trip(self, tmp_path):
        table = ObservationTable([make_record(tout=math.inf)])
        path = tmp_path / "drop.csv"
        write_csv(table, path)
        assert math.isinf(read_csv(path)[0].tout)

    def test_missing_columns_default(self, tmp_path):
        path = tmp_path / "partial.csv"
        path.write_text("srcip,dstip\n1,2\n3,4\n")
        loaded = read_csv(path)
        assert len(loaded) == 2
        assert loaded[0].srcip == 1 and loaded[0].proto == 6

    def test_unknown_columns_ignored(self, tmp_path):
        path = tmp_path / "extra.csv"
        path.write_text("srcip,mystery\n1,99\n")
        assert read_csv(path)[0].srcip == 1

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        assert len(read_csv(path)) == 0


class TestNpz:
    def test_round_trip(self, tmp_path):
        table = synthetic_trace(n_packets=200, n_flows=8)
        path = tmp_path / "trace.npz"
        write_npz(table, path)
        loaded = read_npz(path)
        assert len(loaded) == len(table)
        assert loaded[13] == table[13]


class TestValidation:
    def test_clean_trace_validates(self):
        assert validate_table(synthetic_trace(n_packets=300)) == []

    def test_tout_before_tin_flagged(self):
        table = ObservationTable([make_record(tin=100, tout=50.0)])
        problems = validate_table(table)
        assert problems and "tout" in problems[0]

    def test_time_regression_within_queue_flagged(self):
        table = ObservationTable([
            make_record(qid=1, tin=100),
            make_record(qid=1, tin=50, tout=60.0),
        ])
        problems = validate_table(table)
        assert any("decreases" in p for p in problems)

    def test_interleaved_queues_ok(self):
        table = ObservationTable([
            make_record(qid=0, tin=100),
            make_record(qid=1, tin=50, tout=60.0),
            make_record(qid=0, tin=200, tout=300.0),
        ])
        assert validate_table(table) == []
