"""Linear-in-state analysis tests (§3.2).

The battery checks (a) the Fig. 2 verdicts, (b) a taxonomy of
constructed folds spanning all matrix kinds and failure reasons, and
(c) the history-variable machinery of footnote 4.
"""


from repro.core.ast_nodes import Number
from repro.core.linearity import analyze_fold, history_depths, if_convert
from repro.core.parser import parse_program
from repro.core.semantics import resolve_program


def fold_result(source):
    rp = resolve_program(parse_program(source))
    for query in rp.queries:
        if query.folds:
            return analyze_fold(query.folds[0])
    raise AssertionError("no fold in program")


def make(source_body, state="s", packet="pkt_len"):
    return fold_result(
        f"def f ({state}, {packet}):\n{source_body}\n"
        f"SELECT srcip, f GROUPBY srcip"
    )


class TestFig2Verdicts:
    """The paper's own 'Linear in state?' column."""

    def test_count_is_linear_identity(self):
        rp = resolve_program(parse_program("SELECT COUNT GROUPBY srcip"))
        result = analyze_fold(rp.result_query().folds[0])
        assert result.linear and result.matrix_kind == "identity"

    def test_sum_is_linear_identity(self):
        rp = resolve_program(parse_program("SELECT SUM(pkt_len) GROUPBY srcip"))
        result = analyze_fold(rp.result_query().folds[0])
        assert result.linear and result.matrix_kind == "identity"

    def test_ewma_is_linear_diagonal(self):
        result = fold_result(
            "def ewma (e, (tin, tout)): e = (1 - alpha) * e + alpha * (tout - tin)\n"
            "SELECT 5tuple, ewma GROUPBY 5tuple"
        )
        assert result.linear and result.matrix_kind == "diagonal"
        assert result.history_depth == 0

    def test_outofseq_is_linear_with_history(self):
        result = fold_result(
            "def outofseq ((lastseq, oos_count), (tcpseq, payload_len)):\n"
            "    if lastseq + 1 != tcpseq:\n"
            "        oos_count = oos_count + 1\n"
            "    lastseq = tcpseq + payload_len\n"
            "SELECT 5tuple, outofseq GROUPBY 5tuple"
        )
        assert result.linear
        assert result.history == {"lastseq": 1}
        assert result.history_depth == 1  # A/B read the previous packet

    def test_nonmt_is_not_linear(self):
        result = fold_result(
            "def nonmt ((maxseq, nm_count), tcpseq):\n"
            "    if maxseq > tcpseq:\n"
            "        nm_count = nm_count + 1\n"
            "    maxseq = max(maxseq, tcpseq)\n"
            "SELECT 5tuple, nonmt GROUPBY 5tuple"
        )
        assert not result.linear
        assert result.reason is not None

    def test_perc_is_linear(self):
        result = fold_result(
            "def perc ((tot, high), qin):\n"
            "    if qin > K: high = high + 1\n"
            "    tot = tot + 1\n"
            "SELECT qid, perc GROUPBY qid"
        )
        assert result.linear and result.matrix_kind == "identity"


class TestMatrixKinds:
    def test_constant_scale_is_diagonal(self):
        result = make("    s = 2 * s + pkt_len")
        assert result.linear and result.matrix_kind == "diagonal"

    def test_cross_variable_coupling_is_full(self):
        result = make("    a = a + b\n    b = b + pkt_len",
                      state="(a, b)", packet="pkt_len")
        assert result.linear and result.matrix_kind == "full"

    def test_overwrite_by_other_state_is_full(self):
        result = make("    a = b\n    b = b + pkt_len", state="(a, b)", packet="pkt_len")
        assert result.linear and result.matrix_kind == "full"

    def test_packet_dependent_coefficient(self):
        result = make("    s = s * pkt_len + 1")
        assert result.linear and result.matrix_kind == "diagonal"
        assert result.matrix[("s", "s")] is not None


class TestNonLinearReasons:
    def test_state_times_state(self):
        result = make("    s = s * s")
        assert not result.linear
        assert "product" in result.reason

    def test_division_by_state(self):
        result = make("    s = pkt_len / s")
        assert not result.linear
        assert "division" in result.reason

    def test_max_over_state(self):
        result = make("    s = max(s, pkt_len)")
        assert not result.linear

    def test_predicate_on_state(self):
        result = make("    if s > 10:\n        s = s + 1\n    else:\n        s = s + 2")
        assert not result.linear
        assert "predicate" in result.reason or "state" in result.reason

    def test_comparison_inside_expression(self):
        result = make("    if s == pkt_len then s = s + 1")
        assert not result.linear


class TestHistoryVariables:
    def test_unconditional_packet_assign_is_depth_1(self):
        updates = if_convert_from(
            "def f ((last, acc), pkt_len):\n"
            "    acc = acc + last\n"
            "    last = pkt_len\n"
        )
        assert history_depths(updates) == {"last": 1}

    def test_chained_history_depth_2(self):
        updates = if_convert_from(
            "def f ((a, b, acc), pkt_len):\n"
            "    acc = acc + b\n"
            "    b = a\n"
            "    a = pkt_len\n"
        )
        depths = history_depths(updates)
        assert depths["a"] == 1 and depths["b"] == 2

    def test_self_reference_is_not_history(self):
        updates = if_convert_from("def f (s, pkt_len):\n    s = s + pkt_len\n")
        assert history_depths(updates) == {}

    def test_conditionally_assigned_var_is_not_history(self):
        # If x only sometimes overwrites the var, the old (unbounded
        # history) value survives on the other path.
        updates = if_convert_from(
            "def f ((last, acc), pkt_len):\n"
            "    if pkt_len > 0:\n"
            "        last = pkt_len\n"
            "    acc = acc + last\n"
        )
        assert "last" not in history_depths(updates)

    def test_history_depth_used_by_coefficients(self):
        result = make(
            "    if last > 0:\n        s = s + 1\n    last = pkt_len",
            state="(s, last)", packet="pkt_len",
        )
        assert result.linear
        assert result.history_depth == 1

    def test_history_unused_by_coefficients_is_depth_0(self):
        result = make(
            "    s = s + pkt_len\n    last = pkt_len",
            state="(s, last)", packet="pkt_len",
        )
        assert result.linear
        assert result.history_depth == 0


class TestIfConversion:
    def test_every_var_has_update_expr(self):
        updates = if_convert_from(
            "def f ((a, b), pkt_len):\n    if pkt_len > 0:\n        a = a + 1\n"
        )
        assert set(updates) == {"a", "b"}

    def test_untouched_var_maps_to_itself(self):
        from repro.core.ast_nodes import StateRef
        updates = if_convert_from(
            "def f ((a, b), pkt_len):\n    a = a + pkt_len\n"
        )
        assert updates["b"] == StateRef("b")

    def test_sequential_substitution(self):
        # b reads a's *updated* value.
        updates = if_convert_from(
            "def f ((a, b), pkt_len):\n    a = pkt_len\n    b = b + a\n"
        )
        from repro.core.ast_nodes import StateRef, walk
        assert StateRef("a") not in list(walk(updates["b"]))

    def test_branch_merge_produces_cond(self):
        from repro.core.ast_nodes import Cond
        updates = if_convert_from(
            "def f (s, pkt_len):\n    if pkt_len > 0:\n        s = s + 1\n"
        )
        assert isinstance(updates["s"], Cond)


class TestOffsetsAndCoefficients:
    def test_count_offset_is_one(self):
        rp = resolve_program(parse_program("SELECT COUNT GROUPBY srcip"))
        result = analyze_fold(rp.result_query().folds[0])
        var = result.order[0]
        assert result.matrix[(var, var)] == Number(1)
        assert result.offset[var] == Number(1)

    def test_ewma_coefficient_structure(self):
        result = fold_result(
            "def ewma (e, (tin, tout)): e = (1 - alpha) * e + alpha * (tout - tin)\n"
            "SELECT 5tuple, ewma GROUPBY 5tuple"
        )
        coeff = result.matrix[("e", "e")]
        from repro.core.ast_nodes import ParamRef, walk
        assert ParamRef("alpha") in list(walk(coeff))


def if_convert_from(fold_source):
    source = fold_source + "SELECT srcip, f GROUPBY srcip"
    rp = resolve_program(parse_program(source))
    fold = rp.result_query().folds[0]
    return if_convert(fold.body, fold.state_vars)
