"""Differential tests: the vectorized executor vs the reference
interpreter.

The vectorized engine's contract is *bit-identical results*: every
query — the full Fig. 2 catalog plus randomized linear and non-linear
fold programs — must produce exactly the interpreter's ``ResultTable``
contents (same rows, same values, same order) on randomized traces.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.interpreter import Interpreter
from repro.core.linearity import analyze_fold
from repro.core.parser import parse_program
from repro.core.semantics import resolve_program
from repro.core.vector_exec import (
    ArrayContext,
    VectorExecutor,
    _FoldVectorizer,
    _GroupLayout,
    factorize,
    run_query_vectorized,
)
from repro.network.records import ObservationTable
from repro.queries.catalog import ALL_QUERIES
from repro.switch.kvstore.cache import CacheGeometry
from repro.telemetry.runtime import QueryEngine
from repro.traffic.datacenter import DatacenterConfig, DatacenterWorkload
from repro.traffic.tcpgen import TcpAnomalyConfig, clean_sequence_table, inject_tcp_anomalies

from tests.conftest import synthetic_trace


def both_engines(source: str, table: ObservationTable, params=None):
    """Run a program through both engines; return (interp, vector)."""
    program = resolve_program(parse_program(source))
    interp = Interpreter(program, params=params).run(list(table))
    vector = VectorExecutor(program, params=params).run(table)
    return interp, vector


def assert_identical(interp, vector):
    assert set(interp) == set(vector)
    for name in interp:
        assert interp[name].rows == vector[name].rows, name


@pytest.fixture(scope="module")
def traces():
    """Randomized traces: two synthetic seeds plus a columnar
    datacenter trace with planted TCP anomalies and drops."""
    out = [synthetic_trace(n_packets=3000, n_flows=35, seed=s) for s in (11, 23)]
    dc = DatacenterWorkload(DatacenterConfig(
        n_flows=120, duration_ns=60_000_000, seed=3)).observation_table()
    clean_sequence_table(dc)
    inject_tcp_anomalies(dc, TcpAnomalyConfig(
        retransmit_rate=0.02, reorder_rate=0.02, duplicate_rate=0.005))
    records = dc.records
    for i in range(0, len(records), 150):
        records[i].tout = float("inf")
    out.append(dc)
    return out


class TestCatalogDifferential:
    """Every Fig. 2 (and §2 extra) query, both engines, identical."""

    @pytest.mark.parametrize("name", sorted(ALL_QUERIES))
    def test_catalog_query(self, name, traces):
        entry = ALL_QUERIES[name]
        for table in traces:
            interp, vector = both_engines(
                entry.source, table, params=entry.default_params)
            assert_identical(interp, vector)


#: Randomized fold programs covering every execution strategy: identity
#: linear (segmented reduction), gated/identity with history, diagonal
#: linear with constant and packet-dependent coefficients (rounds),
#: full-matrix linear, and the non-linear class (state predicates,
#: max/min over state).  Coefficients stay in {-1, 0, 1} so int64 and
#: Python-int arithmetic agree.
FOLD_PROGRAMS = [
    # identity: plain sums
    ("def f (s, (pkt_len)):\n    s = s + pkt_len\n\n"
     "SELECT srcip, f GROUPBY srcip", {}),
    # identity with a packet predicate gating B
    ("def f (c, (qin, pkt_len)):\n"
     "    if qin > 5:\n        c = c + pkt_len\n    else:\n        c = c + 1\n\n"
     "SELECT qid, f GROUPBY qid", {}),
    # identity + history variable inside B (out-of-sequence shape)
    ("def f ((last, c), (tcpseq, payload_len)):\n"
     "    if last + 1 != tcpseq:\n        c = c + 1\n"
     "    last = tcpseq + payload_len\n\n"
     "SELECT 5tuple, f GROUPBY 5tuple WHERE proto == TCP", {}),
    # diagonal, constant coefficient (EWMA shape -> rounds)
    ("def f (e, (tin, tout)):\n"
     "    e = (1 - alpha) * e + alpha * (tout - tin)\n\n"
     "SELECT srcip, dstip, f GROUPBY srcip, dstip", {"alpha": 0.3}),
    # diagonal, packet-dependent 0/1 coefficient (conditional reset)
    ("def f (s, (qin, pkt_len)):\n"
     "    if qin > 10:\n        s = 0\n    else:\n        s = s + pkt_len\n\n"
     "SELECT qid, f GROUPBY qid", {}),
    # full matrix: cross-variable linear coupling
    ("def f ((a, b), (pkt_len)):\n"
     "    a = a + b\n    b = b + pkt_len\n\n"
     "SELECT dstip, f GROUPBY dstip", {}),
    # non-linear: predicate over mergeable state (nonmt shape)
    ("def f ((m, c), (tcpseq)):\n"
     "    if m > tcpseq:\n        c = c + 1\n    m = max(m, tcpseq)\n\n"
     "SELECT 5tuple, f GROUPBY 5tuple WHERE proto == TCP", {}),
    # non-linear: min over state with arithmetic around it
    ("def f (m, (tin, tout)):\n"
     "    m = min(m + 1, tout - tin)\n\n"
     "SELECT srcip, f GROUPBY srcip", {}),
]


class TestRandomizedFolds:
    @pytest.mark.parametrize("case", range(len(FOLD_PROGRAMS)))
    def test_fold_program(self, case, traces):
        source, params = FOLD_PROGRAMS[case]
        for table in traces:
            interp, vector = both_engines(source, table, params=params)
            assert_identical(interp, vector)

    def test_strategy_coverage(self):
        """The fold corpus exercises reduction AND rounds paths."""
        strategies = set()
        for source, params in FOLD_PROGRAMS:
            program = resolve_program(parse_program(source))
            for query in program.queries:
                for fold in query.folds:
                    vectorizer = _FoldVectorizer(
                        fold, analyze_fold(fold), params)
                    strategies.add(vectorizer.strategy)
        assert strategies == {"reduction", "rounds"}


class TestSelectsAndEdges:
    def test_plain_select_where(self, traces):
        source = "SELECT srcip, qid, tout - tin AS lat FROM T WHERE tout - tin > 1000"
        for table in traces:
            interp, vector = both_engines(source, table)
            assert_identical(interp, vector)

    def test_where_matches_nothing(self, traces):
        interp, vector = both_engines(
            "SELECT COUNT GROUPBY srcip WHERE proto == 99", traces[0])
        assert_identical(interp, vector)
        assert len(vector["__result__"].rows) == 0

    def test_empty_trace(self):
        table = ObservationTable()
        interp, vector = both_engines("SELECT COUNT GROUPBY srcip", table)
        assert_identical(interp, vector)

    def test_one_shot_helper(self, traces):
        result = run_query_vectorized("SELECT COUNT GROUPBY qid", traces[0])
        truth = Interpreter(
            resolve_program(parse_program("SELECT COUNT GROUPBY qid"))
        ).run_result(list(traces[0]))
        assert result.rows == truth.rows


class TestFactorize:
    def test_first_occurrence_order(self):
        keys = [np.array([7, 3, 7, 5, 3, 9])]
        gid, unique, n_groups = factorize(keys)
        assert n_groups == 4
        assert unique[0].tolist() == [7, 3, 5, 9]       # insertion order
        assert gid.tolist() == [0, 1, 0, 2, 1, 3]

    def test_multi_column_exact(self):
        a = np.array([1, 1, 2, 1])
        b = np.array([5, 6, 5, 5])
        gid, unique, n_groups = factorize([a, b])
        assert n_groups == 3
        assert list(zip(unique[0].tolist(), unique[1].tolist())) == [
            (1, 5), (1, 6), (2, 5)]
        assert gid.tolist() == [0, 1, 2, 0]

    def test_empty(self):
        gid, unique, n_groups = factorize([np.zeros(0, dtype=np.int64)])
        assert n_groups == 0 and len(gid) == 0


class TestReplayFallback:
    """The per-fold interpreter replay must agree with the vector
    strategies (it is the safety net when an expression cannot run on
    the array path)."""

    @pytest.mark.parametrize("case", range(len(FOLD_PROGRAMS)))
    def test_replay_matches_vector(self, case):
        source, params = FOLD_PROGRAMS[case]
        program = resolve_program(parse_program(source))
        trace = synthetic_trace(n_packets=800, n_flows=12, seed=5)
        columns = trace.columns()
        for query in program.queries:
            if query.kind != "groupby":
                continue
            n = len(trace)
            ctx = ArrayContext(columns, params, n)
            from repro.core.vector_exec import eval_mask
            mask = eval_mask(query.where, ctx)
            sel = np.flatnonzero(mask) if mask is not None else np.arange(n)
            sel_ctx = ArrayContext(
                {name: arr[sel] for name, arr in columns.items()},
                params, len(sel))
            gid, _, n_groups = factorize(
                [sel_ctx.columns[k] for k in query.groupby_keys])
            layout = _GroupLayout(gid, n_groups)
            for fold in query.folds:
                vectorizer = _FoldVectorizer(fold, analyze_fold(fold), params)
                fast = vectorizer.evaluate(sel_ctx, layout)
                replay = vectorizer.replay(sel_ctx, layout)
                for var in fold.state_vars:
                    assert fast[var].tolist() == replay[var].tolist(), (
                        case, query.name, fold.column, var)

    def test_stage_fallback_on_unsupported(self, monkeypatch, traces):
        """If the array evaluator rejects a stage, the executor falls
        back to the interpreter and still returns exact results."""
        import repro.core.vector_exec as vx

        real = vx.eval_array

        def broken(expr, ctx):
            from repro.core.ast_nodes import Call
            if isinstance(expr, Call):
                raise vx.VectorizationError("forced")
            return real(expr, ctx)

        monkeypatch.setattr(vx, "eval_array", broken)
        entry = ALL_QUERIES["tcp_non_monotonic"]
        interp, vector = both_engines(entry.source, traces[0])
        assert_identical(interp, vector)


class TestEngineKnob:
    GEOM = CacheGeometry.set_associative(256, ways=8)

    def test_invalid_engine_rejected(self):
        with pytest.raises(ValueError):
            QueryEngine("SELECT COUNT GROUPBY srcip", engine="warp")

    @pytest.mark.parametrize("name", ["per_flow_loss_rate", "per_flow_high_latency",
                                      "high_p99_queue_size"])
    def test_vector_and_row_reports_identical(self, name, traces):
        entry = ALL_QUERIES[name]
        table = traces[-1]                       # dc trace with drops
        columnar = ObservationTable.from_arrays(table.to_arrays())
        row = QueryEngine(entry.source, params=entry.default_params,
                          geometry=self.GEOM, engine="row").run(
            table.records, with_ground_truth=True)
        vec = QueryEngine(entry.source, params=entry.default_params,
                          geometry=self.GEOM, engine="vector").run(
            columnar, with_ground_truth=True)
        for qname in row.tables:
            assert row.tables[qname].rows == vec.tables[qname].rows
        for qname in row.ground_truth:
            assert row.ground_truth[qname].rows == vec.ground_truth[qname].rows
        assert {k: (s.accesses, s.hits, s.evictions)
                for k, s in row.cache_stats.items()} == \
               {k: (s.accesses, s.hits, s.evictions)
                for k, s in vec.cache_stats.items()}

    def test_auto_prefers_vector_for_columnar(self, traces):
        engine = QueryEngine("SELECT COUNT GROUPBY srcip", geometry=self.GEOM)
        columnar = ObservationTable.from_arrays(traces[0].to_arrays())
        from repro.core.vector_exec import VectorExecutor as VX
        assert isinstance(engine._executor_for(columnar), VX)
        assert not isinstance(engine._executor_for(traces[0].records), VX)
