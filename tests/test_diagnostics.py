"""Compile-time deployability analyzer tests.

The analyzer PR's acceptance criteria: every hard diagnostic
(``RPR-E*``) is raised at compile/open time — before a shard worker
forks or a served session admits — with a test per code; and the
static verdicts must *agree with the runtime*:

* the stages the analyzer calls non-shardable are exactly those
  :class:`~repro.switch.kvstore.sharded.ShardedStoreProxy` routes
  whole-stream to one worker (catalog x policies differential);
* traces over the inferred int64 bound trigger the vector engine's
  scalar-replay fallback, and none below it do (overflow
  differential at the exact boundary).

Plus: the registry's internal consistency, warning/info emission
(W101/W102/W103/W401/I402), report plumbing onto engines, sessions
and servers, and the served ``REJECT`` frame carrying the code.
"""

import warnings

import numpy as np
import pytest

from repro.core.analyze import (
    DEFAULT_AREA_BUDGET,
    TraceBounds,
    session_diagnostics,
)
from repro.core.errors import HardwareError
from repro.network.records import ObservationTable
from repro.queries.catalog import ALL_QUERIES, FIG2_QUERIES
from repro.switch.kvstore.cache import CacheGeometry
from repro.telemetry import QueryEngine
from repro.telemetry.diagnostics import (
    CODES,
    DiagnosticsReport,
    diagnostic_code,
    exc_message,
    make,
    render,
)

from tests.conftest import synthetic_trace

GEOM = CacheGeometry.set_associative(128, ways=4)
QUERY = "SELECT COUNT, SUM(pkt_len) GROUPBY srcip"

#: 8 Mi pairs at the 5-tuple+COUNT layout = 1 Gbit, ~77% of the die —
#: §4's "hold all flows on-chip" rejection, well over the 25% budget.
HUGE_GEOM = CacheGeometry.set_associative(8_388_608, ways=8)


def codes_of(report):
    return [d.code for d in report]


# -- registry consistency -----------------------------------------------------


class TestRegistry:
    def test_severity_matches_code_letter(self):
        family = {"E": "error", "W": "warning", "I": "info", "C": "error"}
        for code, info in CODES.items():
            assert info.severity == family[code[4]], code

    def test_slugs_unique(self):
        slugs = [info.slug for info in CODES.values()]
        assert len(slugs) == len(set(slugs))

    def test_when_is_known_phase(self):
        assert all(info.when in ("open", "compile", "runtime", "check")
                   for info in CODES.values())

    def test_errors_and_warnings_carry_fix_hints(self):
        for info in CODES.values():
            if info.severity in ("error", "warning"):
                assert info.fix, f"{info.code} has no fix hint"

    def test_exc_message_roundtrips_through_diagnostic_code(self):
        msg = exc_message("RPR-E004", window=-3)
        assert msg.startswith("[RPR-E004] ")
        assert diagnostic_code(msg) == "RPR-E004"
        assert diagnostic_code("no code here") is None

    def test_render_interpolates_context(self):
        assert "-3" in render("RPR-E004", window=-3)
        assert "'gpu'" in render("RPR-E008", engines=("auto",), engine="gpu")

    def test_make_carries_stage_into_template(self):
        diag = make("RPR-W102", stage="__result__")
        assert diag.stage == "__result__"
        assert "'__result__'" in diag.message
        assert diag.fix_hint == CODES["RPR-W102"].fix

    def test_report_partitions_and_formats(self):
        report = DiagnosticsReport((
            make("RPR-I301", stage="s", pairs=1, pair_bits=2, mbit=0.1,
                 pct=0.1, chip=200.0),
            make("RPR-E003"),
            make("RPR-W102", stage="s"),
        ))
        assert report.has_errors
        assert report.first_error.code == "RPR-E003"
        assert codes_of(report.errors) == ["RPR-E003"]
        assert codes_of(report.warnings) == ["RPR-W102"]
        assert codes_of(report.infos) == ["RPR-I301"]
        text = report.format()
        assert text.splitlines()[0].startswith("RPR-E003")  # errors first
        assert "1 error(s), 1 warning(s), 1 info(s)" in text
        assert report.to_json()["errors"] == 1

    def test_every_code_is_documented(self):
        """DIAGNOSTICS.md is the operator-facing table; a code missing
        from it is a code nobody can look up."""
        from pathlib import Path

        doc = (Path(__file__).resolve().parent.parent
               / "DIAGNOSTICS.md").read_text()
        for code in CODES:
            assert f"`{code}`" in doc, f"{code} missing from DIAGNOSTICS.md"

    def test_empty_report_is_deployable(self):
        report = DiagnosticsReport()
        assert not report.has_errors
        assert report.first_error is None
        assert "deployable" in report.format()


# -- the session/engine compatibility matrix ----------------------------------


class TestSessionMatrix:
    def test_valid_combinations_are_clean(self):
        assert session_diagnostics() == []
        assert session_diagnostics(window=100) == []
        assert session_diagnostics(window=100, shards=4) == []
        assert session_diagnostics(engine="row") == []
        assert session_diagnostics(exact=True) == []
        assert session_diagnostics(window=100, refresh_interval=50) == []

    @pytest.mark.parametrize("knobs, expected", [
        (dict(engine="gpu"), "RPR-E008"),
        (dict(window=0), "RPR-E004"),
        (dict(window=-7), "RPR-E004"),
        (dict(shards=0), "RPR-E005"),
        (dict(exact=True, shards=2), "RPR-E003"),
        (dict(engine="row", shards=2), "RPR-E001"),
        (dict(shards=2, refresh_interval=100), "RPR-E002"),
    ], ids=lambda v: str(v))
    def test_bad_combination_yields_code(self, knobs, expected):
        diags = session_diagnostics(**knobs)
        assert expected in [d.code for d in diags]

    def test_one_shot_caveat_only_where_it_applies(self):
        def has_w002(**knobs):
            return any(d.code == "RPR-W002"
                       for d in session_diagnostics(**knobs))

        assert has_w002(engine="vector")
        assert has_w002(shards=2)
        assert not has_w002(engine="row")       # row streams incrementally
        assert not has_w002(window=100, shards=2)
        assert not has_w002(exact=True)
        assert not has_w002()                   # plain auto one-shot is fine


# -- hard errors gate open()/construction (one test per RPR-E code) -----------


class TestOpenTimeGates:
    def test_e008_unknown_engine_at_construction(self):
        with pytest.raises(ValueError) as err:
            QueryEngine(QUERY, geometry=GEOM, engine="gpu")
        assert diagnostic_code(err.value) == "RPR-E008"

    def test_e004_invalid_window(self):
        engine = QueryEngine(QUERY, geometry=GEOM)
        for window in (0, -1):
            with pytest.raises(ValueError, match="window must be a positive") as err:
                engine.open(window=window)
            assert diagnostic_code(err.value) == "RPR-E004"

    def test_e005_invalid_shards(self):
        engine = QueryEngine(QUERY, geometry=GEOM)
        with pytest.raises(ValueError, match="shards must be a positive") as err:
            engine.open(shards=0)
        assert diagnostic_code(err.value) == "RPR-E005"

    def test_e003_exact_cannot_shard(self):
        engine = QueryEngine(QUERY, geometry=GEOM)
        with pytest.raises(ValueError) as err:
            engine.open(exact=True, shards=2)
        assert diagnostic_code(err.value) == "RPR-E003"

    def test_e001_row_engine_cannot_shard(self):
        engine = QueryEngine(QUERY, geometry=GEOM, engine="row")
        with pytest.raises(HardwareError) as err:
            engine.open(shards=2)
        assert diagnostic_code(err.value) == "RPR-E001"

    def test_e002_refresh_cannot_shard(self):
        engine = QueryEngine(QUERY, geometry=GEOM, refresh_interval=100)
        with pytest.raises(HardwareError) as err:
            engine.open(shards=2)
        assert diagnostic_code(err.value) == "RPR-E002"

    def test_e301_oversized_cache_rejected_at_open(self):
        engine = QueryEngine("SELECT COUNT GROUPBY 5tuple",
                             geometry=HUGE_GEOM)
        # Construction only records the verdict; open() enforces it.
        assert "RPR-E301" in codes_of(engine.diagnostics_report.errors)
        with pytest.raises(HardwareError, match="will not fit") as err:
            engine.open()
        assert diagnostic_code(err.value) == "RPR-E301"

    def test_e301_suppressed_for_exact_sessions(self):
        engine = QueryEngine("SELECT COUNT GROUPBY 5tuple",
                             geometry=HUGE_GEOM)
        session = engine.open(exact=True)   # no hardware store to size
        assert not session.diagnostics.has_errors
        session.close()

    def test_e006_sharded_store_is_batch_only(self):
        engine = QueryEngine(QUERY, geometry=GEOM)
        session = engine.open(shards=2)
        try:
            store = session._pipeline.store_for("__result__")
            with pytest.raises(HardwareError) as err:
                store.process(object())
            assert diagnostic_code(err.value) == "RPR-E006"
        finally:
            session.close()

    def test_gate_fires_before_any_session_state(self):
        """A rejected open leaves the engine reusable."""
        engine = QueryEngine(QUERY, geometry=GEOM)
        with pytest.raises(ValueError):
            engine.open(window=-1)
        session = engine.open(window=100)
        session.ingest(synthetic_trace(50, seed=3))
        report = session.close()
        assert report.result.rows


# -- warning / info emission --------------------------------------------------


class TestEmission:
    def test_w101_non_mergeable_fold(self):
        entry = ALL_QUERIES["tcp_non_monotonic"]
        engine = QueryEngine(entry.source, params=entry.default_params,
                             geometry=GEOM)
        report = engine.diagnostics_report
        w101 = report.by_code("RPR-W101")
        assert len(w101) == 1
        assert "not linear in state" in w101[0].message
        assert not engine.analyze().stage(w101[0].stage).mergeable

    def test_w103_inexact_history_merge(self):
        entry = ALL_QUERIES["tcp_out_of_sequence"]
        engine = QueryEngine(entry.source, params=entry.default_params,
                             geometry=GEOM)
        w103 = engine.diagnostics_report.by_code("RPR-W103")
        assert len(w103) == 1
        assert "depth 1" in w103[0].message
        # exact_history repairs it
        exact = QueryEngine(entry.source, params=entry.default_params,
                            geometry=GEOM, exact_history=True)
        assert not exact.diagnostics_report.by_code("RPR-W103")

    def test_w102_single_bucket_geometry(self):
        engine = QueryEngine(QUERY,
                             geometry=CacheGeometry.fully_associative(64))
        session = engine.open(window=100, shards=2)
        try:
            assert session.diagnostics.by_code("RPR-W102")
            assert session._pipeline.store_for("__result__")._single
        finally:
            session.close()

    def test_w401_dead_stage(self):
        engine = QueryEngine(
            "R1 = SELECT COUNT GROUPBY srcip\n"
            "R2 = SELECT COUNT GROUPBY dstip",
            geometry=GEOM)
        analysis = engine.analyze()
        assert analysis.dead_stages == ("R1",)
        w401 = analysis.report.by_code("RPR-W401")
        assert len(w401) == 1 and "'R1'" in w401[0].message

    def test_i402_unused_fields(self):
        engine = QueryEngine(QUERY, geometry=GEOM)
        analysis = engine.analyze()
        i402 = analysis.report.by_code("RPR-I402")
        assert len(i402) == 1
        assert "tcpseq" in analysis.unused_fields
        assert "srcip" not in analysis.unused_fields
        assert "pkt_len" not in analysis.unused_fields

    def test_i301_budget_line_per_stage(self):
        entry = ALL_QUERIES["per_flow_loss_rate"]
        engine = QueryEngine(entry.source, geometry=GEOM)
        i301 = engine.diagnostics_report.by_code("RPR-I301")
        assert {d.stage for d in i301} == {"R1", "R2"}


# -- differential: shardability verdict vs the live sharded store -------------


class TestShardabilityDifferential:
    """`StageAnalysis.shardable` must equal `not ShardedStoreProxy._single`
    (and `.mergeable` must match) for every catalog query and policy."""

    @pytest.mark.parametrize("policy", ["lru", "fifo", "random"])
    @pytest.mark.parametrize("entry", list(ALL_QUERIES.values()),
                             ids=lambda e: e.name)
    def test_catalog_verdicts_match_runtime_routing(self, entry, policy):
        engine = QueryEngine(entry.source, params=entry.default_params,
                             geometry=GEOM, policy=policy)
        analysis = engine.analyze(shards=2)
        stages = engine.compiled.groupby_stages
        if not stages:
            assert analysis.stages == ()
            return
        session = engine.open(shards=2)
        try:
            for stage in stages:
                store = session._pipeline.store_for(stage.query_name)
                static = analysis.stage(stage.query_name)
                assert static.mergeable == store.mergeable, stage.query_name
                assert static.shardable == (not store._single), \
                    stage.query_name
                if not static.shardable:
                    assert static.serialize_cause is not None
        finally:
            session.close()

    def test_fig2_verdicts_match_paper_linearity_column(self):
        for entry in FIG2_QUERIES:
            engine = QueryEngine(entry.source, params=entry.default_params,
                                 geometry=GEOM)
            analysis = engine.analyze()
            mergeable = all(s.mergeable for s in analysis.stages)
            assert mergeable == entry.linear_in_state, entry.name


# -- differential: static overflow bound vs the runtime guard -----------------


class TestOverflowDifferential:
    """The analyzer's bound is `|init| + N * max|B| >= 2^63` — the same
    formula `guard_int64_accumulation` evaluates per batch.  On a trace
    of N constant-magnitude records the two must agree exactly."""

    QUERY = "SELECT SUM(pkt_len) GROUPBY srcip"

    @staticmethod
    def trace(records, magnitude):
        return ObservationTable.from_arrays({
            "srcip": np.zeros(records, dtype=np.int64),
            "pkt_len": np.full(records, magnitude, dtype=np.int64),
        })

    def verdict(self, engine, records, magnitude):
        analysis = engine.analyze(trace_bounds=TraceBounds(
            records=records, field_magnitude={"pkt_len": magnitude}))
        fold = analysis.stage("__result__").folds[0]
        assert fold.column == "SUM(pkt_len)"
        assert len(fold.overflow) == 1
        return fold.overflow[0]

    @pytest.mark.parametrize("records, magnitude, overflows", [
        (1, 2 ** 62, False),         # one record below the bound
        (2, 2 ** 62, True),          # exactly 2^63: guard uses >=
        (2, 2 ** 62 - 1, False),     # 2^63 - 2: largest safe total
        (3, 2 ** 62, True),
    ])
    def test_static_verdict_matches_runtime_fallback(
            self, records, magnitude, overflows):
        engine = QueryEngine(self.QUERY, geometry=GEOM)
        bound = self.verdict(engine, records, magnitude)
        assert bound.overflows == overflows
        assert bound.total_bound == records * magnitude

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            report = engine.run(self.trace(records, magnitude))
        warned = any("may exceed int64" in str(w.message) for w in caught)
        assert warned == overflows
        # Either path stays exact: the fallback replays in Python ints.
        assert report.result.rows[0]["SUM(pkt_len)"] == records * magnitude

    def test_w201_reports_the_safe_record_count(self):
        engine = QueryEngine(self.QUERY, geometry=GEOM)
        bound = self.verdict(engine, 2, 2 ** 62)
        assert bound.safe_records == 1   # (2^63 - 1) // 2^62
        analysis = engine.analyze(trace_bounds=TraceBounds(
            records=2, field_magnitude={"pkt_len": 2 ** 62}))
        w201 = analysis.report.by_code("RPR-W201")
        assert len(w201) == 1 and "safe up to 1 records" in w201[0].message

    def test_no_bounds_no_overflow_verdicts(self):
        engine = QueryEngine(self.QUERY, geometry=GEOM)
        fold = engine.analyze().stage("__result__").folds[0]
        assert fold.overflow == ()

    def test_count_is_safe_for_any_realistic_trace(self):
        engine = QueryEngine("SELECT COUNT GROUPBY srcip", geometry=GEOM)
        analysis = engine.analyze(trace_bounds=TraceBounds(
            records=10 ** 12, field_magnitude=2 ** 32))
        bound = analysis.stage("__result__").folds[0].overflow[0]
        assert not bound.overflows
        assert bound.per_record_bound == 1
        assert bound.safe_records == 2 ** 63 - 1

    @pytest.mark.parametrize("entry", FIG2_QUERIES, ids=lambda e: e.name)
    def test_catalog_static_safe_implies_no_runtime_fallback(self, entry):
        """Soundness across the catalog: if the analyzer (fed the
        trace's true bounds) predicts no overflow, the run must not
        warn.  The converse need not hold — the bound is conservative."""
        trace = synthetic_trace(800, n_flows=40, seed=23)
        magnitudes = {}
        for name, col in trace.columns().items():
            finite = col[np.isfinite(col)] if col.dtype.kind == "f" else col
            magnitudes[name] = float(np.abs(finite).max()) if finite.size else 0.0
        engine = QueryEngine(entry.source, params=entry.default_params,
                             geometry=GEOM)
        analysis = engine.analyze(trace_bounds=TraceBounds(
            records=len(trace), field_magnitude=magnitudes))
        statically_safe = not analysis.report.by_code("RPR-W201")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            engine.run(trace)
        warned = any("may exceed int64" in str(w.message) for w in caught)
        if statically_safe:
            assert not warned, entry.name


# -- report plumbing ----------------------------------------------------------


class TestReportPlumbing:
    def test_engine_carries_compile_time_report(self):
        engine = QueryEngine(QUERY, geometry=GEOM)
        report = engine.diagnostics_report
        assert isinstance(report, DiagnosticsReport)
        assert not report.has_errors
        assert report.by_code("RPR-I301")

    def test_session_carries_its_knob_report(self):
        engine = QueryEngine(QUERY, geometry=GEOM)
        session = engine.open(window=100)
        try:
            assert isinstance(session.diagnostics, DiagnosticsReport)
            assert not session.diagnostics.has_errors
            # window given: the one-shot caveat must not appear
            assert not session.diagnostics.by_code("RPR-W002")
        finally:
            session.close()

    def test_resumed_session_reattaches_report(self):
        engine = QueryEngine(QUERY, geometry=GEOM)
        session = engine.open(window=100)
        session.ingest(synthetic_trace(150, seed=5))
        snapshot = session.checkpoint()
        session.close()
        resumed = engine.resume(snapshot)
        try:
            assert isinstance(resumed.diagnostics, DiagnosticsReport)
            assert not resumed.diagnostics.has_errors
        finally:
            resumed.close()

    def test_analyze_default_budget(self):
        engine = QueryEngine(QUERY, geometry=GEOM)
        ok = engine.analyze()
        assert not ok.report.has_errors
        tight = engine.analyze(area_budget=1e-9)
        assert codes_of(tight.report.errors) == ["RPR-E301"]
        assert 0 < DEFAULT_AREA_BUDGET < 1
