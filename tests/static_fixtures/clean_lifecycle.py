"""Clean twin of bad_lifecycle: try/finally, ownership transfer, and
``with`` blocks all discharge the release obligation."""
import socket


def closed_on_every_path(host, port, frame):
    sock = socket.socket()
    try:
        sock.connect((host, port))
        sock.sendall(frame)
    finally:
        sock.close()
    return True


def ownership_moves(path):
    handle = open(path, "rb")
    return handle                     # the caller owns it now


def with_block(path):
    with open(path, "rb") as handle:
        return handle.read()
