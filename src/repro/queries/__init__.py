"""The Fig. 2 query catalog (plus §2 running-text examples)."""

from .catalog import ALL_QUERIES, CATALOG, FIG2_QUERIES, CatalogEntry, get

__all__ = ["ALL_QUERIES", "CATALOG", "FIG2_QUERIES", "CatalogEntry", "get"]
