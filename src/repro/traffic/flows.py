"""Flow-level traffic modelling.

A *flow* is a transport 5-tuple plus its packet schedule.  The
generators in this package first draw a flow population (sizes, start
times, durations), then expand flows into per-packet arrays and merge
them into a single time-ordered packet sequence — the interleaving is
what drives cache behaviour in the Fig. 5/6 experiments, so it is
modelled explicitly rather than by shuffling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class FlowSpec:
    """One flow's identity and schedule."""

    srcip: int
    dstip: int
    srcport: int
    dstport: int
    proto: int
    n_packets: int
    start_ns: int
    mean_gap_ns: float

    def five_tuple(self) -> tuple[int, int, int, int, int]:
        return (self.srcip, self.dstip, self.srcport, self.dstport, self.proto)


def synth_flow_ids(rng: np.random.Generator, n_flows: int,
                   proto: int = 6) -> dict[str, np.ndarray]:
    """Random distinct 5-tuples as parallel arrays.

    Addresses are drawn from a /8-style space, ports from the ephemeral
    range; collisions are retried so all 5-tuples are distinct.
    """
    collected: list[np.ndarray] = []
    count = 0
    while count < n_flows:
        batch = max(1024, n_flows - count)
        a = rng.integers(0x0A000000, 0x0AFFFFFF, batch)
        b = rng.integers(0x0A000000, 0x0AFFFFFF, batch)
        sp = rng.integers(1024, 65535, batch)
        dp = rng.choice(np.array([80, 443, 8080, 5001, 6379, 9092]), batch)
        quad = np.stack([a, b, sp, dp], axis=1)
        quad = np.unique(quad, axis=0)
        rng.shuffle(quad, axis=0)
        collected.append(quad)
        count += len(quad)
    quads = np.concatenate(collected)[:n_flows]
    # Deduplicate across batches (collisions are astronomically rare in
    # this space; top up if any were removed).
    quads = np.unique(quads, axis=0)
    while len(quads) < n_flows:
        extra = rng.integers(0x0A000000, 0x0AFFFFFF, (n_flows - len(quads), 4))
        extra[:, 2] = rng.integers(1024, 65535, len(extra))
        extra[:, 3] = 443
        quads = np.unique(np.concatenate([quads, extra]), axis=0)
    quads = quads[:n_flows]
    protos = np.full(n_flows, proto, dtype=np.int64)
    return {"srcip": quads[:, 0], "dstip": quads[:, 1], "srcport": quads[:, 2],
            "dstport": quads[:, 3], "proto": protos}


def per_flow_prefix(flow_of: np.ndarray, increments: np.ndarray,
                    start: int = 0) -> np.ndarray:
    """Per-flow *exclusive* prefix sums in stream order.

    ``out[i] = start + Σ increments[j]`` over earlier packets ``j`` of
    packet ``i``'s flow — the vectorized form of the classic
    ``next_value[flow] += increment`` loop used for TCP sequence
    progressions.  Stable sort by flow keeps stream order within each
    flow, so results match the sequential loop exactly (integer
    arithmetic throughout).
    """
    n = len(flow_of)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    order = np.argsort(flow_of, kind="stable")
    inc_sorted = increments[order].astype(np.int64)
    exclusive = np.cumsum(inc_sorted) - inc_sorted
    flow_sorted = flow_of[order]
    starts = np.zeros(n, dtype=bool)
    starts[0] = True
    starts[1:] = flow_sorted[1:] != flow_sorted[:-1]
    base = exclusive[starts]
    segment = np.cumsum(starts) - 1
    out = np.empty(n, dtype=np.int64)
    out[order] = start + exclusive - base[segment]
    return out


def expand_flows_to_packets(
    rng: np.random.Generator,
    flow_sizes: np.ndarray,
    flow_starts: np.ndarray,
    mean_gaps: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Expand per-flow schedules into a merged packet sequence.

    Args:
        flow_sizes: Packets per flow.
        flow_starts: Flow start times (ns).
        mean_gaps: Mean in-flow packet gap (ns) per flow.

    Returns:
        ``(flow_index, time_ns)`` arrays sorted by time: for each
        packet, which flow it belongs to and when it arrives.
    """
    n_packets = int(flow_sizes.sum())
    flow_index = np.repeat(np.arange(len(flow_sizes), dtype=np.int64), flow_sizes)
    # Exponential gaps per packet, scaled by the owning flow's mean gap.
    gaps = rng.exponential(1.0, n_packets) * mean_gaps[flow_index]
    gaps = np.maximum(1.0, gaps)
    # Per-flow cumulative sums: global cumsum minus the offset at each
    # flow boundary (standard segmented-cumsum trick).
    csum = np.cumsum(gaps)
    boundaries = np.zeros(len(flow_sizes) + 1, dtype=np.int64)
    np.cumsum(flow_sizes, out=boundaries[1:])
    # Offset per flow: csum value just before the flow's first packet.
    starts_idx = boundaries[:-1]
    offsets = np.where(starts_idx > 0, csum[starts_idx - 1], 0.0)
    per_flow_elapsed = csum - np.repeat(offsets, flow_sizes)
    times = np.repeat(flow_starts.astype(np.float64), flow_sizes) + per_flow_elapsed
    order = np.argsort(times, kind="stable")
    return flow_index[order], times[order].astype(np.int64)
