"""Structured control-flow analysis for resource lifetimes.

The lifecycle checker (``RPR-C201``/``RPR-C202``) has to *prove* that
an acquired resource — a ``SharedMemory`` segment, a socket, a file
handle — is released on every path out of the acquiring function,
including the paths the happy-path tests never take: an exception
between the acquisition and the ``try`` that was meant to guard it, an
early ``return``, a ``break`` that skips the close.

This module implements that proof as an abstract interpretation over
the *structured* control flow of one function: each statement
transforms a small set of abstract states for one tracked name —

``UNTRACKED``  the name does not (yet / any longer) hold the resource
``HELD``       the resource is live and this frame owns it
``RELEASED``   a release call ran (``.close()``/``.unlink()``/
               ``release_*(name)``)
``ESCAPED``    ownership left the frame (returned, stored on an
               object/container, passed to a call) — some other owner
               is now responsible

— and control-flow edges are tracked per *outcome class*: fall-through,
``return``, exception, ``break``, ``continue``.  ``try``/``except``/
``finally``, ``with``, and loops (to a fixed point) route the state
sets exactly the way CPython routes control: exceptions raised in a
``try`` body enter each handler with the state *at the raise point*,
bypass non-broad handlers, and everything funnels through ``finally``.

Two deliberate approximations keep the walk noise-free:

* a release call is atomic (it cannot raise and leak) — guarding the
  guard would demand ``finally`` inside every ``finally``;
* only statements containing a call (or ``assert``/``yield``/
  ``await``) can raise — attribute and index errors on plain data are
  treated as logic bugs, not leak paths.

Branch conditions of the shape ``if name:`` / ``if name is not None:``
are refined: a held resource is never ``None`` (and never falsy), so
the ``None`` arm only carries the untracked state.  This is what lets
the canonical ``finally: if handle is not None: handle.close()``
pattern verify cleanly.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = ["ESCAPED", "HELD", "Outcomes", "RELEASED", "ResourceWalker",
           "UNTRACKED"]

UNTRACKED = "untracked"
HELD = "held"
RELEASED = "released"
ESCAPED = "escaped"

#: Methods on the tracked name that release the underlying resource.
RELEASE_METHODS = frozenset({
    "close", "unlink", "release", "shutdown", "terminate", "detach",
})
#: A free-function release: ``release_shared_memory(shm)`` and kin —
#: the function name mentions releasing and the tracked name is an
#: argument.
RELEASE_NAME_HINTS = ("close", "release", "unlink")

_BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException"})


@dataclass
class Outcomes:
    """The abstract states leaving a statement block, per exit class.

    ``ret`` and ``exc`` carry ``(state, lineno)`` pairs so a finding
    can name the return statement / raise point that leaks.
    """

    fall: set[str] = field(default_factory=set)
    ret: set[tuple[str, int]] = field(default_factory=set)
    exc: set[tuple[str, int]] = field(default_factory=set)
    brk: set[str] = field(default_factory=set)
    cont: set[str] = field(default_factory=set)

    def absorb(self, other: "Outcomes") -> None:
        """Merge the abrupt exits of ``other`` (everything but fall)."""
        self.ret |= other.ret
        self.exc |= other.exc
        self.brk |= other.brk
        self.cont |= other.cont


def _is_broad_handler(type_node: ast.expr | None) -> bool:
    if type_node is None:
        return True
    if isinstance(type_node, ast.Name):
        return type_node.id in _BROAD_EXCEPTIONS
    if isinstance(type_node, ast.Tuple):
        return any(isinstance(e, ast.Name) and e.id in _BROAD_EXCEPTIONS
                   for e in type_node.elts)
    return False


def _contains_raising_expr(node: ast.AST) -> bool:
    return any(isinstance(n, (ast.Call, ast.Await, ast.Yield,
                              ast.YieldFrom))
               for n in ast.walk(node))


class ResourceWalker:
    """Track one acquisition (``name = <acquire-call>``) through the
    enclosing function body."""

    def __init__(self, name: str, acquisition: ast.stmt) -> None:
        self.name = name
        self.acquisition = acquisition

    # -- entry ---------------------------------------------------------------

    def walk_function(self, func: ast.AST) -> Outcomes:
        out = self._walk(func.body, {UNTRACKED})
        # loose break/continue cannot occur at function level
        return out

    # -- helpers -------------------------------------------------------------

    def _bare_name_in(self, node: ast.AST | None) -> bool:
        """Is the tracked name used *as an object* (not merely as the
        base of an attribute read like ``shm.buf``)?"""
        if node is None:
            return False
        attr_bases = {id(n.value) for n in ast.walk(node)
                      if isinstance(n, ast.Attribute)}
        return any(isinstance(n, ast.Name) and n.id == self.name
                   and id(n) not in attr_bases
                   for n in ast.walk(node))

    def _is_release_stmt(self, stmt: ast.stmt) -> bool:
        if not isinstance(stmt, ast.Expr) or \
                not isinstance(stmt.value, ast.Call):
            return False
        call = stmt.value
        func = call.func
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == self.name
                and func.attr in RELEASE_METHODS):
            return True
        if isinstance(func, ast.Name):
            fname = func.id.lower()
        elif isinstance(func, ast.Attribute):
            fname = func.attr.lower()
        else:
            return False
        return (any(hint in fname for hint in RELEASE_NAME_HINTS)
                and any(isinstance(a, ast.Name) and a.id == self.name
                        for a in call.args))

    def _rebinds(self, stmt: ast.stmt) -> bool:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            targets = [stmt.target]
        elif isinstance(stmt, ast.Delete):
            targets = stmt.targets
        for target in targets:
            for n in ast.walk(target):
                if isinstance(n, ast.Name) and n.id == self.name:
                    return True
        return False

    def _escape_exprs(self, stmt: ast.stmt) -> list[ast.AST]:
        """The parts of a simple statement where a bare use of the name
        hands ownership away (excludes rebinding targets)."""
        if isinstance(stmt, ast.Assign):
            # a bare use in a *subscript/attribute* target also stores
            # the object somewhere: d[k] = name / self.x = name
            parts: list[ast.AST] = [stmt.value]
            parts += [t for t in stmt.targets
                      if not isinstance(t, ast.Name)]
            return parts
        if isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            return [stmt.value] if stmt.value is not None else []
        if isinstance(stmt, ast.Expr):
            return [stmt.value]
        if isinstance(stmt, ast.Assert):
            return [stmt.test]
        if isinstance(stmt, (ast.Delete, ast.Pass, ast.Import,
                             ast.ImportFrom, ast.Global, ast.Nonlocal)):
            return []
        return [stmt]

    def _refine(self, test: ast.expr, states: set[str],
                truthy: bool) -> set[str]:
        """Filter states through a branch condition on the tracked
        name: a held/released resource object is never None / falsy."""
        if isinstance(test, ast.Constant):
            # `while True:` never falls through its false branch
            return set(states) if bool(test.value) == truthy else set()
        is_name = isinstance(test, ast.Name) and test.id == self.name
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            return self._refine(test.operand, states, not truthy)
        is_none_cmp = is_not_none_cmp = False
        if (isinstance(test, ast.Compare) and len(test.ops) == 1
                and isinstance(test.left, ast.Name)
                and test.left.id == self.name
                and isinstance(test.comparators[0], ast.Constant)
                and test.comparators[0].value is None):
            is_none_cmp = isinstance(test.ops[0], ast.Is)
            is_not_none_cmp = isinstance(test.ops[0], ast.IsNot)
        definite = (is_name or is_not_none_cmp, is_none_cmp)
        if definite[0]:      # `name` / `name is not None`: live states
            keep_live = truthy
        elif definite[1]:    # `name is None`: live states are false
            keep_live = not truthy
        else:
            return set(states)
        if keep_live:
            return set(states)
        return {s for s in states if s == UNTRACKED}

    # -- the walk ------------------------------------------------------------

    def _walk(self, stmts: list[ast.stmt], states: set[str]) -> Outcomes:
        out = Outcomes()
        cur = set(states)
        for stmt in stmts:
            if not cur:
                break
            step = self._step(stmt, cur)
            out.absorb(step)
            cur = step.fall
        out.fall = cur
        return out

    def _step(self, stmt: ast.stmt, states: set[str]) -> Outcomes:
        if isinstance(stmt, ast.If):
            return self._step_if(stmt, states)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._step_loop(stmt, states)
        if isinstance(stmt, ast.Try):
            return self._step_try(stmt, states)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._step_with(stmt, states)
        if isinstance(stmt, ast.Return):
            return self._step_return(stmt, states)
        if isinstance(stmt, ast.Raise):
            out = Outcomes()
            out.exc = {(s, stmt.lineno) for s in states}
            return out
        if isinstance(stmt, ast.Break):
            out = Outcomes()
            out.brk = set(states)
            return out
        if isinstance(stmt, ast.Continue):
            out = Outcomes()
            out.cont = set(states)
            return out
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            out = Outcomes()
            # defining a closure over the name publishes it
            captured = any(isinstance(n, ast.Name) and n.id == self.name
                           for n in ast.walk(stmt))
            out.fall = {ESCAPED if captured and s == HELD else s
                        for s in states}
            return out
        return self._step_simple(stmt, states)

    def _step_simple(self, stmt: ast.stmt, states: set[str]) -> Outcomes:
        out = Outcomes()
        is_acq = stmt is self.acquisition
        release = (not is_acq) and self._is_release_stmt(stmt)
        may_raise = (not release) and (
            isinstance(stmt, (ast.Assert, ast.Import, ast.ImportFrom))
            or _contains_raising_expr(stmt))
        if may_raise and HELD in states:
            out.exc.add((HELD, stmt.lineno))
        escapes = (not release) and any(
            self._bare_name_in(part) for part in self._escape_exprs(stmt))
        rebinds = self._rebinds(stmt)
        for s in states:
            if is_acq:
                out.fall.add(HELD)
                continue
            if release:
                out.fall.add(RELEASED if s == HELD else s)
                continue
            ns = ESCAPED if (escapes and s == HELD) else s
            if rebinds:
                ns = UNTRACKED
            out.fall.add(ns)
        return out

    def _step_if(self, stmt: ast.If, states: set[str]) -> Outcomes:
        out = Outcomes()
        if _contains_raising_expr(stmt.test) and HELD in states:
            out.exc.add((HELD, stmt.lineno))
        then_out = self._walk(stmt.body,
                              self._refine(stmt.test, states, True))
        else_out = self._walk(stmt.orelse,
                              self._refine(stmt.test, states, False))
        out.absorb(then_out)
        out.absorb(else_out)
        out.fall = then_out.fall | else_out.fall
        return out

    def _step_loop(self, stmt: ast.stmt, states: set[str]) -> Outcomes:
        out = Outcomes()
        is_while = isinstance(stmt, ast.While)
        head = stmt.test if is_while else stmt.iter
        if _contains_raising_expr(head) and HELD in states:
            out.exc.add((HELD, stmt.lineno))
        if not is_while and self._bare_name_in(head):
            states = {ESCAPED if s == HELD else s for s in states}
        entry = set(states)
        body_out = Outcomes()
        while True:
            body_states = (self._refine(stmt.test, entry, True)
                           if is_while else set(entry))
            if not is_while:
                # the loop target rebinds; drop tracking if it's ours
                if any(isinstance(n, ast.Name) and n.id == self.name
                       for n in ast.walk(stmt.target)):
                    body_states = {UNTRACKED for _ in body_states} or set()
            body_out = self._walk(stmt.body, body_states)
            new_entry = entry | body_out.fall | body_out.cont
            if new_entry == entry:
                break
            entry = new_entry
        out.absorb(body_out)
        out.brk = set()          # breaks terminate here, at this loop
        out.cont = set()
        exits = set(body_out.brk)
        if is_while:
            exits |= self._refine(stmt.test, entry, False)
        else:
            exits |= entry       # a for loop exits when iteration ends
        orelse_out = self._walk(stmt.orelse, set(exits))
        out.absorb(orelse_out)
        out.fall = orelse_out.fall if stmt.orelse else exits
        if stmt.orelse:
            # `break` skips orelse
            out.fall |= body_out.brk
        return out

    def _step_try(self, stmt: ast.Try, states: set[str]) -> Outcomes:
        out = Outcomes()
        body_out = self._walk(stmt.body, states)
        out.ret |= body_out.ret
        out.brk |= body_out.brk
        out.cont |= body_out.cont
        exc_states = {s for s, _ in body_out.exc}
        fall = set()
        caught_all = False
        for handler in stmt.handlers:
            h_out = self._walk(handler.body, set(exc_states))
            out.absorb(h_out)
            fall |= h_out.fall
            if _is_broad_handler(handler.type):
                caught_all = True
        if not caught_all:
            out.exc |= body_out.exc
        if stmt.orelse:
            o_out = self._walk(stmt.orelse, set(body_out.fall))
            out.absorb(o_out)
            fall |= o_out.fall
        else:
            fall |= body_out.fall
        out.fall = fall
        if stmt.finalbody:
            out = self._through_finally(stmt.finalbody, out)
        return out

    def _through_finally(self, finalbody: list[ast.stmt],
                         out: Outcomes) -> Outcomes:
        cache: dict[str, Outcomes] = {}

        def transform(state: str) -> Outcomes:
            if state not in cache:
                cache[state] = self._walk(finalbody, {state})
            return cache[state]

        new = Outcomes()
        for s in out.fall:
            new.fall |= transform(s).fall
        for s, ln in out.ret:
            new.ret |= {(s2, ln) for s2 in transform(s).fall}
        for s, ln in out.exc:
            new.exc |= {(s2, ln) for s2 in transform(s).fall}
        for s in out.brk:
            new.brk |= transform(s).fall
        for s in out.cont:
            new.cont |= transform(s).fall
        for f_out in cache.values():
            new.absorb(f_out)    # abrupt exits of the finally itself
        return new

    def _step_with(self, stmt: ast.stmt, states: set[str]) -> Outcomes:
        out = Outcomes()
        closes = False
        rebinds = False
        for item in stmt.items:
            ce = item.context_expr
            if _contains_raising_expr(ce) and HELD in states:
                out.exc.add((HELD, stmt.lineno))
            if isinstance(ce, ast.Name) and ce.id == self.name:
                closes = True
            elif (isinstance(ce, ast.Call)
                  and isinstance(ce.func, ast.Name)
                  and ce.func.id == "closing"
                  and any(isinstance(a, ast.Name) and a.id == self.name
                          for a in ce.args)):
                closes = True
            elif self._bare_name_in(ce):
                # handed to some other context manager: ownership moves
                states = {ESCAPED if s == HELD else s for s in states}
            if item.optional_vars is not None and any(
                    isinstance(n, ast.Name) and n.id == self.name
                    for n in ast.walk(item.optional_vars)):
                rebinds = True
        body_states = {UNTRACKED} if rebinds else set(states)
        b_out = self._walk(stmt.body, body_states)
        if closes:
            fix = (lambda s: RELEASED if s == HELD else s)
            b_out.fall = {fix(s) for s in b_out.fall}
            b_out.ret = {(fix(s), ln) for s, ln in b_out.ret}
            b_out.exc = {(fix(s), ln) for s, ln in b_out.exc}
            b_out.brk = {fix(s) for s in b_out.brk}
            b_out.cont = {fix(s) for s in b_out.cont}
        out.absorb(b_out)
        out.fall = b_out.fall
        return out

    def _step_return(self, stmt: ast.Return, states: set[str]) -> Outcomes:
        out = Outcomes()
        raising = stmt.value is not None and \
            _contains_raising_expr(stmt.value)
        escapes = self._bare_name_in(stmt.value)
        for s in states:
            if raising and s == HELD:
                out.exc.add((HELD, stmt.lineno))
            final = ESCAPED if (escapes and s == HELD) else s
            out.ret.add((final, stmt.lineno))
        return out
