"""AST-based self-lint for determinism-critical modules.

Checkpoint/restore, shard combining, and the exact scalar-replay
fallback are all bit-replay arguments: re-executing the same stream
must produce the same state.  Wall-clock reads (``time.time``) and
shared module-level randomness (``random.random()`` and friends, the
legacy ``np.random`` global generator, unseeded ``random.Random()``)
silently break that argument, and no behavioural test reliably
catches a freshly introduced one.  This lint walks the AST of every
replay/checkpoint/shard module and forbids them outright;
``time.monotonic``/``time.sleep`` and explicitly seeded
``random.Random(seed)`` instances remain allowed.
"""

import ast
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Modules whose behaviour must be a pure function of (stream, seed):
#: the replacement engines and stores replayed by checkpoint/restore,
#: the session/checkpoint layer itself, the shard worker fabric, and
#: the fault injector that tests determinism claims.
LINTED_MODULES = sorted(
    list((SRC / "switch" / "kvstore").glob("*.py"))
    + [
        SRC / "core" / "vector_exec.py",
        SRC / "core" / "interpreter.py",
        SRC / "telemetry" / "checkpoint.py",
        SRC / "telemetry" / "session.py",
        SRC / "telemetry" / "shard_exec.py",
        SRC / "telemetry" / "faults.py",
    ]
)

ALLOWED_RANDOM_ATTRS = {"Random", "SystemRandom"}


def _is_module_attr(node: ast.AST, module: str, attr: str | None = None) -> bool:
    return (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == module
            and (attr is None or node.attr == attr))


def find_violations(source: str, path: str = "<string>") -> list[str]:
    """All determinism-lint violations in ``source``."""
    tree = ast.parse(source, filename=path)
    violations: list[str] = []

    def flag(node: ast.AST, message: str) -> None:
        violations.append(f"{path}:{node.lineno}: {message}")

    for node in ast.walk(tree):
        # wall clock: time.time (time.monotonic / time.sleep are fine)
        if _is_module_attr(node, "time", "time"):
            flag(node, "time.time is wall clock; replay needs "
                       "stream-position time (use the record's tin/tout "
                       "or time.monotonic for non-replayed timeouts)")
        # shared module-level Mersenne Twister: random.<anything> except
        # instantiating an explicitly seeded generator
        if (_is_module_attr(node, "random")
                and node.attr not in ALLOWED_RANDOM_ATTRS):
            flag(node, f"random.{node.attr} uses the shared module-level "
                       "generator; use a seeded random.Random(seed) "
                       "instance")
        # legacy numpy global generator (np.random.* / numpy.random.*)
        if (isinstance(node, ast.Attribute)
                and (_is_module_attr(node.value, "np", "random")
                     or _is_module_attr(node.value, "numpy", "random"))):
            flag(node, f"np.random.{node.attr} uses numpy's global "
                       "generator; pass a Generator seeded from the "
                       "session seed")
        # unseeded random.Random() — a fresh MT seeded from the OS
        if (isinstance(node, ast.Call)
                and _is_module_attr(node.func, "random", "Random")
                and not node.args and not node.keywords):
            flag(node, "random.Random() without a seed draws OS entropy; "
                       "seed it from the session/shard seed")
    return violations


def test_linted_module_set_is_nonempty_and_present():
    assert len(LINTED_MODULES) >= 10
    for path in LINTED_MODULES:
        assert path.is_file(), path


@pytest.mark.parametrize("path", LINTED_MODULES, ids=lambda p: p.stem)
def test_no_wall_clock_or_shared_randomness(path):
    violations = find_violations(path.read_text(), str(path))
    assert not violations, "\n".join(violations)


class TestLinterCatchesViolations:
    """The lint itself must fire — otherwise a silent regression in
    these rules would pass every module forever."""

    def test_flags_wall_clock(self):
        out = find_violations("import time\nt = time.time()\n")
        assert len(out) == 1 and "wall clock" in out[0]

    def test_allows_monotonic_and_sleep(self):
        src = "import time\nt = time.monotonic()\ntime.sleep(0.1)\n"
        assert find_violations(src) == []

    def test_flags_shared_mt(self):
        for call in ("random.random()", "random.randrange(5)",
                     "random.seed(1)", "random.uniform(0, 1)"):
            out = find_violations(f"import random\nx = {call}\n")
            assert out and "shared module-level" in out[0], call

    def test_allows_seeded_random_instance(self):
        src = "import random\nrng = random.Random(42)\nx = rng.random()\n"
        assert find_violations(src) == []

    def test_flags_unseeded_random_instance(self):
        out = find_violations("import random\nrng = random.Random()\n")
        assert len(out) == 1 and "without a seed" in out[0]

    def test_flags_numpy_global_generator(self):
        for call in ("np.random.rand(3)", "np.random.default_rng()",
                     "numpy.random.shuffle(x)"):
            out = find_violations(f"x = {call}\n")
            assert out and "global" in out[0], call

    def test_allows_seeded_generator_objects(self):
        src = "rng = np.random\n"  # bare module alias is not a draw
        # an Attribute chain np.random with no further attr is not flagged
        assert find_violations("import numpy as np\n" + src) == []
