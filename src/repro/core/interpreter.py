"""Reference interpreter for performance queries.

Evaluates a resolved program directly over an observation table (any
iterable of packet records), with no cache, eviction, or merge
machinery.  Its results are exact by construction, which makes it

* the ground truth against which the hardware model's backing-store
  contents are compared (accuracy evaluation, Fig. 6), and
* the software fallback the telemetry runtime uses for query stages
  that run off-switch (downstream stages of composed queries, and the
  relational part of ``JOIN``).

Result representation: a *keyed* query produces a ``ResultTable`` whose
rows are dicts keyed by column name; the key columns identify each row.
A non-keyed ``SELECT`` over the packet stream produces a streaming list
of row dicts in packet order.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

import numpy as np

from .ast_nodes import Expr
from .errors import InterpreterError
from .eval_expr import EvalContext, Numeric, evaluate, evaluate_predicate
from .linearity import if_convert
from .semantics import (
    FoldInstance,
    ResolvedProgram,
    ResolvedQuery,
    TableSchema,
)

Row = dict[str, Numeric]


class ResultTable:
    """Materialised result of one query.

    Like :class:`~repro.network.records.ObservationTable`, the table is
    in exactly one of two authority states:

    * *columnar* — built by :meth:`from_columns` (the vectorized
      executor and the bulk split-store path); per-column numpy arrays
      are the canonical storage and row dicts are materialised only on
      demand.  Column reads (:meth:`columns`, :meth:`to_columns`,
      :meth:`column`) and length are O(1)-per-column.
    * *row* — a mutable list of row dicts; entered on construction from
      rows or the first time :attr:`rows` is touched (callers may
      mutate the list, so a retained columnar copy cannot be kept
      coherent and is dropped).

    Materialised rows hold native Python scalars (numpy arrays convert
    via ``tolist``), so they are indistinguishable from rows the
    row-at-a-time evaluator produces.
    """

    __slots__ = ("schema", "_rows", "_columns", "_n")

    def __init__(self, schema: TableSchema, rows: list[Row] | None = None):
        self.schema = schema
        self._rows: list[Row] | None = rows if rows is not None else []
        self._columns: dict[str, object] | None = None
        self._n = 0

    @property
    def name(self) -> str:
        return self.schema.name

    # -- authority management ------------------------------------------------

    @property
    def is_columnar(self) -> bool:
        """True when the canonical storage is the column dict."""
        return self._columns is not None

    @property
    def rows(self) -> list[Row]:
        """The mutable row list; materialised from columns on demand
        (which drops the columnar storage — the caller may mutate)."""
        if self._rows is None:
            self._rows = self._materialize_rows()
            self._columns = None
        return self._rows

    @rows.setter
    def rows(self, rows: list[Row]) -> None:
        self._rows = rows
        self._columns = None

    def _materialize_rows(self) -> list[Row]:
        columns = self._columns
        assert columns is not None
        names = list(columns)
        data = [
            column.tolist() if hasattr(column, "tolist") else list(column)
            for column in columns.values()
        ]
        return [dict(zip(names, values)) for values in zip(*data)]

    def __len__(self) -> int:
        if self._rows is not None:
            return len(self._rows)
        return self._n

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def by_key(self) -> dict[tuple, Row]:
        """Index rows by the table's key columns (keyed tables only)."""
        if not self.schema.keyed:
            raise InterpreterError(f"table {self.name!r} is not keyed")
        return {
            tuple(row[k] for k in self.schema.key_columns): row for row in self.rows
        }

    def column(self, name: str) -> list[Numeric]:
        col = self.schema.resolve(name)
        if col is None:
            raise InterpreterError(f"table {self.name!r} has no column {name!r}")
        if self._columns is not None and col.name in self._columns:
            values = self._columns[col.name]
            return values.tolist() if hasattr(values, "tolist") else list(values)
        return [row[col.name] for row in self.rows]

    def sort_key(self) -> "ResultTable":
        """Rows sorted by key columns — convenient for stable output."""
        if not self.schema.keyed:
            return self
        key_columns = self.schema.key_columns
        if self._columns is not None and all(
                isinstance(self._columns.get(k), np.ndarray)
                for k in key_columns):
            order = np.lexsort([self._columns[k]
                                for k in reversed(key_columns)])
            self._columns = {
                name: col[order] if isinstance(col, np.ndarray)
                else [col[i] for i in order.tolist()]
                for name, col in self._columns.items()
            }
            return self
        self.rows.sort(key=lambda r: tuple(r[k] for k in key_columns))
        return self

    # -- columnar bridge (used by the vectorized executor) -------------------

    @classmethod
    def from_columns(cls, schema: TableSchema, columns: Mapping[str, object]) -> "ResultTable":
        """Build a table with columnar authority from per-column
        arrays/lists; row dicts are built lazily (see class docstring)."""
        table = cls.__new__(cls)
        table.schema = schema
        table._rows = None
        table._columns = dict(columns)
        table._n = max((len(c) for c in table._columns.values()), default=0)
        return table

    def columns(self) -> dict[str, object]:
        """The per-column storage (arrays for columnar tables; built
        from the rows otherwise).  Treat the result as read-only."""
        if self._columns is not None:
            return self._columns
        return self.to_columns()

    def to_columns(self) -> dict[str, list[Numeric]]:
        """Per-column value lists for every schema column present in the
        rows — the input form the vectorized executor consumes."""
        if self._columns is not None:
            return {
                name: (col.tolist() if hasattr(col, "tolist") else list(col))
                for name, col in self._columns.items()
            }
        if not self.rows:
            return {name: [] for name in self.schema.column_names()}
        present = [name for name in self.schema.column_names()
                   if name in self.rows[0]]
        return {name: [row[name] for row in self.rows] for name in present}


class GroupState:
    """Accumulator for one grouping key: per-fold state dicts."""

    __slots__ = ("states",)

    def __init__(self, folds: tuple[FoldInstance, ...]):
        self.states: dict[str, dict[str, Numeric]] = {
            f.column: f.initial_state() for f in folds
        }


class Interpreter:
    """Evaluates a resolved program over an observation stream.

    Args:
        program: Output of :func:`repro.core.semantics.resolve_program`.
        params: Bindings for free query parameters.
    """

    def __init__(self, program: ResolvedProgram, params: Mapping[str, Numeric] | None = None):
        self.program = program
        self.params = dict(params or {})
        missing = set(program.params) - set(self.params)
        if missing:
            raise InterpreterError(
                f"unbound query parameters: {sorted(missing)}"
            )
        # Pre-compute per-fold update expressions (if-converted bodies):
        # evaluating one expression per state variable is both faster
        # and identical to the ALU semantics.
        self._updates: dict[tuple[str, str], dict[str, Expr]] = {}
        for query in program.queries:
            for fold in query.folds:
                self._updates[(query.name, fold.column)] = if_convert(
                    fold.body, fold.state_vars
                )

    # -- public API ---------------------------------------------------------

    def run(self, records: Iterable[object]) -> dict[str, ResultTable]:
        """Evaluate every query; returns tables keyed by query name."""
        tables: dict[str, ResultTable] = {}
        stream = list(records) if not isinstance(records, list) else records
        for query in self.program.queries:
            tables[query.name] = self._eval_query(query, stream, tables)
        return tables

    def run_result(self, records: Iterable[object]) -> ResultTable:
        """Evaluate and return only the program's result table."""
        return self.run(records)[self.program.result]

    def evaluate_stage(self, query_name: str, stream: list[object],
                       tables: dict[str, ResultTable]) -> ResultTable:
        """Evaluate a single named query over already-materialised
        upstream ``tables`` (and ``stream`` for base-table queries).

        Used by the telemetry runtime for software stages: upstream
        tables there come from switch backing stores rather than from
        this interpreter.
        """
        return self._eval_query(self.program.by_name(query_name), stream, tables)

    # -- evaluation ------------------------------------------------------------

    def _input_rows(self, query: ResolvedQuery, stream: list[object],
                    tables: dict[str, ResultTable]) -> Iterable[object]:
        if query.source is None:
            return stream
        return tables[query.source].rows

    def _eval_query(self, query: ResolvedQuery, stream: list[object],
                    tables: dict[str, ResultTable]) -> ResultTable:
        if query.kind == "select":
            return self._eval_select(query, self._input_rows(query, stream, tables))
        if query.kind == "groupby":
            return self._eval_groupby(query, self._input_rows(query, stream, tables))
        if query.kind == "join":
            return self._eval_join(query, tables)
        raise InterpreterError(f"unknown query kind {query.kind!r}")

    def _eval_select(self, query: ResolvedQuery, rows: Iterable[object]) -> ResultTable:
        out = ResultTable(schema=query.output)
        columns = query.output.columns
        for row in rows:
            ctx = EvalContext(row=row, params=self.params)
            if not evaluate_predicate(query.where, ctx):
                continue
            out.rows.append({
                col.name: evaluate(col.expr, ctx) for col in columns if col.expr is not None
            })
        return out

    def _eval_groupby(self, query: ResolvedQuery, rows: Iterable[object]) -> ResultTable:
        groups: dict[tuple, GroupState] = {}
        keys = query.groupby_keys
        for row in rows:
            ctx = EvalContext(row=row, params=self.params)
            if not evaluate_predicate(query.where, ctx):
                continue
            key = tuple(ctx.field(k) for k in keys)
            group = groups.get(key)
            if group is None:
                group = GroupState(query.folds)
                groups[key] = group
            for fold in query.folds:
                state = group.states[fold.column]
                updates = self._updates[(query.name, fold.column)]
                fctx = EvalContext(row=row, state=state, params=self.params)
                new_values = {
                    var: evaluate(expr, fctx) for var, expr in updates.items()
                }
                state.update(new_values)

        out = ResultTable(schema=query.output)
        for key, group in groups.items():
            out.rows.append(self._emit_group_row(query, key, group))
        return out

    def _emit_group_row(self, query: ResolvedQuery, key: tuple,
                        group: GroupState) -> Row:
        row: Row = dict(zip(query.groupby_keys, key))
        for col in query.output.columns:
            if col.kind == "agg":
                row[col.name] = group.states[col.fold][col.state_var]
            elif col.kind == "derived":
                state = group.states[col.fold]
                ctx = EvalContext(state=state, params=self.params)
                row[col.name] = evaluate(col.read_expr, ctx)
        return row

    def _eval_join(self, query: ResolvedQuery,
                   tables: dict[str, ResultTable]) -> ResultTable:
        left = tables[query.join_left]
        right = tables[query.join_right]
        right_index = {
            tuple(row[k] for k in query.join_on): row for row in right.rows
        }
        out = ResultTable(schema=query.output)
        for lrow in left.rows:
            key = tuple(lrow[k] for k in query.join_on)
            rrow = right_index.get(key)
            if rrow is None:
                continue  # inner join
            qualified = {query.join_left: lrow, query.join_right: rrow}
            ctx = EvalContext(row=lrow, params=self.params, qualified_rows=qualified)
            if not evaluate_predicate(query.where, ctx):
                continue
            result_row: Row = dict(zip(query.join_on, key))
            for col in query.output.columns:
                if col.kind == "expr" and col.expr is not None:
                    result_row[col.name] = evaluate(col.expr, ctx)
            out.rows.append(result_row)
        return out


def run_query(source: str, records: Iterable[object],
              params: Mapping[str, Numeric] | None = None) -> ResultTable:
    """One-shot convenience: parse, resolve, and evaluate query text."""
    from .parser import parse_program
    from .semantics import resolve_program

    program = resolve_program(parse_program(source))
    return Interpreter(program, params=params).run_result(records)
