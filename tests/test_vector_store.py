"""Differential property tests: the schedule-driven vectorized split
store (:mod:`repro.switch.kvstore.vector_store`) must be bit-identical
to the per-packet reference store on every observable — result tables
(valid-only and ``include_invalid``), cache counters, backing-store
writes, accuracy, refresh counts, and per-key segment structure — over
the full query catalog, every eviction policy and geometry class, and
adversarial key streams."""

import numpy as np
import pytest

from repro.core.compiler import CompileOptions, compile_program
from repro.core.errors import HardwareError
from repro.core.parser import parse_program
from repro.core.semantics import resolve_program
from repro.network.records import ObservationTable
from repro.queries.catalog import ALL_QUERIES
from repro.switch.alu import compile_key_extractor, compile_predicate
from repro.switch.kvstore.cache import CacheGeometry
from repro.switch.kvstore.split import SplitKeyValueStore
from repro.switch.kvstore.vector_store import VectorSplitStore
from repro.switch.pipeline import SwitchPipeline
from repro.telemetry.runtime import QueryEngine

from tests.conftest import synthetic_trace

EWMA = ("def ewma (e, (tin, tout)): e = (1 - alpha) * e + alpha * (tout - tin)\n"
        "SELECT srcip, ewma GROUPBY srcip")
OOS = ("def outofseq ((lastseq, oos_count), (tcpseq, payload_len)):\n"
       "    if lastseq + 1 != tcpseq:\n"
       "        oos_count = oos_count + 1\n"
       "    lastseq = tcpseq + payload_len\n\n"
       "SELECT 5tuple, outofseq GROUPBY 5tuple WHERE proto == TCP")
NONMT = ("def nonmt ((maxseq, nm_count), tcpseq):\n"
         "    if maxseq > tcpseq:\n"
         "        nm_count = nm_count + 1\n"
         "    maxseq = max(maxseq, tcpseq)\n\n"
         "SELECT 5tuple, nonmt GROUPBY 5tuple WHERE proto == TCP")
COUNT = "SELECT COUNT GROUPBY srcip"

GEOMETRIES = {
    "hash_table": CacheGeometry.hash_table(16),
    "fully_associative": CacheGeometry.fully_associative(8),
    "8way": CacheGeometry.set_associative(16, ways=4),
}


def compile_stage(source, exact_history=False):
    rp = resolve_program(parse_program(source))
    return compile_program(rp, CompileOptions(exact_history=exact_history)) \
        .groupby_stages[0]


def run_both(stage, trace, geometry, params=None, policy="lru", seed=0,
             refresh_interval=None):
    """Feed one trace through both store engines; return the pair."""
    params = dict(params or {})
    row = SplitKeyValueStore(stage, geometry, params=params, policy=policy,
                             seed=seed, refresh_interval=refresh_interval)
    vec = VectorSplitStore(stage, geometry, params=params, policy=policy,
                           seed=seed, refresh_interval=refresh_interval)
    predicate = compile_predicate(stage.where, params)
    extract = compile_key_extractor(stage.key.fields)
    for record in trace:
        if predicate(record):
            row.process_keyed(extract(record), record)
    columns = trace.columns()
    mask = np.asarray([bool(predicate(r)) for r in trace], dtype=bool)
    keys = np.column_stack([
        columns[f].astype(np.int64) for f in stage.key.fields
    ])[mask]
    vec.add_batch(keys, {f: columns[f][mask] for f in vec.needed_fields})
    return row, vec


def assert_identical(row, vec):
    assert row.result_table(include_invalid=True).rows == \
        vec.result_table(include_invalid=True).rows
    assert row.result_table().rows == vec.result_table().rows
    assert row.stats == vec.stats
    assert row.backing_writes == vec.backing_writes
    assert row.accuracy() == vec.accuracy()
    assert row.refreshes == vec.refreshes


class TestCatalog:
    """Every catalog query, hardware path end to end, row vs vector."""

    @pytest.fixture(scope="class")
    def trace(self):
        rows = synthetic_trace(n_packets=6000, n_flows=64, seed=11)
        return ObservationTable.from_arrays(rows.columns())

    @pytest.mark.parametrize("name", sorted(ALL_QUERIES))
    @pytest.mark.parametrize("exact_history", [False, True])
    def test_engine_reports_identical(self, name, exact_history, trace):
        entry = ALL_QUERIES[name]
        kwargs = dict(params=entry.default_params,
                      geometry=CacheGeometry.set_associative(64, ways=8),
                      exact_history=exact_history)
        row = QueryEngine(entry.source, engine="row", **kwargs) \
            .run(trace, include_invalid=True, with_ground_truth=True)
        vec = QueryEngine(entry.source, engine="vector", **kwargs) \
            .run(trace, include_invalid=True, with_ground_truth=True)
        for q in row.tables:
            assert row.tables[q].rows == vec.tables[q].rows, q
        assert row.cache_stats == vec.cache_stats
        assert row.backing_writes == vec.backing_writes
        assert row.accuracy == vec.accuracy
        for q in row.ground_truth:
            assert row.ground_truth[q].rows == vec.ground_truth[q].rows, q


class TestPoliciesAndGeometries:
    @pytest.fixture(scope="class")
    def trace(self):
        return synthetic_trace(n_packets=3000, n_flows=60, seed=5)

    @pytest.mark.parametrize("geometry", sorted(GEOMETRIES))
    @pytest.mark.parametrize("policy", ["lru", "fifo", "random"])
    @pytest.mark.parametrize("source", [COUNT, EWMA, NONMT],
                             ids=["count", "ewma", "nonmt"])
    def test_policy_geometry_grid(self, source, policy, geometry, trace):
        params = {"alpha": 0.25} if source is EWMA else None
        stage = compile_stage(source)
        row, vec = run_both(stage, trace, GEOMETRIES[geometry],
                            params=params, policy=policy, seed=3)
        assert_identical(row, vec)
        assert row.stats.evictions > 0   # the grid must exercise merging

    def test_multi_fold_stage(self, trace):
        stage = compile_stage("SELECT COUNT, SUM(pkt_len), AVG(qin) "
                              "GROUPBY srcip, dstip")
        row, vec = run_both(stage, trace,
                            CacheGeometry.set_associative(8, ways=2))
        assert_identical(row, vec)


class TestAdversarialStreams:
    """Hand-built key streams that stress the schedule machinery."""

    def make_trace(self, srcips, seed=0):
        n = len(srcips)
        rng = np.random.default_rng(seed)
        return ObservationTable.from_arrays({
            "srcip": np.asarray(srcips, dtype=np.int64),
            "tin": np.arange(n, dtype=np.int64),
            "tout": np.arange(n, dtype=np.int64) + 50.0,
            "pkt_len": rng.integers(40, 1500, size=n),
            "tcpseq": rng.integers(0, 1 << 20, size=n),
        })

    def check(self, srcips, source=COUNT, geometry=None, policy="lru",
              refresh_interval=None, params=None):
        stage = compile_stage(source)
        trace = self.make_trace(srcips)
        row, vec = run_both(stage, trace,
                            geometry or CacheGeometry.set_associative(8, ways=2),
                            policy=policy, refresh_interval=refresh_interval,
                            params=params)
        assert_identical(row, vec)

    def test_empty_stream(self):
        self.check([])

    def test_single_access(self):
        self.check([7])

    def test_single_key_repeated(self):
        self.check([42] * 500, source=EWMA, params={"alpha": 0.5})

    def test_all_unique_keys(self):
        self.check(list(range(500)))
        self.check(list(range(500)), source=NONMT)

    def test_eviction_ping_pong(self):
        # Keys cycling through a tiny fully associative cache: every
        # access past warm-up evicts.
        keys = [i % 5 for i in range(400)]
        self.check(keys, geometry=CacheGeometry.fully_associative(2))
        self.check(keys, geometry=CacheGeometry.fully_associative(2),
                   policy="fifo")

    def test_zipf_skew(self):
        rng = np.random.default_rng(8)
        keys = (rng.zipf(1.2, size=4000) % 300).tolist()
        self.check(keys)
        self.check(keys, source=NONMT, geometry=CacheGeometry.hash_table(32))

    def test_negative_key_values(self):
        self.check([-5, -1, 3, -5, -5, 2, -1] * 40)

    def test_refresh_on_adversarial_stream(self):
        keys = [i % 5 for i in range(400)]
        self.check(keys, geometry=CacheGeometry.fully_associative(2),
                   refresh_interval=7)
        self.check(keys, source=NONMT,
                   geometry=CacheGeometry.fully_associative(2),
                   refresh_interval=13)


class TestRefreshBatch:
    """Batch-path coverage for ``refresh_interval`` (§3.2 freshness):
    refresh counts, write inflation, per-key segment validity, and
    ``result_table(include_invalid=True)`` must match the row store."""

    @pytest.fixture(scope="class")
    def trace(self):
        return synthetic_trace(n_packets=2000, n_flows=24, seed=7)

    @pytest.mark.parametrize("interval", [1, 37, 100, 5000])
    def test_mergeable_refresh_identity(self, interval, trace):
        stage = compile_stage(COUNT)
        row, vec = run_both(stage, trace, CacheGeometry.fully_associative(64),
                            refresh_interval=interval)
        assert_identical(row, vec)

    def test_refresh_counts_exact(self, trace):
        stage = compile_stage(COUNT)
        row, vec = run_both(stage, trace, CacheGeometry.fully_associative(64),
                            refresh_interval=50)
        vec.finalize()                  # deferred engine: run the schedule
        assert vec.refreshes == row.refreshes == row.stats.accesses // 50

    def test_nonmergeable_segment_structure(self, trace):
        """Refresh trades validity for freshness on non-mergeable folds:
        the vector store must reproduce the exact per-key segment
        lists, not just the summary accuracy."""
        stage = compile_stage("SELECT MAX(tcpseq) GROUPBY srcip")
        row, vec = run_both(stage, trace, CacheGeometry.fully_associative(64),
                            refresh_interval=100)
        assert_identical(row, vec)
        assert row.accuracy() < 1.0     # refresh must invalidate keys
        for key in row.backing.keys():
            assert row.backing.segments_of(key, "MAX(tcpseq)") == \
                vec.backing.segments_of(key, "MAX(tcpseq)")
            assert row.backing.is_valid(key) == vec.backing.is_valid(key)

    def test_refresh_with_scale_and_history(self, trace):
        stage = compile_stage(EWMA)
        row, vec = run_both(stage, trace, CacheGeometry.set_associative(8, ways=2),
                            params={"alpha": 0.125}, refresh_interval=61)
        assert_identical(row, vec)
        stage = compile_stage(OOS, exact_history=True)
        row, vec = run_both(stage, trace, CacheGeometry.set_associative(8, ways=2),
                            refresh_interval=61)
        assert_identical(row, vec)
        assert row.backing_writes > 0


class TestStoreSurface:
    def test_bulk_and_materialised_results_agree(self):
        """The columnar bulk result path and the generic backing-store
        builder must produce identical tables."""
        stage = compile_stage(COUNT)
        trace = synthetic_trace(n_packets=1500, n_flows=40, seed=2)
        _, vec_bulk = run_both(stage, trace, CacheGeometry.set_associative(8, ways=2))
        _, vec_mat = run_both(stage, trace, CacheGeometry.set_associative(8, ways=2))
        vec_mat.finalize()
        _ = vec_mat.backing            # force materialisation first
        assert vec_bulk.result_table().rows == vec_mat.result_table().rows
        assert vec_bulk.accuracy() == vec_mat.accuracy()
        assert vec_bulk.backing_writes == vec_mat.backing.writes

    def test_batch_after_finalize_rejected(self):
        stage = compile_stage(COUNT)
        vec = VectorSplitStore(stage, CacheGeometry.set_associative(8, ways=2))
        vec.finalize()
        with pytest.raises(HardwareError):
            vec.add_batch(np.zeros((1, 1), dtype=np.int64), {})

    def test_per_record_processing_rejected(self):
        stage = compile_stage(COUNT)
        vec = VectorSplitStore(stage, CacheGeometry.set_associative(8, ways=2))
        with pytest.raises(HardwareError):
            vec.process(object())

    def test_invalid_refresh_interval_rejected(self):
        stage = compile_stage(COUNT)
        with pytest.raises(HardwareError):
            VectorSplitStore(stage, CacheGeometry.set_associative(8, ways=2),
                             refresh_interval=0)


class TestPipelineEngineKnob:
    def test_vector_mode_uses_vector_store(self):
        rp = resolve_program(parse_program(COUNT))
        program = compile_program(rp)
        trace = ObservationTable.from_arrays(
            synthetic_trace(n_packets=500, n_flows=10).columns())
        pipeline = SwitchPipeline(program,
                                  geometry=CacheGeometry.set_associative(8, ways=2),
                                  engine="vector")
        pipeline.run(trace)
        assert isinstance(pipeline.store_for(rp.result), VectorSplitStore)

    def test_row_mode_keeps_row_store(self):
        rp = resolve_program(parse_program(COUNT))
        program = compile_program(rp)
        trace = ObservationTable.from_arrays(
            synthetic_trace(n_packets=500, n_flows=10).columns())
        pipeline = SwitchPipeline(program,
                                  geometry=CacheGeometry.set_associative(8, ways=2),
                                  engine="row")
        pipeline.run(trace)
        assert isinstance(pipeline.store_for(rp.result), SplitKeyValueStore)

    def test_invalid_engine_rejected(self):
        program = compile_program(resolve_program(parse_program(COUNT)))
        with pytest.raises(HardwareError):
            SwitchPipeline(program, engine="warp")

    def test_mixing_batch_then_record_rejected(self):
        rp = resolve_program(parse_program(COUNT))
        program = compile_program(rp)
        trace = ObservationTable.from_arrays(
            synthetic_trace(n_packets=200, n_flows=5).columns())
        pipeline = SwitchPipeline(program,
                                  geometry=CacheGeometry.set_associative(8, ways=2),
                                  engine="vector")
        pipeline.run(trace)
        with pytest.raises(HardwareError):
            pipeline.process(trace[0])

    def test_vector_engine_columnizes_row_input(self):
        trace = synthetic_trace(n_packets=800, n_flows=20, seed=4)
        kwargs = dict(geometry=CacheGeometry.set_associative(16, ways=4))
        row = QueryEngine(COUNT, engine="row", **kwargs).run(trace.records)
        vec = QueryEngine(COUNT, engine="vector", **kwargs).run(trace.records)
        assert row.result.rows == vec.result.rows
        assert row.cache_stats == vec.cache_stats
