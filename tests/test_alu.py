"""ALU codegen tests: generated Python must equal tree-walking eval."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ast_nodes import (
    BinOp,
    Call,
    Cond,
    FieldRef,
    Number,
    ParamRef,
    StateRef,
    UnaryOp,
)
from repro.core.eval_expr import EvalContext, evaluate
from repro.switch.alu import (
    compile_key_extractor,
    compile_predicate,
    compile_scalar,
    compile_update,
)

from tests.conftest import make_record

PARAMS = {"alpha": 0.25, "L": 100}


@st.composite
def expressions(draw, depth=0):
    """Random resolved expressions over a fixed field/state vocabulary."""
    if depth > 3:
        return draw(st.sampled_from([
            Number(1), Number(2.5), FieldRef("pkt_len"), FieldRef("qin"),
            StateRef("s"), ParamRef("alpha"),
        ]))
    kind = draw(st.sampled_from(
        ["leaf", "leaf", "binop", "cmp", "unary", "call", "cond", "bool"]))
    if kind == "leaf":
        return draw(expressions(depth=4))
    if kind == "binop":
        op = draw(st.sampled_from(["+", "-", "*"]))
        return BinOp(op, draw(expressions(depth=depth + 1)),
                     draw(expressions(depth=depth + 1)))
    if kind == "cmp":
        op = draw(st.sampled_from(["==", "!=", "<", "<=", ">", ">="]))
        return BinOp(op, draw(expressions(depth=depth + 1)),
                     draw(expressions(depth=depth + 1)))
    if kind == "bool":
        op = draw(st.sampled_from(["and", "or"]))
        return BinOp(op, draw(expressions(depth=depth + 1)),
                     draw(expressions(depth=depth + 1)))
    if kind == "unary":
        op = draw(st.sampled_from(["-", "not"]))
        return UnaryOp(op, draw(expressions(depth=depth + 1)))
    if kind == "call":
        func = draw(st.sampled_from(["max", "min", "abs"]))
        args = (draw(expressions(depth=depth + 1)),) if func == "abs" else (
            draw(expressions(depth=depth + 1)),
            draw(expressions(depth=depth + 1)))
        return Call(func, args)
    return Cond(draw(expressions(depth=depth + 1)),
                draw(expressions(depth=depth + 1)),
                draw(expressions(depth=depth + 1)))


@settings(max_examples=150, deadline=None)
@given(expr=expressions(),
       pkt_len=st.integers(min_value=0, max_value=2000),
       qin=st.integers(min_value=0, max_value=64),
       state=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
def test_codegen_matches_evaluator(expr, pkt_len, qin, state):
    record = make_record(pkt_len=pkt_len, qin=qin)
    state_map = {"s": state}
    expected = evaluate(expr, EvalContext(row=record, state=state_map,
                                          params=PARAMS))
    fn = compile_scalar(expr, PARAMS)
    got = fn(record, state_map)
    if isinstance(expected, float) and math.isnan(expected):
        assert math.isnan(got)
    else:
        assert got == expected or abs(got - expected) < 1e-9


class TestCompileUpdate:
    def test_updates_read_pre_state(self):
        # Both variables read the pre-update value of the other:
        # a' = b, b' = a must swap, not chain.
        updates = {
            "a": StateRef("b"),
            "b": StateRef("a"),
        }
        fn = compile_update(updates, {})
        new = fn(make_record(), {"a": 1, "b": 2})
        assert new == {"a": 2, "b": 1}

    def test_params_inlined(self):
        fn = compile_update({"s": ParamRef("alpha")}, {"alpha": 0.5})
        assert fn(make_record(), {"s": 0})["s"] == 0.5

    def test_infinity_literal(self):
        fn = compile_scalar(BinOp("==", FieldRef("tout"), Number(math.inf)), {})
        assert fn(make_record(tout=math.inf)) == 1
        assert fn(make_record(tout=5.0)) == 0


class TestPredicatesAndKeys:
    def test_none_predicate_passes_all(self):
        fn = compile_predicate(None, {})
        assert fn(make_record())

    def test_predicate_booleanises(self):
        fn = compile_predicate(BinOp(">", FieldRef("pkt_len"), Number(100)), {})
        assert fn(make_record(pkt_len=200)) is True
        assert fn(make_record(pkt_len=50)) is False

    def test_key_extractor_tuple(self):
        fn = compile_key_extractor(("srcip", "dstport"))
        record = make_record(srcip=7, dstport=80)
        assert fn(record) == (7, 80)

    def test_key_extractor_single_field(self):
        fn = compile_key_extractor(("qid",))
        assert fn(make_record(qid=3)) == (3,)
