"""Sharded parallel session fabric tests.

The acceptance criterion of the sharding PR: ``shards=N`` sessions must
be **bit-identical** to ``shards=1``, to the one-shot vector engine,
and to the row interpreter — tables, ``CacheStats`` counters, backing
writes, accuracy — across the Fig. 2 catalog, eviction policies,
window partitionings, and shard counts, including mid-stream
``results()`` snapshots.  Plus: the mergeable/non-mergeable contract
(non-mergeable folds route whole-stream to one shard), session error
contracts, the network-wide sharded deployment, the int64 overflow
guard on the vector fold path, and the shared-memory worker-pool
lifecycle (ack-bounded segments, crash propagation, unlink on every
failure path).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.errors import HardwareError, SessionError
from repro.network.records import ObservationTable
from repro.queries.catalog import FIG2_QUERIES
from repro.switch.kvstore.cache import CacheGeometry
from repro.telemetry import QueryEngine

from tests.conftest import make_record, synthetic_trace

GEOM = CacheGeometry.set_associative(128, ways=4)

CATALOG = {entry.name: entry for entry in FIG2_QUERIES}


def observables(report):
    """Everything a run produced, in comparable form."""
    return (
        {q: t.rows for q, t in report.tables.items()},
        {q: (s.accesses, s.hits, s.misses, s.insertions, s.evictions)
         for q, s in report.cache_stats.items()},
        report.backing_writes,
        report.accuracy,
    )


def chunked(table: ObservationTable, size: int):
    columns = table.columns()
    for lo in range(0, len(table), size):
        yield ObservationTable.from_arrays(
            {name: arr[lo:lo + size] for name, arr in columns.items()})


def sharded_report(engine, table, window, shards, chunk=777,
                   include_invalid=True):
    session = engine.open(window=window, shards=shards)
    for batch in chunked(table, chunk):
        session.ingest(batch)
    return session.close(include_invalid=include_invalid)


@pytest.fixture(scope="module")
def trace():
    return synthetic_trace(2500, n_flows=60, seed=11)


class TestShardedBitIdentity:
    """shards=N == shards=1 == one-shot vector == row interpreter."""

    @pytest.mark.parametrize("entry", FIG2_QUERIES, ids=lambda e: e.name)
    def test_catalog_matches_one_shot_and_row(self, entry, trace):
        qe = QueryEngine(entry.source, params=entry.default_params,
                         geometry=GEOM)
        base = observables(qe.run(trace, include_invalid=True))
        row = QueryEngine(entry.source, params=entry.default_params,
                          geometry=GEOM, engine="row")
        assert observables(row.run(trace, include_invalid=True)) == base
        for window in (None, 193, 1024, 10 ** 6):
            report = sharded_report(qe, trace, window, shards=2)
            assert observables(report) == base, \
                f"{entry.name} diverged at window={window}"

    @pytest.mark.parametrize("shards", [1, 2, 3, 8])
    def test_shard_counts(self, shards, trace):
        entry = CATALOG["per_flow_counters"]
        qe = QueryEngine(entry.source, params=entry.default_params,
                         geometry=GEOM)
        base = observables(qe.run(trace, include_invalid=True))
        for window in (None, 257):
            report = sharded_report(qe, trace, window, shards=shards)
            assert observables(report) == base

    @pytest.mark.parametrize("policy", ["lru", "fifo", "random"])
    def test_eviction_policies(self, policy, trace):
        entry = CATALOG["latency_ewma"]
        qe = QueryEngine(entry.source, params=entry.default_params,
                         geometry=CacheGeometry.set_associative(64, ways=2),
                         policy=policy)
        base = observables(qe.run(trace, include_invalid=True))
        for window in (None, 193):
            report = sharded_report(qe, trace, window, shards=3)
            assert observables(report) == base

    def test_fully_associative_routes_to_one_shard(self, trace):
        """n_buckets == 1 means one cache set: there is nothing to
        partition, so the proxy degrades to single-shard routing and
        stays bit-identical."""
        entry = CATALOG["per_flow_counters"]
        qe = QueryEngine(entry.source, params=entry.default_params,
                         geometry=CacheGeometry.fully_associative(64))
        base = observables(qe.run(trace, include_invalid=True))
        session = qe.open(window=301, shards=4)
        for stage in qe.compiled.groupby_stages:
            proxy = session._pipeline.store_for(stage.query_name)
            assert proxy._single
        session.ingest(trace)
        assert observables(session.close(include_invalid=True)) == base

    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        name=st.sampled_from(["per_flow_counters", "latency_ewma",
                              "per_flow_loss_rate", "tcp_non_monotonic"]),
        policy=st.sampled_from(["lru", "fifo", "random"]),
        shards=st.sampled_from([2, 3, 8]),
        window=st.sampled_from([None, 67, 193, 1024]),
        chunk=st.sampled_from([311, 900]),
        seed=st.integers(min_value=0, max_value=3),
    )
    def test_differential(self, name, policy, shards, window, chunk, seed):
        entry = CATALOG[name]
        small = synthetic_trace(900, n_flows=30, seed=seed)
        qe = QueryEngine(entry.source, params=entry.default_params,
                         geometry=GEOM, policy=policy)
        base = observables(qe.run(small, include_invalid=True))
        row = QueryEngine(entry.source, params=entry.default_params,
                          geometry=GEOM, policy=policy, engine="row")
        assert observables(row.run(small, include_invalid=True)) == base
        report = sharded_report(qe, small, window, shards, chunk=chunk)
        assert observables(report) == base


class TestMidStreamSnapshots:
    def test_windowed_snapshots_match_single_process(self, trace):
        entry = CATALOG["per_flow_counters"]
        qe = QueryEngine(entry.source, params=entry.default_params,
                         geometry=GEOM)
        single = qe.open(window=257)
        sharded = qe.open(window=257, shards=3)
        for batch in chunked(trace, 700):
            single.ingest(batch)
            sharded.ingest(batch)
            assert observables(sharded.results()) == \
                observables(single.results())
        assert observables(sharded.close()) == observables(single.close())

    def test_one_shot_sharded_snapshot_raises(self, trace):
        entry = CATALOG["per_flow_counters"]
        qe = QueryEngine(entry.source, params=entry.default_params,
                         geometry=GEOM)
        session = qe.open(shards=2)            # window=None: one-shot
        session.ingest(trace)
        with pytest.raises(SessionError, match="window"):
            session.results()
        session.close()


class TestMergeableContract:
    """Non-mergeable folds cannot be combined across shards, so their
    stage routes the whole stream to one shard (documented fallback)
    and stays bit-identical."""

    def test_non_mergeable_routes_single(self, trace):
        entry = CATALOG["tcp_non_monotonic"]
        qe = QueryEngine(entry.source, params=entry.default_params,
                         geometry=GEOM)
        session = qe.open(window=257, shards=4)
        routed_single = []
        for stage in qe.compiled.groupby_stages:
            proxy = session._pipeline.store_for(stage.query_name)
            if not proxy.mergeable:
                assert proxy._single
                routed_single.append(stage.query_name)
        assert routed_single                   # the catalog entry has one
        session.ingest(trace)
        report = session.close(include_invalid=True)
        base = qe.run(trace, include_invalid=True)
        assert observables(report) == observables(base)

    def test_mergeable_stage_actually_fans_out(self, trace):
        entry = CATALOG["per_flow_counters"]
        qe = QueryEngine(entry.source, params=entry.default_params,
                         geometry=GEOM)
        session = qe.open(window=257, shards=2)
        for stage in qe.compiled.groupby_stages:
            proxy = session._pipeline.store_for(stage.query_name)
            assert proxy.mergeable and not proxy._single
        session.ingest(trace)
        session.close()


class TestErrorContracts:
    def test_row_engine_cannot_shard(self):
        qe = QueryEngine("SELECT COUNT GROUPBY srcip", geometry=GEOM,
                         engine="row")
        with pytest.raises(HardwareError, match="row"):
            qe.open(shards=2)

    def test_refresh_interval_cannot_shard(self):
        qe = QueryEngine("SELECT COUNT GROUPBY srcip", geometry=GEOM,
                         refresh_interval=100)
        with pytest.raises(HardwareError, match="refresh_interval"):
            qe.open(shards=2)

    def test_shards_must_be_positive(self):
        qe = QueryEngine("SELECT COUNT GROUPBY srcip", geometry=GEOM)
        for bad in (0, -1):
            with pytest.raises(ValueError, match="positive"):
                qe.open(shards=bad)

    def test_exact_sessions_cannot_shard(self):
        qe = QueryEngine("SELECT COUNT GROUPBY srcip", geometry=GEOM)
        with pytest.raises(ValueError, match="exact"):
            qe.open(exact=True, shards=2)

    def test_sharded_sessions_are_batch_only(self, trace):
        """The per-record path raises with guidance instead of silently
        serialising through one worker."""
        qe = QueryEngine("SELECT COUNT GROUPBY srcip", geometry=GEOM)
        session = qe.open(window=257, shards=2)
        proxy = session._pipeline.store_for(qe.compiled.result)
        with pytest.raises(HardwareError, match="batch-only"):
            proxy.process(make_record())
        session.ingest(trace)
        session.close()


class TestNetworkSharded:
    @pytest.fixture(scope="class")
    def fabric(self):
        from repro.network.simulator import NetworkSimulator
        from repro.network.topology import LinkSpec, leaf_spine

        topo = leaf_spine(2, 2, 2, edge_link=LinkSpec(rate_gbps=5.0))
        sim = NetworkSimulator(topo)
        hosts = sorted(topo.hosts())
        t = 0
        for i in range(500):
            t += 2000
            src = hosts[i % len(hosts)]
            dst = hosts[(i + 1 + i // 7) % len(hosts)]
            if src != dst:
                sim.inject(time_ns=t, src=src, dst=dst,
                           pkt_len=400 + (i % 900), srcport=2000 + i % 5)
        return sim, sim.run()

    def network_observables(self, report):
        return (
            {q: sorted(map(tuple, (sorted(r.items()) for r in t.rows)))
             for q, t in report.combined.items()},
            {sw: {q: t.rows for q, t in tables.items()}
             for sw, tables in report.per_switch.items()},
            report.combinable,
        )

    def test_sharded_deployment_matches_unsharded(self, fabric):
        from repro.telemetry.deploy import NetworkDeployment

        sim, table = fabric
        source = "SELECT COUNT, SUM(pkt_len) GROUPBY 5tuple"
        plain = NetworkDeployment(source, sim, geometry=GEOM)
        base_session = plain.open(window=333)
        deploy = NetworkDeployment(source, sim, geometry=GEOM)
        session = deploy.open(window=333, shards=2)
        assert session._pool is not None
        for batch in chunked(table, 441):
            base_session.ingest(batch)
            session.ingest(batch)
        assert self.network_observables(session.results()) == \
            self.network_observables(base_session.results())
        stats = session.cache_stats()
        base_stats = base_session.cache_stats()
        assert set(stats) == set(base_stats)
        assert self.network_observables(session.close()) == \
            self.network_observables(base_session.close())

    def test_shards_capped_at_switch_count(self, fabric):
        from repro.telemetry.deploy import NetworkDeployment

        sim, table = fabric
        deploy = NetworkDeployment("SELECT COUNT GROUPBY qid", sim,
                                   geometry=GEOM)
        one_shot = NetworkDeployment("SELECT COUNT GROUPBY qid", sim,
                                     geometry=GEOM).run(table.records)
        session = deploy.open(window=256, shards=64)
        n_switches = len(session.sessions)
        assert session._pool.n_workers == min(64, n_switches)
        session.ingest(table)
        report = session.close()
        assert self.network_observables(report) == \
            self.network_observables(one_shot)

    def test_sharded_close_retryable(self, fabric):
        """A transient close failure on one remote switch must not
        wedge the pool: workers cache their reports, so the retried
        close is served idempotently."""
        from repro.telemetry.deploy import NetworkDeployment

        sim, table = fabric
        deploy = NetworkDeployment("SELECT COUNT GROUPBY qid", sim,
                                   geometry=GEOM)
        session = deploy.open(window=256, shards=2)
        session.ingest(table)
        victim = list(session.sessions)[-1]
        real_submit = session.sessions[victim].submit_close
        calls = {"n": 0}

        def flaky_submit(*args, **kwargs):
            if calls["n"] == 0:
                calls["n"] += 1
                raise RuntimeError("transient close failure")
            return real_submit(*args, **kwargs)

        session.sessions[victim].submit_close = flaky_submit
        with pytest.raises(RuntimeError, match="transient"):
            session.close()
        assert not session._closed
        report = session.close()               # retry resumes
        total = sum(r["COUNT"] for r in
                    report.combined[deploy.compiled.result].rows)
        assert total == len(table)


def big_sum_trace(n, value, flows=3):
    records = [make_record(srcip=10 + i % flows, pkt_len=value,
                           tin=1000 * i, tout=1000 * i + 100.0, pkt_id=i)
               for i in range(n)]
    return ObservationTable.from_arrays(ObservationTable(records).columns())


class TestInt64OverflowGuard:
    """SUM accumulators that could exceed int64 fall back (with a
    warning) to exact arithmetic instead of silently wrapping."""

    SOURCE = "SELECT COUNT, SUM(pkt_len) GROUPBY srcip"

    def exact_rows(self, table):
        return QueryEngine(self.SOURCE, geometry=GEOM,
                           engine="row").run(table).result.rows

    def test_one_shot_vector_falls_back_exactly(self):
        table = big_sum_trace(300, 2 ** 61)
        want = self.exact_rows(table)
        assert any(row["SUM(pkt_len)"] >= 2 ** 63 for row in want)
        qe = QueryEngine(self.SOURCE, geometry=GEOM, engine="vector")
        with pytest.warns(RuntimeWarning, match="int64"):
            report = qe.run(table)
        assert report.result.rows == want

    def test_windowed_promotes_cross_window_accumulators(self):
        # Per-window sums stay inside int64 (64 * 2**55 < 2**63); only
        # the *cross-window* merged accumulator overflows, exercising
        # the windowed store's object-dtype promotion.
        table = big_sum_trace(2000, 2 ** 55, flows=4)
        want = self.exact_rows(table)
        assert any(row["SUM(pkt_len)"] >= 2 ** 63 for row in want)
        qe = QueryEngine(self.SOURCE, geometry=GEOM)
        session = qe.open(window=64)
        with pytest.warns(RuntimeWarning, match="int64"):
            for batch in chunked(table, 500):
                session.ingest(batch)
            report = session.close()
        assert report.result.rows == want

    def test_sharded_overflow_stays_exact(self):
        # The warning fires inside the worker processes; the parent
        # still gets the exact (object-dtype) accumulators back.
        table = big_sum_trace(2000, 2 ** 55, flows=4)
        want = self.exact_rows(table)
        qe = QueryEngine(self.SOURCE, geometry=GEOM)
        session = qe.open(window=64, shards=2)
        session.ingest(table)
        assert session.close().result.rows == want


# -- worker-pool transport -----------------------------------------------------


class EchoRole:
    def handle(self, op, meta, arrays):
        if op == "boom":
            raise ValueError("kaboom")
        if op == "sum":
            return {name: arr.sum().item() for name, arr in arrays.items()}
        if op == "meta":
            return meta
        return None


class TestShardWorkerPool:
    def test_round_trip_and_ack_drain(self):
        from repro.telemetry.shard_exec import ShardWorkerPool

        with ShardWorkerPool([EchoRole(), EchoRole()]) as pool:
            arrays = {"a": np.arange(100, dtype=np.int64),
                      "b": np.linspace(0.0, 1.0, 7)}
            assert pool.call(0, "sum", arrays=arrays) == {
                "a": int(np.arange(100).sum()),
                "b": pytest.approx(np.linspace(0.0, 1.0, 7).sum()),
            }
            for _ in range(20):                # posts stream fire-and-forget
                pool.post(1, "sum", arrays=arrays)
            assert pool.call(1, "meta", meta={"k": 3}) == {"k": 3}
            # Every segment was acked and unlinked by the time the
            # synchronous call returned (FIFO pipe ordering).
            assert not pool._workers[1].pending

    def test_worker_exception_propagates_and_poisons(self):
        from repro.telemetry.shard_exec import ShardError, ShardWorkerPool

        with ShardWorkerPool([EchoRole()]) as pool:
            with pytest.raises(ShardError, match="kaboom"):
                pool.call(0, "boom")
            with pytest.raises(ShardError, match="already failed"):
                pool.call(0, "meta", meta=1)

    def test_object_dtype_rejected(self):
        from repro.telemetry.shard_exec import ShardError, ShardWorkerPool

        with ShardWorkerPool([EchoRole()]) as pool:
            bad = np.array([{"nope": 1}], dtype=object)
            with pytest.raises(ShardError, match="object-dtype"):
                pool.post(0, "sum", arrays={"x": bad})

    def test_close_is_idempotent_and_final(self):
        from repro.telemetry.shard_exec import ShardError, ShardWorkerPool

        pool = ShardWorkerPool([EchoRole()])
        pool.close()
        pool.close()
        assert pool.closed
        with pytest.raises(ShardError, match="closed"):
            pool.call(0, "meta", meta=1)

    def test_empty_pool_rejected(self):
        from repro.telemetry.shard_exec import ShardError, ShardWorkerPool

        with pytest.raises(ShardError, match="at least one"):
            ShardWorkerPool([])


class TestSharedMemoryLifecycle:
    def test_release_shared_memory_idempotent(self):
        from multiprocessing import shared_memory

        from repro.telemetry.shard_exec import release_shared_memory

        shm = shared_memory.SharedMemory(create=True, size=64)
        name = shm.name
        release_shared_memory(shm)
        release_shared_memory(shm)             # second release: no-op
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_release_tolerates_live_view(self):
        from multiprocessing import shared_memory

        from repro.telemetry.shard_exec import release_shared_memory

        shm = shared_memory.SharedMemory(create=True, size=64)
        name = shm.name
        view = np.ndarray(8, dtype=np.int64, buffer=shm.buf)
        release_shared_memory(shm)             # close() hits BufferError
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
        del view

    def test_sweep_fan_unlinks_on_worker_failure(self, monkeypatch):
        """A worker crash mid-sweep must not leak the shared key-stream
        segment (regression for the close()-raises-skips-unlink
        ordering in _fan)."""
        from multiprocessing import shared_memory

        from repro.analysis import sweep_exec

        created = []
        real = shared_memory.SharedMemory

        def spy(*args, **kwargs):
            shm = real(*args, **kwargs)
            if kwargs.get("create"):
                created.append(shm.name)
            return shm

        monkeypatch.setattr(sweep_exec.shared_memory, "SharedMemory", spy)
        with pytest.raises(KeyError):
            sweep_exec.run_eviction_sweep_parallel(
                scale=1.0 / 4096.0, geometries=("no_such_geometry",),
                workers=2)
        assert created
        for name in created:
            with pytest.raises(FileNotFoundError):
                real(name=name)


class TestShardedCLI:
    def test_run_with_shards(self, tmp_path, capsys):
        from repro.cli import main
        from repro.traffic.trace_io import write_npz

        path = tmp_path / "trace.npz"
        write_npz(synthetic_trace(n_packets=1200, n_flows=20), path)
        code = main(["run", "--query", "SELECT COUNT GROUPBY srcip",
                     "--trace", str(path), "--shards", "2",
                     "--window", "257"])
        assert code == 0
        assert "COUNT" in capsys.readouterr().out

    def test_shards_must_be_positive(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["run", "--query", "SELECT COUNT GROUPBY srcip",
                  "--trace", "unused.npz", "--shards", "0"])


class _NapRole:
    """Role whose handler can wedge: alive, healthy pipe, no reply."""

    def handle(self, op, meta, arrays):
        if op == "nap":
            import time
            time.sleep(meta)
        return op

    def checkpoint(self):
        return None

    def restore(self, state):
        pass


class TestAckTimeout:
    def test_wedged_worker_raises_named_shard_error(self):
        """A wedged-but-alive worker (handler stuck, process healthy)
        no longer hangs the parent forever: the ack timeout turns it
        into a ShardError naming the worker."""
        from repro.telemetry.shard_exec import ShardError, ShardWorkerPool

        pool = ShardWorkerPool([_NapRole()], ack_timeout=0.3)
        try:
            with pytest.raises(ShardError, match="worker 0 .*wedged"):
                pool.call(0, "nap", meta=30.0)
            # the worker really was alive the whole time — this was a
            # wedge, not a crash
            assert pool._workers[0].proc.is_alive()
            with pytest.raises(ShardError, match="already failed"):
                pool.call(0, "nap", meta=0.0)
        finally:
            # unwedge teardown: the worker would nap through the stop
            pool._workers[0].proc.kill()
            pool.close()

    def test_timeout_does_not_trip_on_slow_but_live_replies(self):
        from repro.telemetry.shard_exec import ShardWorkerPool

        with ShardWorkerPool([_NapRole()], ack_timeout=2.0) as pool:
            assert pool.call(0, "nap", meta=0.2) == "nap"

    def test_ack_timeout_validated(self):
        from repro.telemetry.shard_exec import ShardError, ShardWorkerPool

        with pytest.raises(ShardError, match="ack_timeout"):
            ShardWorkerPool([_NapRole()], ack_timeout=0.0)


class TestRestartJitter:
    def test_restart_backoff_is_jittered_and_seedable(self, monkeypatch):
        """Worker-restart backoff draws U(0, base * 2**k) from a
        seedable RNG: same seed, same delays (reproducible tests); the
        draw stays under the exponential cap (no synchronized storms)."""
        import random as random_mod

        from repro.telemetry import shard_exec
        from repro.telemetry.faults import FaultInjector, FaultPlan

        slept = []
        real_sleep = shard_exec.time.sleep
        monkeypatch.setattr(
            shard_exec.time, "sleep",
            lambda s: (slept.append(s), real_sleep(min(s, 0.01)))[1])

        def restart_delays(seed):
            slept.clear()
            injector = FaultInjector(FaultPlan(kill_posts={0: {2}}))
            with shard_exec.ShardWorkerPool(
                    [_NapRole()], checkpoint_every=4,
                    restart_backoff=0.5, restart_jitter=seed,
                    faults=injector) as pool:
                for _ in range(3):
                    pool.post(0, "echo")
                assert pool.call(0, "ping") == "ping"
            return list(slept)

        first = restart_delays(7)
        again = restart_delays(7)
        other = restart_delays(8)
        assert first, "no restart happened"
        assert first == again                      # seedable
        assert first != other                      # actually random
        expect = random_mod.Random(7).uniform(0.0, 0.5)
        assert first[0] == expect                  # full jitter, U(0, base)
        assert all(0.0 <= s <= 0.5 for s in first)
