"""Network topologies for the simulator.

A topology is a directed graph (networkx) of *hosts* and *switches*;
each directed edge is a link with a rate, propagation delay, and buffer
size.  Every (switch → neighbour) edge owns one output queue, which is
where packet observations are produced (the paper's schema is
per-queue, footnote 2).

Constructors cover the scenarios the paper's motivation cites:
single-switch incast fan-in, a leaf-spine datacenter fabric, and a
linear chain for multi-hop latency queries.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx


@dataclass(frozen=True)
class LinkSpec:
    """Directed link parameters."""

    rate_gbps: float = 10.0
    prop_delay_ns: int = 1000
    buffer_packets: int = 64


class Topology:
    """A typed wrapper over a directed networkx graph.

    Node naming conventions: hosts are ``h<i>``, switches ``s<i>``.
    """

    def __init__(self) -> None:
        self.graph = nx.DiGraph()
        self._qid_counter = 0
        self._qids: dict[tuple[str, str], int] = {}

    # -- construction ------------------------------------------------------

    def add_host(self, name: str) -> str:
        self.graph.add_node(name, kind="host")
        return name

    def add_switch(self, name: str) -> str:
        self.graph.add_node(name, kind="switch")
        return name

    def add_link(self, a: str, b: str, spec: LinkSpec | None = None,
                 bidirectional: bool = True) -> None:
        """Add a link; each switch-egress direction gets a queue id."""
        spec = spec or LinkSpec()
        directions = [(a, b), (b, a)] if bidirectional else [(a, b)]
        for u, v in directions:
            self.graph.add_edge(u, v, spec=spec)
            if self.graph.nodes[u].get("kind") == "switch":
                self._qids[(u, v)] = self._qid_counter
                self._qid_counter += 1

    # -- queries ---------------------------------------------------------------

    def is_switch(self, name: str) -> bool:
        return self.graph.nodes[name].get("kind") == "switch"

    def hosts(self) -> list[str]:
        return [n for n, d in self.graph.nodes(data=True) if d.get("kind") == "host"]

    def switches(self) -> list[str]:
        return [n for n, d in self.graph.nodes(data=True) if d.get("kind") == "switch"]

    def link(self, u: str, v: str) -> LinkSpec:
        return self.graph.edges[u, v]["spec"]

    def qid(self, u: str, v: str) -> int:
        """Queue id of the (switch u → v) egress queue."""
        return self._qids[(u, v)]

    def qid_name(self, qid: int) -> tuple[str, str]:
        for edge, q in self._qids.items():
            if q == qid:
                return edge
        raise KeyError(qid)

    def queue_edges(self) -> list[tuple[str, str]]:
        return list(self._qids)

    def path(self, src: str, dst: str) -> list[str]:
        """Shortest path (hop count) from src to dst."""
        return nx.shortest_path(self.graph, src, dst)


# ---------------------------------------------------------------------------
# Canned topologies
# ---------------------------------------------------------------------------


def single_switch(n_hosts: int, link: LinkSpec | None = None) -> Topology:
    """``n_hosts`` hosts on one switch — the incast scenario (§1: many
    senders converging on one egress queue)."""
    topo = Topology()
    topo.add_switch("s0")
    for i in range(n_hosts):
        host = topo.add_host(f"h{i}")
        topo.add_link(host, "s0", link)
    return topo


def linear_chain(n_switches: int, link: LinkSpec | None = None) -> Topology:
    """h0 - s0 - s1 - ... - s(n-1) - h1: multi-hop latency queries."""
    topo = Topology()
    topo.add_host("h0")
    topo.add_host("h1")
    prev = "h0"
    for i in range(n_switches):
        sw = topo.add_switch(f"s{i}")
        topo.add_link(prev, sw, link)
        prev = sw
    topo.add_link(prev, "h1", link)
    return topo


def leaf_spine(n_leaves: int, n_spines: int, hosts_per_leaf: int,
               edge_link: LinkSpec | None = None,
               fabric_link: LinkSpec | None = None) -> Topology:
    """Two-tier datacenter fabric: hosts → leaves → spines."""
    topo = Topology()
    fabric_link = fabric_link or LinkSpec(rate_gbps=40.0)
    for spine in range(n_spines):
        topo.add_switch(f"spine{spine}")
    for leaf in range(n_leaves):
        leaf_name = topo.add_switch(f"leaf{leaf}")
        for spine in range(n_spines):
            topo.add_link(leaf_name, f"spine{spine}", fabric_link)
        for h in range(hosts_per_leaf):
            host = topo.add_host(f"h{leaf}_{h}")
            topo.add_link(host, leaf_name, edge_link)
    return topo
