"""FIG5 — eviction rate vs cache size for three geometries.

Reproduces both panels of Fig. 5 over the synthetic CAIDA-like trace
(scale 1/256 of the paper's 157 M packets; cache capacities scaled by
the same factor so the working-set:cache ratio matches):

* left panel: % evictions (fraction of packets) vs cache size in pairs;
* right panel: evictions/second under §4 datacenter conditions
  (22.6 M average packets/s) vs cache size in Mbit.

Also checks the paper's two stated insights: 8-way is within a few
percent of fully associative, and the split design is necessary.

Benchmark timings measure raw cache-simulation throughput per geometry.
"""

from __future__ import annotations

import pytest

from repro.analysis.eviction import (
    PAPER_CAPACITIES,
    run_eviction_sweep,
    shape_checks,
)
from repro.analysis.report import format_percent, format_table
from repro.switch.area import backing_store_cores
from repro.switch.kvstore.cache import CacheGeometry, simulate_eviction_count
from repro.traffic.caida import CaidaTraceConfig, generate_key_stream

SCALE = 1.0 / 256.0

#: Paper reference points for the 8-way geometry, read off Fig. 5
#: (left) and the §4 text: at 32 Mbit (2^18 pairs) the 8-way eviction
#: fraction is 3.55%.
PAPER_8WAY_AT_32MBIT = 0.0355


@pytest.fixture(scope="module")
def sweep(report):
    data = run_eviction_sweep(scale=SCALE)

    # Left panel: % evictions vs cache size (pairs, paper scale).
    rows_left = []
    for paper_pairs in PAPER_CAPACITIES:
        row = [f"2^{paper_pairs.bit_length() - 1}"]
        for geometry in ("hash_table", "8way", "fully_associative"):
            point = data.point(geometry, paper_pairs)
            row.append(format_percent(point.eviction_fraction))
        rows_left.append(row)
    left = format_table(
        ["pairs", "hash table", "8-way", "fully assoc"],
        rows_left,
        title=f"Fig. 5 (left) — evictions as % of packets "
              f"(trace scale {SCALE:.4g}: {data.points[0].packets} pkts, "
              f"{data.points[0].flows} flows)",
    )

    # Right panel: evictions/s under datacenter conditions vs Mbit.
    rows_right = []
    for paper_pairs in PAPER_CAPACITIES:
        point8 = data.point("8way", paper_pairs)
        rows_right.append([
            f"{point8.paper_mbits:.0f}",
            f"{data.point('hash_table', paper_pairs).evictions_per_sec / 1e3:,.0f}K",
            f"{point8.evictions_per_sec / 1e3:,.0f}K",
            f"{data.point('fully_associative', paper_pairs).evictions_per_sec / 1e3:,.0f}K",
            f"{backing_store_cores(point8.evictions_per_sec):.1f}",
        ])
    right = format_table(
        ["Mbit", "hash table", "8-way", "fully assoc", "8-way KV cores"],
        rows_right,
        title="Fig. 5 (right) — backing-store writes/s @ 22.6 M avg pkts/s",
    )

    point = data.point("8way", 1 << 18)
    summary = (
        f"paper: 8-way @ 32 Mbit evicts 3.55% of packets (~802K writes/s)\n"
        f"ours:  8-way @ 32 Mbit evicts {format_percent(point.eviction_fraction)} "
        f"({point.evictions_per_sec / 1e3:,.0f}K writes/s)\n"
        f"shape checks: {shape_checks(data) or 'all hold'}"
    )
    report("FIG5: eviction rates", left + "\n\n" + right + "\n\n" + summary)
    return data


def test_fig5_shape_holds(sweep):
    assert shape_checks(sweep) == []


def test_fig5_8way_close_to_full_lru(sweep):
    """Paper: 'an 8-way associative cache comes within 2% of this
    optimum' — allow a few points of slack for the synthetic trace."""
    for paper_pairs in PAPER_CAPACITIES:
        full = sweep.point("fully_associative", paper_pairs).eviction_fraction
        eight = sweep.point("8way", paper_pairs).eviction_fraction
        assert eight - full <= 0.03


def test_fig5_target_point_same_decade_as_paper(sweep):
    """At the 32-Mbit point the eviction fraction must be a few percent
    (the paper's 3.55%), not 0.01% or 30%."""
    point = sweep.point("8way", 1 << 18)
    assert 0.005 <= point.eviction_fraction <= 0.12
    assert 100_000 <= point.evictions_per_sec <= 3_000_000


@pytest.fixture(scope="module")
def bench_keys():
    # Consumed natively: under engine="auto" the integer array routes
    # to the vector engine, so these timings track the fast path.
    return generate_key_stream(CaidaTraceConfig(scale=1 / 2048))


def _bench_geometry(benchmark, keys, geometry):
    def run():
        return simulate_eviction_count(keys, geometry)

    stats = benchmark.pedantic(run, rounds=3, iterations=1)
    assert stats.accesses == len(keys)


def test_cache_sim_hash_table(benchmark, bench_keys, sweep):
    _bench_geometry(benchmark, bench_keys, CacheGeometry.hash_table(1 << 10))


def test_cache_sim_8way(benchmark, bench_keys, sweep):
    _bench_geometry(benchmark, bench_keys,
                    CacheGeometry.set_associative(1 << 10, ways=8))


def test_cache_sim_fully_associative(benchmark, bench_keys, sweep):
    _bench_geometry(benchmark, bench_keys,
                    CacheGeometry.fully_associative(1 << 10))
