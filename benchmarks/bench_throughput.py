"""Component throughput benchmarks (supporting, not a paper artifact).

Measures the simulation building blocks so regressions in the hot
paths are visible: compiler latency, interpreter vs hardware-pipeline
packet rates, the network simulator's event rate, and trace-generation
speed.  These set the wall-clock budget for the Fig. 5/6 sweeps.
"""

from __future__ import annotations

import time


from repro.core.compiler import compile_program
from repro.core.interpreter import Interpreter
from repro.core.parser import parse_program
from repro.core.semantics import resolve_program
from repro.core.vector_exec import VectorExecutor
from repro.network.records import ObservationTable
from repro.network.simulator import NetworkSimulator
from repro.network.topology import single_switch
from repro.switch.kvstore.cache import CacheGeometry
from repro.switch.pipeline import SwitchPipeline
from repro.traffic.caida import PAPER_PACKETS, CaidaTraceConfig, generate_caida_like, generate_key_stream

EWMA = (
    "def ewma (e, (tin, tout)): e = (1 - alpha) * e + alpha * (tout - tin)\n"
    "SELECT 5tuple, ewma GROUPBY 5tuple"
)
PARAMS = {"alpha": 0.1}

#: The paper's bread-and-butter aggregation — identity-matrix linear
#: folds, the class the vectorized executor reduces segmentally.
COUNTERS = "SELECT COUNT, SUM(pkt_len) GROUPBY srcip, dstip"


def test_compile_latency(benchmark):
    def compile_once():
        return compile_program(resolve_program(parse_program(EWMA)))

    program = benchmark(compile_once)
    assert program.groupby_stages


def test_interpreter_throughput(benchmark, small_trace):
    rp = resolve_program(parse_program(EWMA))
    records = small_trace.records[:5000]

    def run():
        return Interpreter(rp, params=PARAMS).run_result(records)

    table = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(table) > 0


def test_pipeline_throughput(benchmark, small_trace):
    rp = resolve_program(parse_program(EWMA))
    program = compile_program(rp)
    records = small_trace.records[:5000]

    def run():
        pipeline = SwitchPipeline(program, params=PARAMS,
                                  geometry=CacheGeometry.set_associative(256, 8))
        pipeline.run(records)
        pipeline.finalize()
        return pipeline

    pipeline = benchmark.pedantic(run, rounds=3, iterations=1)
    assert pipeline.packets_seen == len(records)


def test_vector_executor_throughput(benchmark, small_trace):
    rp = resolve_program(parse_program(EWMA))
    table = ObservationTable.from_arrays(small_trace.to_arrays())

    def run():
        return VectorExecutor(rp, params=PARAMS).run_result(table)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(result) > 0


def test_pipeline_batch_throughput(benchmark, small_trace):
    rp = resolve_program(parse_program(EWMA))
    program = compile_program(rp)
    table = ObservationTable.from_arrays(small_trace.to_arrays())

    def run():
        pipeline = SwitchPipeline(program, params=PARAMS,
                                  geometry=CacheGeometry.set_associative(256, 8))
        pipeline.run(table)
        pipeline.finalize()
        return pipeline

    pipeline = benchmark.pedantic(run, rounds=3, iterations=1)
    assert pipeline.packets_seen == len(table)


def test_columnar_speedup_1m_linear_fold(report):
    """Acceptance check: the vectorized path is ≥10× faster than the
    row interpreter for linear-fold GROUPBY queries at 1M records, with
    bit-identical results."""
    table = generate_caida_like(CaidaTraceConfig(scale=1_000_000 / PAPER_PACKETS))
    assert table.is_columnar and len(table) >= 1_000_000
    rp = resolve_program(parse_program(COUNTERS))

    t0 = time.perf_counter()
    vector = VectorExecutor(rp).run_result(table)
    vector_s = time.perf_counter() - t0

    records = list(table)                        # row views, built off the clock
    t0 = time.perf_counter()
    row = Interpreter(rp).run_result(records)
    row_s = time.perf_counter() - t0

    assert vector.rows == row.rows
    speedup = row_s / vector_s
    report(
        "Columnar speedup (1M records, linear folds)",
        f"query: {COUNTERS}\n"
        f"records: {len(table):,}   groups: {len(vector):,}\n"
        f"row interpreter: {row_s:.2f} s ({len(table) / row_s:,.0f} pkt/s)\n"
        f"vectorized:      {vector_s:.2f} s ({len(table) / vector_s:,.0f} pkt/s)\n"
        f"speedup: {speedup:.1f}x (target >= 10x)",
    )
    assert speedup >= 10.0, f"vectorized speedup {speedup:.1f}x below 10x target"


def test_network_simulator_event_rate(benchmark):
    def run():
        sim = NetworkSimulator(single_switch(8))
        for i in range(2000):
            sim.inject(time_ns=i * 500, src=f"h{i % 7 + 1}", dst="h0",
                       pkt_len=800)
        return sim.run()

    table = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(table) == 2000


def test_trace_generation_rate(benchmark):
    config = CaidaTraceConfig(scale=1 / 2048)

    def run():
        return generate_key_stream(config)

    keys = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(keys) > 10_000
