"""A genuine violation correctly suppressed: the well-formed
``repro: allow[RPR-C501]`` waives exactly that code on that line, and
the runner counts it as suppressed rather than reporting it."""
import time


def wall_clock_for_display():
    return time.time()  # repro: allow[RPR-C501]
