"""Stable diagnostic codes for query deployability (single source).

The paper's central claim is that a query's deployability is decidable
*before* any packet flows: §3.2's linear-in-state analysis decides
mergeability and §3.3/§4's area model decides whether the key-value
cache fits the chip.  This module is the one table every layer of the
reproduction reads when it has to tell an operator "this will not
deploy" or "this will degrade": the static analyzer
(:mod:`repro.core.analyze`), the session/pipeline constructors, the
sharded store, the CLI ``lint`` command, and the ingest server's
``REJECT`` frames all render from the same registry — same code, same
wording, everywhere.

Code families
-------------

``RPR-E0xx``  session/engine configuration errors (hard; raised at
              open time before any shard worker forks)
``RPR-E3xx``  resource infeasibility (hard; §4 area model)
``RPR-W0xx``  session configuration caveats
``RPR-W1xx``  mergeability/shardability degradations (§3.2)
``RPR-W2xx``  value-range / overflow risks
``RPR-W4xx``  program hygiene (dead stages)
``RPR-I3xx``  resource accounting (informational)
``RPR-I4xx``  trace-scan hints (informational)
``RPR-C0xx``  static-checker framework hygiene (``repro check``)
``RPR-C1xx``  event-loop blocking (async bodies reaching sync I/O)
``RPR-C2xx``  resource lifecycle (acquisitions without releases)
``RPR-C3xx``  checkpoint-state purity (non-data snapshot payloads)
``RPR-C4xx``  exception discipline (swallowed errors, unsafe handlers)
``RPR-C5xx``  determinism (wall clock / shared randomness in replay)

This module is deliberately dependency-free (stdlib only) so that both
the ``core``/``switch`` layers and the telemetry runtime can import it
without cycles.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "CODES",
    "CodeInfo",
    "Diagnostic",
    "DiagnosticsReport",
    "diagnostic_code",
    "exc_message",
    "make",
    "render",
]

SEVERITIES = ("error", "warning", "info")


@dataclass(frozen=True)
class CodeInfo:
    """One registry entry: everything stable about a diagnostic code."""

    code: str          # "RPR-E001"
    slug: str          # "row-engine-cannot-shard"
    severity: str      # "error" | "warning" | "info"
    when: str          # "open" | "compile" | "runtime"
    template: str      # message template (str.format over context)
    fix: str           # canonical fix hint


_REGISTRY: tuple[CodeInfo, ...] = (
    # -- session/engine configuration (checked at open time) ---------------
    CodeInfo(
        "RPR-E001", "row-engine-cannot-shard", "error", "open",
        'sharded execution runs on the vector path; engine="row" cannot '
        'shard',
        'drop shards= or use engine="auto"/"vector"',
    ),
    CodeInfo(
        "RPR-E002", "refresh-cannot-shard", "error", "open",
        "shards= is incompatible with refresh_interval= (refresh epochs "
        "cut at global stream positions, which per-shard streams cannot "
        "see)",
        "drop one of shards= / refresh_interval=",
    ),
    CodeInfo(
        "RPR-E003", "exact-cannot-shard", "error", "open",
        "exact sessions have no hardware stores to shard; drop shards= "
        "(or exact=True)",
        "drop shards= for exact evaluation, or drop exact=True to run "
        "the hardware model",
    ),
    CodeInfo(
        "RPR-E004", "invalid-window", "error", "open",
        "window must be a positive number of accesses, got {window!r} "
        "(omit it for one-shot execution)",
        "pass a positive window, or omit window= entirely",
    ),
    CodeInfo(
        "RPR-E005", "invalid-shards", "error", "open",
        "shards must be a positive worker count, got {shards!r} "
        "(omit it for single-process execution)",
        "pass a positive shard count, or omit shards= entirely",
    ),
    CodeInfo(
        "RPR-E006", "sharded-batch-only", "error", "runtime",
        "sharded stores are batch-only; use add_batch(), or drop "
        "shards= for per-packet streaming",
        "ingest columnar batches, or open the session without shards=",
    ),
    CodeInfo(
        "RPR-E008", "unknown-engine", "error", "compile",
        "engine must be one of {engines}, got {engine!r}",
        'pick one of "auto", "vector", "row"',
    ),
    # -- resource infeasibility (§3.3/§4 area model) -----------------------
    CodeInfo(
        "RPR-E301", "sram-wont-fit", "error", "open",
        "stage {stage!r} cache will not fit: {pairs} pairs x "
        "{pair_bits} b = {mbit:.1f} Mbit = {pct:.1f}% of a "
        "{chip:.0f} mm2 die (budget {budget_pct:.1f}%)",
        "shrink the cache geometry, narrow the key/value layout, or "
        "raise area_budget",
    ),
    # -- session configuration caveats -------------------------------------
    CodeInfo(
        "RPR-W002", "one-shot-no-mid-stream-results", "warning", "open",
        "mid-stream results need an incremental store; the one-shot "
        "vector store defers its schedule to the end of the stream — "
        'open the session with a window= (or engine="row") for '
        "streaming reads",
        "pass window= for bounded-memory streaming with mid-stream "
        "snapshots",
    ),
    # -- mergeability / shardability (§3.2) --------------------------------
    CodeInfo(
        "RPR-W101", "non-mergeable-fold-serializes-stage", "warning",
        "compile",
        "fold {column!r} is not linear in state ({reason}); evictions "
        "cannot be merged — the backing store keeps per-epoch value "
        "lists (multi-epoch keys invalid) and sharded execution routes "
        "the whole stage {stage!r} through one worker",
        "rewrite the update as S = A*S + B with state-free A/B "
        "(paper S3.2) to restore mergeability",
    ),
    CodeInfo(
        "RPR-W102", "single-bucket-serializes-stage", "warning", "open",
        "stage {stage!r} uses a single-bucket (fully associative) "
        "geometry; hash partitioning has nothing to split and sharded "
        "execution routes the whole stage through one worker",
        "use a hash-table or set-associative geometry with more than "
        "one bucket",
    ),
    CodeInfo(
        "RPR-W103", "inexact-merge", "warning", "compile",
        "fold {column!r} merges inexactly: its coefficients read packet "
        "history (depth {depth}), so the first packet after each "
        "eviction sees freshly initialised history",
        "enable exact_history=True to log and replay the first k "
        "packets of each epoch",
    ),
    # -- value-range / overflow ---------------------------------------------
    CodeInfo(
        "RPR-W201", "int64-overflow-risk", "warning", "compile",
        "fold {column!r} state {var!r} may exceed int64: |init| {init} "
        "+ {records} records x per-record bound {bound} reaches 2^63 "
        "(safe up to {safe} records); the vector engine will fall back "
        "to exact scalar replay mid-run",
        "shorten the trace / shrink the field magnitude, or accept the "
        "slower bit-identical scalar replay fallback",
    ),
    # -- resource accounting -------------------------------------------------
    CodeInfo(
        "RPR-I301", "sram-budget", "info", "compile",
        "stage {stage!r} cache: {pairs} pairs x {pair_bits} b = "
        "{mbit:.2f} Mbit = {pct:.2f}% of a {chip:.0f} mm2 die",
        "",
    ),
    # -- program hygiene ------------------------------------------------------
    CodeInfo(
        "RPR-W401", "dead-stage", "warning", "compile",
        "query {name!r} is dead: not reachable from result {result!r} "
        "but still compiled to a stage that consumes switch resources",
        "remove the unused query, or reference it from the result",
    ),
    CodeInfo(
        "RPR-I402", "unused-field", "info", "compile",
        "trace columns never scanned by this program: {fields}; a "
        "shared-scan query set could skip parsing them",
        "",
    ),
    # -- concurrency / resource-safety static checks (``repro check``) -------
    CodeInfo(
        "RPR-C001", "unusable-suppression", "error", "check",
        "unusable suppression comment: {problem}",
        "write '# repro: allow[RPR-Cxxx]' naming the exact registered "
        "code(s) the line is waiving",
    ),
    CodeInfo(
        "RPR-C101", "event-loop-blocking-call", "error", "check",
        "blocking call {call}() can stall the event loop: reachable "
        "from async {entry}(){via}",
        "move the call off the loop (await loop.run_in_executor(...)) "
        "or use the asyncio equivalent",
    ),
    CodeInfo(
        "RPR-C102", "import-inside-async", "error", "check",
        "import of {module!r} inside async {entry}() runs module-load "
        "file I/O under the import lock on the event loop",
        "hoist the import to module top level",
    ),
    CodeInfo(
        "RPR-C201", "leak-on-exception-path", "error", "check",
        "{resource} held by {name!r} is not released when a later "
        "statement raises (first unguarded raise point: line {line})",
        "guard the window between acquisition and ownership hand-off "
        "with try/except that releases and re-raises (or with/finally)",
    ),
    CodeInfo(
        "RPR-C202", "leak-on-exit-path", "error", "check",
        "{resource} held by {name!r} is not released on the exit path "
        "at line {line}",
        "close the resource before returning, or hand ownership off "
        "explicitly (return it / store it on the owner)",
    ),
    CodeInfo(
        "RPR-C301", "non-data-checkpoint-value", "error", "check",
        "checkpoint payload entry {key} is {what}; snapshots must be "
        "plain data the restore path can unpickle and replay",
        "store the underlying plain-data state (counters, arrays, "
        "dicts) instead",
    ),
    CodeInfo(
        "RPR-C302", "runtime-handle-in-checkpoint", "error", "check",
        "checkpoint payload entry {key} captures runtime handle "
        "{attr!r}; locks/threads/sockets/processes do not survive "
        "pickling",
        "serialize the handle's replayable state, not the handle",
    ),
    CodeInfo(
        "RPR-C401", "swallowed-broad-except", "error", "check",
        "broad 'except {caught}' swallows the exception: the handler "
        "neither re-raises nor records it, so a SessionError/"
        "ShardError here would vanish silently",
        "re-raise after cleanup, narrow the exception type, or bind "
        "the exception and report it",
    ),
    CodeInfo(
        "RPR-C402", "nonreentrant-exit-handler", "error", "check",
        "{kind} handler {func}() calls {call}(), which can deadlock "
        "or fail when the handler interrupts the main thread",
        "set a flag/event in the handler and do the blocking work on "
        "a normal code path",
    ),
    CodeInfo(
        "RPR-C501", "wall-clock-in-replay", "error", "check",
        "time.time is wall clock; replay needs stream-position time "
        "(use the record's tin/tout or time.monotonic for "
        "non-replayed timeouts)",
        "use the record's tin/tout stream time, or time.monotonic for "
        "timeouts that are never replayed",
    ),
    CodeInfo(
        "RPR-C502", "shared-module-random", "error", "check",
        "random.{attr} uses the shared module-level generator; use a "
        "seeded random.Random(seed) instance",
        "thread a seeded random.Random(seed) from the session seed",
    ),
    CodeInfo(
        "RPR-C503", "numpy-global-random", "error", "check",
        "np.random.{attr} uses numpy's global generator; pass a "
        "Generator seeded from the session seed",
        "use np.random.default_rng(seed) / a Generator threaded from "
        "the session seed",
    ),
    CodeInfo(
        "RPR-C504", "unseeded-random-instance", "error", "check",
        "random.Random() without a seed draws OS entropy; seed it "
        "from the session/shard seed",
        "pass an explicit seed derived from the session/shard seed",
    ),
)

CODES: dict[str, CodeInfo] = {c.code: c for c in _REGISTRY}

_CODE_RE = re.compile(r"RPR-[EWIC]\d{3}")


def render(code: str, **context: object) -> str:
    """The canonical message for ``code`` (no code prefix)."""
    return CODES[code].template.format(**context)


def exc_message(code: str, **context: object) -> str:
    """Message with the ``[RPR-...]`` prefix, for raising exceptions.

    Every layer that rejects a configuration raises with this exact
    string, so the CLI, ``open()``, and served ``REJECT`` frames agree
    on wording and the code is recoverable with
    :func:`diagnostic_code`.
    """
    return f"[{code}] {render(code, **context)}"


def diagnostic_code(text: object) -> str | None:
    """Extract the first diagnostic code embedded in ``text`` (e.g. an
    exception message), or ``None``."""
    match = _CODE_RE.search(str(text))
    return match.group(0) if match else None


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the static analyzer (or a runtime rejection)."""

    code: str
    severity: str
    stage: str | None
    message: str
    fix_hint: str = ""

    @property
    def slug(self) -> str:
        return CODES[self.code].slug

    def format(self) -> str:
        where = f" [{self.stage}]" if self.stage else ""
        line = f"{self.code} {self.severity}{where}: {self.message}"
        if self.fix_hint:
            line += f"\n    fix: {self.fix_hint}"
        return line

    def to_json(self) -> dict[str, object]:
        return {
            "code": self.code,
            "slug": self.slug,
            "severity": self.severity,
            "stage": self.stage,
            "message": self.message,
            "fix_hint": self.fix_hint,
        }


def make(code: str, stage: str | None = None, **context: object) -> Diagnostic:
    """Build a :class:`Diagnostic` from the registry."""
    info = CODES[code]
    if stage is not None:
        context.setdefault("stage", stage)
    return Diagnostic(
        code=code,
        severity=info.severity,
        stage=stage,
        message=render(code, **context),
        fix_hint=info.fix,
    )


@dataclass(frozen=True)
class DiagnosticsReport:
    """The full outcome of one analysis pass, in emission order."""

    diagnostics: tuple[Diagnostic, ...] = field(default=())

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == "error")

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == "warning")

    @property
    def infos(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == "info")

    @property
    def has_errors(self) -> bool:
        return any(d.severity == "error" for d in self.diagnostics)

    @property
    def first_error(self) -> Diagnostic | None:
        for d in self.diagnostics:
            if d.severity == "error":
                return d
        return None

    def by_code(self, code: str) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.code == code)

    def format(self) -> str:
        """Human-readable report, errors first."""
        if not self.diagnostics:
            return "no diagnostics: deployable as configured"
        order = {"error": 0, "warning": 1, "info": 2}
        ranked = sorted(self.diagnostics,
                        key=lambda d: order[d.severity])
        lines = [d.format() for d in ranked]
        counts = (f"{len(self.errors)} error(s), "
                  f"{len(self.warnings)} warning(s), "
                  f"{len(self.infos)} info(s)")
        return "\n".join(lines + [counts])

    def to_json(self) -> dict[str, object]:
        return {
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "infos": len(self.infos),
            "diagnostics": [d.to_json() for d in self.diagnostics],
        }

    def dumps(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_json(), indent=indent)
