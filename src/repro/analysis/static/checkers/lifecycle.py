"""Resource-lifecycle checker (``RPR-C201``/``RPR-C202``).

Every ``SharedMemory`` segment, socket, or file handle acquired by a
function must be provably released on *every* path out of it — or its
ownership must provably move to another owner (returned, stored on an
object or in a container, handed to a call).  The proof is the
path-sensitive walk in :mod:`repro.analysis.static.cfg`: a ``HELD``
state surviving to an exception edge is a leak the happy-path tests
will never see (``RPR-C201``); one surviving to a ``return`` or the
function's end is a leak on the normal path (``RPR-C202``).

Tracked acquisitions are direct assignments of the form
``name = SharedMemory(...)`` / ``name = socket.socket(...)`` /
``name = open(...)`` (and ``os.fdopen``/``path.open``).  ``with``
acquisitions are already safe by construction and are not tracked;
names declared ``global``/``nonlocal`` publish the resource to another
owner and are skipped.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.static.base import Finding, ModuleContext, checker
from repro.analysis.static.callgraph import collect_functions, own_nodes
from repro.analysis.static.cfg import HELD, ResourceWalker


def _acquisition_label(call: ast.Call) -> str | None:
    """The resource kind a call acquires, or None."""
    func = call.func
    if isinstance(func, ast.Name):
        if func.id == "SharedMemory":
            return "shared-memory segment"
        if func.id == "open":
            return "file handle"
        return None
    if not isinstance(func, ast.Attribute):
        return None
    if func.attr == "SharedMemory":
        return "shared-memory segment"
    if (isinstance(func.value, ast.Name) and func.value.id == "socket"
            and func.attr == "socket"):
        return "socket"
    if (isinstance(func.value, ast.Name) and func.value.id == "os"
            and func.attr == "fdopen"):
        return "file handle"
    if func.attr == "open":
        # only path-like receivers: engine.open()/deployment.open()
        # return sessions, not OS handles
        recv = func.value
        if isinstance(recv, ast.Name) and (
                "path" in recv.id.lower() or "file" in recv.id.lower()):
            return "file handle"
        if (isinstance(recv, ast.Call) and isinstance(recv.func, ast.Name)
                and recv.func.id == "Path"):
            return "file handle"
    return None


@checker("resource-lifecycle", codes=("RPR-C201", "RPR-C202"))
def check_lifecycle(module: ModuleContext) -> Iterator[Finding]:
    for info in collect_functions(module.tree):
        published: set[str] = set()
        for node in own_nodes(info.node):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                published.update(node.names)
        for stmt in own_nodes(info.node):
            if not isinstance(stmt, ast.Assign):
                continue
            if len(stmt.targets) != 1 or \
                    not isinstance(stmt.targets[0], ast.Name):
                continue
            if not isinstance(stmt.value, ast.Call):
                continue
            label = _acquisition_label(stmt.value)
            if label is None:
                continue
            name = stmt.targets[0].id
            if name in published:
                continue
            out = ResourceWalker(name, stmt).walk_function(info.node)
            exc_leaks = sorted(ln for s, ln in out.exc if s == HELD)
            if exc_leaks:
                yield module.finding(
                    "RPR-C201", stmt, resource=label, name=name,
                    line=exc_leaks[0])
            ret_leaks = sorted(ln for s, ln in out.ret if s == HELD)
            if ret_leaks:
                yield module.finding(
                    "RPR-C202", stmt, resource=label, name=name,
                    line=ret_leaks[0])
            elif HELD in out.fall:
                end = getattr(info.node.body[-1], "lineno", stmt.lineno)
                yield module.finding(
                    "RPR-C202", stmt, resource=label, name=name,
                    line=end)
