"""On-chip SRAM cache of the split key-value store (paper §3.2, Fig. 4).

The cache is a hash table of ``n`` buckets; each bucket holds up to
``m`` key-value slots managed by an eviction policy (LRU in the paper;
FIFO and random are provided for the ablation benches).  The paper's
three geometries (§4):

* *hash table* — ``m = 1``: any collision evicts;
* *fully associative* — ``n = 1``: one bucket spanning the whole cache,
  i.e. a true global LRU;
* *k-way set-associative* — e.g. ``m = 8``, "similar to many processor
  L1 caches".

Buckets are ``OrderedDict``s so hit, insert, and evict are all O(1);
a fully associative cache is then simply one big ordered dict, which
keeps even the 2²⁰-pair Fig. 5 sweep tractable in pure Python.

Hashing uses an explicit 64-bit mix (splitmix64) so results are
reproducible across processes and independent of ``PYTHONHASHSEED``.

The ``random`` ablation policy draws its victim from a *counter-based*
RNG (:func:`replay_victim`): the victim of a bucket's ``k``-th eviction
is a pure function of ``(seed, bucket, k)``.  Per-bucket draw sequences
are therefore independent of how accesses to *other* buckets interleave
— which is what lets the array-native engines replay the policy per set
(and in windowed chunks) while staying bit-identical to this per-access
reference.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Generic, Hashable, Iterator, TypeVar

import numpy as np

from repro.core.errors import HardwareError

V = TypeVar("V")

_MASK64 = (1 << 64) - 1


def splitmix64(value: int) -> int:
    """Deterministic 64-bit mixer (public-domain splitmix64 finaliser)."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


def mix_key(key: Hashable, seed: int = 0) -> int:
    """Mix an aggregation key (int or tuple of ints) to 64 bits."""
    if isinstance(key, tuple):
        acc = seed & _MASK64
        for part in key:
            acc = splitmix64(acc ^ (int(part) & _MASK64))
        return acc
    return splitmix64((int(key) ^ seed) & _MASK64)


#: Odd 64-bit constants decorrelating the bucket and counter streams of
#: :func:`replay_victim` (golden-ratio and Pelle Evensen's moremur
#: increments).
_VICTIM_BUCKET_MULT = 0x9E3779B97F4A7C15
_VICTIM_COUNT_MULT = 0xD1B54A32D192ED03


#: Victim draws are precomputed in blocks of this many counter values
#: per bucket (the pre-modulo mix is independent of the bucket's
#: occupancy, so one block serves evictions at any ``size``).
_VICTIM_BLOCK = 64

#: Cap on cached victim-draw blocks (one per bucket).  Draws are pure
#: functions of ``(seed, bucket, count)``, so dropping the cache is
#: always safe — it only costs a recompute.
_VICTIM_CACHE_MAX = 4096


def replay_victim(seed: int, bucket: int, count: int, size: int) -> int:
    """Victim slot for the ``random`` policy's ``count``-th eviction in
    ``bucket``: a uniform draw over the bucket's ``size`` resident
    entries (in insertion order), from a counter-based RNG.

    Being a pure function of ``(seed, bucket, count)`` — rather than a
    position in one shared sequential draw stream — makes the policy
    decomposable per set: every execution strategy (per-access row
    loop, packed per-set array replay, windowed replay with carried
    per-set counters) consumes exactly the same draws.
    :func:`repro.switch.kvstore.vector_cache.replay_victim_array` is
    the element-wise identical batch form.
    """
    mixed = (seed + bucket * _VICTIM_BUCKET_MULT
             + count * _VICTIM_COUNT_MULT) & _MASK64
    return splitmix64(mixed) % size


@dataclass(frozen=True)
class CacheGeometry:
    """``n`` buckets × ``m`` slots (Fig. 4).

    ``capacity = n * m`` key-value pairs.  Constructors cover the three
    geometries of §4.
    """

    n_buckets: int
    m_slots: int

    def __post_init__(self) -> None:
        if self.n_buckets < 1 or self.m_slots < 1:
            raise HardwareError(
                f"invalid geometry: n={self.n_buckets}, m={self.m_slots}"
            )

    @property
    def capacity(self) -> int:
        return self.n_buckets * self.m_slots

    @classmethod
    def hash_table(cls, capacity: int) -> "CacheGeometry":
        """m=1: evict on any hash collision."""
        return cls(n_buckets=capacity, m_slots=1)

    @classmethod
    def fully_associative(cls, capacity: int) -> "CacheGeometry":
        """n=1: a full LRU over the whole cache."""
        return cls(n_buckets=1, m_slots=capacity)

    @classmethod
    def set_associative(cls, capacity: int, ways: int = 8) -> "CacheGeometry":
        """n=capacity/ways buckets of ``ways`` slots (paper's 8-way)."""
        if capacity % ways != 0:
            raise HardwareError(
                f"capacity {capacity} is not a multiple of ways {ways}"
            )
        return cls(n_buckets=capacity // ways, m_slots=ways)

    def describe(self) -> str:
        if self.m_slots == 1:
            return f"hash table ({self.n_buckets} buckets)"
        if self.n_buckets == 1:
            return f"fully associative ({self.m_slots} slots)"
        return f"{self.m_slots}-way associative ({self.n_buckets} sets)"


@dataclass
class CacheStats:
    """Counters maintained by the cache across its lifetime."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0

    @property
    def eviction_fraction(self) -> float:
        """Evictions as a fraction of accesses — the y-axis of Fig. 5
        (left), '% Evictions' over total packets seen."""
        return self.evictions / self.accesses if self.accesses else 0.0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


@dataclass
class Entry(Generic[V]):
    """One cached key-value pair."""

    key: Hashable
    value: V


class KeyValueCache(Generic[V]):
    """The on-chip cache: per-bucket eviction with pluggable policy.

    Args:
        geometry: Bucket layout.
        policy: ``"lru"`` (paper), ``"fifo"``, or ``"random"``.
        seed: Hash seed (and :func:`replay_victim` seed for the random
            policy).

    The central operation is :meth:`access`, which models the
    single-cycle lookup-update-or-initialise of §3.2: it returns the
    resident entry for ``key`` (creating it if absent) together with
    any entry that had to be evicted to make room.
    """

    POLICIES = ("lru", "fifo", "random")

    def __init__(self, geometry: CacheGeometry, policy: str = "lru", seed: int = 0):
        if policy not in self.POLICIES:
            raise HardwareError(f"unknown eviction policy {policy!r}")
        self.geometry = geometry
        self.policy = policy
        self.seed = seed
        self.stats = CacheStats()
        self._buckets: list[OrderedDict[Hashable, Entry[V]]] = [
            OrderedDict() for _ in range(geometry.n_buckets)
        ]
        #: Per-bucket eviction counters — the random policy's RNG state
        #: (victim of eviction ``k`` in bucket ``b`` is
        #: ``replay_victim(seed, b, k, m)``).
        self._evict_counts: dict[int, int] = {}
        #: bucket -> (base_count, pre-modulo uint64 draws for counts
        #: ``base_count .. base_count + _VICTIM_BLOCK - 1``), filled by
        #: the vectorized mixer so the per-eviction cost is one array
        #: index instead of a Python-bignum splitmix64 round.
        self._victim_blocks: dict[int, tuple[int, np.ndarray]] = {}

    # -- core operation ----------------------------------------------------

    def access(self, key: Hashable,
               make_value: Callable[[], V]) -> tuple[Entry[V], Entry[V] | None]:
        """Look up ``key``, inserting it if absent.

        Returns ``(entry, evicted)`` where ``evicted`` is the entry
        pushed out of the bucket (or ``None``).  On a hit the entry is
        refreshed per the policy (LRU moves it to the MRU position).
        """
        self.stats.accesses += 1
        index = self._bucket_index(key)
        bucket = self._buckets[index]
        entry = bucket.get(key)
        if entry is not None:
            self.stats.hits += 1
            if self.policy == "lru":
                bucket.move_to_end(key)
            return entry, None

        self.stats.misses += 1
        evicted: Entry[V] | None = None
        if len(bucket) >= self.geometry.m_slots:
            evicted = self._evict(bucket, index)
            self.stats.evictions += 1
        entry = Entry(key=key, value=make_value())
        bucket[key] = entry
        self.stats.insertions += 1
        return entry, evicted

    def _evict(self, bucket: OrderedDict[Hashable, Entry[V]],
               index: int) -> Entry[V]:
        if self.policy == "random":
            count = self._evict_counts.get(index, 0)
            self._evict_counts[index] = count + 1
            victim = self._victim_premod(index, count) % len(bucket)
            return bucket.pop(list(bucket)[victim])
        # LRU and FIFO both evict the oldest dict entry; they differ in
        # whether hits refresh recency (handled in access()).
        _, entry = bucket.popitem(last=False)
        return entry

    def _victim_premod(self, index: int, count: int) -> int:
        """Pre-modulo :func:`replay_victim` draw for eviction ``count``
        in bucket ``index``, served from a per-bucket block of
        vectorized draws (bit-identical: ``% size`` is applied by the
        caller on the very same 64-bit mix the scalar path computes)."""
        cached = self._victim_blocks.get(index)
        if cached is None or not cached[0] <= count < cached[0] + _VICTIM_BLOCK:
            # Lazy import: vector_cache imports this module at top level.
            from .vector_cache import splitmix64_array

            if len(self._victim_blocks) >= _VICTIM_CACHE_MAX:
                self._victim_blocks.clear()
            base = count - count % _VICTIM_BLOCK
            counts = np.arange(base, base + _VICTIM_BLOCK, dtype=np.uint64)
            mixed = (np.uint64(
                (self.seed + index * _VICTIM_BUCKET_MULT) & _MASK64)
                + counts * np.uint64(_VICTIM_COUNT_MULT))
            cached = (base, splitmix64_array(mixed))
            self._victim_blocks[index] = cached
        return int(cached[1][count - cached[0]])

    # -- queries -----------------------------------------------------------------

    def _bucket_index(self, key: Hashable) -> int:
        if self.geometry.n_buckets == 1:
            return 0
        return mix_key(key, self.seed) % self.geometry.n_buckets

    def _bucket_for(self, key: Hashable) -> OrderedDict[Hashable, Entry[V]]:
        return self._buckets[self._bucket_index(key)]

    def get(self, key: Hashable) -> Entry[V] | None:
        """Read without updating recency (diagnostics only — the paper
        notes results are read from the backing store, not the cache)."""
        return self._bucket_for(key).get(key)

    def __contains__(self, key: Hashable) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        return sum(len(b) for b in self._buckets)

    @property
    def occupancy(self) -> float:
        return len(self) / self.geometry.capacity

    def entries(self) -> Iterator[Entry[V]]:
        for bucket in self._buckets:
            yield from bucket.values()

    def flush(self) -> list[Entry[V]]:
        """Evict everything (end-of-run or periodic refresh, §3.2:
        "keys can be periodically evicted to ensure the backing store
        is fresh").  Flush evictions are *not* counted in
        ``stats.evictions`` — Fig. 5 counts only capacity evictions."""
        out: list[Entry[V]] = []
        for bucket in self._buckets:
            out.extend(bucket.values())
            bucket.clear()
        return out


#: Valid values of the ``engine`` knob (mirrors the query engine's).
ENGINES = ("auto", "vector", "row")


def simulate_eviction_count(keys: "Iterator[int] | list[int]",
                            geometry: CacheGeometry,
                            policy: str = "lru", seed: int = 0,
                            engine: str = "auto") -> CacheStats:
    """Value-free fast path: run only the cache-replacement process.

    Used by the Fig. 5 sweep, where millions of accesses are simulated
    across ~18 cache configurations and only the eviction counters
    matter.  Semantically identical to driving :class:`KeyValueCache`
    with unit values.

    ``keys`` may be any iterable of hashable keys — including a numpy
    array, which is consumed natively (no Python-list round trip at the
    call sites).  ``engine`` selects the implementation: ``"row"`` is
    this per-access reference loop, ``"vector"`` the array-native
    simulator of :mod:`repro.switch.kvstore.vector_cache` (bit-identical
    counters, orders of magnitude faster on large integer streams), and
    ``"auto"`` picks the vector engine whenever the stream is an
    integer array (anything else — tuples, arbitrary hashables — falls
    back to the row loop).
    """
    if engine not in ENGINES:
        raise HardwareError(f"engine must be one of {ENGINES}, got {engine!r}")
    if engine != "row":
        from .vector_cache import VectorCacheSim, _as_key_array

        arr = _as_key_array(keys)
        if arr is not None:
            return VectorCacheSim(arr, seed=seed).stats(geometry, policy=policy)
        if engine == "vector":
            arr = np.asarray([tuple(k) if isinstance(k, tuple) else k
                              for k in keys])
            return VectorCacheSim(arr, seed=seed).stats(geometry, policy=policy)
    if isinstance(keys, np.ndarray):
        # The row loop is fastest over native ints; tolist() also makes
        # hashing/equality trivially identical to historical list input.
        # 2-D arrays are tuple-key streams (one column per part).
        keys = [tuple(row) for row in keys.tolist()] if keys.ndim == 2 \
            else keys.tolist()
    cache: KeyValueCache[None] = KeyValueCache(geometry, policy=policy, seed=seed)
    make_none = lambda: None  # noqa: E731 - tight loop
    access = cache.access
    for key in keys:
        access(key, make_none)
    return cache.stats
