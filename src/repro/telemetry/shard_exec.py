"""Reusable multi-process worker pool for sharded session execution.

The Fig. 5/6 sweeps (:mod:`repro.analysis.sweep_exec`) already fan
independent cells across processes over one ``multiprocessing.shared_memory``
segment.  This module generalises that plumbing into a long-lived pool
that sharded *sessions* can stream through:

* **Batch framing.** :meth:`ShardWorkerPool.post` ships a dict of numpy
  arrays to one worker by packing them into a single shared-memory
  segment (one copy in, one copy out — no pickling of the bulk data);
  scalar metadata rides the control pipe.  Each segment lives until the
  worker acknowledges the copy-out, then the parent unlinks it, so the
  ``/dev/shm`` footprint is bounded by :data:`MAX_PENDING` segments per
  worker regardless of stream length.
* **Worker lifecycle.** Workers are forked (role objects are inherited
  by memory, never pickled — compiled programs and closures ship for
  free), run a recv/handle loop, and stop on a sentinel;
  :meth:`ShardWorkerPool.close` joins them with a terminate fallback
  and a ``weakref.finalize`` backstop for abandoned pools, releasing
  any still-pending segments either way.
* **Crash propagation.** A worker exception travels back as a formatted
  traceback and re-raises in the parent as :class:`ShardError`; a dead
  worker (EOF/broken pipe) raises with its exit code.  Either way no
  segment leaks: pending ones are unlinked on every failure path via
  the same idempotent :func:`release_shared_memory` teardown the sweep
  pool uses.

The pool is transport only — all sharding semantics (key partitioning,
merge combining) live with the roles, see
:mod:`repro.switch.kvstore.sharded` and
:class:`repro.telemetry.deploy.NetworkSession`.
"""

from __future__ import annotations

import multiprocessing
import traceback
import weakref
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Mapping, Sequence

import numpy as np

from repro.core.errors import HardwareError

#: Cap on unacknowledged in-flight batches per worker: bounds both the
#: transient /dev/shm footprint (a segment lives until its worker
#: copies it out) and how far the parent can run ahead of a slow shard.
MAX_PENDING = 8


class ShardError(HardwareError):
    """A shard worker failed: raised in its handler, died, or the pool
    was asked to operate after such a failure poisoned it."""


def release_shared_memory(shm: shared_memory.SharedMemory) -> None:
    """Close and unlink one shared-memory segment, tolerating partial
    or repeated teardown: a ``close()`` failure (e.g. a live buffer
    export) must not leak the ``/dev/shm`` segment, and releasing twice
    is a no-op.  Shared by this pool and the sweep pool's ``_fan``."""
    try:
        shm.close()
    except BufferError:
        # A numpy view still references the buffer; the mapping stays
        # until the view dies, but the segment must still be unlinked.
        pass
    try:
        shm.unlink()
    except FileNotFoundError:
        pass


def _pack_frames(arrays: Mapping[str, np.ndarray] | None) -> tuple[
        shared_memory.SharedMemory | None, tuple]:
    """Pack named arrays into one fresh segment; returns the segment
    (``None`` when there is nothing to ship) and the per-array specs
    ``(name, offset, dtype, shape)`` the receiver rebuilds from."""
    if not arrays:
        return None, ()
    packed = []
    offset = 0
    for name, arr in arrays.items():
        arr = np.ascontiguousarray(arr)
        if arr.dtype.hasobject:
            raise ShardError(
                f"cannot ship object-dtype column {name!r} through "
                f"shared memory")
        packed.append((name, offset, arr))
        offset += arr.nbytes
    shm = shared_memory.SharedMemory(create=True, size=max(1, offset))
    specs = []
    for name, off, arr in packed:
        if arr.nbytes:
            view = np.ndarray(arr.shape, dtype=arr.dtype,
                              buffer=shm.buf, offset=off)
            view[...] = arr
            del view       # drop the buffer export before any close()
        specs.append((name, off, arr.dtype.str, arr.shape))
    return shm, tuple(specs)


def _unpack_frames(shm_name: str | None,
                   specs: tuple) -> dict[str, np.ndarray]:
    """Copy the framed arrays out of the named segment (receiver side);
    the segment is closed before returning — the parent unlinks it on
    the acknowledgement this copy-out enables."""
    if shm_name is None:
        return {}
    shm = shared_memory.SharedMemory(name=shm_name)
    try:
        # Attaching registered the segment with the (fork-shared)
        # resource tracker a second time; the parent owns the unlink,
        # so drop this registration or the tracker warns about a
        # "leaked" segment at shutdown.
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:                    # pragma: no cover - best effort
        pass
    try:
        out = {}
        for name, offset, dtype, shape in specs:
            view = np.ndarray(shape, dtype=np.dtype(dtype),
                              buffer=shm.buf, offset=offset)
            out[name] = view.copy()
            del view
    finally:
        try:
            shm.close()
        except BufferError:      # pragma: no cover - views are deleted
            pass
    return out


def _worker_main(role, conn) -> None:
    """Worker loop: receive, ack the segment, dispatch to the role."""
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                return
            if msg[0] == "stop":
                return
            _, token, op, meta, reply, shm_name, specs = msg
            try:
                arrays = _unpack_frames(shm_name, specs)
            except Exception:
                conn.send(("error", token, traceback.format_exc()))
                continue
            conn.send(("ack", token))
            try:
                result = role.handle(op, meta, arrays)
            except Exception:
                conn.send(("error", token, traceback.format_exc()))
                continue
            if reply:
                conn.send(("result", token, result))
    except (BrokenPipeError, OSError):   # parent went away mid-send
        pass
    finally:
        try:
            conn.close()
        except OSError:
            pass


class _Worker:
    __slots__ = ("proc", "conn", "index", "pending", "results", "failed")

    def __init__(self, proc, conn, index: int):
        self.proc = proc
        self.conn = conn
        self.index = index
        #: token -> SharedMemory segments awaiting the worker's ack.
        self.pending: dict[int, shared_memory.SharedMemory] = {}
        #: token -> payload for completed calls not yet collected.
        self.results: dict[int, Any] = {}
        self.failed: str | None = None


def _shutdown(workers: list[_Worker]) -> None:
    """Stop every worker and release every pending segment; used by
    both :meth:`ShardWorkerPool.close` and the GC backstop."""
    for w in workers:
        try:
            w.conn.send(("stop",))
        except (OSError, ValueError):
            pass
    for w in workers:
        try:
            w.conn.close()
        except OSError:
            pass
        for shm in w.pending.values():
            release_shared_memory(shm)
        w.pending.clear()
    for w in workers:
        w.proc.join(timeout=5.0)
        if w.proc.is_alive():          # pragma: no cover - stuck worker
            w.proc.terminate()
            w.proc.join(timeout=1.0)


class ShardWorkerPool:
    """One forked worker process per role, with shared-memory batch
    shipping, bounded run-ahead, and crash propagation.

    ``post`` is fire-and-forget (ordering per worker is the pipe's
    FIFO, so a later ``call`` observes every earlier post — what makes
    mid-stream snapshots consistent); ``submit``/``result`` split a
    call so finalization can run on all shards concurrently
    (:meth:`call_all`).
    """

    def __init__(self, roles: Sequence[object], name: str = "shard"):
        if not roles:
            raise ShardError("worker pool needs at least one role")
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:             # pragma: no cover - non-POSIX
            raise ShardError(
                "sharded execution requires the fork start method "
                "(POSIX); this platform does not provide it") from None
        self._workers: list[_Worker] = []
        self._token = 0
        self._closed = False
        for i, role in enumerate(roles):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(target=_worker_main, args=(role, child_conn),
                               name=f"{name}-{i}", daemon=True)
            proc.start()
            child_conn.close()
            self._workers.append(_Worker(proc, parent_conn, i))
        self._finalizer = weakref.finalize(
            self, _shutdown, list(self._workers))

    @property
    def n_workers(self) -> int:
        return len(self._workers)

    @property
    def closed(self) -> bool:
        return self._closed

    # -- sending -------------------------------------------------------------

    def post(self, worker: int, op: str, meta: Any = None,
             arrays: Mapping[str, np.ndarray] | None = None) -> None:
        """Fire-and-forget: ship ``arrays``/``meta`` to one worker.  A
        handler failure surfaces as :class:`ShardError` on a later
        interaction with that worker."""
        self._send(worker, op, meta, arrays, reply=False)

    def submit(self, worker: int, op: str, meta: Any = None,
               arrays: Mapping[str, np.ndarray] | None = None,
               ) -> tuple[int, int]:
        """Start a call; pass the returned handle to :meth:`result`."""
        return self._send(worker, op, meta, arrays, reply=True)

    def call(self, worker: int, op: str, meta: Any = None,
             arrays: Mapping[str, np.ndarray] | None = None) -> Any:
        """Synchronous round trip to one worker."""
        return self.result(self.submit(worker, op, meta, arrays))

    def call_all(self, op: str, meta: Any = None) -> list[Any]:
        """Run ``op`` on every worker *concurrently* (all requests are
        in flight before the first result is awaited) and return the
        payloads in worker order."""
        handles = [self.submit(i, op, meta)
                   for i in range(len(self._workers))]
        return [self.result(h) for h in handles]

    def result(self, handle: tuple[int, int]) -> Any:
        """Collect one submitted call's payload (blocking)."""
        index, token = handle
        w = self._workers[index]
        self._check(w)
        while token not in w.results:
            self._handle_msg(w, self._recv(w))
        return w.results.pop(token)

    # -- internals -----------------------------------------------------------

    def _send(self, index: int, op: str, meta: Any,
              arrays: Mapping[str, np.ndarray] | None,
              reply: bool) -> tuple[int, int]:
        w = self._workers[index]
        self._check(w)
        # Opportunistically drain acks, then block while over the cap.
        while w.conn.poll(0):
            self._handle_msg(w, self._recv(w))
        while len(w.pending) >= MAX_PENDING:
            self._handle_msg(w, self._recv(w))
        self._token += 1
        token = self._token
        shm, specs = _pack_frames(arrays)
        if shm is not None:
            w.pending[token] = shm
        try:
            w.conn.send(("op", token, op, meta, reply,
                         None if shm is None else shm.name, specs))
        except (OSError, ValueError) as exc:
            if shm is not None:
                release_shared_memory(w.pending.pop(token))
            w.failed = f"send failed: {exc}"
            raise ShardError(
                f"shard worker {w.index} is gone "
                f"(exitcode {w.proc.exitcode}): {exc}") from exc
        return index, token

    def _recv(self, w: _Worker):
        try:
            return w.conn.recv()
        except (EOFError, OSError) as exc:
            w.failed = f"worker died (exitcode {w.proc.exitcode})"
            for shm in w.pending.values():
                release_shared_memory(shm)
            w.pending.clear()
            raise ShardError(
                f"shard worker {w.index} died "
                f"(exitcode {w.proc.exitcode})") from exc

    def _handle_msg(self, w: _Worker, msg) -> None:
        kind = msg[0]
        if kind == "ack":
            shm = w.pending.pop(msg[1], None)
            if shm is not None:
                release_shared_memory(shm)
        elif kind == "result":
            w.results[msg[1]] = msg[2]
        else:                                    # ("error", token, tb)
            w.failed = msg[2]
            raise ShardError(
                f"shard worker {w.index} raised:\n{msg[2]}")

    def _check(self, w: _Worker) -> None:
        if self._closed:
            raise ShardError("worker pool is closed")
        if w.failed is not None:
            raise ShardError(
                f"shard worker {w.index} already failed:\n{w.failed}")

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Stop every worker and release pending segments (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._finalizer()          # runs _shutdown exactly once

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
