"""Seeded violations: RPR-C501..C504, one per line of jitter()."""
import random
import time

import numpy as np


def jitter():
    now = time.time()                 # C501: wall clock
    rng = random.Random()             # C504: unseeded instance
    noise = np.random.rand(3)         # C503: numpy global generator
    shared = random.random()          # C502: shared module generator
    return now + rng.random() + noise.sum() + shared
