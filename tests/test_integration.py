"""End-to-end scenario tests: simulate a network, run operator queries,
and check the diagnosis is right — the workflow the paper motivates.
"""


import pytest

from repro.queries.catalog import get
from repro.switch.kvstore.cache import CacheGeometry
from repro.telemetry.runtime import QueryEngine
from repro.traffic.incast import IncastConfig, generate_incast

GEOM = CacheGeometry.set_associative(256, ways=8)


@pytest.fixture(scope="module")
def incast():
    return generate_incast(IncastConfig(n_senders=16, rounds=4))


class TestIncastDiagnosis:
    """§5: 'using TPP/INT it is hard to track which applications
    contribute to TCP incast at a particular queue' — our per-queue
    observations make it one GROUPBY."""

    def test_p99_query_flags_hotspot_queue(self, incast):
        entry = get("high_p99_queue_size")
        engine = QueryEngine(entry.source, params={"K": 16}, geometry=GEOM)
        report = engine.run(incast.table.records)
        flagged = [row["qid"] for row in report.result]
        assert incast.hotspot_qid in flagged

    def test_contributors_identified_at_hotspot(self, incast):
        source = ("SELECT COUNT GROUPBY srcip, qid "
                  "WHERE qid == HOT and qin > D")
        engine = QueryEngine(
            source, params={"HOT": incast.hotspot_qid, "D": 16}, geometry=GEOM)
        report = engine.run(incast.table.records)
        # Background hosts can legitimately appear (their packets also
        # sat behind the deep queue), but the *dominant* contributors
        # by packet count must be the incast senders.
        ranked = sorted(report.result.rows, key=lambda r: -r["COUNT"])
        senders = set(incast.sender_ips)
        top = [row["srcip"] for row in ranked[:len(senders)]]
        assert set(top) <= senders
        assert senders <= {row["srcip"] for row in ranked}

    def test_loss_localised_to_hotspot(self, incast):
        source = "SELECT COUNT GROUPBY qid WHERE tout == infinity"
        engine = QueryEngine(source, geometry=GEOM)
        report = engine.run(incast.table.records)
        assert [row["qid"] for row in report.result] == [incast.hotspot_qid]
        assert report.result.rows[0]["COUNT"] == incast.drops


class TestLossRateScenario:
    def test_loss_rates_match_simulator_stats(self, incast):
        entry = get("per_flow_loss_rate")
        engine = QueryEngine(entry.source, geometry=GEOM)
        report = engine.run(incast.table.records)
        # Recompute from raw observations.
        totals: dict[tuple, int] = {}
        drops: dict[tuple, int] = {}
        for record in incast.table:
            key = record.five_tuple()
            totals[key] = totals.get(key, 0) + 1
            if record.dropped:
                drops[key] = drops.get(key, 0) + 1
        for row in report.result:
            key = (row["srcip"], row["dstip"], row["srcport"],
                   row["dstport"], row["proto"])
            assert row["loss_rate"] == pytest.approx(drops[key] / totals[key])


class TestLatencyScenario:
    def test_ewma_reflects_queueing(self, incast):
        entry = get("latency_ewma")
        engine = QueryEngine(
            "def ewma (lat_est, (tin, tout)):\n"
            "    lat_est = (1 - alpha) * lat_est + alpha * (tout - tin)\n"
            "SELECT 5tuple, ewma GROUPBY 5tuple WHERE tout != infinity",
            params={"alpha": 0.2}, geometry=GEOM)
        report = engine.run(incast.table.records)
        estimates = [row["lat_est"] for row in report.result]
        assert all(e > 0 for e in estimates)
        # Incast senders queue behind each other: some flows must see
        # much worse latency than the best flow.
        assert max(estimates) > 5 * min(estimates)

    def test_per_packet_latency_tap(self, incast):
        engine = QueryEngine(
            "SELECT srcip, qid FROM T WHERE tout - tin > 100us",
            geometry=GEOM)
        report = engine.run(incast.table.records)
        assert len(report.result) > 0
        for row in report.result.rows:
            assert row["qid"] == incast.hotspot_qid


class TestExactnessThroughRuntime:
    def test_merged_counts_equal_raw_counts(self, incast):
        engine = QueryEngine("SELECT COUNT GROUPBY srcip",
                             geometry=CacheGeometry.set_associative(8, ways=2))
        report = engine.run(incast.table.records)
        raw: dict[int, int] = {}
        for record in incast.table:
            raw[record.srcip] = raw.get(record.srcip, 0) + 1
        reported = {row["srcip"]: row["COUNT"] for row in report.result}
        assert reported == raw
