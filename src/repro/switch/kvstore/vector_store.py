"""Schedule-driven vectorized split key-value store (batch engine).

Batch counterpart of :class:`~repro.switch.kvstore.split.SplitKeyValueStore`
— the last per-packet Python loop on the hardware path.  Given the
stage's whole (WHERE-filtered) key/value column stream, it produces
**bit-identical** results without touching each packet in Python:

1. **Schedule.** :class:`~repro.switch.kvstore.vector_cache.VectorCacheSim`
   precomputes, per access, whether it hits the resident entry or
   initialises a fresh value (:meth:`VectorCacheSim.miss_schedule`),
   plus the exact :class:`CacheStats` counters.  The replacement
   process is independent of the values (and of periodic refresh,
   which resets values but never residency), so the schedule is a pure
   function of the key stream.

2. **Epochs.** A key's accesses between two of its misses are all hits
   on one resident entry, so each key's occurrence list cut at its
   miss positions — and at periodic-refresh boundaries (§3.2), which
   reset values in place — yields the *residency epochs*: exactly the
   per-entry value lifetimes the row store pushes to the backing store
   (each nonempty epoch is dirty and absorbed exactly once, at
   eviction, refresh, or the final flush).  One composite
   ``(key, time)`` sort materialises every epoch as a contiguous
   segment.

3. **Segmented folds.** Per-epoch fold values are computed with the
   shared machinery of :mod:`repro.core.vector_exec`, with epochs as
   the groups: identity linear folds (§3.2, via
   :mod:`repro.core.linearity`) as ``np.add.at`` segmented reductions
   (order-preserving, so float results match the row loop bit for
   bit), diagonal linear folds (EWMA) via the exact round-major path
   with the merge product ``P`` as a segmented ``np.multiply.at``, and
   everything else (non-linear folds' value segments, full-matrix
   merges) via the round-major path or an exact scalar replay over the
   packed epoch layout.  Exact-history auxiliaries (first-``k`` packet
   logs, post-prefix snapshots) come from prefix-restricted segmented
   reductions.

4. **Backing-store merge.** Closed epochs are absorbed into a real
   :class:`~repro.switch.kvstore.backing.BackingStore` in per-key
   chronological order (the only order merging observes — a key has at
   most one open epoch at a time).  The common all-additive case is
   itself vectorized: with zero initial state the row store's nested
   ``evicted + (backing - init)`` merges reassociate to a plain
   segmented sum (IEEE addition is commutative), so the per-key merged
   values fall out of one ``np.add.at`` over the epoch values.

Differential property tests (``tests/test_vector_store.py``) assert
bit-identical ``ResultTable``, ``CacheStats``, accuracy, backing-store
writes, and refresh counts against the row store over the full query
catalog, every eviction policy, and adversarial streams.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.core.ast_nodes import StateRef, walk
from repro.core.errors import CheckpointError, HardwareError
from repro.core.eval_expr import Numeric
from repro.core.interpreter import ResultTable
from repro.core.merge_synthesis import (
    AuxState,
    init_aux,
    note_post_prefix_state,
    update_aux,
)
from repro.core.plan import FoldConfig, GroupByStage
from repro.network.records import ColumnRowView
from repro.core.vector_exec import (
    ArrayContext,
    FoldVectorizer,
    GroupLayout,
    VectorizationError,
    as_column,
    eval_array,
    factorize,
    guard_int64_accumulation,
)

from ..alu import compile_update
from .backing import BackingStore, KeyEntry
from .cache import CacheGeometry, CacheStats
from .split import build_result_table
from .vector_cache import VectorCacheSim


class _FoldEpochs:
    """Per-epoch end states and auxiliary registers for one fold.

    ``values`` maps state variables to per-epoch sequences; auxiliary
    registers are materialised lazily per epoch by :meth:`aux` (only
    absorbed epochs pay for dict construction).
    """

    __slots__ = ("spec", "values", "arrays", "aux_list", "P", "log",
                 "snapshot", "seen")

    def __init__(self, spec, values: dict[str, list], arrays=None,
                 aux_list=None, P=None, log=None, snapshot=None, seen=None):
        self.spec = spec
        self.values = values
        self.arrays = arrays            # vectorized paths: the numpy originals
        self.aux_list = aux_list        # replay fallback: real AuxState dicts
        self.P = P                      # scale: var -> per-epoch product
        self.log = log                  # exact history: j -> field -> values
        self.snapshot = snapshot        # exact history: var -> per-epoch value
        self.seen = seen                # exact history: per-epoch access count

    def value(self, e: int) -> dict[str, Numeric]:
        return {var: lst[e] for var, lst in self.values.items()}

    def aux(self, e: int) -> AuxState:
        if self.aux_list is not None:
            return self.aux_list[e]
        aux: AuxState = {}
        if self.P is not None:
            aux["P"] = {var: lst[e] for var, lst in self.P.items()}
        if self.spec.exact_history:
            k = self.spec.history_depth
            seen = self.seen[e]
            aux["log"] = [
                {f: vals[e] for f, vals in self.log[j].items()}
                for j in range(min(k, seen))
            ]
            aux["snapshot"] = (
                {var: lst[e] for var, lst in self.snapshot.items()}
                if seen >= k else None
            )
            aux["seen"] = seen
        return aux


class _FoldCont:
    """Epoch-continuation inputs for one fold in one window: epochs of
    the current window that resume a carried open epoch, with the
    carried end state and auxiliary registers to resume from.

    ``eids``, ``states`` and ``auxes`` are aligned; ``eids`` are epoch
    ids of the *current* window's layout.
    """

    __slots__ = ("eids", "states", "auxes")

    def __init__(self, eids: np.ndarray, states: list[dict],
                 auxes: list[AuxState]):
        self.eids = eids
        self.states = states
        self.auxes = auxes

    def __len__(self) -> int:
        return len(self.eids)

    def p_values(self, var: str) -> np.ndarray:
        """Carried merge products for ``var``, aligned with ``eids``."""
        return np.asarray([aux["P"][var] for aux in self.auxes],
                          dtype=np.float64)

    def override(self, fold: FoldConfig, n_groups: int,
                 variables) -> dict[str, np.ndarray]:
        """Per-group initial-value arrays for ``variables``: the fold's
        scalar init everywhere, the carried value at continuing epochs
        (dtype-promoted so carried floats are not truncated)."""
        out: dict[str, np.ndarray] = {}
        for var in variables:
            init = fold.instance.inits.get(var, 0)
            arr = np.full(n_groups, init,
                          dtype=np.float64 if isinstance(init, float)
                          else np.int64)
            if len(self.eids):
                vals = np.asarray([s[var] for s in self.states])
                dtype = np.result_type(arr.dtype, vals.dtype)
                if dtype != arr.dtype:
                    arr = arr.astype(dtype)
                arr[self.eids] = vals
            out[var] = arr
        return out


class VectorSplitStore:
    """Vectorized split cache/backing-store engine for one ``GROUPBY``
    stage — same constructor and result surface as
    :class:`~repro.switch.kvstore.split.SplitKeyValueStore`, but fed
    whole column batches via :meth:`add_batch` instead of per-packet
    calls.  Execution is deferred to :meth:`finalize`, when the full
    key stream is known (the replacement schedule is global) — every
    observable (``stats``, ``refreshes``, ``backing``, results) holds
    its end-of-run value only after finalize, which the result
    accessors invoke automatically.
    """

    def __init__(
        self,
        stage: GroupByStage,
        geometry: CacheGeometry,
        params: Mapping[str, Numeric] | None = None,
        policy: str = "lru",
        seed: int = 0,
        refresh_interval: int | None = None,
    ):
        if refresh_interval is not None and refresh_interval <= 0:
            raise HardwareError("refresh_interval must be positive")
        self.stage = stage
        self.params = dict(params or {})
        self.geometry = geometry
        self.policy = policy
        self.seed = seed
        self.refresh_interval = refresh_interval
        self.refreshes = 0
        self._stats = CacheStats()
        self._backing: BackingStore | None = None
        self._bulk: tuple[dict[str, dict[str, np.ndarray]], np.ndarray] | None = None
        self._writes = 0
        self._vec = {
            fold.column: FoldVectorizer(fold.instance, fold.linearity,
                                        self.params)
            for fold in stage.folds
        }
        #: Observation-table fields the fold updates read (the batch
        #: caller must supply these columns).
        self.needed_fields: frozenset[str] = frozenset().union(
            *(v.needed for v in self._vec.values())
        ) if stage.folds else frozenset()
        self._key_chunks: list[np.ndarray] = []
        self._col_chunks: dict[str, list[np.ndarray]] = {
            name: [] for name in self.needed_fields
        }
        self._keys_in_order: list[tuple] = []
        self._unique_key_cols: list[np.ndarray] = []
        self._finalized = False

    @property
    def stats(self) -> CacheStats:
        """End-of-run cache counters (finalizes the deferred schedule,
        like every other observable)."""
        self.finalize()
        return self._stats

    @property
    def backing(self) -> BackingStore:
        """The backing store.  On the all-additive bulk path it is
        materialised lazily — the merged values live in per-key arrays
        until someone actually inspects the store (the result table and
        accuracy are served straight from the arrays)."""
        if self._backing is None:
            self._backing = self._materialize_backing()
        return self._backing

    # -- batch ingestion -----------------------------------------------------

    def add_batch(self, keys: np.ndarray,
                  columns: Mapping[str, np.ndarray]) -> None:
        """Queue one (already WHERE-filtered) chunk.

        Args:
            keys: ``(n, k)`` integer array — one column per key field,
                in stream order.
            columns: The fold-update input columns (every name in
                :attr:`needed_fields`), masked identically to ``keys``.
        """
        if self._finalized:
            raise HardwareError(
                "store already finalized (an observable was read, which "
                "runs the deferred schedule); use the row engine for "
                "incremental streaming with mid-run reads"
            )
        if keys.ndim != 2 or keys.dtype.kind not in "iub":
            raise HardwareError("vector store needs a 2-D integer key array")
        self._key_chunks.append(keys)
        for name in self.needed_fields:
            try:
                self._col_chunks[name].append(columns[name])
            except KeyError:
                raise HardwareError(f"missing fold input column {name!r}") \
                    from None

    # -- durable checkpoints -------------------------------------------------

    def checkpoint_state(self) -> dict:
        """Plain-data snapshot of the deferred store: everything it
        holds pre-finalize is the buffered input itself."""
        if self._finalized:
            raise CheckpointError("cannot checkpoint a finalized store")
        return {
            "kind": "oneshot",
            "pending_keys": np.concatenate(self._key_chunks)
            if self._key_chunks else None,
            "pending_cols": {
                name: np.concatenate(chunks) if chunks else None
                for name, chunks in self._col_chunks.items()
            },
        }

    def restore_state(self, state: dict) -> None:
        if state.get("kind") != "oneshot":
            raise CheckpointError(
                f"store state mismatch: snapshot carries "
                f"{state.get('kind')!r}, expected 'oneshot'")
        if self._finalized or self._key_chunks:
            raise CheckpointError("restore target store must be fresh")
        if state["pending_keys"] is not None:
            self._key_chunks = [state["pending_keys"]]
            for name, pending in state["pending_cols"].items():
                self._col_chunks[name] = [pending]

    def process(self, record: object) -> None:
        raise HardwareError(
            "VectorSplitStore is batch-only; use add_batch(), or the row "
            "engine (SplitKeyValueStore) for per-packet streaming"
        )

    def process_keyed(self, key, record: object) -> None:
        self.process(record)

    # -- execution -----------------------------------------------------------

    def finalize(self) -> None:
        """Run the deferred schedule + segmented fold execution and
        flush everything into the backing store (idempotent)."""
        if self._finalized:
            return
        self._finalized = True
        n = sum(len(c) for c in self._key_chunks)
        if n == 0:
            return
        keys2d = np.ascontiguousarray(np.concatenate(self._key_chunks))
        if keys2d.dtype != np.int64:
            keys2d = keys2d.astype(np.int64)
        columns = {
            name: np.concatenate(chunks)
            for name, chunks in self._col_chunks.items()
        }
        self._key_chunks.clear()
        self._col_chunks.clear()

        # 1. Key factorization (shared between the cache simulator and
        # the epoch segmentation) + replacement schedule
        # (value-independent).
        key_cols = [keys2d[:, j] for j in range(keys2d.shape[1])]
        gid, unique_cols, n_groups = factorize(key_cols)
        sim = VectorCacheSim(keys2d, seed=self.seed, key_ids=gid)
        self._stats, miss = sim.stats_and_schedule(self.geometry,
                                                   policy=self.policy)

        # 2. Epoch segmentation: one (key, time) sort; new epoch at
        # every miss and at refresh boundaries crossed since the key's
        # previous access (refresh resets values in place, §3.2).
        comp = (gid << np.int64(32)) | np.arange(n, dtype=np.int64)
        comp.sort()
        sorted_idx = comp & np.int64(0xFFFFFFFF)
        gid_sorted = comp >> np.int64(32)
        new_epoch = np.empty(n, dtype=bool)
        new_epoch[0] = True
        same_key = gid_sorted[1:] == gid_sorted[:-1]
        new_epoch[1:] = ~same_key | miss[sorted_idx[1:]]
        if self.refresh_interval is not None:
            boundaries = sorted_idx // self.refresh_interval
            new_epoch[1:] |= same_key & (boundaries[1:] > boundaries[:-1])
            self.refreshes = n // self.refresh_interval
        eid_sorted = np.cumsum(new_epoch) - 1
        n_epochs = int(eid_sorted[-1]) + 1
        eid = np.empty(n, dtype=np.int64)
        eid[sorted_idx] = eid_sorted
        epoch_key = gid_sorted[new_epoch]       # key id of each epoch
        layout = GroupLayout.from_sorted_order(eid, n_epochs, sorted_idx)

        # 3. Per-epoch fold values (segmented reductions / rounds /
        # exact replay).
        ctx = ArrayContext(columns, self.params, n)
        fold_epochs = {
            fold.column: self._eval_fold(fold, ctx, layout)
            for fold in self.stage.folds
        }

        # 4. Backing-store merge of every closed epoch.
        self._keys_in_order = list(zip(*(c.tolist() for c in unique_cols)))
        self._unique_key_cols = unique_cols
        if self._all_plain_additive() and all(
                fe.arrays is not None for fe in fold_epochs.values()):
            self._merge_bulk(fold_epochs, epoch_key, n_groups, n_epochs)
        else:
            self._backing = BackingStore(self.stage.folds, params=self.params)
            self._absorb_epochs(fold_epochs, epoch_key)
            self._writes = self._backing.writes

    # -- fold evaluation -----------------------------------------------------

    def _eval_fold(self, fold: FoldConfig, ctx: ArrayContext,
                   layout: GroupLayout,
                   cont: _FoldCont | None = None) -> _FoldEpochs:
        """Per-epoch fold values; ``cont`` (windowed mode) seeds epochs
        that continue a carried open epoch from an earlier window."""
        spec = fold.merge
        vec = self._vec[fold.column]
        try:
            if cont is not None and spec.exact_history:
                # Continuing an exact-history epoch means resuming its
                # packet log / snapshot / seen registers mid-prefix —
                # sequential by nature: exact scalar replay.
                return self._replay_fold(fold, ctx, layout, cont)
            if spec.strategy == "list":
                # Non-mergeable: only per-epoch end states are needed
                # (the backing store keeps them as value segments).
                if cont is None:
                    states = vec.evaluate(ctx, layout)
                else:
                    override = cont.override(fold, layout.n_groups,
                                             fold.instance.state_vars)
                    if vec.strategy == "reduction":
                        states = vec.reduce(ctx, layout,
                                            init_override=override)
                    else:
                        states = vec.run_rounds(ctx, layout,
                                                init_override=override)
                return _FoldEpochs(spec, _tolist_states(states))
            if spec.strategy == "additive":
                return self._eval_additive(fold, vec, ctx, layout, cont)
            if spec.strategy == "scale" and not spec.exact_history:
                return self._eval_scale(fold, vec, ctx, layout, cont)
            # Full-matrix merge products (and exact-history scale) are
            # sequential and non-commutative: exact scalar replay.
            return self._replay_fold(fold, ctx, layout, cont)
        except VectorizationError:
            return self._replay_fold(fold, ctx, layout, cont)

    def _eval_additive(self, fold: FoldConfig, vec: FoldVectorizer,
                       ctx: ArrayContext, layout: GroupLayout,
                       cont: _FoldCont | None = None) -> _FoldEpochs:
        """Identity-matrix linear folds: per-epoch ``S = init + Σ B``
        via order-preserving ``np.add.at`` (bit-identical to the row
        loop), with history pre-values reset per epoch; exact-history
        snapshots are the same reduction restricted to each epoch's
        first ``k`` packets.  ``cont`` seeds continuing epochs' state
        (exact-history continuation never reaches this path)."""
        spec = fold.merge
        override = None if cont is None else \
            cont.override(fold, layout.n_groups, fold.instance.state_vars)
        pre, final = vec._history_values(ctx, layout, init_override=override)
        states = dict(final)
        k = spec.history_depth if spec.exact_history else 0
        snapshot: dict[str, np.ndarray] = {}
        if k:
            ranks = layout.ranks_group_major()
            prefix_pos = np.flatnonzero(ranks < k)   # (epoch, time)-ordered
            prefix_rows = layout.order[prefix_pos]
            prefix_eid = layout.gid[prefix_rows]
        bctx = ArrayContext(ctx.columns, self.params, ctx.n, state=pre)
        for var in fold.linearity.order:
            init = fold.instance.inits.get(var, 0)
            b = np.asarray(as_column(
                eval_array(fold.linearity.offset[var], bctx), ctx.n))
            if override is not None:
                init_arr = override[var]
                dtype = np.result_type(b.dtype, init_arr.dtype)
                out = init_arr.astype(dtype, copy=True)
            else:
                dtype = np.result_type(
                    b.dtype,
                    np.float64 if isinstance(init, float) else np.int64)
                out = np.full(layout.n_groups, init, dtype=dtype)
            b = b.astype(dtype, copy=False)
            guard_int64_accumulation(out, b)
            np.add.at(out, layout.gid, b)
            states[var] = out
            if k:
                snap = np.full(layout.n_groups, init, dtype=dtype)
                np.add.at(snap, prefix_eid, b[prefix_rows])
                snapshot[var] = snap
        return _FoldEpochs(
            spec, _tolist_states(states), arrays=states,
            log=self._epoch_logs(spec, ctx, layout) if k else None,
            snapshot=_tolist_states(snapshot) if k else None,
            seen=layout.counts.tolist() if k else None,
        )

    def _eval_scale(self, fold: FoldConfig, vec: FoldVectorizer,
                    ctx: ArrayContext, layout: GroupLayout,
                    cont: _FoldCont | None = None) -> _FoldEpochs:
        """Diagonal linear folds (EWMA class): end states via the exact
        round-major path; the merge product ``P`` is a segmented
        ``np.multiply.at`` of the per-packet coefficients (affine
        extraction guarantees they read only the packet and history
        pre-values, so one vectorized pass evaluates them all).
        ``cont`` seeds continuing epochs' state and running product —
        multiplications then continue in packet order from the carried
        product, exactly like the scalar ``P ← a·P`` updates."""
        spec = fold.merge
        override = None if cont is None else \
            cont.override(fold, layout.n_groups, fold.instance.state_vars)
        states = vec.run_rounds(ctx, layout, init_override=override)
        coeffs = [spec.matrix.get((var, var)) for var in spec.order]
        pre = None
        if any(c is not None and _references_state(c) for c in coeffs):
            pre, _ = vec._history_values(ctx, layout, init_override=override)
        pctx = ArrayContext(ctx.columns, self.params, ctx.n, state=pre)
        P: dict[str, list] = {}
        for var, coeff in zip(spec.order, coeffs):
            prod = np.ones(layout.n_groups, dtype=np.float64)
            if cont is not None and len(cont.eids):
                prod[cont.eids] = cont.p_values(var)
            if coeff is None:
                a: np.ndarray | float = 0.0
            else:
                a = as_column(eval_array(coeff, pctx), ctx.n)
            np.multiply.at(prod, layout.gid, a)
            P[var] = prod.tolist()
        return _FoldEpochs(spec, _tolist_states(states), P=P)

    def _epoch_logs(self, spec, ctx: ArrayContext,
                    layout: GroupLayout) -> list[dict[str, list]]:
        """Exact-history packet logs: the fields of each epoch's first
        ``k`` packets (``log[j][field][e]`` — defined for epochs with
        more than ``j`` accesses)."""
        logs: list[dict[str, list]] = []
        counts = layout.counts
        for j in range(spec.history_depth):
            sel = np.flatnonzero(counts > j)
            rows = layout.order[layout.offsets[:-1][sel] + j]
            entry: dict[str, list] = {}
            for f in spec.packet_fields:
                vals = np.zeros(layout.n_groups,
                                dtype=ctx.columns[f].dtype)
                vals[sel] = ctx.columns[f][rows]
                entry[f] = vals.tolist()
            logs.append(entry)
        return logs

    def _replay_fold(self, fold: FoldConfig, ctx: ArrayContext,
                     layout: GroupLayout,
                     cont: _FoldCont | None = None) -> _FoldEpochs:
        """Exact scalar replay over the packed epoch layout — the same
        update/aux calls as the row store's per-packet path, minus the
        cache machinery.  Safety net for full-matrix merges and
        anything the array evaluator cannot express.  ``cont`` seeds
        continuing epochs with (copies of) the carried state and
        auxiliary registers."""
        spec = fold.merge
        update = compile_update(fold.alu.update_exprs, self.params)
        needs_aux = spec.strategy in ("scale", "matrix") or spec.exact_history
        needed = sorted(self._vec[fold.column].needed)
        missing = [f for f in needed if f not in ctx.columns]
        if missing:
            raise HardwareError(f"missing fold input column {missing[0]!r}")
        col_lists = {f: ctx.columns[f].tolist() for f in needed}
        gid_list = layout.gid.tolist()
        n_epochs = layout.n_groups
        states: list[dict | None] = [None] * n_epochs
        auxes: list[AuxState | None] = [None] * n_epochs
        if cont is not None:
            for e, state, aux in zip(cont.eids.tolist(), cont.states,
                                     cont.auxes):
                states[e] = dict(state)
                auxes[e] = _copy_aux(aux)
        exact_history = spec.exact_history
        for i in layout.order.tolist():      # epoch-major, time within
            e = gid_list[i]
            state = states[e]
            if state is None:
                state = fold.instance.initial_state()
                states[e] = state
                auxes[e] = init_aux(spec)
            row = ColumnRowView(col_lists, i)
            if needs_aux:
                update_aux(spec, auxes[e], state, row, self.params)
            state.update(update(row, state))
            if exact_history:
                note_post_prefix_state(spec, auxes[e], state)
        values = {
            var: [state[var] for state in states]
            for var in fold.instance.state_vars
        }
        return _FoldEpochs(spec, values, aux_list=auxes)

    # -- backing-store absorption --------------------------------------------

    def _all_plain_additive(self) -> bool:
        """True when every fold merges by plain addition from zero
        initial state — the case where the row store's nested merges
        reassociate to one segmented sum (see module docstring)."""
        for fold in self.stage.folds:
            spec = fold.merge
            if spec.strategy != "additive" or spec.exact_history:
                return False
            if any(fold.instance.inits.get(var, 0) != 0
                   for var in spec.order):
                return False
        return True

    def _merge_bulk(self, fold_epochs: dict[str, _FoldEpochs],
                    epoch_key: np.ndarray, n_groups: int,
                    n_epochs: int) -> None:
        """All-additive fast path: merge every key's epochs with one
        ``np.add.at`` per state variable; history variables take the
        key's last epoch (the row merge keeps the evicted copy).  The
        merged values stay columnar — see :attr:`backing`."""
        epoch_counts = np.bincount(epoch_key, minlength=n_groups)
        last_epoch = np.cumsum(epoch_counts) - 1
        merged: dict[str, dict[str, np.ndarray]] = {}
        for fold in self.stage.folds:
            fe = fold_epochs[fold.column]
            history = set(fold.linearity.history)
            per_var: dict[str, np.ndarray] = {}
            for var, arr in fe.arrays.items():
                if var in history:
                    per_var[var] = arr[last_epoch]
                else:
                    acc = np.zeros(n_groups, dtype=arr.dtype)
                    np.add.at(acc, epoch_key, arr)
                    per_var[var] = acc
            merged[fold.column] = per_var
        self._bulk = (merged, epoch_counts)
        self._writes = n_epochs

    def _materialize_backing(self) -> BackingStore:
        """Build the real per-key :class:`BackingStore` structures (on
        demand: the bulk path serves results from arrays, but the store
        surface — ``value_of``, ``segments_of``, ... — stays available)."""
        backing = BackingStore(self.stage.folds, params=self.params)
        if self._bulk is None:
            return backing          # nothing ran (empty stream)
        merged, epoch_counts = self._bulk
        backing.writes = self._writes
        columns = [
            (col, [(var, arr.tolist()) for var, arr in per_var.items()])
            for col, per_var in merged.items()
        ]
        counts_list = epoch_counts.tolist()
        data = backing.data
        for g, key in enumerate(self._keys_in_order):
            data[key] = KeyEntry(
                merged={col: {var: vals[g] for var, vals in items}
                        for col, items in columns},
                epochs=counts_list[g],
            )
        return backing

    def _absorb_epochs(self, fold_epochs: dict[str, _FoldEpochs],
                       epoch_key: np.ndarray) -> None:
        """General path: one :meth:`BackingStore.absorb` per closed
        epoch, in per-key chronological order (epoch ids ascend in
        ``(key, time)`` order, and merging only reads per-key state, so
        this reproduces the row store's merge sequence exactly)."""
        keys = self._keys_in_order
        items = list(fold_epochs.items())
        absorb = self._backing.absorb
        for e, g in enumerate(epoch_key.tolist()):
            absorb(keys[g],
                   {col: fe.value(e) for col, fe in items},
                   {col: fe.aux(e) for col, fe in items})

    # -- results -------------------------------------------------------------

    def result_table(self, include_invalid: bool = False) -> ResultTable:
        """Stage output in first-access key order — bit-identical to
        the row store's.  On the bulk path the table is assembled
        columnar, straight from the merged per-key arrays (every key is
        valid when all folds merge)."""
        self.finalize()
        if self._backing is None and self._bulk is not None:
            try:
                return self._bulk_result_table()
            except VectorizationError:
                pass
        return build_result_table(self.stage, self.backing,
                                  self._keys_in_order, self.params,
                                  include_invalid=include_invalid)

    def _bulk_result_table(self) -> ResultTable:
        merged, _ = self._bulk
        n_groups = len(self._keys_in_order)
        out: dict[str, np.ndarray] = dict(
            zip(self.stage.key.fields, self._unique_key_cols))
        for col in self.stage.output.columns:
            if col.kind == "agg":
                out[col.name] = merged[col.fold][col.state_var]
            elif col.kind == "derived":
                dctx = ArrayContext({}, self.params, n_groups,
                                    state=merged[col.fold])
                with np.errstate(divide="ignore", invalid="ignore"):
                    out[col.name] = as_column(
                        eval_array(col.read_expr, dctx), n_groups)
        return ResultTable.from_columns(self.stage.output, out)

    @property
    def backing_writes(self) -> int:
        """Total backing-store writes, without materialising the store."""
        self.finalize()
        return self._writes

    def eviction_fraction(self) -> float:
        return self.stats.eviction_fraction

    def accuracy(self) -> float:
        """Fig. 6 metric — fraction of keys whose value is valid (1.0
        outright on the bulk path: every fold merges)."""
        self.finalize()
        if self._backing is None and self._bulk is not None:
            return 1.0
        return self.backing.accuracy


def _copy_aux(aux: AuxState) -> AuxState:
    """Copy carried auxiliary registers deeply enough that a replay
    continuation cannot mutate the original (``update_aux`` mutates the
    ``P`` dict in place and appends to the log list; the other entries
    are replaced, never mutated)."""
    out: AuxState = {}
    for name, value in aux.items():
        if isinstance(value, dict):
            out[name] = dict(value)
        elif isinstance(value, list):
            out[name] = list(value)
        else:
            out[name] = value
    return out


def _tolist_states(states: dict[str, np.ndarray]) -> dict[str, list]:
    """Per-epoch state arrays to native-scalar lists (the merge and the
    result table operate on Python numbers, like the row store)."""
    return {var: np.asarray(arr).tolist() for var, arr in states.items()}


def _references_state(expr) -> bool:
    return any(isinstance(node, StateRef) for node in walk(expr))
