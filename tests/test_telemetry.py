"""Telemetry-runtime tests: end-to-end compile/run/collect."""

import pytest

from repro.core.errors import InterpreterError
from repro.switch.kvstore.cache import CacheGeometry
from repro.telemetry.results import compare_tables
from repro.telemetry.runtime import QueryEngine, run

from tests.conftest import synthetic_trace

GEOM = CacheGeometry.set_associative(64, ways=8)


class TestEngineBasics:
    def test_one_shot_run(self, trace):
        report = run("SELECT COUNT GROUPBY srcip", trace.records, geometry=GEOM)
        assert len(report.result) == trace.unique_keys(("srcip",))

    def test_engine_reusable_across_traces(self):
        engine = QueryEngine("SELECT COUNT GROUPBY srcip", geometry=GEOM)
        a = engine.run(synthetic_trace(n_packets=500, seed=1).records)
        b = engine.run(synthetic_trace(n_packets=500, seed=2).records)
        assert a.result.rows != b.result.rows  # fresh pipeline per run

    def test_missing_params_raise(self, tiny_trace):
        engine = QueryEngine("SELECT srcip FROM T WHERE pkt_len > L")
        with pytest.raises(InterpreterError):
            engine.run(tiny_trace.records)

    def test_ground_truth_attached(self, tiny_trace):
        engine = QueryEngine("SELECT COUNT GROUPBY srcip", geometry=GEOM)
        report = engine.run(tiny_trace.records, with_ground_truth=True)
        diff = compare_tables(report.result,
                              report.ground_truth[report.result_name])
        assert diff.exact


class TestStats:
    def test_cache_stats_exposed(self, trace):
        engine = QueryEngine("SELECT COUNT GROUPBY srcip",
                             geometry=CacheGeometry.set_associative(8, ways=2))
        report = engine.run(trace.records)
        stats = report.cache_stats["__result__"]
        assert stats.accesses == len(trace)
        assert stats.evictions > 0
        assert report.eviction_fractions()["__result__"] == \
            stats.eviction_fraction

    def test_backing_writes_counted(self, trace):
        engine = QueryEngine("SELECT COUNT GROUPBY srcip",
                             geometry=CacheGeometry.set_associative(8, ways=2))
        report = engine.run(trace.records)
        stats = report.cache_stats["__result__"]
        # writes = capacity evictions + final flush of residents.
        assert report.backing_writes["__result__"] == \
            stats.evictions + (stats.insertions - stats.evictions)

    def test_accuracy_reported_per_stage(self, trace):
        engine = QueryEngine("SELECT MAX(tcpseq) GROUPBY srcip",
                             geometry=CacheGeometry.hash_table(8))
        report = engine.run(trace.records)
        assert 0.0 <= report.accuracy["__result__"] <= 1.0


class TestSoftwareStages:
    LOSS = (
        "R1 = SELECT COUNT GROUPBY 5tuple\n"
        "R2 = SELECT COUNT GROUPBY 5tuple WHERE tout == infinity\n"
        "R3 = SELECT R2.COUNT/R1.COUNT AS loss FROM R1 JOIN R2 ON 5tuple\n"
    )

    def test_join_over_hardware_tables(self, trace):
        engine = QueryEngine(self.LOSS, geometry=GEOM)
        report = engine.run(trace.records, with_ground_truth=True)
        diff = compare_tables(report.result, report.ground_truth["R3"],
                              rel_tol=1e-9)
        assert diff.exact, diff.describe()

    def test_intermediate_tables_visible(self, trace):
        engine = QueryEngine(self.LOSS, geometry=GEOM)
        report = engine.run(trace.records)
        assert set(report.tables) == {"R1", "R2", "R3"}

    def test_composed_downstream_stage(self, trace):
        source = (
            "R1 = SELECT COUNT GROUPBY srcip\n"
            "R2 = SELECT * FROM R1 WHERE COUNT > 50\n"
        )
        engine = QueryEngine(source, geometry=GEOM)
        report = engine.run(trace.records, with_ground_truth=True)
        diff = compare_tables(report.result, report.ground_truth["R2"])
        assert diff.exact


class TestInfo:
    def test_info_summarises_plan(self):
        engine = QueryEngine(self.__class__.LOSS_SOURCE, geometry=GEOM)
        info = engine.info()
        assert set(info.on_switch_stages) == {"R1", "R2"}
        assert info.software_stages == ("R3",)
        assert info.fully_linear
        assert info.pair_bits["R1"] == 128  # 104b 5-tuple + 24b counter

    LOSS_SOURCE = (
        "R1 = SELECT COUNT GROUPBY 5tuple\n"
        "R2 = SELECT COUNT GROUPBY 5tuple WHERE tout == infinity\n"
        "R3 = SELECT R2.COUNT/R1.COUNT FROM R1 JOIN R2 ON 5tuple\n"
    )

    def test_describe_plan_is_text(self):
        engine = QueryEngine("SELECT COUNT GROUPBY srcip")
        assert "switch groupby" in engine.describe_plan()


class TestCachePlanning:
    """Deploy-time cache sizing: plan_cache's predicted counters must
    equal what a real run with that geometry reports."""

    def test_plan_matches_actual_run(self, trace):
        engine = QueryEngine("SELECT COUNT GROUPBY srcip", seed=5)
        plans = engine.plan_cache(trace, capacities=[16, 64, 256], ways=8)
        (name, points), = plans.items()
        assert [p.geometry.capacity for p in points] == [16, 64, 256]
        for point in points:
            report = QueryEngine("SELECT COUNT GROUPBY srcip", seed=5,
                                 geometry=point.geometry).run(trace)
            actual = report.cache_stats[name]
            assert (actual.accesses, actual.hits, actual.misses,
                    actual.evictions) == \
                (point.stats.accesses, point.stats.hits, point.stats.misses,
                 point.stats.evictions)

    def test_plan_respects_where_filter(self, trace):
        engine = QueryEngine("SELECT COUNT GROUPBY srcip WHERE proto == 6",
                             seed=5)
        plans = engine.plan_cache(trace, capacities=[64])
        point = plans["__result__"][0]
        report = QueryEngine("SELECT COUNT GROUPBY srcip WHERE proto == 6",
                             seed=5, geometry=point.geometry).run(trace)
        actual = report.cache_stats["__result__"]
        assert actual.accesses == point.stats.accesses < len(trace)
        assert actual.evictions == point.stats.evictions

    def test_plan_engines_agree(self, trace):
        for ways in (0, 1, 8):
            vec = QueryEngine("SELECT COUNT GROUPBY 5tuple", seed=2,
                              engine="vector").plan_cache(
                trace, capacities=[64], ways=ways)["__result__"][0]
            row = QueryEngine("SELECT COUNT GROUPBY 5tuple", seed=2,
                              engine="row").plan_cache(
                trace, capacities=[64], ways=ways)["__result__"][0]
            assert (vec.stats.hits, vec.stats.evictions) == \
                (row.stats.hits, row.stats.evictions)

    def test_plan_point_reporting_fields(self, trace):
        engine = QueryEngine("SELECT COUNT GROUPBY 5tuple")
        point = engine.plan_cache(trace, capacities=[64])["__result__"][0]
        assert point.pair_bits == 128
        assert point.mbits == pytest.approx(64 * 128 / (1 << 20))
        assert point.writes_per_second() >= 0
        assert 0.0 <= point.eviction_fraction <= 1.0

    def test_plan_on_record_list(self, tiny_trace):
        engine = QueryEngine("SELECT COUNT GROUPBY srcip")
        records = list(tiny_trace.records)
        plans = engine.plan_cache(records, capacities=[8])
        assert plans["__result__"][0].stats.accesses == len(records)
