"""Seeded violations: RPR-C101 (direct and transitive) and RPR-C102."""
import pickle
import time


def _flush(payload):
    return pickle.dumps(payload)      # C101, reached via handle -> _flush


async def handle(conn, payload):
    import json                       # C102: import under the loop
    time.sleep(0.1)                   # C101: direct sleep on the loop
    data = open("/tmp/x").read()      # C101: direct file I/O on the loop
    _flush(payload)
    return json.dumps(data)
