"""Packet-observation records — the rows of the abstract table ``T``.

The paper's schema (§2)::

    (pkt_hdr, qid, tin, tout, qsize, pkt_path)

Each record describes one packet's transit of one queue; a packet that
traverses multiple queues contributes one record per queue (footnote
2).  A dropped packet has ``tout == +inf`` (§2).

Two representations are provided:

* :class:`PacketRecord` — a slotted per-row object, convenient for the
  interpreter, the switch pipeline, and tests;
* :class:`ObservationTable` — a thin list wrapper with columnar
  (numpy) import/export for large synthetic traces, plus ``.npz``
  persistence so generated workloads can be cached between benchmark
  runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields as dc_fields
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.core import schema as sch

INFINITY = math.inf


@dataclass(slots=True)
class PacketRecord:
    """One packet observation at one queue.

    All times are integer nanoseconds except ``tout`` which is ``+inf``
    for dropped packets.  Field names match :mod:`repro.core.schema`
    exactly — queries access them by name.
    """

    srcip: int = 0
    dstip: int = 0
    srcport: int = 0
    dstport: int = 0
    proto: int = 6
    pkt_len: int = 64
    payload_len: int = 0
    tcpseq: int = 0
    pkt_id: int = 0
    qid: int = 0
    tin: int = 0
    tout: float = 0.0
    qin: int = 0
    qout: int = 0
    qsize: int = 0
    pkt_path: int = 0

    @property
    def dropped(self) -> bool:
        return math.isinf(self.tout)

    @property
    def queueing_delay(self) -> float:
        """``tout - tin``; ``+inf`` for drops."""
        return self.tout - self.tin

    def five_tuple(self) -> tuple[int, int, int, int, int]:
        return (self.srcip, self.dstip, self.srcport, self.dstport, self.proto)

    def key(self, key_fields: Sequence[str]) -> tuple:
        """Aggregation key for ``key_fields`` (hardware key extraction)."""
        return tuple(getattr(self, f) for f in key_fields)


RECORD_FIELDS: tuple[str, ...] = tuple(f.name for f in dc_fields(PacketRecord))

#: numpy dtypes used by the columnar representation.
_COLUMN_DTYPES: dict[str, str] = {name: "int64" for name in RECORD_FIELDS}
_COLUMN_DTYPES["tout"] = "float64"


class ObservationTable:
    """A materialised observation table with columnar conversion.

    Iterating yields :class:`PacketRecord` objects in arrival order
    (the order matters: the language supports order-dependent folds).
    """

    def __init__(self, records: Iterable[PacketRecord] | None = None):
        self.records: list[PacketRecord] = list(records) if records is not None else []

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[PacketRecord]:
        return iter(self.records)

    def __getitem__(self, index: int) -> PacketRecord:
        return self.records[index]

    def append(self, record: PacketRecord) -> None:
        self.records.append(record)

    # -- columnar conversion -------------------------------------------------

    def to_arrays(self) -> dict[str, np.ndarray]:
        """Columnar copy: one numpy array per field."""
        out: dict[str, np.ndarray] = {}
        n = len(self.records)
        for name in RECORD_FIELDS:
            column = np.empty(n, dtype=_COLUMN_DTYPES[name])
            for i, record in enumerate(self.records):
                column[i] = getattr(record, name)
            out[name] = column
        return out

    @classmethod
    def from_arrays(cls, arrays: dict[str, np.ndarray]) -> "ObservationTable":
        """Build a table from columnar data; missing columns default."""
        lengths = {len(a) for a in arrays.values()}
        if len(lengths) > 1:
            raise ValueError(f"column length mismatch: {lengths}")
        n = lengths.pop() if lengths else 0
        table = cls()
        names = [name for name in RECORD_FIELDS if name in arrays]
        converted = {
            name: arrays[name].tolist() for name in names
        }
        for i in range(n):
            table.append(PacketRecord(**{name: converted[name][i] for name in names}))
        return table

    def key_array(self, key_fields: Sequence[str]) -> np.ndarray:
        """Collapse the per-record key tuples into one int64 array of
        mixed hashes — the fast path used by large cache simulations
        where only key identity matters (e.g. the Fig. 5 sweep)."""
        arrays = [np.asarray([getattr(r, f) for r in self.records], dtype=np.int64)
                  for f in key_fields]
        mixed = np.zeros(len(self.records), dtype=np.int64)
        for arr in arrays:
            mixed = mixed * np.int64(1_000_003) + arr
        return mixed

    # -- persistence --------------------------------------------------------------

    def save(self, path: str) -> None:
        np.savez_compressed(path, **self.to_arrays())

    @classmethod
    def load(cls, path: str) -> "ObservationTable":
        with np.load(path) as data:
            return cls.from_arrays({k: data[k] for k in data.files})

    # -- conveniences ------------------------------------------------------------

    def unique_keys(self, key_fields: Sequence[str]) -> int:
        return len({r.key(key_fields) for r in self.records})

    def duration_ns(self) -> int:
        if not self.records:
            return 0
        return self.records[-1].tin - self.records[0].tin

    def drop_count(self) -> int:
        return sum(1 for r in self.records if r.dropped)
