"""Reference-interpreter tests: each query form, evaluated exactly."""

import math

import pytest

from repro.core.errors import InterpreterError
from repro.core.interpreter import Interpreter, run_query
from repro.core.parser import parse_program
from repro.core.semantics import resolve_program

from tests.conftest import make_record


def records_two_flows():
    """Flow A: 3 packets (one dropped); flow B: 2 packets."""
    a = dict(srcip=1, dstip=9, srcport=10, dstport=80, proto=6)
    b = dict(srcip=2, dstip=9, srcport=20, dstport=80, proto=17)
    return [
        make_record(**a, pkt_id=0, pkt_len=100, tin=0, tout=50.0, qin=3),
        make_record(**b, pkt_id=1, pkt_len=200, tin=10, tout=500.0, qin=9),
        make_record(**a, pkt_id=2, pkt_len=300, tin=20, tout=math.inf, qin=30),
        make_record(**a, pkt_id=3, pkt_len=400, tin=30, tout=90.0, qin=1),
        make_record(**b, pkt_id=4, pkt_len=500, tin=40, tout=41.0, qin=0),
    ]


class TestSelect:
    def test_projection(self):
        table = run_query("SELECT srcip, qid FROM T", records_two_flows())
        assert len(table) == 5
        assert set(table.rows[0]) == {"srcip", "qid"}

    def test_where_filters(self):
        table = run_query("SELECT srcip FROM T WHERE pkt_len > 250",
                          records_two_flows())
        assert len(table) == 3

    def test_where_drop_filter(self):
        table = run_query("SELECT pkt_id FROM T WHERE tout == infinity",
                          records_two_flows())
        assert [r["pkt_id"] for r in table] == [2]

    def test_expression_column(self):
        table = run_query("SELECT tout - tin AS delay FROM T WHERE tout != infinity",
                          records_two_flows())
        assert table.rows[0]["delay"] == 50.0

    def test_paper_latency_query(self):
        # SELECT srcip, qid FROM T WHERE tout - tin > 1ms — nothing here
        # exceeds 1 ms except the drop (inf).
        table = run_query("SELECT srcip, qid FROM T WHERE tout - tin > 1ms",
                          records_two_flows())
        assert len(table) == 1


class TestGroupBy:
    def test_count(self):
        table = run_query("SELECT COUNT GROUPBY srcip", records_two_flows())
        counts = {r["srcip"]: r["COUNT"] for r in table}
        assert counts == {1: 3, 2: 2}

    def test_sum(self):
        table = run_query("SELECT SUM(pkt_len) GROUPBY srcip", records_two_flows())
        sums = {r["srcip"]: r["SUM(pkt_len)"] for r in table}
        assert sums == {1: 800, 2: 700}

    def test_avg_read_time_division(self):
        table = run_query("SELECT AVG(pkt_len) GROUPBY srcip", records_two_flows())
        avgs = {r["srcip"]: r["AVG(pkt_len)"] for r in table}
        assert avgs[1] == pytest.approx(800 / 3)
        assert avgs[2] == pytest.approx(350.0)

    def test_max_min(self):
        table = run_query("SELECT MAX(pkt_len), MIN(pkt_len) GROUPBY srcip",
                          records_two_flows())
        row = {r["srcip"]: r for r in table}[1]
        assert row["MAX(pkt_len)"] == 400
        assert row["MIN(pkt_len)"] == 100

    def test_where_prefilters_input(self):
        table = run_query("SELECT COUNT GROUPBY srcip WHERE proto == TCP",
                          records_two_flows())
        counts = {r["srcip"]: r["COUNT"] for r in table}
        assert counts == {1: 3}

    def test_order_dependent_fold(self):
        source = (
            "def last (v, pkt_len): v = pkt_len\n"
            "SELECT srcip, last GROUPBY srcip"
        )
        table = run_query(source, records_two_flows())
        values = {r["srcip"]: r["v"] for r in table}
        assert values == {1: 400, 2: 500}  # the last packet's length

    def test_ewma_order(self):
        source = (
            "def ewma (e, (tin, tout)): e = (1 - alpha) * e + alpha * (tout - tin)\n"
            "SELECT srcip, ewma GROUPBY srcip WHERE tout != infinity"
        )
        table = run_query(source, records_two_flows(), params={"alpha": 0.5})
        expected = 0.0
        for lat in (50.0, 60.0):
            expected = 0.5 * expected + 0.5 * lat
        values = {r["srcip"]: r["e"] for r in table}
        assert values[1] == pytest.approx(expected)

    def test_multiple_folds_one_query(self):
        table = run_query("SELECT COUNT, SUM(pkt_len), MAX(qin) GROUPBY dstip",
                          records_two_flows())
        row = table.rows[0]
        assert row["COUNT"] == 5 and row["SUM(pkt_len)"] == 1500 and row["MAX(qin)"] == 30


class TestComposition:
    def test_two_stage_latency_program(self):
        source = (
            "def sum_lat (lat, (tin, tout)): lat = lat + tout - tin\n"
            "R1 = SELECT pkt_uniq, sum_lat GROUPBY pkt_uniq\n"
            "R2 = SELECT 5tuple, COUNT FROM R1 GROUPBY 5tuple WHERE lat > L\n"
        )
        table = run_query(source, records_two_flows(), params={"L": 100})
        counts = {r["srcip"]: r["COUNT"] for r in table}
        # Flow A has the inf-latency drop; flow B has the 490ns packet.
        assert counts == {1: 1, 2: 1}

    def test_filter_over_derived(self):
        source = (
            "R1 = SELECT COUNT GROUPBY srcip\n"
            "R2 = SELECT * FROM R1 WHERE COUNT > 2\n"
        )
        table = run_query(source, records_two_flows())
        assert [r["srcip"] for r in table] == [1]


class TestJoin:
    def test_loss_rate(self):
        source = (
            "R1 = SELECT COUNT GROUPBY srcip\n"
            "R2 = SELECT COUNT GROUPBY srcip WHERE tout == infinity\n"
            "R3 = SELECT R2.COUNT/R1.COUNT AS loss FROM R1 JOIN R2 ON srcip\n"
        )
        table = run_query(source, records_two_flows())
        # Inner join: only flow 1 had drops.
        assert len(table) == 1
        assert table.rows[0]["loss"] == pytest.approx(1 / 3)

    def test_join_where(self):
        source = (
            "R1 = SELECT COUNT GROUPBY srcip\n"
            "R2 = SELECT SUM(pkt_len) GROUPBY srcip\n"
            "R3 = SELECT R1.COUNT FROM R1 JOIN R2 ON srcip WHERE R2.SUM(pkt_len) > 750\n"
        )
        table = run_query(source, records_two_flows())
        assert len(table) == 1 and table.rows[0]["R1.COUNT"] == 3


class TestResultTable:
    def test_by_key(self):
        table = run_query("SELECT COUNT GROUPBY srcip", records_two_flows())
        assert table.by_key()[(1,)]["COUNT"] == 3

    def test_by_key_requires_keyed(self):
        table = run_query("SELECT srcip FROM T", records_two_flows())
        with pytest.raises(InterpreterError):
            table.by_key()

    def test_column_accessor_resolves_aliases(self):
        source = (
            "def sum_lat (lat, (tin, tout)): lat = lat + tout - tin\n"
            "SELECT srcip, sum_lat GROUPBY srcip"
        )
        table = run_query(source, records_two_flows())
        assert table.column("sum_lat") == table.column("lat")


class TestParams:
    def test_missing_param_raises_at_construction(self):
        rp = resolve_program(parse_program("SELECT srcip FROM T WHERE pkt_len > L"))
        with pytest.raises(InterpreterError) as excinfo:
            Interpreter(rp)
        assert "L" in str(excinfo.value)

    def test_param_binding_used(self):
        table = run_query("SELECT srcip FROM T WHERE pkt_len > L",
                          records_two_flows(), params={"L": 450})
        assert len(table) == 1
