"""Result-comparison utilities.

Used by tests and the accuracy benches to compare hardware-path results
(backing store after merges) against reference-interpreter ground
truth, row by row and column by column.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.interpreter import ResultTable


@dataclass
class TableDiff:
    """Difference between a hardware table and its ground truth."""

    missing_keys: int = 0          # in truth, absent from hardware
    extra_keys: int = 0            # in hardware, absent from truth
    compared_cells: int = 0
    exact_cells: int = 0
    max_abs_error: float = 0.0
    max_rel_error: float = 0.0
    worst_column: str | None = None

    @property
    def key_complete(self) -> bool:
        return self.missing_keys == 0 and self.extra_keys == 0

    @property
    def exact(self) -> bool:
        return self.key_complete and self.exact_cells == self.compared_cells

    @property
    def cell_accuracy(self) -> float:
        if self.compared_cells == 0:
            return 1.0
        return self.exact_cells / self.compared_cells

    def describe(self) -> str:
        return (
            f"keys: -{self.missing_keys}/+{self.extra_keys}; "
            f"cells exact {self.exact_cells}/{self.compared_cells}; "
            f"max |err| {self.max_abs_error:.3g} "
            f"(rel {self.max_rel_error:.3g}, col {self.worst_column})"
        )


def compare_tables(hardware: ResultTable, truth: ResultTable,
                   rel_tol: float = 1e-9, abs_tol: float = 1e-9) -> TableDiff:
    """Compare two keyed tables cell-by-cell.

    Cells are "exact" when within ``rel_tol``/``abs_tol`` (the EWMA
    merge reassociates floating-point arithmetic, so bitwise equality
    is not expected even for correct merges).
    """
    diff = TableDiff()
    hw_rows = hardware.by_key()
    truth_rows = truth.by_key()
    diff.missing_keys = sum(1 for k in truth_rows if k not in hw_rows)
    diff.extra_keys = sum(1 for k in hw_rows if k not in truth_rows)

    key_cols = set(truth.schema.key_columns)
    for key, t_row in truth_rows.items():
        h_row = hw_rows.get(key)
        if h_row is None:
            continue
        for column, t_val in t_row.items():
            if column in key_cols or column not in h_row:
                continue
            h_val = h_row[column]
            diff.compared_cells += 1
            err = _abs_error(h_val, t_val)
            rel = err / max(abs(t_val), 1e-300) if not math.isnan(err) else math.inf
            if err <= abs_tol or rel <= rel_tol:
                diff.exact_cells += 1
            if err > diff.max_abs_error:
                diff.max_abs_error = err
                diff.worst_column = column
            diff.max_rel_error = max(diff.max_rel_error, rel)
    return diff


def _abs_error(a: float, b: float) -> float:
    if math.isinf(a) and math.isinf(b) and (a > 0) == (b > 0):
        return 0.0
    try:
        return abs(a - b)
    except TypeError:
        return math.inf


def assert_tables_match(hardware: ResultTable, truth: ResultTable,
                        rel_tol: float = 1e-9, abs_tol: float = 1e-9) -> None:
    """Raise ``AssertionError`` with a readable diff when tables differ."""
    diff = compare_tables(hardware, truth, rel_tol=rel_tol, abs_tol=abs_tol)
    assert diff.exact, f"tables differ: {diff.describe()}"
