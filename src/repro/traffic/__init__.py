"""Workload generators and trace I/O.

:mod:`.caida` — synthetic CAIDA-like WAN trace (the §4 substitution);
:mod:`.datacenter` — Benson-style datacenter workload;
:mod:`.incast` — the incast scenario the paper's motivation cites;
:mod:`.tcpgen` — TCP sequence anomaly injection;
:mod:`.trace_io` — CSV/NPZ serialisation.
"""

from .caida import CaidaTraceConfig, generate_caida_like, generate_key_stream
from .datacenter import DatacenterConfig, DatacenterWorkload, InjectionEvent
from .incast import IncastConfig, IncastResult, generate_incast
from .tcpgen import TcpAnomalyConfig, clean_sequence_table, inject_tcp_anomalies
from .trace_io import read_csv, read_npz, validate_table, write_csv, write_npz

__all__ = [
    "CaidaTraceConfig",
    "DatacenterConfig",
    "DatacenterWorkload",
    "IncastConfig",
    "IncastResult",
    "InjectionEvent",
    "TcpAnomalyConfig",
    "clean_sequence_table",
    "generate_caida_like",
    "generate_incast",
    "generate_key_stream",
    "inject_tcp_anomalies",
    "read_csv",
    "read_npz",
    "validate_table",
    "write_csv",
    "write_npz",
]
