"""Programmable-parser model tests (§3.1)."""

import pytest

from repro.core.errors import CompileError
from repro.switch.parser_model import configure_parser


class TestParsePaths:
    def test_ip_fields_walk_to_ipv4(self):
        config = configure_parser(("srcip", "dstip"))
        assert config.headers == ("ethernet", "ipv4")

    def test_transport_fields_branch_both(self):
        config = configure_parser(("srcport",))
        assert "tcp" in config.headers and "udp" in config.headers

    def test_tcpseq_needs_tcp(self):
        config = configure_parser(("tcpseq",))
        assert "tcp" in config.headers

    def test_metadata_only_needs_no_headers(self):
        config = configure_parser(("tin", "tout", "qid"))
        assert config.headers == ()
        assert set(config.metadata_fields) == {"tin", "tout", "qid"}

    def test_parents_closed_over(self):
        config = configure_parser(("tcpseq",))
        assert "ethernet" in config.headers and "ipv4" in config.headers


class TestCostModel:
    def test_extracted_bits_counts_headers_only(self):
        config = configure_parser(("srcip", "tin"))
        assert config.extracted_bits == 32  # tin is metadata

    def test_graph_nodes(self):
        config = configure_parser(("srcip",))
        assert config.graph_nodes == 2

    def test_describe_mentions_path(self):
        text = configure_parser(("srcip",)).describe()
        assert "ethernet -> ipv4" in text


class TestErrors:
    def test_unknown_field_rejected(self):
        with pytest.raises(CompileError):
            configure_parser(("nonsense",))
