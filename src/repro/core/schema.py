"""The performance-oriented packet-observation schema (paper §2).

The query language operates over an abstract table ``T`` whose rows are
*packet observations*: one row per packet per queue traversed.  The paper
gives the schema as::

    (pkt_hdr, qid, tin, tout, qsize, pkt_path)

where ``pkt_hdr`` stands for all parseable packet headers.  This module
pins down the concrete field set used throughout the reproduction, the
bit width of each field (used by the compiler for key/value layout and
by the area model), and the built-in named constants (``TCP``,
``infinity``, ...) that query text may reference.

Field widths follow the paper's §4 accounting: the transport 5-tuple is
104 bits (32 + 32 + 16 + 16 + 8).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class FieldSpec:
    """Static description of one observation-table field.

    Attributes:
        name: Field name as written in query text.
        bits: Width in bits when stored in a hardware key or value.
        kind: ``"header"`` for parsed packet headers, ``"perf"`` for
            queue-performance metadata attached by the switch.
        dtype: ``"int"`` or ``"float"`` — the Python-level carrier type.
        doc: One-line description.
    """

    name: str
    bits: int
    kind: str
    dtype: str
    doc: str


#: All concrete fields, in canonical order.  ``tin``/``tout`` are kept in
#: nanoseconds as integers in the simulator, but queries may treat them
#: arithmetically, so their carrier type is ``float`` after subtraction.
FIELDS: tuple[FieldSpec, ...] = (
    FieldSpec("srcip", 32, "header", "int", "IPv4 source address"),
    FieldSpec("dstip", 32, "header", "int", "IPv4 destination address"),
    FieldSpec("srcport", 16, "header", "int", "Transport source port"),
    FieldSpec("dstport", 16, "header", "int", "Transport destination port"),
    FieldSpec("proto", 8, "header", "int", "IP protocol number"),
    FieldSpec("pkt_len", 16, "header", "int", "Total packet length in bytes"),
    FieldSpec("payload_len", 16, "header", "int", "Transport payload length in bytes"),
    FieldSpec("tcpseq", 32, "header", "int", "TCP sequence number"),
    FieldSpec("pkt_id", 64, "header", "int", "Unique per-packet identifier"),
    FieldSpec("qid", 32, "perf", "int", "Queue identifier (switch, port, queue)"),
    FieldSpec("tin", 64, "perf", "int", "Enqueue timestamp (ns)"),
    FieldSpec("tout", 64, "perf", "float", "Dequeue timestamp (ns); +inf if dropped"),
    FieldSpec("qin", 32, "perf", "int", "Queue depth (packets) observed at enqueue"),
    FieldSpec("qout", 32, "perf", "int", "Queue depth (packets) observed at dequeue"),
    FieldSpec("qsize", 32, "perf", "int", "Alias of qin: queue length seen when enqueued"),
    FieldSpec("pkt_path", 64, "perf", "int", "Opaque path identifier (e.g. tunnel label)"),
)

FIELDS_BY_NAME: dict[str, FieldSpec] = {f.name: f for f in FIELDS}

#: The transport five-tuple, which the paper abbreviates ``5tuple``.
FIVE_TUPLE: tuple[str, ...] = ("srcip", "dstip", "srcport", "dstport", "proto")

#: Width of the 5-tuple key, quoted as 104 bits in §4.
FIVE_TUPLE_BITS: int = sum(FIELDS_BY_NAME[f].bits for f in FIVE_TUPLE)

#: Aliases expanded during parsing/semantic analysis.  ``5tuple`` is the
#: only multi-field alias; ``qsize`` maps onto the same simulator column
#: as ``qin``.
FIELD_ALIASES: dict[str, tuple[str, ...]] = {
    "5tuple": FIVE_TUPLE,
    "pkt_5tuple": FIVE_TUPLE,
    # §2: "pkt_uniq is a tuple of packet fields that includes the 5tuple,
    # and determines each packet uniquely".
    "pkt_uniq": FIVE_TUPLE + ("pkt_id",),
}

#: Named constants available in query text.  ``infinity`` encodes a
#: dropped packet's ``tout`` (paper §2).  Time-unit suffixes are handled
#: by the lexer; the canonical time unit is nanoseconds.
CONSTANTS: dict[str, float | int] = {
    "infinity": math.inf,
    "TCP": 6,
    "UDP": 17,
    "ICMP": 1,
    "true": 1,
    "false": 0,
}

#: Multipliers converting time-suffixed literals to nanoseconds.
TIME_UNITS_NS: dict[str, int] = {
    "ns": 1,
    "us": 1_000,
    "ms": 1_000_000,
    "s": 1_000_000_000,
}


def is_field(name: str) -> bool:
    """Return True if ``name`` is a concrete schema field or alias."""
    return name in FIELDS_BY_NAME or name in FIELD_ALIASES


def expand_field(name: str) -> tuple[str, ...]:
    """Expand ``name`` to the tuple of concrete fields it denotes.

    ``expand_field("5tuple")`` returns the five transport fields;
    a concrete field expands to a 1-tuple of itself.

    Raises:
        KeyError: if ``name`` is not a schema field or alias.
    """
    if name in FIELD_ALIASES:
        return FIELD_ALIASES[name]
    if name in FIELDS_BY_NAME:
        return (name,)
    raise KeyError(name)


def field_bits(name: str) -> int:
    """Total bit width of a field or alias (sum over expansion)."""
    return sum(FIELDS_BY_NAME[f].bits for f in expand_field(name))


def key_bits(fields: tuple[str, ...] | list[str]) -> int:
    """Bit width of a hardware key formed by concatenating ``fields``."""
    total = 0
    for name in fields:
        total += field_bits(name)
    return total
