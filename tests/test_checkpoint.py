"""Durable-session tests: checkpoint format, mid-stream bit-identity,
shard-worker crash recovery, fault injection, and session poisoning.

The differential acceptance criterion: ``checkpoint()`` mid-stream and
``QueryEngine.resume()`` must be **bit-identical** to an uninterrupted
run — for every eviction policy × window partitioning × engine
(hypothesis-driven cut points), for shards ∈ {1, 2, 4}, and after an
injected shard-worker crash.  Plus: the versioned/checksummed wire
format rejects truncated, corrupted, and wrong-version snapshots with
:class:`CheckpointError`; an exception mid-``ingest`` poisons the
session (fail-fast :class:`SessionError` afterwards); worker pools
survive SIGKILLed workers via journal replay and shut down cleanly on
SIGTERM without leaking ``/dev/shm`` segments.
"""

import os
import signal
import subprocess
import sys
import time
import zlib
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import (CheckpointError, SessionClosedError,
                               SessionError)
from repro.network.simulator import NetworkSimulator
from repro.network.topology import LinkSpec, leaf_spine, linear_chain
from repro.switch.kvstore.cache import CacheGeometry
from repro.telemetry.checkpoint import (MAGIC, VERSION, _HEADER,
                                        describe_checkpoint,
                                        pack_checkpoint, unpack_checkpoint)
from repro.telemetry.deploy import NetworkDeployment
from repro.telemetry.faults import FaultInjector, FaultPlan, InjectedFault
from repro.telemetry.runtime import QueryEngine
from repro.telemetry.shard_exec import ShardError, ShardWorkerPool

from tests.conftest import synthetic_trace
from tests.test_session import chunked, observables

GEOM = CacheGeometry.set_associative(64, ways=4)
QUERY = "SELECT COUNT, SUM(pkt_len) GROUPBY srcip"
CHUNK = 217


def make_engine(policy="lru", engine="vector"):
    return QueryEngine(QUERY, geometry=GEOM, policy=policy, engine=engine)


@pytest.fixture(scope="module")
def trace():
    return synthetic_trace(1200, seed=31)


def uninterrupted(engine, table, window, shards=None):
    session = engine.open(window=window, shards=shards)
    for batch in chunked(table, CHUNK):
        session.ingest(batch)
    return observables(session.close(include_invalid=True))


def ingest_upto(session, table, cut):
    """Feed trace rows [packets_ingested, cut) in CHUNK-sized batches —
    resumed sessions continue from where the snapshot stopped."""
    from repro.network.records import ObservationTable
    columns = table.columns()
    lo = session.packets_ingested
    while lo < cut:
        hi = min(lo + CHUNK, cut)
        session.ingest(ObservationTable.from_arrays(
            {name: col[lo:hi] for name, col in columns.items()}))
        lo = hi
    return session


def _head(batch, n):
    from repro.network.records import ObservationTable
    return ObservationTable.from_arrays(
        {name: col[:n] for name, col in batch.columns().items()})


def finish_from(session, table, include_invalid=True):
    """Feed the trace suffix the session has not seen yet, close."""
    skip = session.packets_ingested
    from repro.network.records import ObservationTable
    columns = table.columns()
    rest = ObservationTable.from_arrays(
        {name: col[skip:] for name, col in columns.items()})
    for batch in chunked(rest, CHUNK):
        session.ingest(batch)
    return observables(session.close(include_invalid=include_invalid))


# -- wire format -------------------------------------------------------------


class TestCheckpointFormat:
    def test_roundtrip(self):
        payload = {"kind": "session", "x": np.arange(4), "n": 7}
        out = unpack_checkpoint(pack_checkpoint(payload))
        assert out["kind"] == "session" and out["n"] == 7
        assert np.array_equal(out["x"], np.arange(4))

    def test_not_bytes(self):
        with pytest.raises(CheckpointError, match="must be bytes"):
            unpack_checkpoint({"kind": "session"})

    @pytest.mark.parametrize("n", [0, 5, _HEADER.size - 1])
    def test_shorter_than_header(self, n):
        with pytest.raises(CheckpointError, match="truncated"):
            unpack_checkpoint(b"\x00" * n)

    def test_bad_magic(self):
        data = bytearray(pack_checkpoint({"kind": "session"}))
        data[:8] = b"NOTACKPT"
        with pytest.raises(CheckpointError, match="bad magic"):
            unpack_checkpoint(bytes(data))

    def test_wrong_version(self):
        body = pack_checkpoint({"kind": "session"})[_HEADER.size:]
        data = _HEADER.pack(MAGIC, VERSION + 1, len(body),
                            zlib.crc32(body)) + body
        with pytest.raises(CheckpointError,
                           match=f"unsupported checkpoint version {VERSION + 1}"):
            unpack_checkpoint(data)

    def test_truncated_payload(self):
        data = pack_checkpoint({"kind": "session", "pad": list(range(64))})
        with pytest.raises(CheckpointError, match="header promises"):
            unpack_checkpoint(data[:-9])

    def test_corrupted_payload(self):
        data = bytearray(pack_checkpoint({"kind": "session",
                                          "pad": list(range(64))}))
        data[-3] ^= 0xFF
        with pytest.raises(CheckpointError, match="checksum mismatch"):
            unpack_checkpoint(bytes(data))

    def test_payload_not_a_dict(self):
        import pickle
        body = pickle.dumps([1, 2, 3])
        data = _HEADER.pack(MAGIC, VERSION, len(body),
                            zlib.crc32(body)) + body
        with pytest.raises(CheckpointError, match="expected a state dict"):
            unpack_checkpoint(data)

    def test_describe(self, trace):
        engine = make_engine()
        session = ingest_upto(engine.open(window=128), trace, 500)
        info = describe_checkpoint(session.checkpoint())
        session.close()
        assert info["kind"] == "session"
        assert info["window"] == 128
        assert info["packets_ingested"] == 500
        assert info["policy"] == "lru"
        assert info["version"] == VERSION


# -- differential property: mid-stream checkpoint ≡ uninterrupted ------------


_BASELINES: dict[tuple, tuple] = {}


def baseline(policy, engine_kind, window, table):
    key = (policy, engine_kind, window)
    if key not in _BASELINES:
        _BASELINES[key] = uninterrupted(
            make_engine(policy, engine_kind), table, window)
    return _BASELINES[key]


class TestMidStreamBitIdentity:
    """checkpoint()/resume() at a hypothesis-chosen cut point matches
    the uninterrupted run for every policy × window × engine."""

    @pytest.mark.parametrize("window", [97, 256, 701])
    @pytest.mark.parametrize("policy", ["lru", "fifo", "random"])
    @pytest.mark.parametrize("engine_kind", ["vector", "row"])
    @settings(deadline=None, max_examples=4)
    @given(cut=st.integers(min_value=1, max_value=1199))
    def test_cut_matches_uninterrupted(self, policy, engine_kind, window,
                                       cut, trace):
        base = baseline(policy, engine_kind, window, trace)
        engine = make_engine(policy, engine_kind)
        original = ingest_upto(engine.open(window=window), trace, cut)
        snapshot = original.checkpoint()
        # checkpoint() is non-destructive: the original session keeps
        # streaming and still matches.
        assert finish_from(original, trace) == base
        resumed = engine.resume(snapshot)
        assert resumed.packets_ingested == cut
        assert finish_from(resumed, trace) == base

    def test_double_resume(self, trace):
        engine = make_engine()
        base = baseline("lru", "vector", 256, trace)
        session = ingest_upto(engine.open(window=256), trace, 500)
        snapshot = session.checkpoint()
        session.close()
        for _ in range(2):
            assert finish_from(engine.resume(snapshot), trace) == base

    def test_checkpoint_chain(self, trace):
        """resume → stream → checkpoint again → resume again."""
        engine = make_engine()
        base = baseline("lru", "vector", 97, trace)
        first = ingest_upto(engine.open(window=97), trace, 300)
        snap1 = first.checkpoint()
        first.close()
        second = ingest_upto(engine.resume(snap1), trace, 800)
        snap2 = second.checkpoint()
        second.close()
        assert finish_from(engine.resume(snap2), trace) == base

    def test_exact_session_roundtrip(self, trace):
        engine = make_engine()
        full = engine.open(exact=True)
        for batch in chunked(trace, CHUNK):
            full.ingest(batch)
        base = {q: t.rows for q, t in full.close().tables.items()}
        partial = ingest_upto(engine.open(exact=True), trace, 400)
        snapshot = partial.checkpoint()
        partial.close()
        resumed = engine.resume(snapshot)
        assert resumed.packets_ingested == 400
        report_tables = finish_from(resumed, trace)[0]
        assert report_tables == base

    def test_closed_session_cannot_checkpoint(self, trace):
        engine = make_engine()
        session = ingest_upto(engine.open(window=128), trace, 300)
        session.close()
        with pytest.raises(SessionClosedError):
            session.checkpoint()

    def test_config_mismatch_rejected(self, trace):
        session = ingest_upto(make_engine("lru").open(window=128), trace, 300)
        snapshot = session.checkpoint()
        session.close()
        with pytest.raises(CheckpointError,
                           match="differently configured engine"):
            make_engine("fifo").resume(snapshot)


# -- sharded sessions: checkpoint, crash recovery, fault injection -----------


class TestShardedDurability:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_sharded_cut_matches_uninterrupted(self, shards, trace):
        base = baseline("lru", "vector", 256, trace)
        engine = make_engine()
        assert uninterrupted(engine, trace, 256, shards=shards) == base
        for cut in (333, 901):
            session = ingest_upto(
                engine.open(window=256, shards=shards), trace, cut)
            snapshot = session.checkpoint()
            session.close()
            assert finish_from(engine.resume(snapshot), trace) == base

    def test_crash_recovery_is_bit_identical(self, trace):
        """A SIGKILLed shard worker is respawned, restored from its
        periodic checkpoint, and replayed — same results as a run with
        no faults, and a session checkpoint taken *after* the crash
        still resumes bit-identically."""
        base = baseline("lru", "vector", 256, trace)
        engine = make_engine()
        injector = FaultInjector(FaultPlan(kill_posts={0: {3}},
                                           drop_acks={5}, dup_acks={8}))
        session = engine.open(window=256, shards=2, checkpoint_every=4,
                              faults=injector)
        session = ingest_upto(session, trace, 700)
        kinds = {e[0] for e in injector.events}
        assert "kill" in kinds, "scheduled worker kill never fired"
        snapshot = session.checkpoint()
        assert finish_from(session, trace) == base
        resumed = engine.resume(snapshot, checkpoint_every=4)
        assert finish_from(resumed, trace) == base

    def test_worker_death_without_recovery_fails_fast(self, trace):
        engine = make_engine()
        injector = FaultInjector(FaultPlan(kill_posts={0: {1}}))
        session = engine.open(window=128, shards=2, faults=injector)
        with pytest.raises(ShardError, match="died"):
            for batch in chunked(trace, CHUNK):
                session.ingest(batch)
        assert session.broken
        with pytest.raises(SessionError, match="broken"):
            session.close()

    def test_restart_budget_exhaustion_is_terminal(self, trace):
        """Killing the same worker on every post exhausts the restart
        budget; the pool gives up with a clear terminal error instead
        of spinning."""
        engine = make_engine()
        injector = FaultInjector(
            FaultPlan(kill_posts={0: set(range(1, 40))}))
        session = engine.open(window=64, shards=2, checkpoint_every=4,
                              faults=injector)
        with pytest.raises(ShardError, match="giving up"):
            for batch in chunked(trace, CHUNK):
                session.ingest(batch)
        assert session.broken
        with pytest.raises(SessionError, match="broken"):
            session.results()


# -- direct pool-level recovery ----------------------------------------------


class _CounterRole:
    """Minimal picklable role: counts batches and sums their payloads
    (order-insensitive state, so exactly-once replay is observable)."""

    def __init__(self):
        self.n = 0
        self.total = 0.0

    def handle(self, op, meta, arrays):
        if op == "add":
            self.n += 1
            self.total += float(arrays["x"].sum())
            return None
        if op == "get":
            return (self.n, self.total)
        raise ValueError(op)

    def checkpoint(self):
        return {"n": self.n, "total": self.total}

    def restore(self, state):
        self.n = state["n"]
        self.total = state["total"]


class TestWorkerPool:
    def test_journal_replay_is_exactly_once(self):
        injector = FaultInjector(FaultPlan(kill_posts={0: {4}}))
        with ShardWorkerPool([_CounterRole()], checkpoint_every=3,
                             restart_backoff=0.001,
                             faults=injector) as pool:
            expect = 0.0
            for i in range(9):
                arr = np.arange(i + 1, dtype=np.float64)
                expect += float(arr.sum())
                pool.post(0, "add", None, {"x": arr})
            assert pool.call(0, "get") == (9, expect)
        assert [e[0] for e in injector.events] == ["kill"]

    def test_restart_budget_terminal(self):
        injector = FaultInjector(FaultPlan(kill_posts={0: {1, 2, 3}}))
        pool = ShardWorkerPool([_CounterRole()], checkpoint_every=2,
                               max_restarts=2, restart_backoff=0.001,
                               faults=injector)
        try:
            with pytest.raises(ShardError, match="giving up"):
                for i in range(4):
                    pool.post(0, "add", None,
                              {"x": np.ones(2, dtype=np.float64)})
                pool.call(0, "get")
        finally:
            pool.close()

    def test_restore_shard_count_mismatch(self):
        with ShardWorkerPool([_CounterRole(), _CounterRole()],
                             checkpoint_every=8) as pool:
            states = pool.checkpoint_workers()
        with ShardWorkerPool([_CounterRole()], checkpoint_every=8) as pool:
            with pytest.raises(CheckpointError, match="same shard count"):
                pool.restore_workers(states)


# -- session poisoning -------------------------------------------------------


class TestSessionPoisoning:
    def test_ingest_fault_poisons_session(self, trace):
        engine = make_engine()
        injector = FaultInjector(FaultPlan(abort_ingests={2}))
        session = engine.open(window=128, faults=injector)
        batches = list(chunked(trace, CHUNK))
        session.ingest(batches[0])
        with pytest.raises(InjectedFault):
            session.ingest(batches[1])
        assert session.broken
        with pytest.raises(SessionError, match="broken"):
            session.ingest(batches[2])
        with pytest.raises(SessionError, match="broken"):
            session.results()
        with pytest.raises(SessionError, match="broken"):
            session.checkpoint()
        with pytest.raises(SessionError, match="discarded"):
            session.close()
        # After the (raising) close the session is closed for good.
        with pytest.raises(SessionClosedError):
            session.results()

    def test_broken_error_names_recovery_paths(self, trace):
        engine = make_engine()
        injector = FaultInjector(FaultPlan(abort_ingests={1}))
        session = engine.open(window=128, faults=injector)
        with pytest.raises(InjectedFault):
            session.ingest(next(chunked(trace, CHUNK)))
        with pytest.raises(SessionError, match="resume"):
            session.results()

    def test_broken_error_chains_original_cause(self, trace):
        """Regression: the SessionError raised by a poisoned session
        carries the original ingest exception as __cause__ — not just
        its stringified name — on every surface (results, checkpoint,
        ingest, close)."""
        engine = make_engine()
        injector = FaultInjector(FaultPlan(abort_ingests={2}))
        session = engine.open(window=128, faults=injector)
        batches = list(chunked(trace, CHUNK))
        session.ingest(batches[0])
        with pytest.raises(InjectedFault) as first:
            session.ingest(batches[1])
        original = first.value
        for poke in (session.results, session.checkpoint,
                     lambda: session.ingest(batches[2])):
            with pytest.raises(SessionError) as err:
                poke()
            assert err.value.__cause__ is original
        with pytest.raises(SessionError) as closing:
            session.close()
        assert closing.value.__cause__ is original


# -- zero-ingest edge cases ---------------------------------------------------


class TestZeroIngest:
    def test_checkpoint_resume_of_never_ingested_session(self, trace):
        """A checkpoint taken before any ingest restores to a fresh
        session: feeding it the whole trace matches an uninterrupted
        run exactly."""
        engine = make_engine()
        session = engine.open(window=128)
        snapshot = session.checkpoint()
        session.close()
        resumed = engine.resume(snapshot)
        assert resumed.packets_ingested == 0
        for batch in chunked(trace, CHUNK):
            resumed.ingest(batch)
        assert observables(resumed.close(include_invalid=True)) == \
            uninterrupted(make_engine(), trace, window=128)

    def test_zero_ingest_results_and_close(self):
        engine = make_engine()
        session = engine.open(window=128)
        snap = session.results(include_invalid=True)
        assert len(snap.result) == 0
        report = session.close(include_invalid=True)
        assert len(report.result) == 0
        assert all(s.accesses == 0 for s in report.cache_stats.values())

    def test_zero_ingest_sharded_checkpoint_resume(self, trace):
        """Same, across the shard fabric: the checkpoint captures the
        pristine worker roles."""
        engine = make_engine()
        session = engine.open(window=128, shards=2)
        snapshot = session.checkpoint()
        session.close()
        resumed = engine.resume(snapshot)
        for batch in chunked(trace, CHUNK):
            resumed.ingest(batch)
        assert observables(resumed.close(include_invalid=True)) == \
            uninterrupted(make_engine(), trace, window=128)


# -- network deployments -----------------------------------------------------


def net_observables(report):
    return (
        {q: t.rows for q, t in report.combined.items()},
        {sw: {q: t.rows for q, t in tabs.items()}
         for sw, tabs in report.per_switch.items()},
        report.combinable,
    )


@pytest.fixture(scope="module")
def fabric():
    topo = leaf_spine(2, 2, 2, edge_link=LinkSpec(rate_gbps=5.0))
    sim = NetworkSimulator(topo)
    hosts = sorted(topo.hosts())
    t = 0
    for i in range(300):
        t += 2000
        src = hosts[i % len(hosts)]
        dst = hosts[(i + 1 + i // 7) % len(hosts)]
        if src == dst:
            continue
        sim.inject(time_ns=t, src=src, dst=dst, pkt_len=400 + (i % 900),
                   srcport=2000 + i % 5, dstport=80)
    table = sim.run()
    return sim, table


NET_GEOM = CacheGeometry.set_associative(256, ways=8)
NET_QUERY = "SELECT COUNT, SUM(pkt_len) GROUPBY srcip"


class TestNetworkCheckpoint:
    @pytest.mark.parametrize("shards", [None, 2])
    def test_resume_matches_uninterrupted(self, shards, fabric):
        sim, table = fabric
        deploy = NetworkDeployment(NET_QUERY, sim, geometry=NET_GEOM)
        kwargs = {"checkpoint_every": 4} if shards else {}
        full = deploy.open(window=32, shards=shards, **kwargs)
        full.ingest(table)
        base = net_observables(full.close())

        partial = deploy.open(window=32, shards=shards, **kwargs)
        half = len(table) // 2
        partial.ingest(_head(table, half))
        snapshot = partial.checkpoint()
        partial.close()

        resumed = deploy.resume(snapshot, **kwargs)
        from repro.network.records import ObservationTable
        rest = ObservationTable.from_arrays(
            {name: col[half:] for name, col in table.columns().items()})
        resumed.ingest(rest)
        assert net_observables(resumed.close()) == base

    def test_session_kind_rejected_by_engine_resume(self, fabric, trace):
        sim, _ = fabric
        deploy = NetworkDeployment(NET_QUERY, sim, geometry=NET_GEOM)
        session = deploy.open(window=32)
        session.ingest(_head(fabric[1], 100))
        snapshot = session.checkpoint()
        session.close()
        with pytest.raises(CheckpointError, match="NetworkDeployment"):
            QueryEngine(NET_QUERY, geometry=NET_GEOM).resume(snapshot)
        # And the reverse: a plain session checkpoint is not a network one.
        plain = ingest_upto(make_engine().open(window=128), trace, 200)
        plain_snap = plain.checkpoint()
        plain.close()
        with pytest.raises(CheckpointError):
            deploy.resume(plain_snap)

    def test_topology_mismatch_rejected(self, fabric):
        sim, table = fabric
        deploy = NetworkDeployment(NET_QUERY, sim, geometry=NET_GEOM)
        session = deploy.open(window=32)
        session.ingest(_head(table, 100))
        snapshot = session.checkpoint()
        session.close()
        other = NetworkDeployment(
            NET_QUERY, NetworkSimulator(linear_chain(3)), geometry=NET_GEOM)
        with pytest.raises(CheckpointError, match="topology"):
            other.resume(snapshot)


# -- graceful shutdown: no /dev/shm leaks after SIGTERM ----------------------


_SHM_CHILD = """
import sys, time
from repro.switch.kvstore.cache import CacheGeometry
from repro.telemetry.runtime import QueryEngine
from repro.traffic.datacenter import DatacenterConfig, DatacenterWorkload

table = DatacenterWorkload(DatacenterConfig(
    n_flows=30, duration_ns=5_000_000, seed=5)).observation_table()
engine = QueryEngine("SELECT COUNT GROUPBY srcip",
                     geometry=CacheGeometry.set_associative(128, ways=4))
session = engine.open(window=64, shards=2)
session.ingest(table)
print("READY", flush=True)
time.sleep(30)
"""


@pytest.mark.skipif(not os.path.isdir("/dev/shm"),
                    reason="no /dev/shm on this platform")
def test_sigterm_releases_shared_memory():
    """SIGTERM mid-session drains the pool and unlinks every shared-
    memory segment instead of stranding them in /dev/shm."""
    before = set(os.listdir("/dev/shm"))
    env = dict(os.environ)
    root = Path(__file__).resolve().parent.parent
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in [str(root / "src"), env.get("PYTHONPATH")] if p)
    proc = subprocess.Popen([sys.executable, "-c", _SHM_CHILD],
                            stdout=subprocess.PIPE, env=env, text=True)
    try:
        assert proc.stdout.readline().strip() == "READY"
        proc.send_signal(signal.SIGTERM)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        leaked = {n for n in set(os.listdir("/dev/shm")) - before
                  if n.startswith("psm_")}
        if not leaked:
            break
        time.sleep(0.1)
    assert not leaked, f"stray shared-memory segments: {sorted(leaked)}"
