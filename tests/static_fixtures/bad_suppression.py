"""Seeded violations: RPR-C001 — suppression comments that waive
nothing (bare, unknown code, malformed code, empty list)."""
import time


def wall_clock():
    a = time.monotonic()  # repro: allow
    b = time.monotonic()  # repro: allow[RPR-C999]
    c = time.monotonic()  # repro: allow[not-a-code]
    d = time.monotonic()  # repro: allow[]
    return a + b + c + d
