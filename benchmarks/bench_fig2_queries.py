"""FIG2 — the Fig. 2 example-query table.

Regenerates the paper's query table end-to-end: every query is
compiled, run through the switch hardware model on a datacenter trace
with planted anomalies, checked against the reference interpreter, and
its linear-in-state verdict compared with the paper's column.

Benchmark timings measure the full telemetry run (compile once, stream
the small trace through cache + backing store).
"""

from __future__ import annotations

import pytest

from repro.analysis.report import deployability_table, format_table
from repro.queries.catalog import FIG2_QUERIES, get
from repro.switch.kvstore.cache import CacheGeometry
from repro.telemetry.results import compare_tables
from repro.telemetry.runtime import QueryEngine

GEOMETRY = CacheGeometry.set_associative(512, ways=8)


@pytest.fixture(scope="module", autouse=True)
def fig2_table(report, dc_trace):
    """Build and register the Fig. 2 reproduction table."""
    rows = []
    for entry in FIG2_QUERIES:
        engine = QueryEngine(entry.source, params=entry.default_params,
                             geometry=GEOMETRY, exact_history=True)
        info = engine.info()
        run = engine.run(dc_trace.records, with_ground_truth=True)
        truth = run.ground_truth[run.result_name]
        if run.result.schema.keyed and truth.schema.keyed:
            diff = compare_tables(run.result, truth, rel_tol=1e-6)
            fidelity = "exact" if diff.exact else f"{diff.cell_accuracy:.1%} cells"
        else:
            fidelity = "exact" if len(run.result) == len(truth) else "rows differ"
        rows.append([
            entry.name,
            "Yes" if entry.linear_in_state else "No",
            "Yes" if info.fully_linear else "No",
            "OK" if info.fully_linear == entry.linear_in_state else "MISMATCH",
            len(run.result),
            fidelity,
        ])
    text = format_table(
        ["query", "paper linear?", "ours", "verdict", "rows", "vs ground truth"],
        rows,
        title="Fig. 2 — example performance queries (hardware path vs exact)",
    )
    report("FIG2: query table", text)
    return rows


@pytest.fixture(scope="module", autouse=True)
def fig2_deployability(report):
    """The static analyzer's verdicts over the same catalog: the
    deployability table must be error-free and its mergeability column
    must reproduce the paper's linear-in-state column."""
    analyses = {}
    for entry in FIG2_QUERIES:
        engine = QueryEngine(entry.source, params=entry.default_params,
                             geometry=GEOMETRY)
        analysis = engine.analyze()
        assert not analysis.report.has_errors, entry.name
        mergeable = all(s.mergeable for s in analysis.stages)
        assert mergeable == entry.linear_in_state, entry.name
        analyses[entry.name] = analysis
    report("FIG2: compile-time deployability (repro lint)",
           deployability_table(analyses))
    return analyses


def _bench_entry(benchmark, small_trace, name, **engine_kwargs):
    entry = get(name)
    engine = QueryEngine(entry.source, params=entry.default_params,
                         geometry=GEOMETRY, **engine_kwargs)
    records = small_trace.records

    def run():
        return engine.run(records)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(result.result) >= 0


def test_fig2_per_flow_counters(benchmark, small_trace):
    _bench_entry(benchmark, small_trace, "per_flow_counters")


def test_fig2_latency_ewma(benchmark, small_trace):
    _bench_entry(benchmark, small_trace, "latency_ewma")


def test_fig2_tcp_out_of_sequence(benchmark, small_trace):
    _bench_entry(benchmark, small_trace, "tcp_out_of_sequence")


def test_fig2_tcp_non_monotonic(benchmark, small_trace):
    _bench_entry(benchmark, small_trace, "tcp_non_monotonic")


def test_fig2_per_flow_high_latency(benchmark, small_trace):
    _bench_entry(benchmark, small_trace, "per_flow_high_latency")


def test_fig2_per_flow_loss_rate(benchmark, small_trace):
    _bench_entry(benchmark, small_trace, "per_flow_loss_rate")


def test_fig2_high_p99_queue_size(benchmark, small_trace):
    _bench_entry(benchmark, small_trace, "high_p99_queue_size")
