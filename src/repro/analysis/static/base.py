"""Core of the ``repro check`` static-analysis framework.

This module owns the three mechanisms every checker shares:

* the **checker registry** — a checker is a plain function
  ``(ModuleContext) -> Iterable[Finding]`` registered with the
  :func:`checker` decorator, declaring the ``RPR-Cxxx`` codes it can
  emit and (optionally) the fnmatch path *scope* it applies to;
* the **ModuleContext** — one parsed source file (AST, source lines,
  suppression table) handed to every applicable checker;
* **suppressions** — an inline ``# repro: allow[RPR-Cxxx]`` comment on
  the flagged line waives that code for that line.  The comment *must*
  name a registered code: a bare ``# repro: allow`` or an unknown code
  is itself a finding (``RPR-C001``), so suppressions can never rot
  into silent blanket waivers.

Findings render through :mod:`repro.telemetry.diagnostics` — the same
registry the deployability analyzer and the served ``REJECT`` frames
use — so a code means the same thing in every surface.
"""

from __future__ import annotations

import ast
import fnmatch
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable

from repro.telemetry.diagnostics import CODES, render

__all__ = [
    "CheckerInfo",
    "Finding",
    "ModuleContext",
    "all_checkers",
    "checker",
]

#: A well-formed suppression comment: ``repro: allow[RPR-C101]`` (or
#: a comma-separated list of codes inside the brackets).
_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([^\]]*)\]")
#: Any ``repro: allow`` comment at all, bracketed or not — used to
#: catch the malformed bare form.
_ALLOW_ANY_RE = re.compile(r"#\s*repro:\s*allow")
_CODE_TOKEN_RE = re.compile(r"^RPR-C\d{3}$")


@dataclass(frozen=True)
class Finding:
    """One checker hit: a diagnostic code anchored to a source line."""

    code: str
    path: str
    line: int
    message: str
    fix_hint: str

    @property
    def slug(self) -> str:
        return CODES[self.code].slug

    def format(self) -> str:
        text = f"{self.path}:{self.line}: {self.code} {self.message}"
        if self.fix_hint:
            text += f"\n    fix: {self.fix_hint}"
        return text

    def to_json(self) -> dict[str, object]:
        return {
            "code": self.code,
            "slug": self.slug,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "fix_hint": self.fix_hint,
        }


class ModuleContext:
    """One source file under analysis: AST plus the suppression table.

    Construction parses the source (``SyntaxError`` propagates — the
    runner reports it as unparseable) and tokenizes the comments into
    ``allowed``: line number -> set of waived codes.  Malformed
    suppression comments become ``RPR-C001`` findings immediately.
    """

    def __init__(self, path: str | Path, source: str) -> None:
        self.path = str(path)
        self.source = source
        self.tree = ast.parse(source, filename=self.path)
        self.allowed: dict[int, set[str]] = {}
        self.suppression_findings: list[Finding] = []
        self._scan_suppressions()

    def _scan_suppressions(self) -> None:
        try:
            tokens = list(tokenize.generate_tokens(
                io.StringIO(self.source).readline))
        except tokenize.TokenError:
            return
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            if not _ALLOW_ANY_RE.search(tok.string):
                continue
            lineno = tok.start[0]
            match = _ALLOW_RE.search(tok.string)
            if match is None:
                self.suppression_findings.append(self.finding(
                    "RPR-C001", lineno,
                    problem="no bracketed code list (bare 'repro: "
                            "allow' waives nothing)"))
                continue
            names = [t.strip() for t in match.group(1).split(",")]
            for name in names:
                if not _CODE_TOKEN_RE.match(name) or name not in CODES:
                    self.suppression_findings.append(self.finding(
                        "RPR-C001", lineno,
                        problem=f"{name or '<empty>'!r} is not a "
                                f"registered RPR-Cxxx code"))
                else:
                    self.allowed.setdefault(lineno, set()).add(name)

    def finding(self, code: str, where: int | ast.AST,
                **context: object) -> Finding:
        """Build a :class:`Finding` rendered through the diagnostics
        registry; ``where`` is a line number or an AST node."""
        line = where if isinstance(where, int) else where.lineno
        return Finding(
            code=code,
            path=self.path,
            line=line,
            message=render(code, **context),
            fix_hint=CODES[code].fix,
        )

    def is_suppressed(self, finding: Finding) -> bool:
        return finding.code in self.allowed.get(finding.line, set())


@dataclass(frozen=True)
class CheckerInfo:
    """Registry entry: one checker family and the codes it owns."""

    name: str
    codes: tuple[str, ...]
    scope: tuple[str, ...] | None
    run: Callable[[ModuleContext], Iterable[Finding]]

    def applies_to(self, path: str) -> bool:
        if self.scope is None:
            return True
        posix = Path(path).as_posix()
        return any(fnmatch.fnmatch(posix, pat) for pat in self.scope)


_CHECKERS: list[CheckerInfo] = []


def checker(name: str, codes: Iterable[str],
            scope: Iterable[str] | None = None) -> Callable:
    """Register a checker function under ``name``.

    ``codes`` are the ``RPR-Cxxx`` codes the checker may emit (all must
    be registered in the diagnostics table); ``scope`` optionally
    restricts the checker to files matching any of the fnmatch
    patterns (matched against the POSIX form of the path).
    """
    code_tuple = tuple(codes)
    for code in code_tuple:
        if code not in CODES:
            raise ValueError(f"checker {name!r} declares unregistered "
                             f"diagnostic code {code!r}")

    def wrap(fn: Callable[[ModuleContext], Iterable[Finding]]) -> Callable:
        _CHECKERS.append(CheckerInfo(
            name=name, codes=code_tuple,
            scope=tuple(scope) if scope is not None else None, run=fn))
        return fn

    return wrap


def all_checkers() -> tuple[CheckerInfo, ...]:
    """Every registered checker (importing the built-in families on
    first use)."""
    from repro.analysis.static import checkers  # noqa: F401  (registers)
    return tuple(_CHECKERS)
