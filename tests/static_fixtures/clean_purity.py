"""Clean twin of bad_purity: plain-data checkpoint payloads."""


class Store:
    def __init__(self):
        self._rows = []
        self._evict_counts = {}

    def checkpoint_state(self):
        return {
            "rows": list(self._rows),
            "evictions": dict(self._evict_counts),
            "sizes": [len(r) for r in self._rows],
        }
