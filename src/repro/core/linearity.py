"""Linear-in-state analysis (paper §3.2).

A fold's state update is *linear in state* when it can be written

    S = A · S + B

where ``S`` is the state vector and ``A`` and ``B`` are functions of
the current packet alone — or, per footnote 4, "of a constant number of
packets preceding and including the current packet".  Linearity is what
makes cache evictions mergeable: the backing store can compose the
evicted partial aggregate with its stored value without replaying
packets.

This module performs the analysis symbolically on a resolved
:class:`~repro.core.semantics.FoldInstance`:

Phase 0 — *if-conversion*: execute the fold body symbolically (one pass,
branch-merging with :class:`Cond` nodes) to obtain, for every state
variable, a single update expression over pre-update state and packet
fields.  This succeeds for any fold and doubles as the switch ALU
program.

Phase 1 — *history variables*: a state variable is a history variable
of depth ``k`` when its updated value is a function of the last ``k``
packets only (no dependence on unbounded state).  ``lastseq = tcpseq +
payload_len`` has depth 1.  History variables may appear inside ``A``
and ``B`` (footnote 4).

Phase 2 — *affine extraction*: re-evaluate each update expression as an
affine form ``Σ_j A[i][j]·s_j + B[i]`` whose coefficients may reference
packet fields, parameters, and history variables' pre-values, but not
mergeable state.  Any violation (state×state products, predicates on
non-history state such as ``maxseq > tcpseq`` in the paper's ``nonmt``,
``max``/``min`` over state) classifies the fold as *not* linear in
state, with a human-readable reason.

The resulting matrix ``A`` / vector ``B`` drive merge synthesis
(:mod:`repro.core.merge_synthesis`) and the hardware ALU configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .ast_nodes import (
    Assign,
    BinOp,
    Call,
    ColumnRef,
    Cond,
    Expr,
    FieldRef,
    If,
    Number,
    ParamRef,
    StateRef,
    Stmt,
    UnaryOp,
    walk,
)
from .errors import LinearityError
from .semantics import FoldInstance

ZERO = Number(0)
ONE = Number(1)


# ---------------------------------------------------------------------------
# Smart constructors with light constant folding
# ---------------------------------------------------------------------------


def mk_add(left: Expr, right: Expr) -> Expr:
    if left == ZERO:
        return right
    if right == ZERO:
        return left
    if isinstance(left, Number) and isinstance(right, Number):
        return Number(left.value + right.value)
    return BinOp("+", left, right)


def mk_sub(left: Expr, right: Expr) -> Expr:
    if right == ZERO:
        return left
    if isinstance(left, Number) and isinstance(right, Number):
        return Number(left.value - right.value)
    return BinOp("-", left, right)


def mk_mul(left: Expr, right: Expr) -> Expr:
    if left == ZERO or right == ZERO:
        return ZERO
    if left == ONE:
        return right
    if right == ONE:
        return left
    if isinstance(left, Number) and isinstance(right, Number):
        return Number(left.value * right.value)
    return BinOp("*", left, right)


def mk_div(left: Expr, right: Expr) -> Expr:
    if left == ZERO:
        return ZERO
    if right == ONE:
        return left
    if isinstance(left, Number) and isinstance(right, Number) and right.value != 0:
        return Number(left.value / right.value)
    return BinOp("/", left, right)


def mk_cond(pred: Expr, then: Expr, orelse: Expr) -> Expr:
    if then == orelse:
        return then
    if isinstance(pred, Number):
        return then if pred.value else orelse
    return Cond(pred, then, orelse)


def mk_neg(operand: Expr) -> Expr:
    if isinstance(operand, Number):
        return Number(-operand.value)
    return UnaryOp("-", operand)


# ---------------------------------------------------------------------------
# Phase 0: if-conversion (symbolic execution to per-variable update exprs)
# ---------------------------------------------------------------------------


def if_convert(body: tuple[Stmt, ...], state_vars: tuple[str, ...]) -> dict[str, Expr]:
    """Collapse a fold body to one update expression per state variable.

    The returned expressions are over :class:`StateRef` (pre-update
    values), packet fields/columns and parameters; sequential
    assignments are composed and branches merged with :class:`Cond`.
    This is total — every fold body converts.
    """
    env: dict[str, Expr] = {v: StateRef(v) for v in state_vars}
    _exec_block(body, env)
    return env


def _exec_block(stmts: tuple[Stmt, ...], env: dict[str, Expr]) -> None:
    for stmt in stmts:
        if isinstance(stmt, Assign):
            env[stmt.target] = _subst(stmt.value, env)
        elif isinstance(stmt, If):
            pred = _subst(stmt.pred, env)
            then_env = dict(env)
            else_env = dict(env)
            _exec_block(stmt.then, then_env)
            _exec_block(stmt.orelse, else_env)
            for var in env:
                env[var] = mk_cond(pred, then_env[var], else_env[var])
        else:
            raise LinearityError(f"unknown statement {stmt!r}")


def _subst(expr: Expr, env: dict[str, Expr]) -> Expr:
    """Substitute current symbolic state values into ``expr``."""
    if isinstance(expr, StateRef):
        return env[expr.name]
    if isinstance(expr, BinOp):
        return BinOp(expr.op, _subst(expr.left, env), _subst(expr.right, env))
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, _subst(expr.operand, env))
    if isinstance(expr, Call):
        return Call(expr.func, tuple(_subst(a, env) for a in expr.args))
    if isinstance(expr, Cond):
        return mk_cond(_subst(expr.pred, env), _subst(expr.then, env),
                       _subst(expr.orelse, env))
    return expr


# ---------------------------------------------------------------------------
# Phase 1: history variables
# ---------------------------------------------------------------------------


def history_depths(update_exprs: dict[str, Expr]) -> dict[str, int]:
    """Depth of each history variable; non-history variables absent.

    ``v`` has depth 1 when its update references no state at all, and
    depth ``1 + max(depth(w))`` when it references only history
    variables ``w`` (their pre-values).  Cyclic or non-history
    dependence (e.g. ``v`` referencing itself) excludes a variable.
    """
    deps: dict[str, set[str]] = {}
    for var, expr in update_exprs.items():
        deps[var] = {n.name for n in walk(expr) if isinstance(n, StateRef)}

    depths: dict[str, int] = {}
    changed = True
    while changed:
        changed = False
        for var, dep in deps.items():
            if var in depths:
                continue
            if all(w in depths for w in dep):
                depth = 1 + max((depths[w] for w in dep), default=0)
                depths[var] = depth
                changed = True
    return depths


# ---------------------------------------------------------------------------
# Phase 2: affine extraction
# ---------------------------------------------------------------------------


class _NonAffine(Exception):
    """Internal: expression is not affine in mergeable state."""

    def __init__(self, reason: str):
        self.reason = reason
        super().__init__(reason)


@dataclass
class AffineForm:
    """``Σ coeffs[v]·s_v + const`` with state-free coefficient exprs."""

    coeffs: dict[str, Expr] = field(default_factory=dict)
    const: Expr = ZERO

    def is_pure(self) -> bool:
        return not self.coeffs

    def add(self, other: "AffineForm", sign: int = 1) -> "AffineForm":
        coeffs = dict(self.coeffs)
        for var, coeff in other.coeffs.items():
            term = coeff if sign > 0 else mk_neg(coeff)
            coeffs[var] = mk_add(coeffs[var], term) if var in coeffs else term
        const = mk_add(self.const, other.const) if sign > 0 else mk_sub(self.const, other.const)
        return AffineForm({v: c for v, c in coeffs.items() if c != ZERO}, const)

    def scale(self, factor: Expr) -> "AffineForm":
        return AffineForm(
            {v: mk_mul(factor, c) for v, c in self.coeffs.items()},
            mk_mul(factor, self.const),
        )

    def divide(self, denom: Expr) -> "AffineForm":
        return AffineForm(
            {v: mk_div(c, denom) for v, c in self.coeffs.items()},
            mk_div(self.const, denom),
        )

    def negate(self) -> "AffineForm":
        return AffineForm({v: mk_neg(c) for v, c in self.coeffs.items()},
                          mk_neg(self.const))


def _affine(expr: Expr, history: dict[str, int]) -> AffineForm:
    """Affine form of ``expr`` over mergeable (non-history) state vars."""
    if isinstance(expr, Number):
        return AffineForm(const=expr)
    if isinstance(expr, (FieldRef, ColumnRef, ParamRef)):
        return AffineForm(const=expr)
    if isinstance(expr, StateRef):
        if expr.name in history:
            # A history variable's pre-value is a bounded-packet-history
            # function, so it may live inside coefficients (footnote 4).
            return AffineForm(const=expr)
        return AffineForm(coeffs={expr.name: ONE})
    if isinstance(expr, UnaryOp):
        if expr.op == "-":
            return _affine(expr.operand, history).negate()
        inner = _affine(expr.operand, history)
        if not inner.is_pure():
            raise _NonAffine("'not' applied to an expression that depends on state")
        return AffineForm(const=UnaryOp("not", inner.const))
    if isinstance(expr, BinOp):
        op = expr.op
        if op in ("+", "-"):
            return _affine(expr.left, history).add(
                _affine(expr.right, history), 1 if op == "+" else -1)
        if op == "*":
            left = _affine(expr.left, history)
            right = _affine(expr.right, history)
            if left.is_pure():
                return right.scale(left.const)
            if right.is_pure():
                return left.scale(right.const)
            raise _NonAffine("product of two state-dependent expressions")
        if op == "/":
            left = _affine(expr.left, history)
            right = _affine(expr.right, history)
            if not right.is_pure():
                raise _NonAffine("division by a state-dependent expression")
            return left.divide(right.const)
        # Comparisons and boolean connectives must be state-free to sit
        # inside A/B; a predicate on real state is exactly what makes
        # ``nonmt`` non-linear (§3.2).
        left = _affine(expr.left, history)
        right = _affine(expr.right, history)
        if not left.is_pure() or not right.is_pure():
            raise _NonAffine(
                f"comparison/boolean {op!r} over a state-dependent expression"
            )
        return AffineForm(const=BinOp(op, left.const, right.const))
    if isinstance(expr, Call):
        args = [_affine(a, history) for a in expr.args]
        if any(not a.is_pure() for a in args):
            raise _NonAffine(f"{expr.func}() applied to state is not affine")
        return AffineForm(const=Call(expr.func, tuple(a.const for a in args)))
    if isinstance(expr, Cond):
        pred = _affine(expr.pred, history)
        if not pred.is_pure():
            raise _NonAffine("branch predicate depends on state")
        then = _affine(expr.then, history)
        orelse = _affine(expr.orelse, history)
        coeffs: dict[str, Expr] = {}
        for var in set(then.coeffs) | set(orelse.coeffs):
            coeffs[var] = mk_cond(pred.const,
                                  then.coeffs.get(var, ZERO),
                                  orelse.coeffs.get(var, ZERO))
        return AffineForm(coeffs, mk_cond(pred.const, then.const, orelse.const))
    raise _NonAffine(f"unsupported expression {expr!r}")


# ---------------------------------------------------------------------------
# Result type and entry points
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LinearityResult:
    """Outcome of analysing one fold instance.

    Attributes:
        fold: The analysed fold instance.
        update_exprs: Per-variable update expressions (Phase 0); valid
            for *every* fold and used as the ALU program.
        linear: True when all mergeable variables update affinely.
        reason: Why the fold is not linear (when ``linear`` is False).
        history: History variables and their depths.
        history_depth: Max history depth appearing in ``A``/``B`` (0 ⇒
            coefficients are pure packet functions and the paper's
            merge is exact from the first post-eviction packet).
        order: Mergeable state variables, in layout order.
        matrix: ``A[i][j]`` coefficient exprs, keyed ``(var_i, var_j)``;
            identity entries are stored explicitly.
        offset: ``B[i]`` exprs keyed by variable.
        matrix_kind: ``"identity"`` | ``"diagonal"`` | ``"full"``.
    """

    fold: FoldInstance
    update_exprs: dict[str, Expr]
    linear: bool
    reason: str | None
    history: dict[str, int]
    history_depth: int
    order: tuple[str, ...] = ()
    matrix: dict[tuple[str, str], Expr] = field(default_factory=dict)
    offset: dict[str, Expr] = field(default_factory=dict)
    matrix_kind: str = "identity"

    @property
    def mergeable(self) -> bool:
        """Whether evictions of this fold can be merged in the backing
        store (paper §3.2: exactly the linear-in-state folds)."""
        return self.linear


def analyze_fold(instance: FoldInstance) -> LinearityResult:
    """Run the full linear-in-state analysis on ``instance``."""
    update_exprs = if_convert(instance.body, instance.state_vars)
    history = history_depths(update_exprs)

    mergeable_vars = tuple(v for v in instance.state_vars if v not in history)

    matrix: dict[tuple[str, str], Expr] = {}
    offset: dict[str, Expr] = {}
    try:
        for var in mergeable_vars:
            form = _affine(update_exprs[var], history)
            for dep, coeff in form.coeffs.items():
                matrix[(var, dep)] = coeff
            offset[var] = form.const
    except _NonAffine as exc:
        return LinearityResult(
            fold=instance, update_exprs=update_exprs, linear=False,
            reason=exc.reason, history=history,
            history_depth=max(history.values(), default=0),
        )

    matrix_kind = _classify_matrix(matrix, mergeable_vars)
    used_history = _history_depth_used(matrix, offset, history)
    return LinearityResult(
        fold=instance, update_exprs=update_exprs, linear=True, reason=None,
        history=history, history_depth=used_history,
        order=mergeable_vars, matrix=matrix, offset=offset,
        matrix_kind=matrix_kind,
    )


def _classify_matrix(matrix: dict[tuple[str, str], Expr],
                     order: tuple[str, ...]) -> str:
    identity = True
    diagonal = True
    for (i, j), coeff in matrix.items():
        if i != j:
            diagonal = False
            identity = False
        elif coeff != ONE:
            identity = False
    # Identity also requires every diagonal entry to be present-and-one
    # or absent (absent diagonal = coefficient 0, i.e. the variable is
    # overwritten each packet — still trivially mergeable, but not by
    # pure addition). Treat missing diagonals as non-identity.
    if identity:
        for var in order:
            if (var, var) in matrix and matrix[(var, var)] != ONE:
                identity = False
            if (var, var) not in matrix:
                identity = False
    if identity:
        return "identity"
    return "diagonal" if diagonal else "full"


def _history_depth_used(matrix: dict[tuple[str, str], Expr],
                        offset: dict[str, Expr],
                        history: dict[str, int]) -> int:
    """Max depth of history variables referenced by ``A``/``B``."""
    depth = 0
    for expr in list(matrix.values()) + list(offset.values()):
        for node in walk(expr):
            if isinstance(node, StateRef) and node.name in history:
                depth = max(depth, history[node.name])
    return depth


def analyze_query_folds(folds: tuple[FoldInstance, ...]) -> dict[str, LinearityResult]:
    """Analyse every fold of a resolved query; keyed by column name."""
    return {f.column: analyze_fold(f) for f in folds}


def query_is_linear(folds: tuple[FoldInstance, ...]) -> bool:
    """A query is linear-in-state when all its folds are."""
    return all(r.linear for r in analyze_query_folds(folds).values())
