#!/usr/bin/env python
"""Durable sessions: save a mid-stream checkpoint, "crash", resume.

A telemetry session is long-lived — it carries open epochs, fold
accumulators, and window residency across an unbounded stream, so
losing the process means re-reading the whole trace.
:meth:`~repro.telemetry.session.TelemetrySession.checkpoint` serializes
that state into a versioned, checksummed byte string;
:meth:`~repro.telemetry.runtime.QueryEngine.resume` rebuilds the
session on an identically-configured engine and continues exactly
where the snapshot stopped.  The resumed run is **bit-identical** to
one that never crashed — result tables, cache counters, accuracy, all
of it — which this script verifies on a Fig. 2 catalog query.

The same bytes round-trip through a file, so a driver can persist them
(``run --checkpoint-to`` / ``--resume-from`` on the CLI do exactly
this) and survive a kill between any two batches.

Run:  python examples/checkpoint_restore.py
"""

import tempfile
from pathlib import Path

from repro.network.records import ObservationTable
from repro.queries.catalog import ALL_QUERIES
from repro.switch.kvstore.cache import CacheGeometry
from repro.telemetry.checkpoint import describe_checkpoint
from repro.telemetry.runtime import QueryEngine
from repro.traffic.datacenter import DatacenterConfig, DatacenterWorkload

CHUNK = 4096


def chunked(table, size):
    columns = table.columns()
    for lo in range(0, len(table), size):
        yield ObservationTable.from_arrays(
            {name: arr[lo:lo + size] for name, arr in columns.items()})


def main() -> None:
    entry = ALL_QUERIES["per_flow_loss_rate"]
    trace = DatacenterWorkload(DatacenterConfig(
        n_flows=200, duration_ns=50_000_000, seed=11)).observation_table()
    # Plant ~0.5% drops (tout = +inf) so the loss-rate query has
    # something to report.
    for i, record in enumerate(trace.records):
        if i % 200 == 199:
            record.tout = float("inf")
    trace = ObservationTable.from_arrays(trace.columns())
    engine = QueryEngine(entry.source, params=entry.default_params,
                         geometry=CacheGeometry.set_associative(512, ways=8))

    # The reference: one session, never interrupted.
    reference = engine.open(window=8192)
    for batch in chunked(trace, CHUNK):
        reference.ingest(batch)
    expected = reference.close(include_invalid=True)

    # The durable run: stream half the trace, save a checkpoint ...
    session = engine.open(window=8192)
    half = len(trace) // 2
    for batch in chunked(trace, CHUNK):
        if session.packets_ingested >= half:
            break
        session.ingest(batch)
    path = Path(tempfile.gettempdir()) / "repro_session.ckpt"
    path.write_bytes(session.checkpoint())
    print(f"checkpointed {session.packets_ingested} of {len(trace)} "
          f"packets to {path} ({path.stat().st_size / 1024:.1f} KiB)")
    for key, value in describe_checkpoint(path.read_bytes()).items():
        if value is not None:
            print(f"  {key}: {value}")

    # ... "crash" (drop the session entirely), then resume from disk.
    del session
    resumed = engine.resume(path.read_bytes())
    skip = resumed.packets_ingested
    print(f"\nresumed: skipping the {skip} packets the snapshot "
          f"already absorbed")
    rest = ObservationTable.from_arrays(
        {name: arr[skip:] for name, arr in trace.columns().items()})
    for batch in chunked(rest, CHUNK):
        resumed.ingest(batch)
    actual = resumed.close(include_invalid=True)

    same_rows = actual.result.rows == expected.result.rows
    same_stats = all(
        (actual.cache_stats[q].accesses, actual.cache_stats[q].evictions)
        == (expected.cache_stats[q].accesses,
            expected.cache_stats[q].evictions)
        for q in expected.cache_stats)
    print(f"\n{entry.name}: {len(actual.result)} result rows")
    print(f"bit-identical to the uninterrupted run: "
          f"rows {'yes' if same_rows else 'NO'}, "
          f"cache counters {'yes' if same_stats else 'NO'}")
    if not (same_rows and same_stats):
        raise SystemExit(1)


if __name__ == "__main__":
    main()
