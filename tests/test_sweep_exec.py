"""Parallel sweep runner tests: engine equivalence and parallel ==
serial determinism for the Fig. 5/6 grids (tiny trace scales)."""

import numpy as np
import pytest

from repro.core.errors import HardwareError
from repro.analysis.accuracy import run_accuracy_sweep
from repro.analysis.eviction import run_eviction_sweep, scaled_capacity
from repro.analysis.sweep_exec import (
    resolve_engine,
    run_eviction_sweep_parallel,
    stats_fn,
)
from repro.switch.kvstore.cache import CacheGeometry

SCALE = 1.0 / 16384.0   # ~9.6k packets: fast enough for process fan-out


def eviction_tuples(sweep):
    return [(p.geometry, p.paper_pairs, p.capacity_pairs,
             p.eviction_fraction, p.packets, p.flows) for p in sweep.points]


def accuracy_tuples(sweep):
    return [(p.window, p.paper_pairs, p.capacity_pairs,
             p.valid_keys, p.total_keys) for p in sweep.points]


class TestEngines:
    def test_eviction_vector_equals_row(self):
        vec = run_eviction_sweep(scale=SCALE, engine="vector")
        row = run_eviction_sweep(scale=SCALE, engine="row")
        assert eviction_tuples(vec) == eviction_tuples(row)

    def test_accuracy_vector_equals_row(self):
        vec = run_accuracy_sweep(scale=SCALE, engine="vector")
        row = run_accuracy_sweep(scale=SCALE, engine="row")
        assert accuracy_tuples(vec) == accuracy_tuples(row)

    def test_auto_resolves_by_stream_type(self):
        assert resolve_engine("auto", np.arange(4)) == "vector"
        assert resolve_engine("auto", ["x", "y"]) == "row"
        assert resolve_engine("row", np.arange(4)) == "row"

    def test_invalid_engine_rejected(self):
        with pytest.raises(HardwareError):
            run_eviction_sweep(scale=SCALE, engine="warp")
        with pytest.raises(HardwareError):
            run_accuracy_sweep(scale=SCALE, engine="warp")

    def test_stats_fn_shares_sim(self):
        keys = np.tile(np.arange(100, dtype=np.int64), 20)
        stats_for = stats_fn(keys, 3, "vector")
        a = stats_for(CacheGeometry.fully_associative(64))
        b = stats_for(CacheGeometry.fully_associative(128))
        assert a.accesses == b.accesses == len(keys)
        assert a.evictions >= b.evictions


class TestParallel:
    def test_eviction_parallel_equals_serial(self):
        serial = run_eviction_sweep(scale=SCALE, engine="vector")
        fanned = run_eviction_sweep(scale=SCALE, engine="vector", workers=2)
        assert eviction_tuples(fanned) == eviction_tuples(serial)

    def test_eviction_parallel_row_engine(self):
        serial = run_eviction_sweep(scale=SCALE, engine="row",
                                    capacities=(1 << 16, 1 << 18))
        fanned = run_eviction_sweep_parallel(scale=SCALE, engine="row",
                                             capacities=(1 << 16, 1 << 18),
                                             workers=2)
        assert eviction_tuples(fanned) == eviction_tuples(serial)

    def test_accuracy_parallel_equals_serial(self):
        serial = run_accuracy_sweep(scale=SCALE, engine="vector")
        fanned = run_accuracy_sweep(scale=SCALE, engine="vector", workers=2)
        assert accuracy_tuples(fanned) == accuracy_tuples(serial)

    def test_workers_one_stays_serial(self):
        a = run_eviction_sweep_parallel(scale=SCALE, workers=1)
        b = run_eviction_sweep(scale=SCALE)
        assert eviction_tuples(a) == eviction_tuples(b)


class TestScaledCapacity:
    def test_rounding(self):
        assert scaled_capacity(1 << 16, 1 / 256) == 256
        assert scaled_capacity(1 << 16, 1e-9) == 8     # floor
        assert scaled_capacity(1 << 21, 1 / 256) == 8192
