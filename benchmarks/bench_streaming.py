"""PERF — streaming TelemetrySession: bounded memory at one-shot speed.

The windowed session is the PR's answer to the one-shot vector store's
unbounded deferral: the schedule executes every ``window`` accesses
with carried residency/epoch state.  This bench drives a synthetic
flow stream **10× the window** through both paths — in separate
subprocesses, so each run's peak RSS is its own — and asserts the
acceptance criteria:

* **bounded memory** — the windowed session *generates batches on the
  fly* and never holds the stream; its peak RSS must stay well under
  the one-shot run's (which must materialise all ten windows of
  columns), and must not grow when the stream doubles to 20× the
  window;
* **≤ 1.3× runtime** — streaming costs at most 30% over the one-shot
  run of the same stream;
* **bit-identical results** — asserted here on the full stream and in
  CI by the ``smoke`` tests (tiny sizes, row vs vector vs windowed,
  all three eviction policies).

The FIFO/random ablation policies have their own acceptance bench: the
packed per-set windowed replay
(:class:`~repro.switch.kvstore.windowed_store._PackedWindowScheduler`)
against the per-access replay scheduler it replaced, over a windowed
ablation grid (three cache capacities x both policies) on this bench's
own stream — bit-identical miss schedules and eviction counts for
every cell and for two window partitionings, with speedup floors
asserted per cell and on the grid total.  The PR targeted >= 5x;
measured medians land at ~4x overall on an idle machine (2.5x on the
miss-dense smallest-capacity FIFO cell, up to ~6x on hit-dense cells)
— the replay's per-set miss chains are irreducibly sequential, so the
miss-dense cells stay bounded by one vectorized batch per miss
generation; the asserted floors (>= 2x per cell, >= 3x total) are set
where they hold robustly under machine-load noise, and
``BENCH_streaming_replay.json`` records the actual medians.

Artifacts at the repo root anchor the trajectory:
``BENCH_streaming.json`` (seconds + peak RSS per mode) and
``BENCH_streaming_replay.json`` (packed vs per-access FIFO/random
replay, accesses/s and speedups).
"""

from __future__ import annotations

import json
import multiprocessing as mp
import resource
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.network.records import ObservationTable
from repro.switch.kvstore.cache import CacheGeometry
from repro.telemetry.runtime import QueryEngine

QUERY = "SELECT COUNT, SUM(pkt_len) GROUPBY srcip, dstip"
GEOMETRY = CacheGeometry.set_associative(1 << 12, ways=8)
WINDOW = 1 << 17
N_WINDOWS = 10
FLOWS = 50_000
SEED = 2016_04

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_streaming.json"
REPLAY_ARTIFACT = (Path(__file__).resolve().parent.parent /
                   "BENCH_streaming_replay.json")


def make_batch(i: int, size: int, flows: int = FLOWS) -> ObservationTable:
    """Deterministic columnar batch ``i`` of a heavy-tailed flow
    stream — both phases rebuild identical batches, so the windowed
    phase never has to hold more than one."""
    rng = np.random.default_rng(SEED + i)
    flow = rng.zipf(1.2, size).astype(np.int64) % flows
    tin = np.arange(i * size, (i + 1) * size, dtype=np.int64) * 100
    return ObservationTable.from_arrays({
        "srcip": 0x0A000000 + flow,
        "dstip": 0x0B000000 + (flow * 7 + 3) % flows,
        "srcport": 1000 + (flow % 53),
        "pkt_len": rng.integers(64, 1500, size),
        "tin": tin,
        "tout": (tin + rng.integers(1000, 9000, size)).astype(np.float64),
    })


def _engine() -> QueryEngine:
    return QueryEngine(QUERY, geometry=GEOMETRY)


def _result_fingerprint(report) -> tuple:
    table = report.result
    return (len(table),
            sum(table.column("COUNT")),
            sum(table.column("SUM(pkt_len)")))


def _warmup() -> None:
    """One tiny end-to-end pass so import/allocator costs are paid
    before either phase's clock starts."""
    session = _engine().open(window=1 << 12)
    session.ingest(make_batch(10 ** 6, 1 << 12))
    session.close()
    _engine().run(make_batch(10 ** 6 + 1, 1 << 12))


def _run_one_shot(n_windows: int, out: dict) -> None:
    """Materialise the whole stream (what the deferred store needs
    anyway), then run it through the one-shot path."""
    _warmup()
    batches = [make_batch(i, WINDOW) for i in range(n_windows)]
    full = ObservationTable.from_arrays({
        name: np.concatenate([b.columns()[name] for b in batches])
        for name in batches[0].columns()
    })
    del batches
    t0 = time.perf_counter()
    report = _engine().run(full)
    out["seconds"] = time.perf_counter() - t0
    out["fingerprint"] = _result_fingerprint(report)
    out["peak_rss_mb"] = _peak_rss_mb()


def _run_windowed(n_windows: int, out: dict) -> None:
    """Generate-and-ingest: at no point does the process hold more
    than one batch of the stream.  Generation time is excluded from
    ``seconds`` (the one-shot phase generates before its clock starts),
    so the ratio compares the execution engines, not the generator."""
    _warmup()
    session = _engine().open(window=WINDOW)
    t0 = time.perf_counter()
    generating = 0.0
    for i in range(n_windows):
        g0 = time.perf_counter()
        batch = make_batch(i, WINDOW)
        generating += time.perf_counter() - g0
        session.ingest(batch)
    report = session.close()
    out["seconds"] = time.perf_counter() - t0 - generating
    out["fingerprint"] = _result_fingerprint(report)
    out["peak_rss_mb"] = _peak_rss_mb()


def _peak_rss_mb() -> float:
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":       # bytes on macOS, KiB on Linux
        peak //= 1024
    return round(peak / 1024, 1)


def _in_subprocess(target, *args) -> dict:
    """Run a phase in its own process so ru_maxrss is per-phase."""
    ctx = mp.get_context("spawn")
    with ctx.Manager() as manager:
        out = manager.dict()
        proc = ctx.Process(target=target, args=(*args, out))
        proc.start()
        proc.join()
        assert proc.exitcode == 0, f"phase crashed: {target.__name__}"
        return dict(out)


# -- smoke (CI): tiny stream, bit-identity across engines/windows -------------

def test_smoke_streaming_bit_identical():
    """Row vs vector vs windowed sessions on a tiny stream whose
    window is smaller than the trace: identical tables + counters."""
    geometry = CacheGeometry.set_associative(256, ways=8)
    batches = [make_batch(i, 2000, flows=500) for i in range(4)]
    full = ObservationTable.from_arrays({
        name: np.concatenate([b.columns()[name] for b in batches])
        for name in batches[0].columns()
    })

    def observables(report):
        return ({q: t.rows for q, t in report.tables.items()},
                {q: (s.accesses, s.hits, s.misses, s.insertions,
                     s.evictions)
                 for q, s in report.cache_stats.items()},
                report.backing_writes, report.accuracy)

    base = observables(QueryEngine(QUERY, geometry=geometry,
                                   engine="row").run(full))
    assert observables(QueryEngine(QUERY, geometry=geometry,
                                   engine="vector").run(full)) == base
    for engine in ("row", "vector"):
        session = QueryEngine(QUERY, geometry=geometry,
                              engine=engine).open(window=1500)
        for batch in batches:
            session.ingest(batch)
        assert observables(session.close()) == base, engine


def test_smoke_streaming_policies_bit_identical():
    """The FIFO/random ablation policies through windowed sessions:
    the packed per-set replay schedulers (carried ring buffers +
    counter-based RNG) must match the per-packet row engine's one-shot
    results exactly, at several window sizes."""
    geometry = CacheGeometry.set_associative(256, ways=8)
    batches = [make_batch(i, 1500, flows=400) for i in range(3)]
    full = ObservationTable.from_arrays({
        name: np.concatenate([b.columns()[name] for b in batches])
        for name in batches[0].columns()
    })

    def observables(report):
        return ({q: t.rows for q, t in report.tables.items()},
                {q: (s.accesses, s.hits, s.misses, s.insertions,
                     s.evictions)
                 for q, s in report.cache_stats.items()},
                report.backing_writes, report.accuracy)

    for policy in ("fifo", "random"):
        base = observables(QueryEngine(QUERY, geometry=geometry,
                                       policy=policy,
                                       engine="row").run(full))
        for window in (700, 1500, 10 ** 6):
            session = QueryEngine(QUERY, geometry=geometry, policy=policy,
                                  engine="vector").open(window=window)
            for batch in batches:
                session.ingest(batch)
            assert observables(session.close()) == base, (policy, window)


# -- acceptance: packed windowed FIFO/random replay ---------------------------

#: Windowed ablation grid: capacities bracketing the bench geometry
#: (the Fig. 5 eviction study sweeps capacities exactly like this).
REPLAY_CAPACITY_BITS = (12, 14, 16)
REPLAY_REPS = 3


def _replay_keys(n_windows: int) -> tuple[np.ndarray, np.ndarray]:
    """The streaming bench's key stream (2-column keys) plus dense
    first-occurrence key ids — what the windowed store hands its
    replacement scheduler."""
    from repro.core.vector_exec import factorize

    batches = [make_batch(i, WINDOW) for i in range(n_windows)]
    keys2d = np.column_stack([
        np.concatenate([b.columns()["srcip"] for b in batches]),
        np.concatenate([b.columns()["dstip"] for b in batches]),
    ]).astype(np.int64)
    gid, _, _ = factorize([keys2d[:, 0], keys2d[:, 1]])
    return keys2d, gid.astype(np.int64)


def _drive_scheduler(sched, keys2d, gid,
                     window: int) -> tuple[float, np.ndarray, int]:
    """Feed the stream window by window; returns (seconds, miss flags,
    evictions)."""
    parts, evictions = [], 0
    t0 = time.perf_counter()
    for lo in range(0, len(gid), window):
        hi = lo + window
        miss, ev, _ = sched.schedule(keys2d[lo:hi], gid[lo:hi])
        parts.append(miss)
        evictions += ev
    return time.perf_counter() - t0, np.concatenate(parts), evictions


@pytest.fixture(scope="module")
def replay_comparison(report):
    import statistics

    from repro.switch.kvstore.cache import CacheGeometry
    from repro.switch.kvstore.windowed_store import (
        _PackedWindowScheduler,
        _ReplayWindowScheduler,
    )

    n_windows = 4
    keys2d, gid = _replay_keys(n_windows)
    n = len(gid)
    payload = {"stream": n, "window": WINDOW, "cells": {}}
    lines = [f"stream {n} accesses ({n_windows} windows of {WINDOW}), "
             f"8-way caches"]
    totals = {"packed": 0.0, "per_access": 0.0}
    for cap_bits in REPLAY_CAPACITY_BITS:
        geometry = CacheGeometry.set_associative(1 << cap_bits, ways=8)
        for policy in ("fifo", "random"):
            # Bit-identity first: same schedule and eviction count for
            # the whole stream AND for a second window partitioning
            # (cutting the carried ring state differently).
            for window in (WINDOW, 53_171):
                p = _PackedWindowScheduler(geometry, policy, SEED)
                r = _ReplayWindowScheduler(geometry, policy, SEED)
                _, p_miss, p_ev = _drive_scheduler(p, keys2d, gid, window)
                _, r_miss, r_ev = _drive_scheduler(r, keys2d, gid, window)
                assert np.array_equal(p_miss, r_miss), (policy, window)
                assert p_ev == r_ev, (policy, window)
            # Timing: interleaved medians so machine-load noise hits
            # both sides alike.
            packed_t, row_t = [], []
            for _ in range(REPLAY_REPS):
                packed_t.append(_drive_scheduler(
                    _PackedWindowScheduler(geometry, policy, SEED),
                    keys2d, gid, WINDOW)[0])
                row_t.append(_drive_scheduler(
                    _ReplayWindowScheduler(geometry, policy, SEED),
                    keys2d, gid, WINDOW)[0])
            packed_s = statistics.median(packed_t)
            row_s = statistics.median(row_t)
            totals["packed"] += packed_s
            totals["per_access"] += row_s
            payload["cells"][f"2^{cap_bits}/{policy}"] = {
                "per_access_seconds": round(row_s, 4),
                "packed_seconds": round(packed_s, 4),
                "speedup": round(row_s / packed_s, 2),
                "packed_accesses_per_s": round(n / packed_s),
            }
            lines.append(
                f"  2^{cap_bits} {policy:>6}: per-access {row_s:6.3f}s "
                f"({n / row_s / 1e6:5.2f}M/s) -> packed {packed_s:6.3f}s "
                f"({n / packed_s / 1e6:6.2f}M/s)  = "
                f"{row_s / packed_s:5.1f}x")
    payload["grid_speedup"] = round(
        totals["per_access"] / totals["packed"], 2)
    REPLAY_ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")
    lines.append(f"grid total: {totals['per_access']:.3f}s -> "
                 f"{totals['packed']:.3f}s = "
                 f"{payload['grid_speedup']:.1f}x")
    lines.append(f"artifact: {REPLAY_ARTIFACT.name}")
    report("PERF: windowed FIFO/random replay (packed vs per-access)",
           "\n".join(lines))
    return payload


def test_windowed_replay_speedup_floors(replay_comparison):
    """Asserted floors for the packed windowed replay (bit-identical
    schedules asserted in the fixture): every ablation-grid cell >= 2x
    the per-access replay it replaced, grid total >= 3x.  (The PR
    targeted 5x; see the module docstring for the measured medians and
    where the gap comes from.)"""
    for cell, numbers in replay_comparison["cells"].items():
        assert numbers["speedup"] >= 2.0, (cell, numbers)
    assert replay_comparison["grid_speedup"] >= 3.0, replay_comparison


# -- acceptance: bounded RSS at <= 1.3x one-shot runtime ----------------------

@pytest.fixture(scope="module")
def comparison(report):
    one_shot = _in_subprocess(_run_one_shot, N_WINDOWS)
    windowed = _in_subprocess(_run_windowed, N_WINDOWS)
    windowed_2x = _in_subprocess(_run_windowed, 2 * N_WINDOWS)
    assert windowed["fingerprint"] == one_shot["fingerprint"]

    payload = {
        "query": QUERY,
        "window": WINDOW,
        "stream": N_WINDOWS * WINDOW,
        "flows": FLOWS,
        "one_shot_seconds": round(one_shot["seconds"], 3),
        "windowed_seconds": round(windowed["seconds"], 3),
        "runtime_ratio": round(windowed["seconds"] / one_shot["seconds"], 3),
        "one_shot_peak_rss_mb": one_shot["peak_rss_mb"],
        "windowed_peak_rss_mb": windowed["peak_rss_mb"],
        "windowed_2x_stream_peak_rss_mb": windowed_2x["peak_rss_mb"],
    }
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")

    report("PERF: streaming session (windowed vs one-shot)", "\n".join([
        f"{QUERY}",
        f"stream {N_WINDOWS}x window of {WINDOW} ({N_WINDOWS * WINDOW} "
        f"records, {FLOWS} flows)",
        f"one-shot: {one_shot['seconds']:6.2f}s  "
        f"peak RSS {one_shot['peak_rss_mb']:7.1f} MB",
        f"windowed: {windowed['seconds']:6.2f}s  "
        f"peak RSS {windowed['peak_rss_mb']:7.1f} MB  "
        f"(ratio {payload['runtime_ratio']:.2f}x)",
        f"windowed, 2x stream:      "
        f"peak RSS {windowed_2x['peak_rss_mb']:7.1f} MB",
        f"artifact: {ARTIFACT.name}",
    ]))
    return payload


def test_streaming_runtime_within_30_percent(comparison):
    assert comparison["runtime_ratio"] <= 1.3, (
        f"windowed session {comparison['runtime_ratio']:.2f}x one-shot "
        f"({comparison['windowed_seconds']}s vs "
        f"{comparison['one_shot_seconds']}s)")


def test_streaming_rss_bounded_by_window_not_stream(comparison):
    """Peak RSS must track the window, not the stream: well under the
    stream-holding one-shot run, and flat when the stream doubles."""
    assert comparison["windowed_peak_rss_mb"] <= \
        0.6 * comparison["one_shot_peak_rss_mb"], comparison
    assert comparison["windowed_2x_stream_peak_rss_mb"] <= \
        1.25 * comparison["windowed_peak_rss_mb"], comparison
