"""Network-wide deployment tests: per-switch pipelines + combination."""

import pytest

from repro.core.interpreter import run_query
from repro.network.simulator import NetworkSimulator
from repro.network.topology import LinkSpec, leaf_spine, linear_chain
from repro.switch.kvstore.cache import CacheGeometry
from repro.telemetry.deploy import NetworkDeployment

GEOM = CacheGeometry.set_associative(256, ways=8)


@pytest.fixture(scope="module")
def fabric():
    """A 2-leaf/2-spine fabric with a few hundred packets."""
    topo = leaf_spine(2, 2, 2, edge_link=LinkSpec(rate_gbps=5.0))
    sim = NetworkSimulator(topo)
    hosts = sorted(topo.hosts())
    t = 0
    for i in range(600):
        t += 2000
        src = hosts[i % len(hosts)]
        dst = hosts[(i + 1 + i // 7) % len(hosts)]
        if src == dst:
            continue
        sim.inject(time_ns=t, src=src, dst=dst, pkt_len=400 + (i % 900),
                   srcport=2000 + i % 5, dstport=80)
    table = sim.run()
    return sim, table


class TestAdditiveCombination:
    def test_network_wide_counts_exact(self, fabric):
        sim, table = fabric
        deploy = NetworkDeployment("SELECT COUNT, SUM(pkt_len) GROUPBY 5tuple",
                                   sim, geometry=GEOM)
        report = deploy.run(table.records)
        name = deploy.compiled.result
        assert report.combinable[name]
        truth = run_query("SELECT COUNT, SUM(pkt_len) GROUPBY 5tuple",
                          table.records)
        got = report.result(name).by_key()
        want = truth.by_key()
        assert got.keys() == want.keys()
        for key, row in want.items():
            assert got[key]["COUNT"] == row["COUNT"]
            assert got[key]["SUM(pkt_len)"] == row["SUM(pkt_len)"]

    def test_per_switch_tables_partition_the_traffic(self, fabric):
        sim, table = fabric
        deploy = NetworkDeployment("SELECT COUNT GROUPBY qid", sim,
                                   geometry=GEOM)
        report = deploy.run(table.records)
        name = deploy.compiled.result
        # Each qid is observed by exactly one switch.
        for switch, tables in report.per_switch.items():
            for row in tables[name].rows:
                owner = sim.topology.qid_name(int(row["qid"]))[0]
                assert owner == switch
        # Combined per-queue counts cover every observation.
        total = sum(row["COUNT"] for row in report.result(name).rows)
        assert total == len(table)


class TestOrderDependentStaysPerSwitch:
    def test_ewma_reported_per_switch(self, fabric):
        sim, table = fabric
        source = (
            "def ewma (e, (tin, tout)): e = (1 - alpha) * e + alpha * (tout - tin)\n"
            "SELECT 5tuple, ewma GROUPBY 5tuple"
        )
        deploy = NetworkDeployment(source, sim, params={"alpha": 0.2},
                                   geometry=GEOM)
        report = deploy.run(table.records)
        name = deploy.compiled.result
        assert not report.combinable[name]
        rows = report.result(name).rows
        assert rows and all("switch" in row for row in rows)
        switches = {row["switch"] for row in rows}
        assert switches <= set(sim.topology.switches())
        assert len(switches) > 1   # traffic crossed multiple switches

    def test_nonlinear_not_combined(self, fabric):
        sim, table = fabric
        deploy = NetworkDeployment("SELECT MAX(pkt_len) GROUPBY srcip", sim,
                                   geometry=GEOM)
        report = deploy.run(table.records)
        assert not report.combinable[deploy.compiled.result]


class TestMultiHopConsistency:
    def test_chain_counts_each_hop_once_per_switch(self):
        topo = linear_chain(3)
        sim = NetworkSimulator(topo)
        for i in range(50):
            sim.inject(time_ns=i * 100_000, src="h0", dst="h1", pkt_len=500)
        table = sim.run()
        deploy = NetworkDeployment("SELECT COUNT GROUPBY 5tuple", sim,
                                   geometry=GEOM)
        report = deploy.run(table.records)
        name = deploy.compiled.result
        row = report.result(name).rows[0]
        # One record per queue per packet: 3 switches x 50 packets.
        assert row["COUNT"] == 150
        for switch, tables in report.per_switch.items():
            local = tables[name].rows
            assert len(local) == 1 and local[0]["COUNT"] == 50
