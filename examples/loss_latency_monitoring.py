#!/usr/bin/env python
"""Fleet monitoring: per-flow loss rates and latency EWMAs on a
leaf-spine fabric.

Exercises query *composition* and the restricted ``JOIN`` (§2): the
loss-rate query joins two on-switch ``GROUPBY``s in the collection
software, and the latency query is the paper's order-dependent EWMA
fold — the example that motivates the linear-in-state merge.

Run:  python examples/loss_latency_monitoring.py
"""

from repro import CacheGeometry, QueryEngine
from repro.network.simulator import NetworkSimulator
from repro.network.topology import LinkSpec, leaf_spine
from repro.traffic.datacenter import DatacenterConfig, DatacenterWorkload

LOSS_RATES = """
R1 = SELECT COUNT GROUPBY 5tuple
R2 = SELECT COUNT GROUPBY 5tuple WHERE tout == infinity
R3 = SELECT R2.COUNT/R1.COUNT AS loss_rate FROM R1 JOIN R2 ON 5tuple
"""

LATENCY_EWMA = """
def ewma (lat_est, (tin, tout)):
    lat_est = (1 - alpha) * lat_est + alpha * (tout - tin)

SELECT 5tuple, ewma GROUPBY 5tuple WHERE tout != infinity
"""

GEOMETRY = CacheGeometry.set_associative(1024, ways=8)


def build_fabric_trace():
    """2 leaves x 2 spines, 8 hosts; replay a datacenter workload with
    tight edge buffers so congestion (and loss) actually occurs."""
    topo = leaf_spine(n_leaves=2, n_spines=2, hosts_per_leaf=4,
                      edge_link=LinkSpec(rate_gbps=2.0, buffer_packets=24),
                      fabric_link=LinkSpec(rate_gbps=4.0, buffer_packets=48))
    sim = NetworkSimulator(topo)
    hosts = sorted(topo.hosts())
    workload = DatacenterWorkload(DatacenterConfig(
        n_racks=2, hosts_per_rack=4, n_flows=150,
        duration_ns=40_000_000, seed=3))
    for event in workload.injection_events():
        src = hosts[event.src_host % len(hosts)]
        dst = hosts[event.dst_host % len(hosts)]
        if src == dst:
            continue
        sim.inject(time_ns=event.time_ns, src=src, dst=dst,
                   pkt_len=event.pkt_len, srcport=event.srcport,
                   dstport=event.dstport, tcpseq=event.tcpseq)
    table = sim.run()
    return sim, table


def main() -> None:
    sim, table = build_fabric_trace()
    print(f"fabric trace: {len(table)} observations over "
          f"{len(sim.queues)} queues; {sim.dropped} packets dropped\n")

    loss = QueryEngine(LOSS_RATES, geometry=GEOMETRY).run(table.records)
    lossy = sorted(loss.result.rows, key=lambda r: -r["loss_rate"])
    print(f"flows with loss ({len(lossy)} of "
          f"{len(loss.tables['R1'])} total):")
    for row in lossy[:6]:
        print(f"  {row['srcip']:#x}:{row['srcport']} -> "
              f"{row['dstip']:#x}:{row['dstport']}  "
              f"loss={100 * row['loss_rate']:.1f}%")

    latency = QueryEngine(LATENCY_EWMA, params={"alpha": 0.1},
                          geometry=GEOMETRY).run(table.records)
    worst = sorted(latency.result.rows, key=lambda r: -r["lat_est"])
    print("\nworst per-flow queueing-latency EWMAs (per queue visit):")
    for row in worst[:6]:
        print(f"  {row['srcip']:#x} -> {row['dstip']:#x}  "
              f"ewma={row['lat_est'] / 1000:.1f} us")

    # Cross-check: flows with loss should skew toward high latency —
    # both are symptoms of the same congested queues.
    lossy_keys = {(r["srcip"], r["dstip"], r["srcport"], r["dstport"],
                   r["proto"]) for r in lossy}
    high_lat = {(r["srcip"], r["dstip"], r["srcport"], r["dstport"],
                 r["proto"]) for r in worst[:max(1, len(worst) // 4)]}
    overlap = lossy_keys & high_lat
    print(f"\n{len(overlap)} of {len(lossy_keys)} lossy flows are also in "
          f"the top-quartile latency set")


if __name__ == "__main__":
    main()
