"""The built-in checker families of ``repro check``.

Importing this package registers every checker with the framework
registry (:func:`repro.analysis.static.base.all_checkers` does this
lazily); each module is one family from the tentpole list:

* :mod:`blocking`     — RPR-C101/C102, event-loop blocking
* :mod:`lifecycle`    — RPR-C201/C202, resource acquisitions/releases
* :mod:`purity`       — RPR-C301/C302, checkpoint-state purity
* :mod:`exceptions`   — RPR-C401/C402, exception discipline
* :mod:`determinism`  — RPR-C501..C504, wall clock / shared randomness
"""

from repro.analysis.static.checkers import (  # noqa: F401  (registration)
    blocking,
    determinism,
    exceptions,
    lifecycle,
    purity,
)

__all__ = ["blocking", "determinism", "exceptions", "lifecycle",
           "purity"]
