"""End-to-end telemetry runtime and result comparison utilities."""

from .deploy import NetworkDeployment, NetworkRunReport
from .results import TableDiff, assert_tables_match, compare_tables
from .runtime import QueryEngine, QueryInfo, RunReport, run

__all__ = [
    "NetworkDeployment",
    "NetworkRunReport",
    "QueryEngine",
    "QueryInfo",
    "RunReport",
    "TableDiff",
    "assert_tables_match",
    "compare_tables",
    "run",
]
