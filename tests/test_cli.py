"""CLI tests: every subcommand end to end via ``main(argv)``."""

import pytest

from repro.cli import main
from repro.traffic.trace_io import write_npz

from tests.conftest import synthetic_trace


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "trace.npz"
    write_npz(synthetic_trace(n_packets=1500, n_flows=20), path)
    return str(path)


class TestRun:
    def test_inline_query(self, trace_file, capsys):
        code = main(["run", "--query", "SELECT COUNT GROUPBY srcip",
                     "--trace", trace_file])
        out = capsys.readouterr().out
        assert code == 0
        assert "COUNT" in out and "cache:" in out

    def test_check_flag_verifies(self, trace_file, capsys):
        code = main(["run", "--query", "SELECT COUNT GROUPBY srcip",
                     "--trace", trace_file, "--check",
                     "--cache-pairs", "8", "--ways", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "vs exact interpreter" in out

    def test_catalog_query_with_defaults(self, trace_file, capsys):
        code = main(["run", "--catalog", "per_flow_loss_rate",
                     "--trace", trace_file])
        assert code == 0
        assert "loss_rate" in capsys.readouterr().out

    def test_param_binding(self, trace_file, capsys):
        code = main(["run", "--query",
                     "SELECT srcip FROM T WHERE pkt_len > L",
                     "--param", "L=1000", "--trace", trace_file])
        assert code == 0

    def test_query_file(self, trace_file, tmp_path, capsys):
        qfile = tmp_path / "q.pql"
        qfile.write_text("SELECT COUNT GROUPBY qid")
        code = main(["run", "--query-file", str(qfile), "--trace", trace_file])
        assert code == 0
        assert "qid" in capsys.readouterr().out

    def test_bad_query_reports_error(self, trace_file, capsys):
        code = main(["run", "--query", "SELECT FROM WHERE",
                     "--trace", trace_file])
        assert code == 2
        assert "query error" in capsys.readouterr().err

    def test_unknown_catalog_rejected(self, trace_file):
        with pytest.raises(SystemExit):
            main(["run", "--catalog", "nope", "--trace", trace_file])

    def test_windowed_run(self, trace_file, capsys):
        code = main(["run", "--query", "SELECT COUNT GROUPBY srcip",
                     "--trace", trace_file, "--window", "100"])
        assert code == 0
        assert "COUNT" in capsys.readouterr().out

    @pytest.mark.parametrize("window", ["0", "-1", "-128"])
    def test_nonpositive_window_rejected(self, trace_file, window, capsys):
        """Regression: --window 0/-N used to be accepted at parse time
        and fail deep in the store (or be silently ignored on the row
        engine); argparse now rejects it with a clear message."""
        with pytest.raises(SystemExit):
            main(["run", "--query", "SELECT COUNT GROUPBY srcip",
                  "--trace", trace_file, "--window", window])
        assert "positive number of accesses" in capsys.readouterr().err

    def test_non_integer_window_rejected(self, trace_file, capsys):
        with pytest.raises(SystemExit):
            main(["run", "--query", "SELECT COUNT GROUPBY srcip",
                  "--trace", trace_file, "--window", "many"])
        assert "integer number of accesses" in capsys.readouterr().err


class TestPlan:
    def test_plan_prints_stages(self, capsys):
        code = main(["plan", "--query", "SELECT COUNT GROUPBY 5tuple"])
        out = capsys.readouterr().out
        assert code == 0
        assert "switch groupby" in out
        assert "linear in state" in out

    def test_plan_catalog_nonlinear(self, capsys):
        code = main(["plan", "--catalog", "tcp_non_monotonic"])
        out = capsys.readouterr().out
        assert code == 0
        assert "NOT linear in state" in out


class TestGenerate:
    def test_datacenter_npz(self, tmp_path, capsys):
        out_file = tmp_path / "dc.npz"
        code = main(["generate", "datacenter", "--out", str(out_file),
                     "--flows", "50", "--duration-ms", "10"])
        assert code == 0
        assert out_file.exists()
        assert "wrote" in capsys.readouterr().out

    def test_incast_csv_with_ground_truth(self, tmp_path, capsys):
        out_file = tmp_path / "incast.csv"
        code = main(["generate", "incast", "--out", str(out_file),
                     "--senders", "6"])
        out = capsys.readouterr().out
        assert code == 0
        assert "hotspot qid" in out

    def test_caida_with_anomalies(self, tmp_path, capsys):
        out_file = tmp_path / "caida.npz"
        code = main(["generate", "caida", "--out", str(out_file),
                     "--scale", "0.0001", "--anomalies"])
        assert code == 0
        assert "planted anomalies" in capsys.readouterr().out

    def test_generated_trace_runs(self, tmp_path, capsys):
        out_file = tmp_path / "dc2.npz"
        main(["generate", "datacenter", "--out", str(out_file),
              "--flows", "40", "--duration-ms", "10"])
        capsys.readouterr()
        code = main(["run", "--query", "SELECT COUNT GROUPBY srcip, dstip",
                     "--trace", str(out_file), "--check"])
        assert code == 0


class TestCatalog:
    def test_list(self, capsys):
        code = main(["catalog"])
        out = capsys.readouterr().out
        assert code == 0
        for name in ("per_flow_counters", "latency_ewma", "tcp_non_monotonic"):
            assert name in out

    def test_show(self, capsys):
        code = main(["catalog", "--show", "latency_ewma"])
        out = capsys.readouterr().out
        assert code == 0
        assert "def ewma" in out


class TestSweep:
    def test_fig5_sweep_prints_table(self, capsys):
        code = main(["sweep", "fig5", "--scale", "0.0001", "--engine",
                     "vector"])
        out = capsys.readouterr().out
        assert "Fig. 5" in out and "8-way" in out
        assert code in (0, 1)  # shape checks may wobble at toy scale

    def test_fig6_sweep_with_workers(self, capsys):
        code = main(["sweep", "fig6", "--scale", "0.0001",
                     "--sweep-workers", "2"])
        out = capsys.readouterr().out
        assert "Fig. 6" in out and "Mbit" in out
        assert code in (0, 1)

    def test_sweep_engines_print_identical_tables(self, capsys):
        main(["sweep", "fig5", "--scale", "0.0001", "--engine", "vector"])
        vec = capsys.readouterr().out
        main(["sweep", "fig5", "--scale", "0.0001", "--engine", "row"])
        row = capsys.readouterr().out
        assert vec == row


class TestLint:
    def test_catalog_is_error_clean(self, capsys):
        code = main(["lint", "--catalog"])
        out = capsys.readouterr().out
        assert code == 0
        assert "catalog deployability" in out
        assert "NOT DEPLOYABLE" not in out
        # the paper's one non-linear row shows up as non-mergeable
        assert "tcp_non_monotonic" in out

    def test_catalog_json_is_machine_readable(self, capsys):
        import json

        code = main(["lint", "--catalog", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["errors"] == 0
        assert "tcp_non_monotonic" in payload["queries"]
        report = payload["queries"]["per_flow_counters"]["report"]
        assert report["errors"] == 0

    def test_single_query_deployable(self, capsys):
        code = main(["lint", "SELECT COUNT GROUPBY srcip"])
        out = capsys.readouterr().out
        assert code == 0
        assert "DEPLOYABLE as configured" in out

    def test_error_config_exits_nonzero(self, capsys):
        code = main(["lint", "SELECT COUNT GROUPBY srcip",
                     "--engine", "row", "--shards", "4"])
        out = capsys.readouterr().out
        assert code == 1
        assert "RPR-E001" in out and "NOT DEPLOYABLE" in out

    def test_invalid_window_is_a_diagnostic_not_a_crash(self, capsys):
        code = main(["lint", "SELECT COUNT GROUPBY srcip",
                     "--window", "-5"])
        out = capsys.readouterr().out
        assert code == 1
        assert "RPR-E004" in out

    def test_sram_error_from_oversized_geometry(self, capsys):
        code = main(["lint", "SELECT COUNT GROUPBY 5tuple",
                     "--cache-pairs", "8388608", "--ways", "8"])
        out = capsys.readouterr().out
        assert code == 1
        assert "RPR-E301" in out

    def test_trace_bounds_drive_overflow_verdict(self, trace_file, capsys):
        code = main(["lint", "SELECT SUM(pkt_len) GROUPBY srcip",
                     "--trace", trace_file])
        out = capsys.readouterr().out
        assert code == 0
        assert "RPR-W201" not in out
        code = main(["lint", "SELECT SUM(pkt_len) GROUPBY srcip",
                     "--records", str(2 ** 40), "--max-field",
                     str(2 ** 40)])
        out = capsys.readouterr().out
        assert code == 0  # overflow risk is a warning, not an error
        assert "RPR-W201" in out
