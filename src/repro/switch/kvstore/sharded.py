"""Hash-partitioned sharded execution of ``GROUPBY`` split stores.

The paper's linear-in-state restriction (§3.2) is what makes execution
*shardable*: synthesized merges combine partial per-key values computed
anywhere, so partitioning the key space across worker processes and
combining their backing stores afterwards is exact.  This module
partitions by **cache set**: a key's bucket is
``mix_key(key, seed) % n_buckets`` — a pure function of the key — and
every replacement decision (and the random policy's counter-based
victim draw) is local to one bucket, so routing whole buckets to shards
(``bucket % n_shards``) preserves each bucket's exact access sequence.
Every shard runs the unmodified single-process engine over its slice:

* per-key hit/miss/eviction sequences — and therefore epochs, fold
  values, and merge products — are identical to the single-process run
  (stats are per-bucket sums, so they combine by field-wise addition);
* each key lives wholly in one shard, so the shard-local merged value
  *is* the final value — combining is a concatenation plus a stable
  re-sort by each key's global first-access position, which reproduces
  the single-process engines' first-access result order exactly;
* the windowed store is bit-identical for every window partitioning,
  so shard-local window boundaries are observation-neutral.

**Mergeable/non-mergeable contract.**  A stage shards only when every
fold synthesizes a merge (``fold.merge.mergeable`` — strategies
``additive``/``scale``/``matrix``).  A stage with any non-mergeable
(``list``-strategy) fold falls back to routing its *whole* stream to
shard 0: per-key value *segments* are ordered by eviction time, and a
single worker preserves that order trivially, so results (including
§3.2 invalid-key accounting) stay bit-identical — at single-core speed
for that stage.  Fully-associative geometries (one bucket) take the
same single-shard route.  ``refresh_interval`` is rejected outright:
refresh epochs cut at *global* stream positions, which per-shard
streams cannot see.

Transport is :class:`repro.telemetry.shard_exec.ShardWorkerPool`; this
module owns the semantics (partitioning, worker-side stores, combine).
"""

from __future__ import annotations

from dataclasses import fields as dataclass_fields
from dataclasses import replace
from typing import Mapping, Sequence

import numpy as np

from repro.core.errors import HardwareError, SessionError
from repro.core.eval_expr import Numeric
from repro.core.interpreter import ResultTable
from repro.core.plan import GroupByStage
from repro.core.vector_exec import (
    ArrayContext,
    FoldVectorizer,
    VectorizationError,
    as_column,
    eval_array,
)
from repro.telemetry.shard_exec import ShardError, ShardWorkerPool

from .backing import BackingStore, KeyEntry
from .cache import CacheGeometry, CacheStats
from .split import build_result_table
from .vector_cache import mix_key_array
from .vector_store import VectorSplitStore
from .windowed_store import StoreSnapshot, WindowedVectorStore

_U = np.uint64


def make_store_pool(specs: Sequence[tuple], window: int | None,
                    n_shards: int, checkpoint_every: int | None = None,
                    faults=None) -> ShardWorkerPool:
    """One worker per shard, each holding every ``GROUPBY`` stage's
    spec (``(stage, geometry, config)``); stores are built lazily in
    the worker on first use.  ``checkpoint_every`` enables the pool's
    periodic role checkpoints and crash recovery; ``faults`` threads a
    deterministic fault injector into the transport."""
    roles = [_StoreShardRole(list(specs), window) for _ in range(n_shards)]
    return ShardWorkerPool(roles, name="kvshard",
                           checkpoint_every=checkpoint_every, faults=faults)


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


class _StoreShardRole:
    """Worker-side role: one single-process store per stage over this
    shard's key slice, plus each key's global first-access position
    (the combine's ordering key)."""

    def __init__(self, specs: list[tuple], window: int | None):
        self._specs = specs
        self._window = window
        self._stores: dict[int, VectorSplitStore] = {}
        self._firsts: dict[int, dict[tuple, int]] = {}

    def _store(self, idx: int) -> VectorSplitStore:
        store = self._stores.get(idx)
        if store is None:
            stage, geometry, config = self._specs[idx]
            if self._window is not None:
                store = WindowedVectorStore(stage, geometry,
                                            window=self._window, **config)
            else:
                store = VectorSplitStore(stage, geometry, **config)
            self._stores[idx] = store
            self._firsts[idx] = {}
        return store

    def handle(self, op: str, meta, arrays: dict[str, np.ndarray]):
        idx = meta["stage"]
        store = self._store(idx)
        if op == "add_batch":
            keys = arrays.pop("__keys__")
            pos = arrays.pop("__pos__")
            self._record_firsts(idx, keys, pos)
            store.add_batch(keys, arrays)
            return None
        if op == "stats":
            return replace(store.stats)
        if op == "finalize":
            store.finalize()
            return self._final_payload(idx, store)
        if op == "snapshot":
            return self._snapshot_payload(idx, store)
        raise ShardError(f"unknown shard store op {op!r}")

    # -- durable checkpoints (pool-internal __checkpoint__/__restore__) ------

    def checkpoint(self) -> dict:
        """Plain-data snapshot of this shard's slice: every live
        store's state plus the global first-access positions (the
        combine's ordering key).  Finalized stores carry no state —
        their combined payload already left for the parent, and no op
        can touch them again."""
        return {
            "stores": {idx: (None if store._finalized
                             else store.checkpoint_state())
                       for idx, store in self._stores.items()},
            "firsts": {idx: dict(firsts)
                       for idx, firsts in self._firsts.items()},
        }

    def restore(self, state: dict) -> None:
        """Load a :meth:`checkpoint` payload into this (freshly forked)
        role: rebuild each store from its spec, then load its state."""
        for idx, store_state in state["stores"].items():
            if store_state is not None:
                self._store(idx).restore_state(store_state)
        for idx, firsts in state["firsts"].items():
            self._firsts[idx] = dict(firsts)
        return None

    def _record_firsts(self, idx: int, keys: np.ndarray,
                       pos: np.ndarray) -> None:
        """Register each unseen key's global first-access position
        (rows arrive in ascending position order, so the first
        occurrence within a batch is the earliest)."""
        firsts = self._firsts[idx]
        rows = np.ascontiguousarray(keys)
        view = rows.view([("", rows.dtype)] * rows.shape[1]).ravel()
        _, first_idx = np.unique(view, return_index=True)
        pos_list = pos.tolist()
        for i in first_idx.tolist():
            firsts.setdefault(tuple(rows[i].tolist()), pos_list[i])

    # -- payloads (shipped back over the pipe, pickled) ----------------------

    def _final_payload(self, idx: int, store: VectorSplitStore) -> dict:
        firsts = self._firsts[idx]
        stats = replace(store._stats)
        if isinstance(store, WindowedVectorStore):
            nk = store._nkeys
            if nk == 0:
                return {"mode": "empty", "stats": stats, "writes": 0}
            keys_list = store._keys_list
            if store._bulk_mode:
                return self._bulk_payload(
                    stats, store._all_keys[:nk].copy(), keys_list, firsts,
                    store._bulk_states(), store._epochs[:nk].copy(),
                    store._writes)
            return self._general_payload(stats, keys_list, firsts,
                                         store._backing)
        if store._bulk is not None and store._backing is None:
            merged, epoch_counts = store._bulk
            keys2d = np.column_stack(store._unique_key_cols)
            return self._bulk_payload(stats, keys2d, store._keys_in_order,
                                      firsts, merged, epoch_counts,
                                      store._writes)
        if store._backing is not None:
            return self._general_payload(stats, store._keys_in_order,
                                         firsts, store._backing)
        return {"mode": "empty", "stats": stats, "writes": 0}

    def _snapshot_payload(self, idx: int, store: VectorSplitStore) -> dict:
        if not isinstance(store, WindowedVectorStore):
            raise ShardError(
                "mid-stream snapshots need the windowed store "
                "(open the session with a window=)")
        if store._finalized:
            return self._final_payload(idx, store)
        store._drain()
        firsts = self._firsts[idx]
        stats = replace(store._stats)
        nk = store._nkeys
        if nk == 0:
            return {"mode": "empty", "stats": stats, "writes": 0}
        if store._bulk_mode:
            merged, epochs, writes = store._snapshot_bulk_state()
            return self._bulk_payload(stats, store._all_keys[:nk].copy(),
                                      store._keys_list, firsts, merged,
                                      epochs, writes)
        return self._general_payload(stats, store._keys_list, firsts,
                                     store._snapshot_store())

    @staticmethod
    def _bulk_payload(stats, keys2d, keys_list, firsts, merged,
                      epochs, writes) -> dict:
        return {
            "mode": "bulk", "stats": stats, "writes": writes,
            "keys": keys2d,
            "first_pos": [firsts[k] for k in keys_list],
            "merged": merged, "epochs": epochs,
        }

    @staticmethod
    def _general_payload(stats, keys_list, firsts,
                         backing: BackingStore) -> dict:
        return {
            "mode": "general", "stats": stats, "writes": backing.writes,
            "keys_list": list(keys_list),
            "first_pos": [firsts[k] for k in keys_list],
            "entries": backing.data,
        }


# ---------------------------------------------------------------------------
# Parent side: combining
# ---------------------------------------------------------------------------


def _sum_stats(parts) -> CacheStats:
    """Field-wise sum — exact, because every counter is a sum of
    per-bucket events and buckets never split across shards."""
    total = CacheStats()
    for part in parts:
        for f in dataclass_fields(CacheStats):
            setattr(total, f.name,
                    getattr(total, f.name) + getattr(part, f.name))
    return total


class _Combined:
    """Shard payloads combined into one stage-level result: either the
    concatenated bulk arrays (all-additive fast path) or one union
    backing store, both re-sorted into global first-access key order."""

    __slots__ = ("stage", "params", "stats", "writes", "keys_list",
                 "keys", "merged", "epochs", "backing", "accuracy", "_mat")

    def __init__(self, stage: GroupByStage, params: Mapping[str, Numeric],
                 payloads: Sequence[dict]):
        self.stage = stage
        self.params = dict(params)
        self.stats = _sum_stats(p["stats"] for p in payloads)
        live = [p for p in payloads if p["mode"] != "empty"]
        self.writes = sum(p["writes"] for p in live)
        self.keys: np.ndarray | None = None
        self.merged: dict | None = None
        self.epochs: np.ndarray | None = None
        self.backing: BackingStore | None = None
        self._mat: BackingStore | None = None
        if live and all(p["mode"] == "bulk" for p in live):
            self._combine_bulk(live)
            self.accuracy = 1.0
        else:
            self._combine_general(live)
            self.accuracy = self.backing.accuracy

    def _combine_bulk(self, live: list[dict]) -> None:
        first = np.concatenate(
            [np.asarray(p["first_pos"], dtype=np.int64) for p in live])
        order = np.argsort(first, kind="stable")
        keys = np.concatenate([p["keys"] for p in live])[order]
        self.keys = keys
        self.merged = {
            fold.column: {
                var: np.concatenate(
                    [p["merged"][fold.column][var] for p in live])[order]
                for var in fold.instance.state_vars
            }
            for fold in self.stage.folds
        }
        self.epochs = np.concatenate(
            [np.asarray(p["epochs"]) for p in live])[order]
        self.keys_list = list(
            zip(*(keys[:, j].tolist() for j in range(keys.shape[1]))))

    def _combine_general(self, live: list[dict]) -> None:
        """Union of the per-shard stores (keys are disjoint).  Bulk
        payloads from other shards — possible when one shard's fold hit
        the exact-replay fallback — are converted to per-key entries
        (their folds are all-mergeable by construction)."""
        triples: list[tuple[int, tuple, KeyEntry | None]] = []
        for p in live:
            if p["mode"] == "bulk":
                counts = np.asarray(p["epochs"]).tolist()
                columns = [
                    (col, [(var, np.asarray(arr).tolist())
                           for var, arr in per_var.items()])
                    for col, per_var in p["merged"].items()
                ]
                rows = p["keys"]
                klist = list(zip(*(rows[:, j].tolist()
                                   for j in range(rows.shape[1]))))
                for g, key in enumerate(klist):
                    entry = KeyEntry(
                        merged={col: {var: vals[g] for var, vals in items}
                                for col, items in columns},
                        epochs=counts[g])
                    triples.append((p["first_pos"][g], key, entry))
            else:
                entries = p["entries"]
                for key, fp in zip(p["keys_list"], p["first_pos"]):
                    triples.append((fp, key, entries.get(key)))
        triples.sort(key=lambda t: t[0])
        backing = BackingStore(self.stage.folds, params=self.params)
        backing.writes = self.writes
        data = backing.data
        keys_list = []
        for _, key, entry in triples:
            keys_list.append(key)
            if entry is not None:
                data[key] = entry
        self.backing = backing
        self.keys_list = keys_list

    # -- observables ---------------------------------------------------------

    def table(self, include_invalid: bool = False) -> ResultTable:
        if self.backing is not None:
            return build_result_table(self.stage, self.backing,
                                      self.keys_list, self.params,
                                      include_invalid=include_invalid)
        try:
            return self._bulk_table()
        except VectorizationError:
            return build_result_table(self.stage, self.backing_store(),
                                      self.keys_list, self.params,
                                      include_invalid=include_invalid)

    def _bulk_table(self) -> ResultTable:
        n_groups = len(self.keys_list)
        out: dict[str, np.ndarray] = {
            field: self.keys[:, j]
            for j, field in enumerate(self.stage.key.fields)
        }
        for col in self.stage.output.columns:
            if col.kind == "agg":
                out[col.name] = self.merged[col.fold][col.state_var]
            elif col.kind == "derived":
                dctx = ArrayContext({}, self.params, n_groups,
                                    state=self.merged[col.fold])
                with np.errstate(divide="ignore", invalid="ignore"):
                    out[col.name] = as_column(
                        eval_array(col.read_expr, dctx), n_groups)
        return ResultTable.from_columns(self.stage.output, out)

    def backing_store(self) -> BackingStore:
        """Real per-key store surface (materialised on demand on the
        bulk path, the union store itself otherwise)."""
        if self.backing is not None:
            return self.backing
        if self._mat is None:
            backing = BackingStore(self.stage.folds, params=self.params)
            backing.writes = self.writes
            columns = [
                (col, [(var, arr.tolist()) for var, arr in per_var.items()])
                for col, per_var in self.merged.items()
            ]
            counts = np.asarray(self.epochs).tolist()
            data = backing.data
            for g, key in enumerate(self.keys_list):
                data[key] = KeyEntry(
                    merged={col: {var: vals[g] for var, vals in items}
                            for col, items in columns},
                    epochs=counts[g])
            self._mat = backing
        return self._mat


# ---------------------------------------------------------------------------
# Parent side: the store proxy
# ---------------------------------------------------------------------------


class ShardedStoreProxy:
    """Drop-in ``GROUPBY`` store that fans batches out to the shard
    pool and serves every observable from the merge-synthesized
    combine — same surface as
    :class:`~repro.switch.kvstore.vector_store.VectorSplitStore`
    (see the module docstring for the exactness argument and the
    mergeable/non-mergeable contract)."""

    def __init__(self, stage: GroupByStage, index: int,
                 pool: ShardWorkerPool, geometry: CacheGeometry,
                 params: Mapping[str, Numeric] | None, seed: int,
                 window: int | None):
        self.stage = stage
        self.params = dict(params or {})
        self.geometry = geometry
        self.seed = seed
        self.window = window
        self._pool = pool
        self._index = index
        self._n_shards = pool.n_workers
        self._pos = 0
        self._finalized = False
        self._final: _Combined | None = None
        #: Sharding needs every fold to merge; otherwise the whole
        #: stream routes to shard 0 (documented fallback).  One bucket
        #: (fully associative) is one indivisible replacement domain.
        self.mergeable = all(f.merge.mergeable for f in stage.folds)
        self._single = (not self.mergeable or geometry.n_buckets == 1
                        or self._n_shards == 1)
        vec = {f.column: FoldVectorizer(f.instance, f.linearity, self.params)
               for f in stage.folds}
        self.needed_fields: frozenset[str] = frozenset().union(
            *(v.needed for v in vec.values())) if stage.folds else frozenset()

    # -- ingestion -----------------------------------------------------------

    def add_batch(self, keys: np.ndarray,
                  columns: Mapping[str, np.ndarray]) -> None:
        if self._finalized:
            raise HardwareError(
                "store already finalized (an observable was read); "
                "sharded sessions cannot stream past a final read")
        if keys.ndim != 2 or keys.dtype.kind not in "iub":
            raise HardwareError("vector store needs a 2-D integer key array")
        n = len(keys)
        pos = np.arange(self._pos, self._pos + n, dtype=np.int64)
        self._pos += n
        if n == 0:
            return
        keys = np.ascontiguousarray(keys)
        if keys.dtype != np.int64:
            keys = keys.astype(np.int64)
        cols = {}
        for name in self.needed_fields:
            try:
                cols[name] = columns[name]
            except KeyError:
                raise HardwareError(
                    f"missing fold input column {name!r}") from None
        meta = {"stage": self._index}
        if self._single:
            self._pool.post(0, "add_batch", meta,
                            {"__keys__": keys, "__pos__": pos, **cols})
            return
        # Partition by cache set: same hash as the replacement engine,
        # so each bucket's stream lands wholly in one shard.
        shard = (mix_key_array(keys, self.seed) %
                 _U(self.geometry.n_buckets)).astype(np.int64) \
            % self._n_shards
        order = np.argsort(shard, kind="stable")
        bounds = np.searchsorted(shard[order],
                                 np.arange(self._n_shards + 1))
        for s in range(self._n_shards):
            lo, hi = bounds[s], bounds[s + 1]
            if hi <= lo:
                continue
            sel = order[lo:hi]
            self._pool.post(s, "add_batch", meta, {
                "__keys__": keys[sel], "__pos__": pos[sel],
                **{name: np.asarray(col)[sel] for name, col in cols.items()},
            })

    def process(self, record: object) -> None:
        from repro.telemetry.diagnostics import exc_message

        raise HardwareError(exc_message("RPR-E006"))

    def process_keyed(self, key, record: object) -> None:
        self.process(record)

    # -- observables ---------------------------------------------------------

    def finalize(self) -> None:
        """Finalize every shard concurrently and combine (idempotent).
        The pool outlives this call — the pipeline closes it once every
        stage has combined."""
        if self._finalized:
            return
        self._finalized = True
        payloads = self._pool.call_all("finalize", {"stage": self._index})
        self._final = _Combined(self.stage, self.params, payloads)

    def result_table(self, include_invalid: bool = False) -> ResultTable:
        self.finalize()
        return self._final.table(include_invalid=include_invalid)

    @property
    def stats(self) -> CacheStats:
        if self._final is not None:
            return self._final.stats
        return _sum_stats(
            self._pool.call_all("stats", {"stage": self._index}))

    @property
    def backing(self) -> BackingStore:
        self.finalize()
        return self._final.backing_store()

    @property
    def backing_writes(self) -> int:
        self.finalize()
        return self._final.writes

    def accuracy(self) -> float:
        self.finalize()
        return self._final.accuracy

    def eviction_fraction(self) -> float:
        return self.stats.eviction_fraction

    def snapshot(self, include_invalid: bool = False) -> StoreSnapshot:
        """Mid-stream combined observables (windowed sessions only —
        the one-shot stores defer their schedule to the end of the
        stream, exactly like the single-process path)."""
        if self._final is not None:
            return StoreSnapshot(
                table=self._final.table(include_invalid=include_invalid),
                stats=self._final.stats,
                backing_writes=self._final.writes,
                accuracy=self._final.accuracy)
        if self.window is None:
            from repro.telemetry.diagnostics import exc_message

            raise SessionError(exc_message("RPR-W002"))
        combined = _Combined(
            self.stage, self.params,
            self._pool.call_all("snapshot", {"stage": self._index}))
        return StoreSnapshot(
            table=combined.table(include_invalid=include_invalid),
            stats=combined.stats, backing_writes=combined.writes,
            accuracy=combined.accuracy)
