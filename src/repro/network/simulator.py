"""Event-driven network simulator producing the observation table.

The query language's input is "an abstract table containing timestamped
records of each packet's arrival and departure at every network queue"
(§2).  This simulator materialises that table: packets injected at
hosts are routed hop by hop (shortest path); every switch egress queue
traversed contributes one :class:`PacketRecord` with real ``tin`` /
``tout`` / ``qin`` / ``qout`` values from the queue model, and a drop
terminates the packet's journey with ``tout = +inf`` at the dropping
queue.

``pkt_path`` is a stable hash of the node sequence, left opaque to
queries exactly as the paper specifies ("we leave its value
uninterpreted").

Events are processed on a global time heap, which also guarantees each
queue sees nondecreasing arrival times as its analytic model requires.
"""

from __future__ import annotations

import bisect
import heapq
import itertools
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.switch.kvstore.cache import mix_key

from .queues import Departure, Drop, OutputQueue
from .records import RECORD_FIELDS, ObservationTable
from .topology import Topology


@dataclass(order=True)
class _Event:
    """Arrival of a packet at a node at a given time."""

    time: int
    seq: int
    packet: "SimPacket" = field(compare=False)
    node_index: int = field(compare=False, default=0)


@dataclass
class SimPacket:
    """A packet in flight: headers plus its route."""

    srcip: int
    dstip: int
    srcport: int
    dstport: int
    proto: int
    pkt_len: int
    payload_len: int
    tcpseq: int
    pkt_id: int
    path: list[str]
    path_id: int


class NetworkSimulator:
    """Simulates packet transit over a :class:`Topology`.

    Usage::

        sim = NetworkSimulator(topology)
        sim.inject(time_ns=0, src="h0", dst="h1", pkt_len=1500)
        table = sim.run()

    Host-name to address mapping is automatic (stable per topology);
    use :meth:`host_ip` to build queries that reference concrete hosts.
    """

    def __init__(self, topology: Topology):
        self.topology = topology
        self.queues: dict[int, OutputQueue] = {}
        for (u, v) in topology.queue_edges():
            spec = topology.link(u, v)
            qid = topology.qid(u, v)
            self.queues[qid] = OutputQueue(
                qid=qid, rate_gbps=spec.rate_gbps,
                buffer_packets=spec.buffer_packets,
            )
        self._events: list[_Event] = []
        self._seq = itertools.count()
        self._pkt_ids = itertools.count()
        self._host_ips = {h: 0x0A000001 + i * 256
                          for i, h in enumerate(sorted(topology.hosts()))}
        # Records accumulate as per-field columnar buffers (one Python
        # list per schema field) and become a columnar ObservationTable
        # in run() — no per-record dataclass allocation or row sort.
        self._buffers: dict[str, list] = {name: [] for name in RECORD_FIELDS}
        self._streamed = False
        self.table = ObservationTable()
        self.delivered = 0
        self.dropped = 0

    # -- injection -----------------------------------------------------------

    def host_ip(self, host: str) -> int:
        return self._host_ips[host]

    def inject(
        self,
        time_ns: int,
        src: str,
        dst: str,
        pkt_len: int = 1500,
        srcport: int = 10000,
        dstport: int = 80,
        proto: int = 6,
        payload_len: int | None = None,
        tcpseq: int = 0,
    ) -> int:
        """Schedule one packet; returns its ``pkt_id``."""
        path = self.topology.path(src, dst)
        pkt_id = next(self._pkt_ids)
        packet = SimPacket(
            srcip=self._host_ips[src], dstip=self._host_ips[dst],
            srcport=srcport, dstport=dstport, proto=proto,
            pkt_len=pkt_len,
            payload_len=payload_len if payload_len is not None else max(0, pkt_len - 40),
            tcpseq=tcpseq, pkt_id=pkt_id, path=path,
            # The path id is opaque to queries (§2, "we leave its value
            # uninterpreted"); masking to 63 bits keeps it storable in
            # the observation table's int64 columns.
            path_id=mix_key(tuple(zlib.crc32(n.encode()) for n in path))
            & 0x7FFFFFFFFFFFFFFF,
        )
        heapq.heappush(self._events,
                       _Event(time=time_ns, seq=next(self._seq), packet=packet))
        return pkt_id

    # -- execution -------------------------------------------------------------

    def run(self) -> ObservationTable:
        """Drain the event heap; returns the observation table sorted
        by queue-arrival time (the stream order queries consume).

        The table is assembled columnar: the per-field buffers become
        numpy columns and one ``np.lexsort((pkt_id, tin))`` replaces
        the old Python row sort (same ``(tin, pkt_id)`` order).
        """
        if self._streamed:
            raise RuntimeError(
                "observations were already streamed out via "
                "stream_into(); run() would return an empty table — "
                "build a fresh simulator (or collect the streamed "
                "batches) to get the whole table"
            )
        events = self._events
        while events:
            event = heapq.heappop(events)
            self._arrive(event)
        arrays = {
            name: np.asarray(values,
                             dtype=np.float64 if name == "tout" else np.int64)
            for name, values in self._buffers.items()
        }
        order = np.lexsort((arrays["pkt_id"], arrays["tin"]))
        self.table = ObservationTable.from_arrays(
            {name: arr[order] for name, arr in arrays.items()})
        return self.table

    def stream_into(self, session, chunk_size: int = 1 << 16) -> int:
        """Drain the event heap, feeding observations into ``session``
        (anything with an ``ingest`` method — a
        :class:`~repro.telemetry.session.TelemetrySession` or a
        network-wide :class:`~repro.telemetry.deploy.NetworkSession`)
        in bounded columnar batches, in exactly the order :meth:`run`'s
        table would hold.

        Records are buffered per field as in :meth:`run`, but flushed
        whenever roughly ``chunk_size`` have accumulated: every
        buffered record with ``tin`` strictly below the next pending
        event's time is final (a queue stamps ``tin`` with the event
        time, and events pop in nondecreasing time order), so the
        prefix can be sorted by ``(tin, pkt_id)`` and emitted — the
        concatenation of the batches equals the one-shot table bit for
        bit, while peak memory stays bounded by the chunk, not the
        trace.  Returns the number of observations streamed.
        """
        self._streamed = True
        events = self._events
        streamed = 0
        while events:
            event = heapq.heappop(events)
            self._arrive(event)
            if events and len(self._buffers["tin"]) >= chunk_size:
                streamed += self._flush_into(session, events[0].time)
        streamed += self._flush_into(session, None)
        return streamed

    def _flush_into(self, session, horizon: int | None) -> int:
        """Emit the finalised buffer prefix (``tin < horizon``; all of
        it when ``horizon`` is None) into ``session``."""
        buffers = self._buffers
        n = len(buffers["tin"])
        if horizon is None:
            cut = n
        else:
            # tins are nondecreasing in record order (see stream_into).
            cut = bisect.bisect_left(buffers["tin"], horizon)
        if cut == 0:
            return 0
        arrays = {
            name: np.asarray(values[:cut],
                             dtype=np.float64 if name == "tout" else np.int64)
            for name, values in buffers.items()
        }
        for name in buffers:
            del buffers[name][:cut]
        order = np.lexsort((arrays["pkt_id"], arrays["tin"]))
        session.ingest(ObservationTable.from_arrays(
            {name: arr[order] for name, arr in arrays.items()}))
        return cut

    def _arrive(self, event: _Event) -> None:
        packet = event.packet
        node = packet.path[event.node_index]
        if event.node_index == len(packet.path) - 1:
            self.delivered += 1
            return
        next_node = packet.path[event.node_index + 1]
        if not self.topology.is_switch(node):
            # Host NIC: model as pure link traversal (no observed queue).
            spec = self.topology.link(node, next_node)
            tx = int(packet.pkt_len * 8.0 / spec.rate_gbps)
            heapq.heappush(self._events, _Event(
                time=event.time + tx + spec.prop_delay_ns,
                seq=next(self._seq), packet=packet,
                node_index=event.node_index + 1,
            ))
            return

        qid = self.topology.qid(node, next_node)
        queue = self.queues[qid]
        fate = queue.offer(event.time, packet.pkt_len)
        if isinstance(fate, Drop):
            self.dropped += 1
            self._record(packet, qid, fate.tin, float("inf"), fate.qin, 0)
            return
        assert isinstance(fate, Departure)
        self._record(packet, qid, fate.tin, float(fate.tout),
                     fate.qin, fate.qout)
        spec = self.topology.link(node, next_node)
        heapq.heappush(self._events, _Event(
            time=fate.tout + spec.prop_delay_ns,
            seq=next(self._seq), packet=packet,
            node_index=event.node_index + 1,
        ))

    def _record(self, packet: SimPacket, qid: int, tin: int, tout: float,
                qin: int, qout: int) -> None:
        buffers = self._buffers
        buffers["srcip"].append(packet.srcip)
        buffers["dstip"].append(packet.dstip)
        buffers["srcport"].append(packet.srcport)
        buffers["dstport"].append(packet.dstport)
        buffers["proto"].append(packet.proto)
        buffers["pkt_len"].append(packet.pkt_len)
        buffers["payload_len"].append(packet.payload_len)
        buffers["tcpseq"].append(packet.tcpseq)
        buffers["pkt_id"].append(packet.pkt_id)
        buffers["qid"].append(qid)
        buffers["tin"].append(tin)
        buffers["tout"].append(tout)
        buffers["qin"].append(qin)
        buffers["qout"].append(qout)
        buffers["qsize"].append(qin)
        buffers["pkt_path"].append(packet.path_id)

    # -- statistics -------------------------------------------------------------

    def queue_stats(self) -> dict[int, dict[str, float]]:
        return {
            qid: {
                "arrivals": q.arrivals,
                "drops": q.drops,
                "drop_fraction": q.drop_fraction,
                "peak_depth": q.peak_depth,
            }
            for qid, q in self.queues.items()
        }
