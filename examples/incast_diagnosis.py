#!/usr/bin/env python
"""Incast diagnosis — the paper's motivating scenario (§1, §5).

"Using TPP/INT, it is hard to track which applications contribute to
TCP incast at a particular queue" — with per-queue observations and the
query language it takes three declarative queries:

1. find queues with persistently high occupancy (Fig. 2, last row);
2. find which sources contribute packets while that queue is deep;
3. localise the resulting loss.

The scenario: 24 synchronized senders answer one aggregator through a
single switch; their bursts collide at the aggregator's egress queue.

Run:  python examples/incast_diagnosis.py
"""

from repro import CacheGeometry, QueryEngine
from repro.traffic.incast import IncastConfig, generate_incast

GEOMETRY = CacheGeometry.set_associative(512, ways=8)

FIND_HOT_QUEUES = """
def perc ((tot, high), qin):
    if qin > K:
        high = high + 1
    tot = tot + 1

R1 = SELECT qid, perc GROUPBY qid
R2 = SELECT * FROM R1 WHERE perc.high/perc.tot > 0.01
"""

FIND_CONTRIBUTORS = """
SELECT COUNT GROUPBY srcip, qid WHERE qid == HOT and qin > D
"""

LOCALISE_LOSS = """
SELECT COUNT GROUPBY qid WHERE tout == infinity
"""


def main() -> None:
    scenario = generate_incast(IncastConfig(n_senders=24, rounds=5))
    table = scenario.table
    print(f"simulated {len(table)} packet observations; "
          f"{scenario.drops} drops; peak queue depth {scenario.peak_depth}\n")

    # Step 1: which queues are persistently deep?
    hot = QueryEngine(FIND_HOT_QUEUES, params={"K": 16},
                      geometry=GEOMETRY).run(table.records)
    hot_queues = [int(row["qid"]) for row in hot.result]
    print(f"queues with p99 depth over threshold: {hot_queues}")
    assert scenario.hotspot_qid in hot_queues
    hotspot = scenario.hotspot_qid

    # Step 2: who is filling that queue?
    contributors = QueryEngine(
        FIND_CONTRIBUTORS, params={"HOT": hotspot, "D": 16},
        geometry=GEOMETRY).run(table.records)
    ranked = sorted(contributors.result.rows, key=lambda r: -r["COUNT"])
    print(f"\ntop contributors at queue {hotspot} while deep:")
    for row in ranked[:8]:
        tag = "incast sender" if row["srcip"] in scenario.sender_ips else "background"
        print(f"  srcip={row['srcip']:#x}  pkts={row['COUNT']:<5} ({tag})")

    # Step 3: where did the loss happen?
    loss = QueryEngine(LOCALISE_LOSS, geometry=GEOMETRY).run(table.records)
    print("\ndrops by queue:")
    for row in loss.result.sort_key():
        print(f"  qid={int(row['qid'])}  drops={row['COUNT']}")
    assert [int(r["qid"]) for r in loss.result] == [hotspot]
    print(f"\ndiagnosis: incast at queue {hotspot}, "
          f"driven by {len(scenario.sender_ips)} synchronized senders.")


if __name__ == "__main__":
    main()
