"""Benchmark harness plumbing.

Each bench module regenerates one of the paper's tables/figures and
registers a formatted report via the ``report`` fixture; the reports
are printed in the terminal summary so they survive pytest's output
capture and land in ``bench_output.txt``.

Shared workload fixtures are session-scoped: trace generation dominates
wall-clock otherwise.
"""

from __future__ import annotations

import pytest

from repro.traffic.datacenter import DatacenterConfig, DatacenterWorkload
from repro.traffic.tcpgen import TcpAnomalyConfig, clean_sequence_table, inject_tcp_anomalies

_REPORTS: list[tuple[str, str]] = []


@pytest.fixture(scope="session")
def report():
    """Register a named report to print after the benchmark table."""

    def _record(title: str, text: str) -> None:
        _REPORTS.append((title, text))

    return _record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line("=" * 78)
    terminalreporter.write_line("PAPER ARTIFACT REPRODUCTIONS")
    terminalreporter.write_line("=" * 78)
    for title, text in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"--- {title} ---")
        for line in text.splitlines():
            terminalreporter.write_line(line)


@pytest.fixture(scope="session")
def dc_trace():
    """Datacenter trace with planted TCP anomalies and drops
    (~90 k records) — every Fig. 2 query has something to find."""
    workload = DatacenterWorkload(DatacenterConfig(
        n_flows=400, duration_ns=200_000_000, seed=16))
    table = workload.observation_table()
    clean_sequence_table(table)
    inject_tcp_anomalies(table, TcpAnomalyConfig(
        retransmit_rate=0.01, reorder_rate=0.01, duplicate_rate=0.002))
    # Plant ~0.5% drops (tout = +inf) so the loss-rate and high-latency
    # queries return non-empty results.
    for i, record in enumerate(table.records):
        if i % 200 == 199:
            record.tout = float("inf")
    return table


@pytest.fixture(scope="session")
def small_trace():
    """A small trace for per-run benchmark timings (~12 k records)."""
    workload = DatacenterWorkload(DatacenterConfig(
        n_flows=80, duration_ns=30_000_000, seed=7))
    table = workload.observation_table()
    clean_sequence_table(table)
    return table
