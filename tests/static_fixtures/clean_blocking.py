"""Clean twin of bad_blocking: awaited coroutines and executor
offload never trip RPR-C101/C102."""
import asyncio
import json


def _encode(payload):
    return json.dumps(payload)        # not a blocking call


async def handle(loop, payload):
    await asyncio.sleep(0.1)          # awaited: a coroutine, not a block
    body = _encode(payload)
    return await loop.run_in_executor(None, len, body)
