"""Schema tests: field specs, aliases, and the §4 bit accounting."""

import math

import pytest

from repro.core import schema as sch


class TestFields:
    def test_five_tuple_is_104_bits(self):
        # §4: "The aggregation key (5-tuple) requires 104 bits".
        assert sch.FIVE_TUPLE_BITS == 104

    def test_all_fields_have_specs(self):
        for field in sch.FIELDS:
            assert field.bits > 0
            assert field.kind in ("header", "perf")
            assert field.dtype in ("int", "float")

    def test_tout_is_float(self):
        # tout must carry +inf for drops.
        assert sch.FIELDS_BY_NAME["tout"].dtype == "float"

    def test_is_field_accepts_aliases(self):
        assert sch.is_field("5tuple")
        assert sch.is_field("pkt_uniq")
        assert sch.is_field("srcip")
        assert not sch.is_field("nonsense")


class TestAliases:
    def test_5tuple_expansion(self):
        assert sch.expand_field("5tuple") == (
            "srcip", "dstip", "srcport", "dstport", "proto")

    def test_pkt_uniq_includes_5tuple(self):
        # §2: "pkt_uniq is a tuple of packet fields that includes the 5tuple".
        expansion = sch.expand_field("pkt_uniq")
        for field in sch.FIVE_TUPLE:
            assert field in expansion
        assert "pkt_id" in expansion

    def test_concrete_field_expands_to_itself(self):
        assert sch.expand_field("qid") == ("qid",)

    def test_unknown_field_raises(self):
        with pytest.raises(KeyError):
            sch.expand_field("bogus")


class TestBitAccounting:
    def test_field_bits_for_alias(self):
        assert sch.field_bits("5tuple") == 104

    def test_key_bits_concatenates(self):
        assert sch.key_bits(("srcip", "dstip")) == 64

    def test_key_bits_with_alias(self):
        assert sch.key_bits(("5tuple",)) == 104


class TestConstants:
    def test_infinity(self):
        assert math.isinf(sch.CONSTANTS["infinity"])

    def test_protocol_numbers(self):
        assert sch.CONSTANTS["TCP"] == 6
        assert sch.CONSTANTS["UDP"] == 17

    def test_time_units(self):
        assert sch.TIME_UNITS_NS["ms"] == 1_000_000
        assert sch.TIME_UNITS_NS["s"] == 1_000_000_000
