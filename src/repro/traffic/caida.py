"""Synthetic CAIDA-like WAN trace generator.

The paper evaluates its hardware design on "a 5 minute CAIDA Internet
traffic trace from April 2016, containing 157M packets at a 10 Gbit/s
link speed" with ~3.8M unique 5-tuples (§4).  The real trace is
licensed and unavailable here, so this module generates a synthetic
equivalent preserving the properties that drive the evaluation:

* the *flows-per-packet ratio* (≈ 3.8M/157M ≈ 2.4%, i.e. a mean flow
  length of ~41 packets) — this sets the key-insertion pressure;
* a heavy-tailed flow-size distribution (few elephants carry most
  packets, most flows are mice) — this sets the cache hit profile;
* temporal flow locality (a flow's packets cluster in time rather than
  spreading uniformly) — this is what an LRU exploits.

Traces are generated at a configurable *scale* relative to the paper
(default 1/64: ~2.4M packets) and the Fig. 5/6 benches scale the cache
sizes by the same factor, preserving the working-set-to-cache ratio
that the reported metrics (eviction %, accuracy %) depend on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.network.records import ObservationTable
from .distributions import bimodal_packet_sizes, bounded_zipf
from .flows import expand_flows_to_packets, per_flow_prefix, synth_flow_ids

#: Paper trace parameters (§4).
PAPER_PACKETS = 157_000_000
PAPER_FLOWS = 3_800_000
PAPER_DURATION_NS = 5 * 60 * 1_000_000_000
PAPER_LINK_GBPS = 10.0


@dataclass(frozen=True)
class CaidaTraceConfig:
    """Configuration for a synthetic CAIDA-like trace.

    ``scale`` divides the paper's packet and flow counts and duration;
    the default produces a laptop-sized trace with the same
    flows/packet ratio.
    """

    scale: float = 1.0 / 64.0
    zipf_alpha: float = 1.2
    #: Mean flow active period as a fraction of the trace duration.
    #: Calibrated so the 8-way eviction fraction and the non-linear
    #: validity at the paper's 32-Mbit operating point land near the
    #: reported 3.55% / 74% (real WAN flows interleave over long spans).
    active_period_fraction: float = 1.0
    max_flow_packets: int = 200_000
    tcp_fraction: float = 0.85
    seed: int = 2016_04  # April 2016 trace vintage
    qid: int = 0

    @property
    def n_packets(self) -> int:
        return max(1000, int(PAPER_PACKETS * self.scale))

    @property
    def n_flows_target(self) -> int:
        return max(50, int(PAPER_FLOWS * self.scale))

    @property
    def duration_ns(self) -> int:
        return max(1_000_000, int(PAPER_DURATION_NS * self.scale))


def generate_key_stream(config: CaidaTraceConfig | None = None) -> np.ndarray:
    """Fast path for the Fig. 5 cache sweep: the per-packet sequence of
    aggregation-key identities (one distinct int64 per flow), with the
    same flow population and interleaving as :func:`generate_caida_like`
    but no header/timestamp synthesis.

    Cache-replacement behaviour depends only on key identity and order,
    so this stream drives :func:`repro.switch.kvstore.cache.simulate_eviction_count`
    directly.
    """
    config = config or CaidaTraceConfig()
    rng = np.random.default_rng(config.seed)
    mean_size = config.n_packets / config.n_flows_target
    sizes = _sizes_with_mean(rng, config, mean_size)
    starts = rng.integers(0, max(1, int(config.duration_ns * 0.9)), len(sizes))
    active = rng.exponential(
        config.duration_ns * config.active_period_fraction, len(sizes)) + 1e4
    mean_gaps = np.maximum(1.0, active / np.maximum(1, sizes))
    flow_of, _times = expand_flows_to_packets(rng, sizes, starts, mean_gaps)
    return flow_of


def generate_caida_like(config: CaidaTraceConfig | None = None) -> ObservationTable:
    """Generate the synthetic trace as an observation table.

    Packets traverse a single 10 Gbit/s queue: ``tin`` follows the
    merged flow schedules, ``tout`` adds transmission plus a small
    queueing jitter, ``qin`` is a light load-dependent depth.  These
    performance fields are plausible rather than trace-derived — the
    Fig. 5/6 experiments aggregate by 5-tuple and count, so only key
    interleaving matters there; queries over latency use the simulator
    substrate instead.
    """
    config = config or CaidaTraceConfig()
    rng = np.random.default_rng(config.seed)

    # Draw flow sizes until the packet budget is met, preserving the
    # target flows/packet ratio on average.
    mean_size = config.n_packets / config.n_flows_target
    sizes = _sizes_with_mean(rng, config, mean_size)
    n_flows = len(sizes)

    ids = synth_flow_ids(rng, n_flows)
    # Protocol mix: TCP-dominated like WAN backbones.
    is_udp = rng.random(n_flows) >= config.tcp_fraction
    ids["proto"] = np.where(is_udp, 17, 6)

    # Flow schedules: starts spread over the trace; in-flow gaps chosen
    # so the flow spans a heavy-tailed active period.
    starts = rng.integers(0, max(1, int(config.duration_ns * 0.9)), n_flows)
    active = rng.exponential(
        config.duration_ns * config.active_period_fraction, n_flows) + 1e4
    mean_gaps = np.maximum(1.0, active / np.maximum(1, sizes))

    flow_of, times = expand_flows_to_packets(rng, sizes, starts, mean_gaps)
    n = len(flow_of)

    pkt_lens = bimodal_packet_sizes(rng, n, mean=850.0)
    # 10 Gbit/s service: 0.8 ns per byte; queueing jitter 1-50 us.
    service = (pkt_lens * 0.8).astype(np.int64)
    jitter = rng.integers(1_000, 50_000, n)
    tout = times + service + jitter
    qdepth = np.minimum(63, (jitter // 1500)).astype(np.int64)

    # Per-flow TCP sequence progression (cumulative payload), as a
    # segmented prefix sum over the time-ordered stream.
    payload = np.maximum(0, pkt_lens - 40)
    seqs = per_flow_prefix(flow_of, payload, start=1000)

    # Emit columns directly — the table never materialises row objects.
    return ObservationTable.from_arrays({
        "srcip": ids["srcip"][flow_of],
        "dstip": ids["dstip"][flow_of],
        "srcport": ids["srcport"][flow_of],
        "dstport": ids["dstport"][flow_of],
        "proto": ids["proto"][flow_of],
        "pkt_len": pkt_lens,
        "payload_len": payload,
        "tcpseq": seqs,
        "pkt_id": np.arange(n, dtype=np.int64),
        "qid": np.full(n, config.qid, dtype=np.int64),
        "tin": times,
        "tout": tout.astype(np.float64),
        "qin": qdepth,
        "qout": np.maximum(0, qdepth - 1),
        "qsize": qdepth,
        "pkt_path": np.full(n, config.qid, dtype=np.int64),
    })


def _sizes_with_mean(rng: np.random.Generator, config: CaidaTraceConfig,
                     mean_size: float) -> np.ndarray:
    """Heavy-tailed flow sizes whose total ≈ the packet budget."""
    sizes_list: list[np.ndarray] = []
    total = 0
    budget = config.n_packets
    # Calibrate: sample a pilot batch to estimate the raw mean, then
    # draw flows until the packet budget is exhausted.
    pilot = bounded_zipf(rng, 5000, config.zipf_alpha, 1, config.max_flow_packets)
    raw_mean = float(pilot.mean())
    # Thin or thicken the tail by stretching sizes toward the target mean.
    stretch = mean_size / raw_mean
    while total < budget:
        batch = bounded_zipf(rng, 10_000, config.zipf_alpha, 1, config.max_flow_packets)
        batch = np.maximum(1, np.round(batch * stretch)).astype(np.int64)
        sizes_list.append(batch)
        total += int(batch.sum())
    sizes = np.concatenate(sizes_list)
    # Trim the overshoot.
    csum = np.cumsum(sizes)
    cut = int(np.searchsorted(csum, budget)) + 1
    sizes = sizes[:cut]
    if len(sizes) and csum[cut - 1] > budget:
        sizes[-1] -= int(csum[cut - 1] - budget)
        if sizes[-1] <= 0:
            sizes = sizes[:-1]
    return sizes


