"""Compiler tests: plan shapes, layouts, and the on/off-switch split."""

import pytest

from repro.core.compiler import CompileOptions, compile_program
from repro.core.errors import CompileError
from repro.core.parser import parse_program
from repro.core.semantics import resolve_program


def compiled(source, **options):
    rp = resolve_program(parse_program(source))
    return compile_program(rp, CompileOptions(**options) if options else None)


class TestStageSplit:
    def test_base_groupby_goes_on_switch(self):
        program = compiled("SELECT COUNT GROUPBY 5tuple")
        assert len(program.groupby_stages) == 1
        assert not program.software_stages

    def test_base_select_goes_on_switch(self):
        program = compiled("SELECT srcip, qid FROM T WHERE tout - tin > 1ms")
        assert len(program.select_stages) == 1

    def test_derived_stage_goes_to_software(self):
        program = compiled(
            "R1 = SELECT COUNT GROUPBY srcip\n"
            "R2 = SELECT * FROM R1 WHERE COUNT > 10\n"
        )
        assert [s.query.name for s in program.software_stages] == ["R2"]

    def test_join_reduces_to_groupbys_plus_software(self):
        program = compiled(
            "R1 = SELECT COUNT GROUPBY 5tuple\n"
            "R2 = SELECT COUNT GROUPBY 5tuple WHERE tout == infinity\n"
            "R3 = SELECT R2.COUNT/R1.COUNT FROM R1 JOIN R2 ON 5tuple\n"
        )
        assert len(program.groupby_stages) == 2      # the paper's reduction
        assert [s.query.name for s in program.software_stages] == ["R3"]

    def test_result_name_preserved(self):
        program = compiled("R9 = SELECT COUNT GROUPBY srcip")
        assert program.result == "R9"


class TestKeyValueLayout:
    def test_fig5_pair_is_128_bits(self):
        """§4: 104-bit 5-tuple key + 24-bit counter = 128 bits/pair."""
        program = compiled("SELECT COUNT GROUPBY 5tuple")
        stage = program.groupby_stages[0]
        assert stage.key.bits == 104
        assert stage.value.bits == 24
        assert stage.pair_bits == 128

    def test_counter_width_override(self):
        program = compiled("SELECT COUNT GROUPBY 5tuple",
                           state_bits_override={("COUNT", "COUNT"): 32})
        assert program.groupby_stages[0].value.bits == 32

    def test_ewma_value_includes_aux_product(self):
        program = compiled(
            "def ewma (e, (tin, tout)): e = (1 - alpha) * e + alpha * (tout - tin)\n"
            "SELECT 5tuple, ewma GROUPBY 5tuple"
        )
        value = program.groupby_stages[0].value
        assert value.state_bits == 32
        assert value.aux_bits == 32  # one product register

    def test_multi_fold_value_concatenates(self):
        program = compiled("SELECT COUNT, SUM(pkt_len) GROUPBY srcip")
        value = program.groupby_stages[0].value
        assert len(value.slots) == 2
        assert value.bits == 24 + 32

    def test_key_bits_sum_over_fields(self):
        program = compiled("SELECT COUNT GROUPBY srcip, dstip")
        assert program.groupby_stages[0].key.bits == 64


class TestParserConfig:
    def test_parse_fields_cover_query(self):
        program = compiled(
            "SELECT COUNT GROUPBY srcip, dstip WHERE tout - tin > 1ms")
        for field in ("srcip", "dstip", "tin", "tout"):
            assert field in program.parse_fields

    def test_fold_fields_included(self):
        program = compiled("SELECT SUM(pkt_len) GROUPBY srcip")
        assert "pkt_len" in program.parse_fields

    def test_software_only_fields_excluded(self):
        program = compiled(
            "R1 = SELECT COUNT GROUPBY srcip\n"
            "R2 = SELECT * FROM R1 WHERE COUNT > 10\n"
        )
        # R2's filter runs in software; qid is never parsed.
        assert "qid" not in program.parse_fields


class TestAluAccounting:
    def test_count_is_cheap(self):
        program = compiled("SELECT COUNT GROUPBY srcip")
        alu = program.groupby_stages[0].folds[0].alu
        assert alu.op_count == 1
        assert alu.depth >= 1

    def test_budget_enforced_when_strict(self):
        big_body = " + pkt_len".join(["    s = s"] + [""] * 40)
        source = f"def f (s, pkt_len):\n{big_body}\nSELECT srcip, f GROUPBY srcip"
        with pytest.raises(CompileError):
            compiled(source, strict_alu=True, alu_op_budget=4)

    def test_budget_not_enforced_by_default(self):
        big_body = " + pkt_len".join(["    s = s"] + [""] * 40)
        source = f"def f (s, pkt_len):\n{big_body}\nSELECT srcip, f GROUPBY srcip"
        program = compiled(source)
        assert program.groupby_stages[0].folds[0].alu.op_count == 40


class TestMergeability:
    def test_linear_stage_is_mergeable(self):
        program = compiled("SELECT COUNT GROUPBY srcip")
        assert program.groupby_stages[0].mergeable

    def test_nonlinear_stage_is_not(self):
        program = compiled("SELECT MAX(tcpseq) GROUPBY srcip")
        assert not program.groupby_stages[0].mergeable

    def test_mixed_stage_is_not_mergeable(self):
        program = compiled("SELECT COUNT, MAX(tcpseq) GROUPBY srcip")
        assert not program.groupby_stages[0].mergeable


class TestDescribe:
    def test_plan_description_mentions_stages(self):
        program = compiled(
            "R1 = SELECT COUNT GROUPBY 5tuple\n"
            "R2 = SELECT * FROM R1 WHERE COUNT > 10\n"
        )
        text = program.describe()
        assert "switch groupby R1" in text
        assert "software select R2" in text
        assert "104b" in text
