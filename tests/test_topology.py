"""Topology tests: construction, queue ids, routing."""

import pytest

from repro.network.topology import LinkSpec, Topology, leaf_spine, linear_chain, single_switch


class TestConstruction:
    def test_single_switch(self):
        topo = single_switch(4)
        assert len(topo.hosts()) == 4
        assert topo.switches() == ["s0"]

    def test_linear_chain(self):
        topo = linear_chain(3)
        assert len(topo.switches()) == 3
        assert topo.path("h0", "h1") == ["h0", "s0", "s1", "s2", "h1"]

    def test_leaf_spine(self):
        topo = leaf_spine(n_leaves=2, n_spines=2, hosts_per_leaf=3)
        assert len(topo.hosts()) == 6
        assert len(topo.switches()) == 4


class TestQueues:
    def test_switch_egress_gets_qid(self):
        topo = single_switch(2)
        qid = topo.qid("s0", "h0")
        assert isinstance(qid, int)

    def test_host_egress_has_no_qid(self):
        topo = single_switch(2)
        with pytest.raises(KeyError):
            topo.qid("h0", "s0")

    def test_qids_unique(self):
        topo = leaf_spine(2, 2, 2)
        qids = [topo.qid(u, v) for u, v in topo.queue_edges()]
        assert len(qids) == len(set(qids))

    def test_qid_name_round_trip(self):
        topo = single_switch(3)
        for (u, v) in topo.queue_edges():
            assert topo.qid_name(topo.qid(u, v)) == (u, v)

    def test_qid_name_unknown(self):
        with pytest.raises(KeyError):
            single_switch(2).qid_name(10_000)


class TestLinks:
    def test_link_spec_stored(self):
        topo = Topology()
        topo.add_switch("s0")
        topo.add_host("h0")
        spec = LinkSpec(rate_gbps=40.0, buffer_packets=128)
        topo.add_link("h0", "s0", spec)
        assert topo.link("h0", "s0").rate_gbps == 40.0
        assert topo.link("s0", "h0").buffer_packets == 128

    def test_unidirectional_link(self):
        topo = Topology()
        topo.add_switch("s0")
        topo.add_switch("s1")
        topo.add_link("s0", "s1", bidirectional=False)
        assert ("s0", "s1") in topo.queue_edges()
        assert ("s1", "s0") not in topo.queue_edges()

    def test_cross_leaf_routes_through_spine(self):
        topo = leaf_spine(2, 1, 1)
        path = topo.path("h0_0", "h1_0")
        assert "spine0" in path
