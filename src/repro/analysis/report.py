"""Plain-text table/series rendering for the benchmark harness.

The benches print the same rows/series the paper's figures report;
this module owns the formatting so their output stays consistent and
greppable in ``bench_output.txt``.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str | None = None) -> str:
    """Render an aligned fixed-width table."""
    rendered_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.rjust(widths[i]) if _numericish(cell)
                               else cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e6 or abs(value) < 1e-3:
            return f"{value:.3g}"
        return f"{value:,.3f}".rstrip("0").rstrip(".")
    return str(value)


def _numericish(cell: str) -> bool:
    return bool(cell) and (cell[0].isdigit() or cell[0] in "-+.")


def format_percent(fraction: float, digits: int = 2) -> str:
    return f"{100 * fraction:.{digits}f}%"


def deployability_table(analyses: "dict[str, object]",
                        title: str = "catalog deployability") -> str:
    """Catalog-wide deployability summary from
    :func:`repro.core.analyze.analyze_program` results.

    ``analyses`` maps query name to a
    :class:`~repro.core.analyze.ProgramAnalysis`; one row per query:
    stage count, mergeability/shardability verdicts, cache sizing from
    the §4 area model, and the diagnostic tally (errors/warnings/
    infos).
    """
    rows = []
    for name, analysis in analyses.items():
        stages = analysis.stages
        report = analysis.report
        mergeable = all(s.mergeable for s in stages) if stages else True
        shardable = all(s.shardable for s in stages) if stages else True
        pair_bits = "/".join(str(s.pair_bits) for s in stages) or "-"
        mbit = sum(s.total_mbit for s in stages)
        die = sum(s.area_fraction for s in stages)
        rows.append([
            name,
            len(stages),
            "yes" if mergeable else "NO",
            "yes" if shardable else "NO",
            pair_bits,
            f"{mbit:.2f}",
            format_percent(die),
            f"{len(report.errors)}/{len(report.warnings)}/{len(report.infos)}",
        ])
    return format_table(
        ["query", "stages", "mergeable", "shardable", "pair bits",
         "Mbit", "% die", "E/W/I"],
        rows, title=title)


def banner(text: str) -> str:
    bar = "=" * max(60, len(text) + 4)
    return f"{bar}\n{text}\n{bar}"
