"""Shared fixtures: deterministic small traces and query helpers."""

from __future__ import annotations

import random

import pytest

from repro.network.records import ObservationTable, PacketRecord


def make_record(**kwargs) -> PacketRecord:
    """A record with sane defaults, overridable per test."""
    defaults = dict(
        srcip=0x0A000001, dstip=0x0A000002, srcport=1234, dstport=80,
        proto=6, pkt_len=100, payload_len=60, tcpseq=1000, pkt_id=0,
        qid=0, tin=0, tout=100.0, qin=0, qout=0, qsize=0, pkt_path=0,
    )
    defaults.update(kwargs)
    return PacketRecord(**defaults)


def synthetic_trace(n_packets: int = 5000, n_flows: int = 50,
                    seed: int = 1, drop_rate: float = 0.01,
                    n_queues: int = 2) -> ObservationTable:
    """A deterministic multi-flow trace with drops and latency spread."""
    rng = random.Random(seed)
    table = ObservationTable()
    t = 0
    seqs: dict[int, int] = {}
    for i in range(n_packets):
        flow = rng.randrange(n_flows)
        t += rng.randrange(10, 200)
        payload = rng.choice([0, 100, 1460])
        seq = seqs.get(flow, 1000)
        seqs[flow] = seq + payload + 1
        dropped = rng.random() < drop_rate
        delay = rng.randrange(100, 2_000_000)
        table.append(PacketRecord(
            srcip=0x0A000000 + flow,
            dstip=0x0B000000 + (flow % 7),
            srcport=1024 + flow,
            dstport=80 if flow % 3 else 443,
            proto=6 if flow % 5 else 17,
            pkt_len=payload + 40,
            payload_len=payload,
            tcpseq=seq,
            pkt_id=i,
            qid=flow % n_queues,
            tin=t,
            tout=float("inf") if dropped else float(t + delay),
            qin=rng.randrange(0, 40),
            qout=rng.randrange(0, 40),
            qsize=rng.randrange(0, 40),
            pkt_path=flow % 3,
        ))
    return table


@pytest.fixture(scope="session")
def trace() -> ObservationTable:
    """Session-wide deterministic trace (5 k packets, 50 flows)."""
    return synthetic_trace()


@pytest.fixture(scope="session")
def tiny_trace() -> ObservationTable:
    """A very small trace for quick structural tests."""
    return synthetic_trace(n_packets=200, n_flows=8, seed=3)
