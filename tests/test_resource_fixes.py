"""Regression tests for the resource-safety fixes found by
``python -m repro check`` (the RPR-Cxxx static analyzer).

Each test pins one genuine violation the analyzer flagged in the
shipped runtime — a handle or segment leaked on an exception path, a
swallowed teardown error, the ingest accept loop unpickling inline —
and asserts the *behavioral* fix, not the analyzer verdict: the
fixture corpus in ``tests/test_static_check.py`` covers detection.
"""

from __future__ import annotations

import asyncio
import builtins
import socket as socket_mod

import numpy as np
import pytest

from repro.telemetry import client as client_mod
from repro.telemetry import serve as serve_mod
from repro.telemetry import shard_exec, wire
from repro.telemetry.faults import FaultInjector, FaultPlan


class TestPackFramesLeak:
    """RPR-C201 at shard_exec._pack_frames: the freshly created
    shared-memory segment has no owner until it is returned — a failed
    view write must release it, or it leaks in /dev/shm forever."""

    def test_failed_view_write_releases_segment(self, monkeypatch):
        released = []
        real_release = shard_exec.release_shared_memory

        def recording_release(shm):
            released.append(shm.name)
            real_release(shm)

        def exploding_ndarray(*args, **kwargs):
            raise MemoryError("injected: view construction failed")

        monkeypatch.setattr(shard_exec, "release_shared_memory",
                            recording_release)
        monkeypatch.setattr(shard_exec.np, "ndarray", exploding_ndarray)
        with pytest.raises(MemoryError):
            shard_exec._pack_frames({"pkts": np.arange(8, dtype=np.int64)})
        assert len(released) == 1
        # the segment must actually be gone from /dev/shm
        from multiprocessing import shared_memory
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=released[0])

    def test_happy_path_still_packs(self):
        shm, specs = shard_exec._pack_frames(
            {"pkts": np.arange(8, dtype=np.int64)})
        try:
            assert specs == (("pkts", 0, "<i8", (8,)),)
        finally:
            shard_exec.release_shared_memory(shm)


class TestConnectOnceLeak:
    """RPR-C201 at client._connect_once: until the socket is assigned
    to ``self._sock`` nothing else can close it, so a failed
    settimeout/connect must close it inline."""

    def test_refused_connect_closes_socket(self, monkeypatch):
        created = []
        real_socket = socket_mod.socket

        def recording_socket(*args, **kwargs):
            sock = real_socket(*args, **kwargs)
            created.append(sock)
            return sock

        monkeypatch.setattr(client_mod.socket, "socket", recording_socket)
        # grab a port that is definitely closed right now
        probe = real_socket(socket_mod.AF_INET, socket_mod.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()

        client = client_mod.IngestClient(("127.0.0.1", port),
                                         connect_timeout=1.0)
        with pytest.raises(OSError):
            client._connect_once()
        assert client._sock is None
        assert len(created) == 1
        assert created[0].fileno() == -1     # closed, fd returned to OS


class TestTryOpenLeak:
    """RPR-C201 at serve.TraceTailer._try_open: a failed fstat (EBADF
    under a racing rotation) must not leak the just-opened handle."""

    def test_failed_fstat_closes_handle(self, tmp_path, monkeypatch):
        trace = tmp_path / "trace.csv"
        trace.write_text("ts,srcip\n")
        opened = []
        real_open = builtins.open

        def recording_open(*args, **kwargs):
            handle = real_open(*args, **kwargs)
            opened.append(handle)
            return handle

        def exploding_fstat(fd):
            raise OSError(9, "injected EBADF")

        monkeypatch.setattr(builtins, "open", recording_open)
        monkeypatch.setattr(serve_mod.os, "fstat", exploding_fstat)
        tailer = serve_mod.TraceTailer(trace)
        with pytest.raises(OSError):
            tailer._try_open()
        assert len(opened) == 1
        assert opened[0].closed

    def test_missing_file_returns_none(self, tmp_path):
        tailer = serve_mod.TraceTailer(tmp_path / "absent.csv")
        assert tailer._try_open() == (None, None)


class TestCloseLivePoolsDiscipline:
    """RPR-C401 at shard_exec._close_live_pools: a failing pool close
    must be reported on stderr and must not stop teardown from
    visiting the remaining pools."""

    def test_failing_close_is_reported_and_others_still_close(
            self, capsys):
        closed = []

        class DummyPool:
            def __init__(self, name, fail=False):
                self.name = name
                self.fail = fail

            def close(self):
                if self.fail:
                    raise RuntimeError(f"injected close failure "
                                       f"({self.name})")
                closed.append(self.name)

        saved = list(shard_exec._LIVE_POOLS)
        for pool in saved:
            shard_exec._LIVE_POOLS.discard(pool)
        bad = DummyPool("bad", fail=True)
        good_a, good_b = DummyPool("a"), DummyPool("b")
        try:
            shard_exec._LIVE_POOLS.update((bad, good_a, good_b))
            shard_exec._close_live_pools()
        finally:
            for pool in (bad, good_a, good_b):
                shard_exec._LIVE_POOLS.discard(pool)
            shard_exec._LIVE_POOLS.update(saved)
        assert sorted(closed) == ["a", "b"]
        err = capsys.readouterr().err
        assert "shard pool teardown failed" in err
        assert "injected close failure" in err


class TestReadFrameOffload:
    """RPR-C101 at wire.read_frame: the payload decode (checksum +
    unpickle of a potentially multi-megabyte BATCH) runs in the loop's
    executor, not inline on the accept loop."""

    def test_roundtrip_through_executor(self):
        payload = {"seq": 7, "columns": {"pkts": list(range(256))}}
        frame = wire.pack_frame(wire.T_BATCH, payload)

        async def roundtrip():
            reader = asyncio.StreamReader()
            reader.feed_data(frame)
            reader.feed_eof()
            return await wire.read_frame(reader)

        ftype, decoded = asyncio.run(roundtrip())
        assert ftype == wire.T_BATCH
        assert decoded == payload

    def test_corrupt_payload_still_raises_frame_error(self):
        frame = bytearray(wire.pack_frame(wire.T_BATCH, {"seq": 1}))
        frame[-1] ^= 0xFF

        async def roundtrip():
            reader = asyncio.StreamReader()
            reader.feed_data(bytes(frame))
            reader.feed_eof()
            return await wire.read_frame(reader)

        with pytest.raises(wire.FrameError):
            asyncio.run(roundtrip())


class TestSendFaultBacklog:
    """Injector fix: when one send ordinal schedules several faults,
    each send fires exactly one and the shadowed ones carry over to
    the retry-forced subsequent sends — no scheduled fault is lost."""

    def test_overlapping_faults_all_fire(self):
        inj = FaultInjector(FaultPlan(disconnect_sends={1},
                                      corrupt_sends={1},
                                      stall_sends={1}))
        assert inj.on_send() == "disconnect"
        assert inj.on_send() == "corrupt"
        assert inj.on_send() == "stall"
        assert inj.on_send() is None
        kinds = [e[0] for e in inj.events]
        assert kinds == ["disconnect_send", "corrupt_send", "stall_send"]

    def test_disjoint_faults_fire_on_their_ordinal(self):
        inj = FaultInjector(FaultPlan(disconnect_sends={2},
                                      corrupt_sends={4}))
        assert [inj.on_send() for _ in range(5)] == [
            None, "disconnect", None, "corrupt", None]

    def test_carryover_respects_priority_order(self):
        # a fault landing on a send that is already servicing a
        # carried-over fault queues behind it
        inj = FaultInjector(FaultPlan(disconnect_sends={1},
                                      corrupt_sends={1, 2}))
        assert inj.on_send() == "disconnect"
        assert inj.on_send() == "corrupt"    # carried over from send 1
        assert inj.on_send() == "corrupt"    # scheduled on send 2
        assert inj.on_send() is None
