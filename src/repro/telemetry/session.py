"""Streaming telemetry sessions: the single execution protocol of the
runtime.

The paper's runtime monitors live switch traffic continuously; a
:class:`TelemetrySession` is the long-lived handle that matches that
shape — open once, then::

    session = engine.open(window=1 << 17)
    for batch in capture:              # columnar tables or row iterables
        session.ingest(batch)
        if time_to_report():
            print(session.results().result.rows)   # mid-stream snapshot
    report = session.close()                       # final RunReport

Every entry point of the runtime compiles down to one of these
sessions: :meth:`QueryEngine.run` is open–ingest–close,
:meth:`QueryEngine.run_exact` is an *exact* session (software-only
evaluation, no hardware model), and
:class:`~repro.telemetry.deploy.NetworkDeployment` drives one session
per switch — software, hardware, and network-wide paths share this one
code path.

Execution modes
---------------

* **hardware** (default): batches stream through a
  :class:`~repro.switch.pipeline.SwitchPipeline`.  With ``window`` set,
  ``GROUPBY`` stages on the vector path run the windowed split store —
  memory stays bounded by the window (plus per-key results) on
  unbounded streams, and :meth:`results` snapshots work mid-stream.
  Without a window, the one-shot deferred vector store is used (fastest
  for a single bounded trace, but mid-stream :meth:`results` raises
  :class:`~repro.core.errors.SessionError`); ``engine="row"`` streams
  per packet and always supports snapshots.
* **exact** (``exact=True``): no hardware model — ingested batches are
  buffered and evaluated by the engine's exact executor (the
  interpreter or the vectorized executor) at :meth:`results`/
  :meth:`close`.  Exact evaluation is whole-stream by nature, so this
  mode's memory grows with the stream.

Results are **bit-identical** across every mode/engine/window
combination that the one-shot entry points produce.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.core.errors import SessionClosedError, SessionError
from repro.core.interpreter import ResultTable
from repro.network.records import ObservationTable
from repro.switch.pipeline import DEFAULT_CHUNK_SIZE, SwitchPipeline

from .checkpoint import pack_checkpoint
from .diagnostics import exc_message

if TYPE_CHECKING:                                  # pragma: no cover
    from .runtime import QueryEngine, RunReport


class TelemetrySession:
    """One long-lived ingest/query handle over one compiled program.

    Built by :meth:`QueryEngine.open`; see the module docstring for the
    protocol.  Not thread-safe (like the stores underneath).

    Args:
        engine: The compiled :class:`QueryEngine` (program, params,
            geometry, policy, execution-engine knob).
        window: Streaming window for the vector split store (accesses
            per schedule execution); ``None`` keeps the one-shot
            deferred store.
        exact: Software-only exact evaluation (no hardware model).
        chunk_size: Batch-path chunk size of the switch pipeline.
        shards: Fan every ``GROUPBY`` stage out to this many worker
            processes, hash-partitioned by cache set and combined via
            the synthesized merges — bit-identical to the unsharded
            engines (see :mod:`repro.switch.kvstore.sharded` for the
            mergeable/non-mergeable contract).  Implies columnar
            (vector-path) ingestion: row batches are columnized.
    """

    def __init__(self, engine: "QueryEngine", window: int | None = None,
                 exact: bool = False,
                 chunk_size: int = DEFAULT_CHUNK_SIZE,
                 shards: int | None = None,
                 checkpoint_every: int | None = None,
                 faults=None):
        self._engine = engine
        self.window = window
        self.exact = exact
        self.shards = shards
        #: Deployability report attached by :meth:`QueryEngine.open`
        #: (``None`` when the session was constructed directly).
        self.diagnostics = None
        # Defense in depth for direct construction: QueryEngine.open()
        # already rejected these, with the same codes and wording.
        if window is not None and window <= 0:
            raise ValueError(exc_message("RPR-E004", window=window))
        if shards is not None and shards < 1:
            raise ValueError(exc_message("RPR-E005", shards=shards))
        if exact and shards is not None:
            raise ValueError(exc_message("RPR-E003"))
        self._chunk_size = chunk_size
        self._closed = False
        self._broken: str | None = None
        self._broken_cause: BaseException | None = None
        self._saw_rows = False
        self._vector_started = False
        self._faults = faults
        if exact:
            self._buffered: list[ObservationTable | list] = []
            self._pipeline = None
        else:
            self._pipeline = SwitchPipeline(
                engine.compiled, params=engine.params,
                geometry=engine.geometry, policy=engine.policy,
                seed=engine.seed,
                refresh_interval=engine.refresh_interval,
                engine=engine.engine, window=window, shards=shards,
                checkpoint_every=checkpoint_every, faults=faults,
            )

    # -- context manager ------------------------------------------------------

    def __enter__(self) -> "TelemetrySession":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        # Close only on a clean exit: with an exception in flight the
        # session is left open (finalizing half-ingested state could
        # raise and mask the original error).  Never suppresses the
        # in-flight exception; a close() failure on the clean path
        # propagates.
        if not self._closed and exc_type is None:
            self.close()
        return False

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def broken(self) -> bool:
        """True once an ingest failed mid-stream: stage state may be
        partially applied and no further results can be trusted (see
        :meth:`ingest`)."""
        return self._broken is not None

    def _check_broken(self) -> None:
        if self._broken is not None:
            raise SessionError(
                f"session is broken — an earlier ingest() failed "
                f"({self._broken}) and may have applied a batch "
                f"partially, so its state cannot be trusted; close() "
                f"this session and open a new one (or resume a fresh "
                f"session from the last checkpoint() with "
                f"QueryEngine.resume())") from self._broken_cause

    # -- ingestion ------------------------------------------------------------

    def ingest(self, batch: Iterable[object]) -> "TelemetrySession":
        """Stream one batch of observations (a columnar
        :class:`ObservationTable` or any iterable of records) through
        every stage; returns ``self`` for chaining.

        **Fail-fast poisoning:** an exception escaping mid-ingest may
        leave some stages having absorbed the batch and others not, so
        the session is marked *broken* — every subsequent call raises
        :class:`~repro.core.errors.SessionError` with recovery guidance
        rather than silently serving corrupt results."""
        if self._closed:
            raise SessionClosedError(
                "session is closed; open a new one with QueryEngine.open()")
        self._check_broken()
        try:
            if self._faults is not None:
                self._faults.on_ingest()
            batch = self._normalize(batch)
            if self.exact:
                self._buffered.append(batch)
            else:
                self._pipeline.run(batch, chunk_size=self._chunk_size)
        except Exception as exc:
            # Keep the original exception: every later SessionError on
            # this poisoned session chains it as __cause__, so the real
            # failure survives to wherever the breakage is discovered.
            self._broken = f"{type(exc).__name__}: {exc}"
            self._broken_cause = exc
            raise
        return self

    def _normalize(self, batch) -> ObservationTable | list:
        """Mirror :meth:`QueryEngine.run`'s input handling: row input
        stays row (and pins the ``"auto"`` software executor to the
        interpreter), ``engine="vector"`` columnizes everything.

        One asymmetry of the underlying stores is smoothed over here:
        once a hardware session's ``GROUPBY`` stages have committed to
        the vector store (first batch columnar under ``"auto"``), a
        later *row* batch is columnized rather than handed to the
        store's per-record path (which would raise).  Sharded sessions
        are batch-only, so they always columnize."""
        if not isinstance(batch, (list, ObservationTable)):
            batch = list(batch)
        columnize = self._engine.engine == "vector" or (
            self._engine.engine == "auto" and self._vector_started) or (
            self.shards is not None)
        if columnize:
            if isinstance(batch, list):
                batch = ObservationTable(batch)
            if not batch.is_columnar:
                batch = ObservationTable.from_arrays(batch.columns())
        if isinstance(batch, ObservationTable) and batch.is_columnar:
            if not self.exact and not self._saw_rows:
                self._vector_started = True
        else:
            self._saw_rows = True
        return batch

    # -- results --------------------------------------------------------------

    def results(self, include_invalid: bool = False) -> "RunReport":
        """A :class:`RunReport` snapshot as of everything ingested so
        far — the stream can continue afterwards.  Like every other
        method, raises :class:`~repro.core.errors.SessionClosedError`
        once the session is closed: the final report is the one
        :meth:`close` returned."""
        if self._closed:
            raise SessionClosedError(
                "session is closed; the final report is the close() "
                "return value")
        self._check_broken()
        if self.exact:
            return self._exact_report()
        tables, stats, writes, accuracy = \
            self._pipeline.snapshot_results(include_invalid=include_invalid)
        return self._assemble(tables, stats, writes, accuracy)

    def close(self, include_invalid: bool = False) -> "RunReport":
        """Finalize every stage (flush caches, run deferred schedules)
        and return the final report; any further call — :meth:`ingest`,
        :meth:`results`, :meth:`cache_stats`, :meth:`close` — raises
        :class:`~repro.core.errors.SessionClosedError`."""
        if self._closed:
            raise SessionClosedError("session is already closed")
        if self._broken is not None:
            # Release worker processes and shared-memory segments, then
            # report the breakage: a broken session has no trustworthy
            # final report to return.
            self._closed = True
            if self._pipeline is not None:
                self._pipeline.release()
            raise SessionError(
                f"closing a broken session (an earlier ingest() failed: "
                f"{self._broken}); its partial state was discarded — "
                f"open a new session, or resume from the last "
                f"checkpoint() with QueryEngine.resume()"
            ) from self._broken_cause
        if self.exact:
            report = self._exact_report()
        else:
            report = self._final_report(include_invalid)
        self._closed = True
        return report

    def _final_report(self, include_invalid: bool) -> "RunReport":
        pipeline = self._pipeline
        tables = pipeline.results(include_invalid=include_invalid)
        accuracy = {
            s.query_name: pipeline.store_for(s.query_name).accuracy()
            for s in self._engine.compiled.groupby_stages
        }
        return self._assemble(
            tables, pipeline.cache_stats(), pipeline.backing_writes(),
            accuracy)

    def cache_stats(self):
        """Per-stage cache counters so far (hardware sessions; exact
        sessions have no hardware model and return an empty dict).
        After :meth:`close` raises
        :class:`~repro.core.errors.SessionClosedError` — final counters
        are on the report :meth:`close` returned."""
        if self._closed:
            raise SessionClosedError(
                "session is closed; final cache stats are on the "
                "close() report")
        self._check_broken()
        if self._pipeline is None:
            return {}
        return self._pipeline.cache_stats()

    # -- durable checkpoints ---------------------------------------------------

    @property
    def packets_ingested(self) -> int:
        """Observations absorbed so far — what a resumed driver skips
        when replaying its input stream."""
        if self.exact:
            return sum(len(b) for b in self._buffered)
        return self._pipeline.packets_seen

    def checkpoint(self) -> bytes:
        """Serialize the full mid-stream state into a self-describing,
        checksummed byte string.  Feed it to :meth:`QueryEngine.resume`
        on an engine with the *same* configuration to continue the
        stream — results from the resumed session are bit-identical to
        never having stopped.  The session itself is untouched and can
        keep streaming."""
        if self._closed:
            raise SessionClosedError(
                "session is closed; there is no state left to checkpoint")
        self._check_broken()
        return pack_checkpoint(self._checkpoint_payload())

    def _checkpoint_payload(self) -> dict:
        payload = {
            "kind": "session",
            "config": self._engine._config_fingerprint(),
            "window": self.window,
            "exact": self.exact,
            "shards": self.shards,
            "chunk_size": self._chunk_size,
            "saw_rows": self._saw_rows,
            "vector_started": self._vector_started,
            "packets_ingested": self.packets_ingested,
        }
        if self.exact:
            payload["buffered"] = [_pack_batch(b) for b in self._buffered]
        else:
            payload["pipeline"] = self._pipeline.checkpoint_state()
        return payload

    def _restore_payload(self, payload: dict) -> None:
        """Load a :meth:`_checkpoint_payload` dict into this (freshly
        opened) session — :meth:`QueryEngine.resume` only."""
        self._saw_rows = payload["saw_rows"]
        self._vector_started = payload["vector_started"]
        if self.exact:
            self._buffered = [_unpack_batch(b) for b in payload["buffered"]]
        else:
            self._pipeline.restore_state(payload["pipeline"])

    # -- assembly --------------------------------------------------------------

    def _executor(self):
        """The exact evaluator for software stages / exact mode, per
        the engine knob (``"auto"``: vectorized unless row batches were
        ingested — the same choice the one-shot entry points make)."""
        engine = self._engine
        if engine.engine == "row" or (engine.engine == "auto"
                                      and self._saw_rows):
            return engine._row_engine()
        return engine._vector_engine()

    def _assemble(self, tables: dict[str, ResultTable],
                  stats, writes, accuracy,
                  software: bool = True) -> "RunReport":
        from .runtime import RunReport

        if software:
            executor = self._executor()
            for stage in self._engine.compiled.software_stages:
                # Software stages read upstream *tables* only (the
                # compiler keeps every base-stream query on-switch), so
                # the session never retains the stream.
                tables[stage.query.name] = executor.evaluate_stage(
                    stage.query.name, [], tables)
        return RunReport(
            tables=tables,
            result_name=self._engine.compiled.result,
            cache_stats=stats,
            backing_writes=writes,
            accuracy=accuracy,
        )

    def _exact_report(self) -> "RunReport":
        from .runtime import RunReport

        tables = self._executor().run(self._exact_stream())
        return RunReport(tables=tables,
                         result_name=self._engine.compiled.result,
                         cache_stats={}, backing_writes={}, accuracy={})

    def _exact_stream(self):
        """Concatenate the buffered batches (single batches pass
        through untouched — the common ``run_exact`` wrapper case)."""
        if len(self._buffered) == 1:
            return self._buffered[0]
        if not self._buffered:
            return []
        if all(isinstance(b, ObservationTable) and b.is_columnar
               for b in self._buffered):
            import numpy as np

            columns = self._buffered[0].columns()
            merged = {
                name: np.concatenate(
                    [b.columns()[name] for b in self._buffered])
                for name in columns
            }
            return ObservationTable.from_arrays(merged)
        stream: list = []
        for batch in self._buffered:
            stream.extend(batch.records if isinstance(batch, ObservationTable)
                          else batch)
        return stream


def _pack_batch(batch: ObservationTable | list) -> tuple:
    """Tag one buffered exact-mode batch as plain data (the table
    class itself stays out of the checkpoint payload)."""
    if isinstance(batch, ObservationTable):
        if batch.is_columnar:
            return ("cols", dict(batch.columns()))
        return ("table", list(batch.records))
    return ("list", list(batch))


def _unpack_batch(packed: tuple) -> ObservationTable | list:
    tag, data = packed
    if tag == "cols":
        return ObservationTable.from_arrays(data)
    if tag == "table":
        return ObservationTable(data)
    return data
