"""A-3 — associativity sweep (extends Fig. 5's three geometries).

Fig. 5 compares three points on the associativity axis (1-way, 8-way,
fully associative).  This ablation fills in the curve — eviction
fraction vs ways at the paper's 32-Mbit capacity — quantifying the
paper's observation that 8 ways already sit "within 2% of the optimum":
the marginal benefit of each doubling shrinks rapidly, which is exactly
why processor-style low-way set associativity is the right hardware
design point.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_percent, format_table
from repro.switch.kvstore.cache import CacheGeometry, simulate_eviction_count
from repro.traffic.caida import CaidaTraceConfig, generate_key_stream

SCALE = 1.0 / 512.0
PAPER_PAIRS = 1 << 18          # the 32-Mbit operating point
WAYS = (1, 2, 4, 8, 16, 32)


@pytest.fixture(scope="module")
def keys():
    # Consumed natively by the simulator — no Python-list round trip.
    return generate_key_stream(CaidaTraceConfig(scale=SCALE))


@pytest.fixture(scope="module")
def sweep(report, keys):
    capacity = max(64, int(PAPER_PAIRS * SCALE) // 64 * 64)
    results: dict[int | str, float] = {}
    for ways in WAYS:
        geometry = CacheGeometry.set_associative(capacity, ways=ways)
        results[ways] = simulate_eviction_count(keys, geometry).eviction_fraction
    full = simulate_eviction_count(
        keys, CacheGeometry.fully_associative(capacity)).eviction_fraction
    results["full"] = full

    rows = []
    for ways in WAYS:
        excess = results[ways] - full
        rows.append([str(ways), format_percent(results[ways]),
                     f"+{100 * excess:.2f}pp"])
    rows.append(["full LRU", format_percent(full), "optimum"])
    text = format_table(
        ["ways", "eviction fraction", "vs optimum"],
        rows,
        title=f"A-3 — associativity sweep at the 32-Mbit point "
              f"(capacity {capacity} pairs, trace scale {SCALE:.4g})",
    )
    report("A-3: associativity sweep", text)
    return results


def test_more_ways_never_hurt_much(sweep):
    ordered = [sweep[w] for w in WAYS]
    for narrower, wider in zip(ordered, ordered[1:]):
        assert wider <= narrower + 0.002


def test_8way_within_a_few_points_of_optimum(sweep):
    """The paper's claim at its operating point."""
    assert sweep[8] - sweep["full"] <= 0.02


def test_diminishing_returns(sweep):
    """Doubling 1→8 ways buys far more than 8→32."""
    gain_low = sweep[1] - sweep[8]
    gain_high = sweep[8] - sweep[32]
    assert gain_low > 3 * max(gain_high, 1e-9)


def test_sweep_throughput(benchmark, keys, sweep):
    capacity = max(64, int(PAPER_PAIRS * SCALE) // 64 * 64)
    subset = keys[:200_000]

    def run():
        return simulate_eviction_count(
            subset, CacheGeometry.set_associative(capacity, ways=16))

    stats = benchmark.pedantic(run, rounds=3, iterations=1)
    assert stats.accesses == len(subset)
