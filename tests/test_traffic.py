"""Traffic-generator tests: distributions, workloads, anomalies."""

import numpy as np
import pytest

from repro.core.interpreter import run_query
from repro.traffic.caida import (
    CaidaTraceConfig,
    generate_caida_like,
    generate_key_stream,
)
from repro.traffic.datacenter import DatacenterConfig, DatacenterWorkload
from repro.traffic.distributions import (
    bimodal_packet_sizes,
    bounded_zipf,
    exponential_gaps,
)
from repro.traffic.incast import IncastConfig, generate_incast
from repro.traffic.tcpgen import (
    TcpAnomalyConfig,
    clean_sequence_table,
    inject_tcp_anomalies,
)
from repro.traffic.trace_io import validate_table


class TestDistributions:
    def test_zipf_support(self):
        rng = np.random.default_rng(1)
        samples = bounded_zipf(rng, 10_000, alpha=1.2, low=1, high=1000)
        assert samples.min() >= 1 and samples.max() <= 1000

    def test_zipf_is_heavy_tailed(self):
        rng = np.random.default_rng(1)
        samples = bounded_zipf(rng, 50_000, alpha=1.2, low=1, high=10_000)
        # Top 10% of flows should carry well over half the mass.
        top = np.sort(samples)[-len(samples) // 10:]
        assert top.sum() > 0.5 * samples.sum()

    def test_zipf_invalid_support(self):
        rng = np.random.default_rng(1)
        with pytest.raises(ValueError):
            bounded_zipf(rng, 10, alpha=1.0, low=5, high=2)

    def test_bimodal_mean(self):
        rng = np.random.default_rng(2)
        sizes = bimodal_packet_sizes(rng, 100_000, mean=850.0)
        assert sizes.mean() == pytest.approx(850.0, rel=0.02)
        assert set(np.unique(sizes)) <= {64, 1500}

    def test_bimodal_mean_out_of_range(self):
        rng = np.random.default_rng(2)
        with pytest.raises(ValueError):
            bimodal_packet_sizes(rng, 10, small=64, large=1500, mean=2000)

    def test_exponential_gaps_positive(self):
        rng = np.random.default_rng(3)
        gaps = exponential_gaps(rng, 1000, mean_ns=50.0)
        assert gaps.min() >= 1


class TestCaidaGenerator:
    CFG = CaidaTraceConfig(scale=1 / 2048)

    def test_deterministic(self):
        a = generate_key_stream(self.CFG)
        b = generate_key_stream(self.CFG)
        assert np.array_equal(a, b)

    def test_flow_packet_ratio_near_paper(self):
        keys = generate_key_stream(CaidaTraceConfig(scale=1 / 512))
        ratio = len(np.unique(keys)) / len(keys)
        # Paper: 3.8M/157M ≈ 0.0242; generator targets the same decade.
        assert 0.01 < ratio < 0.05

    def test_full_table_fields(self):
        table = generate_caida_like(self.CFG)
        assert len(table) > 10_000
        record = table[0]
        assert record.pkt_len >= 64
        assert record.tout > record.tin

    def test_table_time_ordered(self):
        table = generate_caida_like(self.CFG)
        tins = [r.tin for r in table.records[:5000]]
        assert tins == sorted(tins)

    def test_protocol_mix(self):
        table = generate_caida_like(self.CFG)
        protos = {r.proto for r in table.records[:20_000]}
        assert protos <= {6, 17} and 6 in protos


class TestDatacenterWorkload:
    def test_observation_table_valid(self):
        workload = DatacenterWorkload(DatacenterConfig(n_flows=200,
                                                       duration_ns=50_000_000))
        table = workload.observation_table()
        assert validate_table(table) == []

    def test_mean_packet_size(self):
        workload = DatacenterWorkload(DatacenterConfig(n_flows=500,
                                                       duration_ns=100_000_000))
        table = workload.observation_table()
        sizes = np.array([r.pkt_len for r in table])
        assert sizes.mean() == pytest.approx(850, rel=0.05)

    def test_injection_events_sorted(self):
        workload = DatacenterWorkload(DatacenterConfig(n_flows=100,
                                                       duration_ns=20_000_000))
        events = workload.injection_events()
        times = [e.time_ns for e in events]
        assert times == sorted(times)

    def test_rack_locality(self):
        config = DatacenterConfig(n_flows=2000, intra_rack_fraction=0.9,
                                  duration_ns=10_000_000)
        workload = DatacenterWorkload(config)
        ids, _flow_of, _times = workload.packet_schedule()
        same_rack = (ids["src_host"] // config.hosts_per_rack ==
                     ids["dst_host"] // config.hosts_per_rack)
        assert same_rack.mean() > 0.8


class TestIncast:
    def test_incast_causes_drops_at_hotspot(self):
        result = generate_incast(IncastConfig(n_senders=16, rounds=3))
        assert result.drops > 0
        assert result.peak_depth >= 16
        drops_at_hotspot = sum(
            1 for r in result.table
            if r.qid == result.hotspot_qid and r.dropped)
        assert drops_at_hotspot == result.drops

    def test_senders_identified(self):
        result = generate_incast(IncastConfig(n_senders=8, rounds=2))
        srcs_at_hotspot = {r.srcip for r in result.table
                           if r.qid == result.hotspot_qid}
        for sender_ip in result.sender_ips:
            assert sender_ip in srcs_at_hotspot


class TestTcpAnomalies:
    def _clean_table(self):
        workload = DatacenterWorkload(DatacenterConfig(n_flows=100,
                                                       duration_ns=50_000_000))
        table = workload.observation_table()
        clean_sequence_table(table)
        return table

    def test_clean_table_has_zero_out_of_seq(self):
        table = self._clean_table()
        result = run_query(
            "def outofseq ((lastseq, oos), (tcpseq, payload_len)):\n"
            "    if lastseq + 1 != tcpseq: oos = oos + 1\n"
            "    lastseq = tcpseq + payload_len\n"
            "SELECT 5tuple, outofseq GROUPBY 5tuple WHERE proto == TCP",
            table.records)
        oos_counts = [r["outofseq.oos"] for r in result]
        # Only each flow's first packet trips the check (lastseq=0 init).
        assert all(c <= 1 for c in oos_counts)

    def test_anomalies_detected_by_nonmt_query(self):
        table = self._clean_table()
        counts = inject_tcp_anomalies(table, TcpAnomalyConfig(
            retransmit_rate=0.05, reorder_rate=0.0, duplicate_rate=0.0))
        assert counts["retransmit"] > 0
        result = run_query(
            "def nonmt ((maxseq, nm), tcpseq):\n"
            "    if maxseq > tcpseq: nm = nm + 1\n"
            "    maxseq = max(maxseq, tcpseq)\n"
            "SELECT 5tuple, nonmt GROUPBY 5tuple WHERE proto == TCP",
            table.records)
        total_nm = sum(r["nonmt.nm"] for r in result)
        assert total_nm >= counts["retransmit"] * 0.8

    def test_injection_counts_reported(self):
        table = self._clean_table()
        counts = inject_tcp_anomalies(table)
        assert set(counts) == {"retransmit", "reorder", "duplicate"}
        assert all(v >= 0 for v in counts.values())
