#!/usr/bin/env python
"""Network-wide deployment: one query, every switch.

The language is defined over observations from every queue in the
network, but each switch only sees its own.  This example installs one
program on all four switches of a leaf-spine fabric and shows the two
collection modes:

* counters (``COUNT``/``SUM``) combine *exactly* across switches —
  cross-stream accumulation is commutative for identity-matrix folds;
* the latency EWMA is order-dependent, so it is reported per
  (flow, switch) — which is the per-queue localisation the paper's
  motivation asks for anyway.

The counter deployment runs as a *streaming* network session: the
simulator feeds bounded columnar batches straight into one
``TelemetrySession`` per switch (``sim.stream_into``), so the full
observation table never has to exist in memory.

The final section reruns the counter deployment **sharded**
(``deploy.open(..., shards=2)``): the per-switch sessions move into
forked worker processes — one switch per worker, round-robin — so a
big fabric's switches execute on every core of the collector while the
parent only routes batches.  Reports are bit-identical to the
unsharded session (the synthesized merges combine per-shard state
exactly); non-mergeable folds like the EWMA stay per-switch either
way, so nothing changes for them.

Run:  python examples/network_wide_deployment.py
"""

from collections import defaultdict

from repro import CacheGeometry
from repro.network.simulator import NetworkSimulator
from repro.network.topology import LinkSpec, leaf_spine
from repro.telemetry.deploy import NetworkDeployment
from repro.traffic.datacenter import DatacenterConfig, DatacenterWorkload

GEOMETRY = CacheGeometry.set_associative(1024, ways=8)

COUNTERS = "SELECT COUNT, SUM(pkt_len) GROUPBY srcip, dstip"
EWMA = """
def ewma (lat_est, (tin, tout)):
    lat_est = (1 - alpha) * lat_est + alpha * (tout - tin)

SELECT 5tuple, ewma GROUPBY 5tuple WHERE tout != infinity
"""


def build_simulator(topo) -> NetworkSimulator:
    sim = NetworkSimulator(topo)
    hosts = sorted(topo.hosts())
    workload = DatacenterWorkload(DatacenterConfig(
        n_racks=2, hosts_per_rack=4, n_flows=120, duration_ns=30_000_000,
        seed=9))
    for event in workload.injection_events():
        src = hosts[event.src_host % len(hosts)]
        dst = hosts[event.dst_host % len(hosts)]
        if src != dst:
            sim.inject(time_ns=event.time_ns, src=src, dst=dst,
                       pkt_len=event.pkt_len, srcport=event.srcport,
                       dstport=event.dstport)
    return sim


def main() -> None:
    topo = leaf_spine(n_leaves=2, n_spines=2, hosts_per_leaf=4,
                      edge_link=LinkSpec(rate_gbps=5.0, buffer_packets=48))

    # Counters: exact network-wide totals, streamed — the simulator
    # emits bounded columnar batches directly into one session per
    # switch; no whole-trace table is ever materialised.
    sim = build_simulator(topo)
    deploy = NetworkDeployment(COUNTERS, sim, geometry=GEOMETRY)
    session = deploy.open(window=8192)
    streamed = sim.stream_into(session, chunk_size=4096)
    print(f"{streamed} observations streamed across "
          f"{len(topo.switches())} switches\n")
    report = session.close()
    name = deploy.compiled.result
    print(f"counters combinable across switches: {report.combinable[name]}")
    top = sorted(report.result(name).rows, key=lambda r: -r["SUM(pkt_len)"])[:3]
    for row in top:
        print(f"  {row['srcip']:#x} -> {row['dstip']:#x}: "
              f"{row['COUNT']} observations, {row['SUM(pkt_len)']} bytes")

    # EWMA: per-switch localisation (one-shot run of the same workload
    # — the streaming run above drained the first simulator's events).
    sim2 = build_simulator(topo)
    table = sim2.run()
    deploy2 = NetworkDeployment(EWMA, sim2, params={"alpha": 0.1},
                                geometry=GEOMETRY)
    report2 = deploy2.run(table.records)
    name2 = deploy2.compiled.result
    print(f"\nEWMA combinable across switches: {report2.combinable[name2]} "
          "(order-dependent; reported per queue/switch)")
    by_switch: dict[str, list[float]] = defaultdict(list)
    for row in report2.result(name2).rows:
        by_switch[row["switch"]].append(row["lat_est"])
    print("mean flow-latency EWMA by switch:")
    for switch in sorted(by_switch):
        values = by_switch[switch]
        print(f"  {switch:8s} {sum(values) / len(values) / 1000:8.1f} us "
              f"({len(values)} flow entries)")

    # Sharded deployment: the same streaming counter session, with the
    # per-switch sessions fanned across 2 forked workers.  On a
    # multi-core collector this is how a large fabric keeps up — the
    # parent process only routes batches by queue ownership; switch
    # pipelines run in parallel.  Results are bit-identical.
    sim3 = build_simulator(topo)
    deploy3 = NetworkDeployment(COUNTERS, sim3, geometry=GEOMETRY)
    sharded = deploy3.open(window=8192, shards=2)
    sim3.stream_into(sharded, chunk_size=4096)
    report3 = sharded.close()
    match = (sorted(map(tuple, (sorted(r.items()) for r in
                                report3.result(name).rows))) ==
             sorted(map(tuple, (sorted(r.items()) for r in
                                report.result(name).rows))))
    print(f"\nsharded (2 workers) == unsharded counters: {match}")


if __name__ == "__main__":
    main()
